(* Trace optimization (the paper's §6 next step): pick the hottest traces
   of a workload, run the straight-line optimizer over them, and show the
   before/after code.

     dune exec examples/optimize_trace.exe -- [workload] *)

module Opt = Tracegen.Trace_optimizer
module Instr = Bytecode.Instr

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s\n" name;
        exit 2
  in
  let layout = Cfg.Layout.build (Workloads.Workload.build_default w) in
  let r = Tracegen.Engine.run layout in
  let traces = ref [] in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache r.Tracegen.Engine.engine)
    (fun tr -> traces := tr :: !traces);
  let hottest =
    !traces
    |> List.filter (fun tr -> tr.Tracegen.Trace.completed > 0)
    |> List.sort (fun a b ->
           compare
             (b.Tracegen.Trace.completed * b.Tracegen.Trace.total_instrs)
             (a.Tracegen.Trace.completed * a.Tracegen.Trace.total_instrs))
  in
  List.iteri
    (fun k tr ->
      if k < 3 then begin
        let res = Opt.optimize layout tr in
        Printf.printf "=== %s ===\n" (Tracegen.Trace.describe layout tr);
        Printf.printf "original (%d instructions):\n"
          (Array.length res.Opt.original);
        Array.iter
          (fun ins -> Printf.printf "    %s\n" (Instr.to_string ins))
          res.Opt.original;
        Printf.printf "optimized (%d instructions; %d folded, %d forwarded, \
                       %d dead stores, %d trailing dead):\n"
          (Array.length res.Opt.optimized)
          res.Opt.folded res.Opt.forwarded res.Opt.dead_stores
          res.Opt.trailing_dead_stores;
        Array.iter
          (fun ins -> Printf.printf "    %s\n" (Instr.to_string ins))
          res.Opt.optimized;
        Printf.printf "savings: %.1f%% of the trace's instructions\n\n"
          (100.0 *. Opt.savings_ratio res)
      end)
    hottest
