(* The effect of the completion threshold (paper section 5.2) on a single
   workload: trace length, coverage, completion rate and signal rate.

     dune exec examples/threshold_sweep.exe -- [workload] *)

module St = Tracegen.Stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s\n" name;
        exit 2
  in
  let layout =
    Cfg.Layout.build (Workloads.Workload.build_default w)
  in
  Printf.printf "workload: %s (delay 64)\n\n" name;
  Printf.printf "%9s %10s %10s %12s %14s %12s\n" "threshold" "len(blk)"
    "coverage%" "completion%" "kdisp/signal" "traces";
  List.iter
    (fun threshold ->
      let config =
        Tracegen.Config.make ~threshold ()
      in
      let r = Tracegen.Engine.run ~config layout in
      let s = r.Tracegen.Engine.run_stats in
      Printf.printf "%8.0f%% %10.1f %10.1f %12.2f %14.1f %12d\n"
        (100.0 *. threshold) (St.avg_trace_length s)
        (100.0 *. St.coverage_completed s)
        (100.0 *. St.completion_rate s)
        (St.dispatches_per_signal s /. 1000.0)
        s.St.traces_constructed)
    [ 1.00; 0.99; 0.98; 0.97; 0.95; 0.90; 0.80 ];
  print_newline ();
  print_endline
    "The paper's observations to look for: trace length grows as the";
  print_endline
    "threshold drops, while the completion rate falls; coverage peaks in";
  print_endline "the 97-99% band."
