(* A look inside the machinery: disassemble a hot method, show the hottest
   branch-correlation nodes with their states, and the traces built over
   them.

     dune exec examples/inspect_traces.exe -- [workload] [method] *)

module St = Tracegen.Stats

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "compress" in
  let meth = if Array.length Sys.argv > 2 then Sys.argv.(2) else "lzw_encode" in
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s\n" name;
        exit 2
  in
  let program = w.Workloads.Workload.build ~size:(w.Workloads.Workload.default_size / 2) in
  let layout = Cfg.Layout.build program in

  (match Bytecode.Program.find_method program meth with
  | Some m ->
      Printf.printf "=== disassembly of %s ===\n" meth;
      print_string (Bytecode.Disasm.method_to_string program m);
      Printf.printf "\n=== its control-flow graph ===\n";
      Format.printf "%a@."
        Cfg.Method_cfg.pp
        (Cfg.Layout.cfg_of_method layout ~method_id:m.Bytecode.Mthd.id)
  | None -> Printf.printf "(no method named %s; skipping disassembly)\n" meth);

  let r = Tracegen.Engine.run layout in
  let engine = r.Tracegen.Engine.engine in

  Printf.printf "\n=== hottest branch correlation nodes ===\n";
  let bcg = Tracegen.Profiler.bcg (Tracegen.Engine.profiler engine) in
  let nodes = ref [] in
  Tracegen.Bcg.iter_nodes bcg (fun n -> nodes := n :: !nodes);
  !nodes
  |> List.sort (fun a b ->
         compare b.Tracegen.Bcg.exec_total a.Tracegen.Bcg.exec_total)
  |> List.iteri (fun k n ->
         if k < 10 then Format.printf "%a@." (Tracegen.Bcg.pp_node layout) n);

  Printf.printf "\n=== traces by instructions delivered ===\n";
  let traces = ref [] in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache engine) (fun tr ->
      traces := tr :: !traces);
  !traces
  |> List.sort (fun a b ->
         compare
           (b.Tracegen.Trace.completed * b.Tracegen.Trace.total_instrs)
           (a.Tracegen.Trace.completed * a.Tracegen.Trace.total_instrs))
  |> List.iteri (fun k tr ->
         if k < 10 then print_endline (Tracegen.Trace.describe layout tr));

  let s = r.Tracegen.Engine.run_stats in
  Printf.printf "\n%d signals, %d traces, %.1f%% coverage, %.2f%% completion\n"
    s.St.signals s.St.traces_constructed
    (100.0 *. St.coverage_completed s)
    (100.0 *. St.completion_rate s)
