(* Quickstart: write a small program in the structured front end, run it
   under the trace-cache engine, and look at what the profiler found.

     dune exec examples/quickstart.exe *)

open Workloads.Dsl
module S = Bytecode.Structured

let () =
  (* 1. Write a program: sum the digits of the first 50k integers. *)
  let p = S.create () in
  S.def_method p ~name:"digit_sum" ~args:[ ("n", S.I) ] ~ret:S.I
    ~body:
      [
        decl_i "s" (i 0);
        decl_i "x" (v "n");
        while_ (v "x" >! i 0)
          [ set "s" (v "s" +! (v "x" %! i 10)); set "x" (v "x" /! i 10) ];
        ret (v "s");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "total" (i 0);
        for_ "k" (i 0) (i 50_000)
          [ set "total" (v "total" +! call "digit_sum" [ v "k" ]) ];
        ret (v "total");
      ]
    ();

  (* 2. Link, verify, and lay out basic blocks. *)
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  Printf.printf "program: %d methods, %d basic blocks\n"
    (Array.length program.Bytecode.Program.methods)
    layout.Cfg.Layout.n_blocks;

  (* 3. Run under the profiling + trace-cache engine. *)
  let result = Tracegen.Engine.run layout in
  (match Vm.Interp.result_value result.Tracegen.Engine.vm_result with
  | Some v -> Printf.printf "result: %s\n\n" (Vm.Value.to_string v)
  | None -> print_endline "void result");

  (* 4. The five dependent values of the paper. *)
  let s = result.Tracegen.Engine.run_stats in
  let module St = Tracegen.Stats in
  Printf.printf "average trace length : %.1f blocks\n" (St.avg_trace_length s);
  Printf.printf "stream coverage      : %.1f%% (completed traces)\n"
    (100.0 *. St.coverage_completed s);
  Printf.printf "completion rate      : %.2f%%\n"
    (100.0 *. St.completion_rate s);
  Printf.printf "dispatches/signal    : %.1fk\n"
    (St.dispatches_per_signal s /. 1000.0);
  Printf.printf "trace event interval : %.1fk dispatches\n\n"
    (St.trace_event_interval s /. 1000.0);

  (* 5. The traces themselves. *)
  print_endline "hottest traces:";
  let traces = ref [] in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache result.Tracegen.Engine.engine)
    (fun tr -> traces := tr :: !traces);
  !traces
  |> List.sort (fun a b ->
         compare b.Tracegen.Trace.completed a.Tracegen.Trace.completed)
  |> List.iteri (fun k tr ->
         if k < 5 then print_endline ("  " ^ Tracegen.Trace.describe layout tr))
