(* Cache stability under a phase change (paper sections 3.6 and 4.1.1).

   A program runs the same loop skeleton through three behavioural phases;
   the decayed correlations adapt, the profiler signals the changes, and
   the trace cache rebuilds only what the branch correlation graph says is
   affected.

     dune exec examples/phase_change.exe *)

open Workloads.Dsl
module S = Bytecode.Structured
module St = Tracegen.Stats

let program () =
  let p = S.create () in
  S.def_method p ~name:"work" ~args:[ ("mode", S.I); ("k", S.I) ] ~ret:S.I
    ~body:
      [
        (* three behaviours behind the same call site *)
        switch (v "mode")
          [
            (0, [ ret (v "k" *! i 3 &! i 0xFFFF) ]);
            (1, [ ret (v "k" +! (v "k" <<! i 2) &! i 0xFFFF) ]);
          ]
          [ ret (v "k" ^! i 0x5555) ];
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "acc" (i 0);
        for_ "phase" (i 0) (i 3)
          [
            for_ "k" (i 0) (i 30_000)
              [
                set "acc"
                  ((v "acc" +! call "work" [ v "phase"; v "k" ]) &! i 0xFFFFF);
              ];
          ];
        ret (v "acc");
      ]
    ();
  S.link p ~entry:"main"

let () =
  let layout = Cfg.Layout.build (program ()) in
  let r = Tracegen.Engine.run layout in
  let s = r.Tracegen.Engine.run_stats in
  Printf.printf "three phases of 30k iterations each\n\n";
  Printf.printf "signals raised      : %d\n" s.St.signals;
  Printf.printf "traces constructed  : %d\n" s.St.traces_constructed;
  Printf.printf "traces replaced     : %d (cache entries rebound)\n"
    s.St.traces_replaced;
  Printf.printf "traces live at end  : %d\n" s.St.traces_live;
  Printf.printf "completion rate     : %.2f%%\n"
    (100.0 *. St.completion_rate s);
  Printf.printf "total coverage      : %.1f%%\n\n"
    (100.0 *. St.coverage_total s);
  print_endline "hottest traces at exit (phase 2's path dominates):";
  let traces = ref [] in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache r.Tracegen.Engine.engine)
    (fun tr -> traces := tr :: !traces);
  !traces
  |> List.sort (fun a b ->
         compare b.Tracegen.Trace.entered a.Tracegen.Trace.entered)
  |> List.iteri (fun k tr ->
         if k < 6 then print_endline ("  " ^ Tracegen.Trace.describe layout tr));
  print_newline ();
  print_endline
    "Each phase flip demotes the switch's old target, raises a handful of";
  print_endline
    "signals, and rebuilds a handful of traces — the cache is not flushed";
  print_endline "(Dynamo's fallback), it is repaired locally."
