(* Three trace-selection strategies on one workload: the paper's branch
   correlation graph, Dynamo's next-executing-tail, and rePLay's promoted
   frames.

     dune exec examples/baseline_comparison.exe -- [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "javac" in
  let w =
    match Workloads.Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s\n" name;
        exit 2
  in
  let layout = Cfg.Layout.build (Workloads.Workload.build_default w) in
  Printf.printf "workload: %s\n\n" name;
  Printf.printf "%-22s %10s %11s %13s %8s\n" "system" "len(blk)" "coverage%"
    "completion%" "built";

  (* this paper: branch correlation graph *)
  let bcg = (Tracegen.Engine.run layout).Tracegen.Engine.run_stats in
  Printf.printf "%-22s %10.1f %11.1f %13.2f %8d\n" "bcg (this paper)"
    (Tracegen.Stats.avg_trace_length bcg)
    (100.0 *. Tracegen.Stats.coverage_completed bcg)
    (100.0 *. Tracegen.Stats.completion_rate bcg)
    bcg.Tracegen.Stats.traces_constructed;

  (* Dynamo: next executing tail *)
  let net = Baselines.Net.run layout in
  Printf.printf "%-22s %10.1f %11.1f %13.2f %8d\n" "net (Dynamo)"
    (Baselines.Summary.avg_trace_length net)
    (100.0 *. Baselines.Summary.coverage_completed net)
    (100.0 *. Baselines.Summary.completion_rate net)
    net.Baselines.Summary.traces_built;

  (* rePLay: promotion + frames *)
  let rp = Baselines.Replay_frames.run layout in
  Printf.printf "%-22s %10.1f %11.1f %13.2f %8d\n" "frames (rePLay)"
    (Baselines.Summary.avg_trace_length rp)
    (100.0 *. Baselines.Summary.coverage_completed rp)
    (100.0 *. Baselines.Summary.completion_rate rp)
    rp.Baselines.Summary.traces_built;

  print_newline ();
  print_endline
    "The BCG bounds expected completion probability during construction, so";
  print_endline
    "its completion rate stays near 100% where NET records whatever follows";
  print_endline "a hot point and pays for it in early exits."
