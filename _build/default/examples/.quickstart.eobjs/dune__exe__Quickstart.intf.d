examples/quickstart.mli:
