examples/inspect_traces.mli:
