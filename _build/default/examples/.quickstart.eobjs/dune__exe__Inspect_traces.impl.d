examples/inspect_traces.ml: Array Bytecode Cfg Format List Printf Sys Tracegen Workloads
