examples/quickstart.ml: Array Bytecode Cfg List Printf Tracegen Vm Workloads
