examples/optimize_trace.mli:
