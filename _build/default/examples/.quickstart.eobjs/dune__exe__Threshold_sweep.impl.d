examples/threshold_sweep.ml: Array Cfg List Printf Sys Tracegen Workloads
