examples/phase_change.mli:
