examples/phase_change.ml: Bytecode Cfg List Printf Tracegen Workloads
