examples/threshold_sweep.mli:
