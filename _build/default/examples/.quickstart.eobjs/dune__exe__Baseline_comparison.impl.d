examples/baseline_comparison.ml: Array Baselines Cfg Printf Sys Tracegen Workloads
