examples/optimize_trace.ml: Array Bytecode Cfg List Printf Sys Tracegen Workloads
