(* The experiment harness: run caching, parameter grids, table rendering. *)

module Experiment = Harness.Experiment
module Tables = Harness.Tables

let tc = Alcotest.test_case
let check = Alcotest.check

let tiny_key workload =
  {
    Experiment.workload;
    size = 20;
    delay = 64;
    threshold = 0.97;
    build_traces = true;
  }

let test_execute_and_cache () =
  let k = tiny_key "compress" in
  let a = Experiment.execute k in
  let b = Experiment.execute k in
  check Alcotest.bool "second execution is cached (physical equality)" true
    (a == b);
  check Alcotest.bool "checksum recorded" true (a.Experiment.result_value <> 0)

let test_distinct_keys_distinct_runs () =
  let a = Experiment.execute (tiny_key "compress") in
  let b =
    Experiment.execute { (tiny_key "compress") with Experiment.threshold = 0.95 }
  in
  check Alcotest.bool "different configs are separate runs" true (a != b);
  check Alcotest.int "same program, same checksum" a.Experiment.result_value
    b.Experiment.result_value

let test_unknown_workload_rejected () =
  try
    ignore (Experiment.execute (tiny_key "missing"));
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_grid_constants () =
  check Alcotest.int "five thresholds" 5 (List.length Experiment.thresholds);
  check (Alcotest.list Alcotest.int) "paper delays" [ 1; 64; 4096 ]
    Experiment.delays;
  check Alcotest.int "six workloads" 6
    (List.length (Experiment.bench_workloads ()))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_tables_render () =
  (* tiny scale so the full grid stays fast *)
  let scale = 0.02 in
  let t1 = Tables.table1 ~scale () in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " in table") true (contains_sub t1 name))
    [ "compress"; "javac"; "raytrace"; "mpegaudio"; "soot"; "scimark" ];
  List.iter
    (fun row -> check Alcotest.bool (row ^ " row present") true (contains_sub t1 row))
    [ "100%"; "99%"; "98%"; "97%"; "95%" ];
  let t5 = Tables.table5 ~scale () in
  List.iter
    (fun row -> check Alcotest.bool (row ^ " delay row") true (contains_sub t5 row))
    [ "1"; "64"; "4096" ];
  check Alcotest.bool "figure renders" true
    (contains_sub (Tables.figure_dispatch ~scale ()) "per-trace");
  check Alcotest.bool "baselines table renders" true
    (contains_sub (Tables.baselines ~scale ()) "replay")

let test_overhead_rows () =
  let text, rows = Harness.Overhead.table6 ~scale:0.02 ~repeats:1 () in
  check Alcotest.int "one row per workload" 6 (List.length rows);
  check Alcotest.bool "table text mentions dispatches" true
    (contains_sub text "dispatches");
  List.iter
    (fun r ->
      check Alcotest.bool "positive dispatch count" true
        (r.Harness.Overhead.dispatches > 0);
      check Alcotest.bool "times non-negative" true
        (r.Harness.Overhead.plain_sec >= 0.0
        && r.Harness.Overhead.profiled_sec >= 0.0))
    rows

let test_footprint_rows () =
  let w = Option.get (Workloads.Registry.find "compress") in
  let r = Harness.Footprint.measure ~scale:0.02 w in
  check Alcotest.bool "nodes positive" true (r.Harness.Footprint.bcg_nodes > 0);
  check Alcotest.bool "bytes consistent" true
    (r.Harness.Footprint.bcg_bytes
    >= r.Harness.Footprint.bcg_nodes + r.Harness.Footprint.bcg_edges);
  check Alcotest.bool "duplication >= 1" true
    (r.Harness.Footprint.duplication >= 1.0 -. 1e-9);
  check Alcotest.bool "stored instrs >= distinct instrs" true
    (r.Harness.Footprint.trace_instrs
    >= r.Harness.Footprint.distinct_block_instrs)

let test_ablation_rows () =
  let r = Harness.Ablation.decay_run ~decay_period:256 ~iters_per_phase:2_000 in
  check Alcotest.bool "completion in [0,1]" true
    (r.Harness.Ablation.completion >= 0.0 && r.Harness.Ablation.completion <= 1.0);
  check Alcotest.bool "signals observed" true (r.Harness.Ablation.signals > 0);
  let nr =
    Harness.Ablation.decay_run ~decay_period:100_000_000 ~iters_per_phase:2_000
  in
  check Alcotest.string "label for disabled decay" "no decay"
    nr.Harness.Ablation.label

let test_phase_program_runs () =
  let program = Harness.Ablation.phase_program ~iters_per_phase:500 in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  match (Vm.Interp.run_plain layout).Vm.Interp.outcome with
  | Vm.Interp.Finished (Some (Vm.Value.Vint _)) -> ()
  | _ -> Alcotest.fail "phase program must return an int"

let () =
  Alcotest.run "harness"
    [
      ( "experiments",
        [
          tc "execute and cache" `Quick test_execute_and_cache;
          tc "distinct keys" `Quick test_distinct_keys_distinct_runs;
          tc "unknown workload" `Quick test_unknown_workload_rejected;
          tc "grid constants" `Quick test_grid_constants;
        ] );
      ( "tables",
        [
          tc "tables render" `Slow test_tables_render;
          tc "overhead rows" `Slow test_overhead_rows;
        ] );
      ( "ablations",
        [
          tc "footprint rows" `Slow test_footprint_rows;
          tc "decay ablation rows" `Slow test_ablation_rows;
          tc "phase program" `Quick test_phase_program_runs;
        ] );
    ]
