module B = Bytecode.Builder
module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Block = Cfg.Block
module Method_cfg = Cfg.Method_cfg
module Layout = Cfg.Layout
module Dominators = Cfg.Dominators

let tc = Alcotest.test_case
let check = Alcotest.check

(* a diamond followed by a loop:
   0: iload 0
   1: ifz eq L_else
   2: iconst 1 ; 3: istore 1 ; 4: goto L_join
   L_else(5): iconst 2 ; 6: istore 1
   L_join(7): iload 1                       <- loop header
   8: iinc 0 -1
   9: iload 0
   10: ifz gt L_join ... wait stack *)
let diamond_loop_program () =
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:2 ()
  in
  let l_else = B.new_label m in
  let l_join = B.new_label m in
  B.iconst m 5;
  B.istore m 0;
  B.iload m 0;
  B.ifz m Instr.Eq l_else;
  B.iconst m 1;
  B.istore m 1;
  B.goto m l_join;
  B.place m l_else;
  B.iconst m 2;
  B.istore m 1;
  B.place m l_join;
  (* loop: decrement local 0 until zero *)
  B.iinc m 0 (-1);
  B.iload m 0;
  B.ifz m Instr.Gt l_join;
  B.iload m 1;
  B.i m Instr.Ireturn;
  B.finish_method m;
  B.link b ~entry:"main"

let test_partition () =
  let p = diamond_loop_program () in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method p) in
  let code_len = Array.length (Bytecode.Program.entry_method p).Mthd.code in
  (* blocks cover the code exactly, in order, without overlap *)
  let covered = ref 0 in
  Array.iteri
    (fun bi b ->
      check Alcotest.int
        (Printf.sprintf "block %d starts where previous ended" bi)
        !covered b.Block.start_pc;
      covered := Block.end_pc b)
    cfg.Method_cfg.blocks;
  check Alcotest.int "blocks cover all instructions" code_len !covered;
  (* pc_to_block is consistent *)
  for pc = 0 to code_len - 1 do
    let b = Method_cfg.block_at_pc cfg pc in
    check Alcotest.bool "pc within its block" true
      (pc >= b.Block.start_pc && pc < Block.end_pc b)
  done

let test_successors () =
  let p = diamond_loop_program () in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method p) in
  (* entry block ends with the diamond branch: two successors *)
  let b0 = cfg.Method_cfg.blocks.(0) in
  check Alcotest.int "diamond has two successors" 2
    (List.length (Method_cfg.successors cfg b0));
  (* return block has none *)
  let last = cfg.Method_cfg.blocks.(Method_cfg.n_blocks cfg - 1) in
  check (Alcotest.list Alcotest.int) "return block has no successors" []
    (Method_cfg.successors cfg last)

let test_predecessors_inverse () =
  let p = diamond_loop_program () in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method p) in
  let preds = Method_cfg.predecessors cfg in
  Array.iteri
    (fun bi b ->
      List.iter
        (fun s ->
          check Alcotest.bool
            (Printf.sprintf "edge %d->%d appears in preds" bi s)
            true
            (List.mem bi preds.(s)))
        (Method_cfg.successors cfg b))
    cfg.Method_cfg.blocks

let test_dominators_and_loops () =
  let p = diamond_loop_program () in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method p) in
  let dom = Dominators.compute cfg in
  (* entry dominates everything reachable *)
  Array.iteri
    (fun bi _ ->
      if dom.Dominators.idom.(bi) >= 0 then
        check Alcotest.bool
          (Printf.sprintf "entry dominates %d" bi)
          true
          (Dominators.dominates dom ~dom:0 ~sub:bi))
    cfg.Method_cfg.blocks;
  let backs = Dominators.back_edges cfg dom in
  check Alcotest.int "exactly one back edge" 1 (List.length backs);
  let b, h = List.hd backs in
  let loop = Dominators.natural_loop cfg ~back:(b, h) in
  check Alcotest.bool "loop contains header" true (List.mem h loop);
  check Alcotest.bool "loop contains latch" true (List.mem b loop);
  check (Alcotest.list Alcotest.int) "loop headers" [ h ]
    (Dominators.loop_headers cfg dom)

let test_layout_gids () =
  let p = diamond_loop_program () in
  let layout = Layout.build p in
  check Alcotest.bool "layout has blocks" true (layout.Layout.n_blocks > 0);
  (* round trip gid -> block -> gid *)
  for g = 0 to layout.Layout.n_blocks - 1 do
    let b = Layout.block layout g in
    let g' =
      Layout.gid layout ~method_id:b.Block.method_id ~block_index:b.Block.index
    in
    check Alcotest.int "gid round trip" g g'
  done;
  (* entry gid is method entry's first block *)
  let eg = Layout.entry_gid layout in
  let eb = Layout.block layout eg in
  check Alcotest.int "entry starts at pc 0" 0 eb.Block.start_pc;
  (* block lengths sum to program size *)
  let total = ref 0 in
  for g = 0 to layout.Layout.n_blocks - 1 do
    total := !total + Layout.block_len layout g
  done;
  check Alcotest.int "lengths sum to instruction count"
    (Bytecode.Program.total_instructions p)
    !total

let test_dot_export () =
  let p = diamond_loop_program () in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method p) in
  let dot = Cfg.Dot.method_to_dot cfg in
  check Alcotest.bool "dot output mentions digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

(* qcheck over random structured programs: the block partition property *)
let arb_stmts =
  let open QCheck.Gen in
  let rec gen depth st =
    let leaf =
      oneofl
        Workloads.Dsl.
          [ set "x" (v "x" +! i 1); set "acc" (v "acc" +! v "x") ]
    in
    if depth = 0 then map (fun s -> [ s ]) leaf st
    else
      let sub = gen (depth - 1) in
      (oneof
         Workloads.Dsl.
           [
             map (fun s -> [ s ]) leaf;
             map2 (fun a b -> [ if_ (v "x" <! i 5) a b ]) sub sub;
             map (fun a -> [ for_ "k" (i 0) (i 3) a ]) sub;
             map2 (fun a b -> a @ b) sub sub;
           ])
        st
  in
  QCheck.make ~print:(fun _ -> "<stmts>") (gen 4)

let prop_partition =
  QCheck.Test.make ~name:"blocks partition every compiled method" ~count:60
    arb_stmts (fun stmts ->
      let open Workloads.Dsl in
      let module S = Bytecode.Structured in
      let p = S.create () in
      S.def_method p ~name:"main" ~args:[] ~ret:S.I
        ~body:
          ([ decl_i "x" (i 0); decl_i "acc" (i 0) ] @ stmts @ [ ret (v "acc") ])
        ();
      let program = S.link p ~entry:"main" in
      Array.for_all
        (fun m ->
          let cfg = Method_cfg.build m in
          let covered = ref 0 in
          let ok = ref true in
          Array.iter
            (fun b ->
              if b.Block.start_pc <> !covered then ok := false;
              covered := Block.end_pc b)
            cfg.Method_cfg.blocks;
          !ok && !covered = Array.length m.Mthd.code)
        program.Bytecode.Program.methods)

let () =
  Alcotest.run "cfg"
    [
      ( "blocks",
        [
          tc "partition" `Quick test_partition;
          tc "successors" `Quick test_successors;
          tc "predecessors inverse" `Quick test_predecessors_inverse;
        ] );
      ( "analysis",
        [
          tc "dominators and loops" `Quick test_dominators_and_loops;
          tc "dot export" `Quick test_dot_export;
        ] );
      ("layout", [ tc "global numbering" `Quick test_layout_gids ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_partition ]);
    ]
