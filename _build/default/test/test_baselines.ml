(* The comparison trace selectors: NET (Dynamo) and frame construction
   (rePLay). *)

open Workloads.Dsl
module S = Bytecode.Structured
module Layout = Cfg.Layout
module Net = Baselines.Net
module Replay = Baselines.Replay_frames
module Summary = Baselines.Summary

let tc = Alcotest.test_case
let check = Alcotest.check

let layout_of ?(defs = fun (_ : S.t) -> ()) body =
  let p = S.create () in
  defs p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Layout.build program

let hot_loop =
  [
    decl_i "s" (i 0);
    for_ "k" (i 0) (i 10_000) [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ];
    ret (v "s");
  ]

let test_net_hot_loop () =
  let layout = layout_of hot_loop in
  let s = Net.run layout in
  check Alcotest.bool "net builds traces on a hot loop" true
    (s.Summary.traces_built > 0);
  check Alcotest.bool "net traces get entered" true
    (s.Summary.traces_entered > 0);
  check Alcotest.bool "net coverage substantial" true
    (Summary.coverage_completed s > 0.3);
  check Alcotest.bool "net completion high on a pure loop" true
    (Summary.completion_rate s > 0.9)

let test_net_threshold () =
  (* below the hot threshold nothing is recorded *)
  let small =
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 20) [ set "s" (v "s" +! v "k") ];
      ret (v "s");
    ]
  in
  let layout = layout_of small in
  let s = Net.run ~config:{ Net.default_config with Net.hot_threshold = 100 } layout in
  check Alcotest.int "cold loop builds nothing" 0 s.Summary.traces_built

let test_net_length_cap () =
  let layout = layout_of hot_loop in
  let s =
    Net.run ~config:{ Net.default_config with Net.max_blocks = 3 } layout
  in
  check Alcotest.bool "respects cap (avg length)" true
    (Summary.avg_trace_length s <= 3.0 +. 1e-9);
  check Alcotest.bool "still builds" true (s.Summary.traces_built > 0)

let test_replay_promotion () =
  let layout = layout_of hot_loop in
  let t = Replay.create layout in
  let r = Vm.Interp.run layout ~on_block:(fun g -> Replay.on_block t g) in
  let s = Replay.summary t ~instructions:r.Vm.Interp.instructions in
  check Alcotest.bool "branches got promoted" true (t.Replay.promotions > 0);
  check Alcotest.bool "frames were built" true (s.Summary.traces_built > 0);
  check Alcotest.bool "frames complete on a biased loop" true
    (Summary.completion_rate s > 0.9)

let test_replay_no_promotion_on_noise () =
  (* a 50/50 branch under a 6-bit history never reaches 32 consecutive
     outcomes except by astronomically unlikely accident with our rng *)
  let defs p = define_prelude p in
  let body =
    [
      decl "st" (S.Arr S.I) (new_arr S.I (i 1));
      seti (v "st") (i 0) (i 7);
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 4_000)
        [
          if_
            (call "rng_range" [ v "st"; i 2 ] =! i 0)
            [ set "s" (v "s" +! i 1) ]
            [ set "s" (v "s" +! i 2) ];
        ];
      ret (v "s");
    ]
  in
  let layout = layout_of ~defs body in
  let t = Replay.create layout in
  let r = Vm.Interp.run layout ~on_block:(fun g -> Replay.on_block t g) in
  let s = Replay.summary t ~instructions:r.Vm.Interp.instructions in
  (* the loop back-edge branch still promotes; the noisy branch inside
     must keep overall completion below a pure-loop's level or frames
     stay short *)
  check Alcotest.bool "summary sane" true
    (Summary.completion_rate s >= 0.0 && Summary.completion_rate s <= 1.0);
  check Alcotest.bool "demotions observed under noise" true
    (t.Replay.demotions > 0 || t.Replay.promotions = 0)

let test_summaries_on_workloads () =
  List.iter
    (fun w ->
      let size = max 1 (w.Workloads.Workload.default_size / 4) in
      let layout = Layout.build (w.Workloads.Workload.build ~size) in
      let n = Net.run layout in
      let r = Replay.run layout in
      List.iter
        (fun s ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s coverage in [0,1]"
               w.Workloads.Workload.name s.Summary.name)
            true
            (Summary.coverage_total s >= 0.0 && Summary.coverage_total s <= 1.0);
          check Alcotest.bool "completed <= entered" true
            (s.Summary.traces_completed <= s.Summary.traces_entered))
        [ n; r ])
    Workloads.Registry.all

let test_bcg_beats_baselines_on_completion () =
  (* the paper's core claim: bounding expected completion probability gives
     higher completion rates than NET's record-what-follows *)
  let w = Workloads.Javacish.workload in
  let layout = Layout.build (w.Workloads.Workload.build ~size:150) in
  let bcg = (Tracegen.Engine.run layout).Tracegen.Engine.run_stats in
  let net = Net.run layout in
  check Alcotest.bool
    (Printf.sprintf "bcg completion (%.2f) > net completion (%.2f)"
       (Tracegen.Stats.completion_rate bcg)
       (Summary.completion_rate net))
    true
    (Tracegen.Stats.completion_rate bcg > Summary.completion_rate net)

let () =
  Alcotest.run "baselines"
    [
      ( "net",
        [
          tc "hot loop" `Quick test_net_hot_loop;
          tc "hot threshold" `Quick test_net_threshold;
          tc "length cap" `Quick test_net_length_cap;
        ] );
      ( "replay",
        [
          tc "promotion and frames" `Quick test_replay_promotion;
          tc "noise resists promotion" `Quick test_replay_no_promotion_on_noise;
        ] );
      ( "comparison",
        [
          tc "summaries on workloads" `Slow test_summaries_on_workloads;
          tc "bcg beats net on completion" `Slow
            test_bcg_beats_baselines_on_completion;
        ] );
    ]
