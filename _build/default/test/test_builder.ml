module B = Bytecode.Builder
module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

let tc = Alcotest.test_case
let check = Alcotest.check

(* a tiny program: main() { return f(2) + 3 } ; f(x) = x * x *)
let build_simple () =
  let b = B.create () in
  let f =
    B.begin_method b ~name:"f" ~returns:Mthd.Rint ~n_args:1 ~n_locals:1 ()
  in
  B.iload f 0;
  B.iload f 0;
  B.i f Instr.Imul;
  B.i f Instr.Ireturn;
  B.finish_method f;
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:0 ()
  in
  B.iconst m 2;
  B.invokestatic m "f";
  B.iconst m 3;
  B.i m Instr.Iadd;
  B.i m Instr.Ireturn;
  B.finish_method m;
  B.link b ~entry:"main"

let test_link_simple () =
  let p = build_simple () in
  check Alcotest.int "two methods" 2 (Array.length p.Program.methods);
  let main = Program.entry_method p in
  check Alcotest.string "entry is main" "main" main.Mthd.name;
  (* the call resolved to f's id *)
  let f = Option.get (Program.find_method p "f") in
  (match main.Mthd.code.(1) with
  | Instr.Invokestatic id -> check Alcotest.int "call target" f.Mthd.id id
  | ins -> Alcotest.failf "expected invokestatic, got %s" (Instr.to_string ins))

let test_labels () =
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:1 ()
  in
  let l_end = B.new_label m in
  B.iconst m 5;
  B.istore m 0;
  B.iload m 0;
  B.ifz m Instr.Gt l_end;
  B.iconst m 0;
  B.istore m 0;
  B.place m l_end;
  B.iload m 0;
  B.i m Instr.Ireturn;
  B.finish_method m;
  let p = B.link b ~entry:"main" in
  let main = Program.entry_method p in
  (match main.Mthd.code.(3) with
  | Instr.Ifz (Instr.Gt, target) -> check Alcotest.int "resolved target" 6 target
  | ins -> Alcotest.failf "expected ifz, got %s" (Instr.to_string ins))

let test_unplaced_label_rejected () =
  let b = B.create () in
  let m = B.begin_method b ~name:"main" ~n_args:0 ~n_locals:0 () in
  let l = B.new_label m in
  B.goto m l;
  (try
     B.finish_method m;
     Alcotest.fail "expected failure for unplaced label"
   with Invalid_argument _ -> ())

let test_duplicate_method_rejected () =
  let b = B.create () in
  let m = B.begin_method b ~name:"f" ~n_args:0 ~n_locals:0 () in
  B.i m Instr.Return;
  B.finish_method m;
  try
    ignore (B.begin_method b ~name:"f" ~n_args:0 ~n_locals:0 ());
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let test_unknown_call_rejected () =
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rvoid ~n_args:0 ~n_locals:0 ()
  in
  B.invokestatic m "missing";
  B.i m Instr.Return;
  B.finish_method m;
  try
    ignore (B.link b ~entry:"main");
    Alcotest.fail "expected unknown-method rejection"
  with Invalid_argument _ -> ()

(* class hierarchy: A{x} <- B{y}, selector "get" overridden in B *)
let build_classes () =
  let b = B.create () in
  B.declare_class b ~name:"A" ~fields:[ ("x", Klass.Kint) ]
    ~methods:[ ("get", "a_get") ] ();
  B.declare_class b ~name:"B" ~super:"A"
    ~fields:[ ("y", Klass.Kint) ]
    ~methods:[ ("get", "b_get") ] ();
  let a_get =
    B.begin_method b ~name:"a_get" ~kind:Mthd.Virtual ~returns:Mthd.Rint
      ~n_args:1 ~n_locals:1 ()
  in
  B.aload a_get 0;
  B.getfield a_get "A" "x";
  B.i a_get Instr.Ireturn;
  B.finish_method a_get;
  let b_get =
    B.begin_method b ~name:"b_get" ~kind:Mthd.Virtual ~returns:Mthd.Rint
      ~n_args:1 ~n_locals:1 ()
  in
  B.aload b_get 0;
  B.getfield b_get "B" "y";
  B.i b_get Instr.Ireturn;
  B.finish_method b_get;
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:1 ()
  in
  B.new_object m "B";
  B.astore m 0;
  B.aload m 0;
  B.iconst m 41;
  B.putfield m "B" "y";
  B.aload m 0;
  B.invokevirtual m "get";
  B.i m Instr.Ireturn;
  B.finish_method m;
  B.link b ~entry:"main"

let test_field_layout () =
  let p = build_classes () in
  let a = Option.get (Program.find_class p "A") in
  let b = Option.get (Program.find_class p "B") in
  check Alcotest.int "A has one field" 1 (Klass.n_fields a);
  check Alcotest.int "B inherits x then adds y" 2 (Klass.n_fields b);
  check (Alcotest.option Alcotest.int) "x at slot 0 in B" (Some 0)
    (Klass.field_slot b "x");
  check (Alcotest.option Alcotest.int) "y at slot 1 in B" (Some 1)
    (Klass.field_slot b "y")

let test_vtable_override () =
  let p = build_classes () in
  let a = Option.get (Program.find_class p "A") in
  let b = Option.get (Program.find_class p "B") in
  let a_get = Option.get (Program.find_method p "a_get") in
  let b_get = Option.get (Program.find_method p "b_get") in
  (* selector slot 0 is "get" (only selector) *)
  check (Alcotest.option Alcotest.int) "A.get -> a_get" (Some a_get.Mthd.id)
    (Klass.method_for_selector a ~slot:0);
  check (Alcotest.option Alcotest.int) "B.get -> b_get" (Some b_get.Mthd.id)
    (Klass.method_for_selector b ~slot:0)

let test_subclassing () =
  let p = build_classes () in
  let a = Option.get (Program.find_class p "A") in
  let b = Option.get (Program.find_class p "B") in
  check Alcotest.bool "B <: A" true
    (Klass.is_subclass_of p.Program.classes ~sub:b.Klass.id ~super:a.Klass.id);
  check Alcotest.bool "A not <: B" false
    (Klass.is_subclass_of p.Program.classes ~sub:a.Klass.id ~super:b.Klass.id);
  check Alcotest.bool "A <: A" true
    (Klass.is_subclass_of p.Program.classes ~sub:a.Klass.id ~super:a.Klass.id)

let test_entry_must_be_static_zero_arg () =
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:1 ~n_locals:1 ()
  in
  B.iload m 0;
  B.i m Instr.Ireturn;
  B.finish_method m;
  try
    ignore (B.link b ~entry:"main");
    Alcotest.fail "expected entry arity rejection"
  with Invalid_argument _ -> ()

let test_run_simple () =
  (* sanity: the built program actually computes 2*2+3 *)
  let p = build_simple () in
  let layout = Cfg.Layout.build p in
  let r = Vm.Interp.run_plain layout in
  match Vm.Interp.result_value r with
  | Some (Vm.Value.Vint 7) -> ()
  | v ->
      Alcotest.failf "expected 7, got %s"
        (match v with Some x -> Vm.Value.to_string x | None -> "void")

let test_run_classes () =
  let p = build_classes () in
  let layout = Cfg.Layout.build p in
  match Vm.Interp.result_value (Vm.Interp.run_plain layout) with
  | Some (Vm.Value.Vint 41) -> ()
  | _ -> Alcotest.fail "virtual dispatch should reach b_get and read y=41"

let () =
  Alcotest.run "builder"
    [
      ( "methods",
        [
          tc "link simple program" `Quick test_link_simple;
          tc "labels resolve" `Quick test_labels;
          tc "unplaced label rejected" `Quick test_unplaced_label_rejected;
          tc "duplicate method rejected" `Quick test_duplicate_method_rejected;
          tc "unknown call rejected" `Quick test_unknown_call_rejected;
          tc "entry arity checked" `Quick test_entry_must_be_static_zero_arg;
        ] );
      ( "classes",
        [
          tc "field layout inheritance" `Quick test_field_layout;
          tc "vtable override" `Quick test_vtable_override;
          tc "subclass relation" `Quick test_subclassing;
        ] );
      ( "execution",
        [
          tc "simple program runs" `Quick test_run_simple;
          tc "virtual dispatch runs" `Quick test_run_classes;
        ] );
    ]
