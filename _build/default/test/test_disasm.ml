(* Disassembler, dot export, and runtime values. *)

module Disasm = Bytecode.Disasm
module Program = Bytecode.Program
module Value = Vm.Value

let tc = Alcotest.test_case
let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let program = lazy (Workloads.Workload.build_default Workloads.Javacish.workload)

let test_program_listing () =
  let p = Lazy.force program in
  let s = Disasm.program_to_string p in
  (* symbolic names appear instead of raw ids *)
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " appears") true (contains s name))
    [ "invokestatic rng_next"; "invokevirtual eval"; "new Num";
      "getfield Bin.left"; "class Varn"; "main" ]

let test_method_listing () =
  let p = Lazy.force program in
  let m = Option.get (Program.find_method p "bin_eval") in
  let s = Disasm.method_to_string p m in
  check Alcotest.bool "mentions tableswitch" true (contains s "tableswitch");
  check Alcotest.bool "branch targets marked" true (contains s ">")

let test_every_method_lists () =
  let p = Lazy.force program in
  Array.iter
    (fun m ->
      let s = Disasm.method_to_string p m in
      check Alcotest.bool m.Bytecode.Mthd.name true (String.length s > 0))
    p.Program.methods

let test_dot () =
  let p = Lazy.force program in
  let m = Option.get (Program.find_method p "parse_expr") in
  let cfg = Cfg.Method_cfg.build m in
  let dot = Cfg.Dot.method_to_dot cfg in
  check Alcotest.bool "digraph" true (contains dot "digraph");
  check Alcotest.bool "edges" true (contains dot "->");
  (* one node line per block *)
  let count_blocks = Cfg.Method_cfg.n_blocks cfg in
  let count_nodes = ref 0 in
  String.split_on_char '\n' dot
  |> List.iter (fun line -> if contains line "[label=" then incr count_nodes);
  check Alcotest.int "node per block" count_blocks !count_nodes

let test_values () =
  check Alcotest.string "int" "42" (Value.to_string (Value.Vint 42));
  check Alcotest.string "null" "null" (Value.to_string Value.Vnull);
  check Alcotest.bool "float prints" true
    (String.length (Value.to_string (Value.Vfloat 1.5)) > 0);
  let arr = Value.Varr { Value.kind = Bytecode.Instr.Int_array; cells = [| Value.Vint 1 |] } in
  check Alcotest.string "array" "int[1]" (Value.to_string arr);
  let obj = Value.Vobj { Value.cls = 3; fields = [| Value.Vnull; Value.Vint 0 |] } in
  check Alcotest.bool "object mentions class" true
    (contains (Value.to_string obj) "#3")

let test_value_defaults () =
  check Alcotest.bool "int field default" true
    (Value.default_of_field_kind Bytecode.Klass.Kint = Value.Vint 0);
  check Alcotest.bool "float field default" true
    (Value.default_of_field_kind Bytecode.Klass.Kfloat = Value.Vfloat 0.0);
  check Alcotest.bool "ref field default" true
    (Value.default_of_field_kind Bytecode.Klass.Kref = Value.Vnull);
  check Alcotest.bool "ref array default" true
    (Value.default_of_array_kind Bytecode.Instr.Ref_array = Value.Vnull)

let () =
  Alcotest.run "disasm"
    [
      ( "listings",
        [
          tc "program" `Quick test_program_listing;
          tc "method" `Quick test_method_listing;
          tc "all methods" `Quick test_every_method_lists;
        ] );
      ("dot", [ tc "export" `Quick test_dot ]);
      ( "values",
        [
          tc "to_string" `Quick test_values;
          tc "defaults" `Quick test_value_defaults;
        ] );
    ]
