(* Machine-readable export: JSON well-formedness, CSV shape, value
   consistency with the underlying stats. *)

module Export = Harness.Export
module Experiment = Harness.Experiment
module Stats = Tracegen.Stats

let tc = Alcotest.test_case
let check = Alcotest.check

let test_json_escaping () =
  check Alcotest.string "quotes" "a\\\"b" (Export.json_escape "a\"b");
  check Alcotest.string "backslash" "a\\\\b" (Export.json_escape "a\\b");
  check Alcotest.string "newline" "a\\nb" (Export.json_escape "a\nb");
  check Alcotest.string "control" "a\\u0001b" (Export.json_escape "a\001b")

let test_json_rendering () =
  let j =
    Export.J_obj
      [
        ("name", Export.J_string "x\"y");
        ("n", Export.J_int 42);
        ("f", Export.J_float 0.25);
        ("ok", Export.J_bool true);
        ("xs", Export.J_list [ Export.J_int 1; Export.J_int 2 ]);
      ]
  in
  check Alcotest.string "rendering"
    "{\"name\":\"x\\\"y\",\"n\":42,\"f\":0.25,\"ok\":true,\"xs\":[1,2]}"
    (Export.to_string j)

let test_nan_clamped () =
  check Alcotest.string "nan becomes 0" "0"
    (Export.to_string (Export.J_float Float.nan));
  check Alcotest.string "inf becomes 0" "0"
    (Export.to_string (Export.J_float Float.infinity))

(* a crude well-formedness scan: balanced braces/brackets outside strings *)
let json_balanced s =
  let depth = ref 0 in
  let in_str = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  (not !in_str) && !depth = 0

let test_run_json_consistent () =
  let run =
    Experiment.execute
      {
        Experiment.workload = "compress";
        size = 1000;
        delay = 64;
        threshold = 0.97;
        build_traces = true;
      }
  in
  let s = Export.to_string (Export.run_json run) in
  check Alcotest.bool "balanced json" true (json_balanced s);
  (* the rendered text carries the right checksum *)
  let expected = Printf.sprintf "\"checksum\":%d" run.Experiment.result_value in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "checksum present" true (contains expected);
  check Alcotest.bool "workload present" true (contains "\"workload\":\"compress\"")

let test_csv_shape () =
  let csv = Export.sweep_csv ~scale:0.01 () in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  (* header + 6 workloads x 5 thresholds *)
  check Alcotest.int "row count" 31 (List.length lines);
  let header = List.hd lines in
  let n_cols = List.length (String.split_on_char ',' header) in
  List.iter
    (fun line ->
      check Alcotest.int "uniform column count" n_cols
        (List.length (String.split_on_char ',' line)))
    lines

let test_jsonl_shape () =
  let out = Export.sweep_jsonl ~scale:0.01 () in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  (* 6 workloads x (5 thresholds + 3 delays) *)
  check Alcotest.int "line count" 48 (List.length lines);
  List.iter
    (fun line -> check Alcotest.bool "each line balanced" true (json_balanced line))
    lines

let test_csv_escape () =
  (* exercised indirectly; check the helper semantics via a value rendered
     through stats_json instead: strings with commas survive *)
  let j = Export.to_string (Export.J_string "a,b") in
  check Alcotest.string "comma in json string" "\"a,b\"" j

let () =
  Alcotest.run "export"
    [
      ( "json",
        [
          tc "escaping" `Quick test_json_escaping;
          tc "rendering" `Quick test_json_rendering;
          tc "nan clamped" `Quick test_nan_clamped;
          tc "run json" `Quick test_run_json_consistent;
        ] );
      ( "sweeps",
        [
          tc "csv shape" `Slow test_csv_shape;
          tc "jsonl shape" `Slow test_jsonl_shape;
          tc "csv escape" `Quick test_csv_escape;
        ] );
    ]
