(* The interpreter: value semantics, runtime errors, and the dispatch
   accounting the profiler depends on. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Interp = Vm.Interp
module Layout = Cfg.Layout

let tc = Alcotest.test_case
let check = Alcotest.check

let layout_of ?(defs = fun (_ : S.t) -> ()) body =
  let p = S.create () in
  defs p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Layout.build program

let run_int ?defs body =
  match Interp.result_value (Interp.run_plain (layout_of ?defs body)) with
  | Some (Vm.Value.Vint n) -> n
  | _ -> Alcotest.fail "expected int"

let expect_trap kind body =
  let r = Interp.run_plain (layout_of body) in
  match r.Interp.outcome with
  | Interp.Trapped (k, _) when k = kind -> ()
  | Interp.Trapped (k, msg) ->
      Alcotest.failf "wrong trap: %s (%s)" (Interp.error_kind_to_string k) msg
  | Interp.Finished _ -> Alcotest.fail "expected a trap"

let test_int_semantics () =
  check Alcotest.int "truncating division" (-3) (run_int [ ret (i (-10) /! i 3) ]);
  check Alcotest.int "remainder sign" (-1) (run_int [ ret (i (-10) %! i 3) ]);
  check Alcotest.int "xor" 6 (run_int [ ret (i 5 ^! i 3) ]);
  check Alcotest.int "shift left" 40 (run_int [ ret (i 5 <<! i 3) ]);
  check Alcotest.int "arithmetic shift right" (-3)
    (run_int [ ret (i (-20) >>! i 3) ])

let test_float_semantics () =
  check Alcotest.int "float add" 5 (run_int [ ret (f2i (f 2.25 +! f 2.75)) ]);
  check Alcotest.int "float compare lt" 1 (run_int [ ret (f 1.0 <! f 2.0) ]);
  check Alcotest.int "float compare via sub" 0 (run_int [ ret (f 2.0 <! f 1.0) ]);
  check Alcotest.int "f2i truncates" 3 (run_int [ ret (f2i (f 3.99)) ])

let test_traps () =
  expect_trap Interp.Division_by_zero [ ret (i 1 /! i 0) ];
  expect_trap Interp.Division_by_zero [ ret (i 1 %! i 0) ];
  expect_trap Interp.Array_bounds
    [ decl "a" (S.Arr S.I) (new_arr S.I (i 3)); ret (v "a" @. i 5) ];
  expect_trap Interp.Array_bounds
    [ decl "a" (S.Arr S.I) (new_arr S.I (i 3)); ret (v "a" @. neg (i 1)) ];
  expect_trap Interp.Array_bounds [ ret (len (new_arr S.I (neg (i 2)))) ];
  expect_trap Interp.Null_pointer
    [ decl "a" (S.Arr S.I) S.Cnull; ret (v "a" @. i 0) ]

let test_null_virtual_call () =
  let defs p =
    S.def_class p ~name:"C" ~fields:[] ~methods:[ ("m", "c_m") ] ();
    S.def_method p ~name:"c_m" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.I
      ~body:[ ret (i 1) ] ()
  in
  let layout =
    layout_of ~defs [ decl "o" S.R S.Cnull; ret (vcall "m" (v "o") []) ]
  in
  match (Interp.run_plain layout).Interp.outcome with
  | Interp.Trapped (Interp.Null_pointer, _) -> ()
  | _ -> Alcotest.fail "expected null pointer trap"

let test_instruction_budget () =
  let layout =
    layout_of [ while_ (i 1 =! i 1) [ ignore_ (i 0) ]; ret (i 0) ]
  in
  match (Interp.run ~max_instructions:10_000 layout ~on_block:(fun _ -> ())).Interp.outcome with
  | Interp.Trapped (Interp.Instruction_budget, _) -> ()
  | _ -> Alcotest.fail "expected budget trap"

let test_stack_overflow () =
  let p = S.create () in
  S.def_method p ~name:"recur" ~args:[ ("n", S.I) ] ~ret:S.I
    ~body:[ ret (call "recur" [ v "n" +! i 1 ]) ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:[ ret (call "recur" [ i 0 ]) ]
    ();
  let program = S.link p ~entry:"main" in
  let layout = Layout.build program in
  match (Interp.run_plain layout).Interp.outcome with
  | Interp.Trapped (Interp.Stack_overflow, _) -> ()
  | _ -> Alcotest.fail "expected stack overflow"

let test_dispatch_accounting () =
  (* instructions = sum of executed block lengths; block dispatches = number
     of observer calls; every observed gid is a block leader *)
  let layout =
    layout_of
      [
        decl_i "s" (i 0);
        for_ "k" (i 0) (i 10) [ set "s" (v "s" +! v "k") ];
        ret (v "s");
      ]
  in
  let observed = ref [] in
  let r = Interp.run layout ~on_block:(fun g -> observed := g :: !observed) in
  check Alcotest.int "observer called once per block dispatch"
    r.Interp.block_dispatches
    (List.length !observed);
  let sum_lens =
    List.fold_left (fun acc g -> acc + Layout.block_len layout g) 0 !observed
  in
  check Alcotest.int "instructions = sum of dispatched block lengths"
    r.Interp.instructions sum_lens;
  List.iter
    (fun g ->
      let b = Layout.block layout g in
      check Alcotest.bool "gid in range" true (g >= 0 && g < layout.Layout.n_blocks);
      check Alcotest.bool "block len positive" true (b.Cfg.Block.len > 0))
    !observed

let test_observer_stream_is_path () =
  (* consecutive dispatched blocks must be connected: successor within the
     method, callee entry, or return continuation *)
  let defs p =
    S.def_method p ~name:"helper" ~args:[ ("x", S.I) ] ~ret:S.I
      ~body:[ if_ (v "x" >! i 2) [ ret (v "x" *! i 2) ] [ ret (v "x") ] ]
      ()
  in
  let layout =
    layout_of ~defs
      [
        decl_i "s" (i 0);
        for_ "k" (i 0) (i 6) [ set "s" (v "s" +! call "helper" [ v "k" ]) ];
        ret (v "s");
      ]
  in
  let prev = ref (-1) in
  let ok = ref true in
  let check_edge gprev g =
    let pb = Layout.block layout gprev in
    let cb = Layout.block layout g in
    let cfg = Layout.cfg_of_method layout ~method_id:pb.Cfg.Block.method_id in
    let intra =
      pb.Cfg.Block.method_id = cb.Cfg.Block.method_id
      && List.mem cb.Cfg.Block.index (Cfg.Method_cfg.successors cfg pb)
    in
    let is_call =
      match pb.Cfg.Block.term with
      | Cfg.Block.T_call _ -> cb.Cfg.Block.start_pc = 0
      | _ -> false
    in
    let is_return =
      match pb.Cfg.Block.term with Cfg.Block.T_return -> true | _ -> false
    in
    intra || is_call || is_return
  in
  let r =
    Interp.run layout ~on_block:(fun g ->
        if !prev >= 0 && not (check_edge !prev g) then ok := false;
        prev := g)
  in
  ignore r;
  check Alcotest.bool "dispatch stream follows CFG edges" true !ok

let test_determinism () =
  let mk () = run_int
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 100) [ set "s" ((v "s" *! i 31 +! v "k") &! i 0xFFFF) ];
      ret (v "s");
    ]
  in
  check Alcotest.int "two runs agree" (mk ()) (mk ())

(* qcheck: arithmetic on random pairs matches OCaml semantics *)
let prop_arith =
  QCheck.Test.make ~name:"vm int ops match OCaml" ~count:100
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let ops =
        [
          ((fun x y -> x +! y), ( + ));
          ((fun x y -> x -! y), ( - ));
          ((fun x y -> x *! y), ( * ));
          ((fun x y -> x &! y), ( land ));
          ((fun x y -> x |! y), ( lor ));
          ((fun x y -> x ^! y), ( lxor ));
        ]
      in
      List.for_all
        (fun (dsl_op, ml_op) ->
          run_int [ ret (dsl_op (i a) (i b)) ] = ml_op a b)
        ops)

let () =
  Alcotest.run "vm"
    [
      ( "semantics",
        [
          tc "int ops" `Quick test_int_semantics;
          tc "float ops" `Quick test_float_semantics;
          tc "determinism" `Quick test_determinism;
        ] );
      ( "traps",
        [
          tc "runtime errors" `Quick test_traps;
          tc "null virtual call" `Quick test_null_virtual_call;
          tc "instruction budget" `Quick test_instruction_budget;
          tc "stack overflow" `Quick test_stack_overflow;
        ] );
      ( "dispatch",
        [
          tc "accounting" `Quick test_dispatch_accounting;
          tc "stream follows edges" `Quick test_observer_stream_is_path;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_arith ]);
    ]
