(* Exceptions: throw/catch semantics through the whole stack — front end,
   verifier, CFG, VM unwinding — and their interaction with the profiler
   and trace cache (the paper's "branches which are never taken, eg
   exceptions"). *)

open Workloads.Dsl
module S = Bytecode.Structured
module Interp = Vm.Interp

let tc = Alcotest.test_case
let check = Alcotest.check

let exception_classes p =
  S.def_class p ~name:"Exn" ~fields:[ ("code", S.I) ] ~methods:[] ();
  S.def_class p ~name:"RangeExn" ~super:"Exn" ~fields:[] ~methods:[] ();
  S.def_class p ~name:"OtherExn" ~super:"Exn" ~fields:[] ~methods:[] ()

let run_int ?(defs = fun (_ : S.t) -> ()) body =
  let p = S.create () in
  exception_classes p;
  defs p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  match (Interp.run_plain layout).Interp.outcome with
  | Interp.Finished (Some (Vm.Value.Vint n)) -> `Int n
  | Interp.Finished _ -> `Void
  | Interp.Trapped (k, _) -> `Trap k

let mk_exn cls code =
  (* helper statements building an exception object in local "e" *)
  [
    decl "e" S.R (new_obj cls);
    setf "Exn" "code" (v "e") (i code);
  ]

let test_throw_catch_local () =
  match
    run_int
      [
        decl_i "r" (i 0);
        try_
          (mk_exn "Exn" 7 @ [ throw (v "e"); set "r" (i 999) ])
          ~catch:("Exn", "ex")
          [ set "r" (getf "Exn" "code" (v "ex")) ];
        ret (v "r");
      ]
  with
  | `Int 7 -> ()
  | _ -> Alcotest.fail "expected caught code 7"

let test_no_throw_skips_handler () =
  match
    run_int
      [
        decl_i "r" (i 1);
        try_ [ set "r" (v "r" +! i 10) ] ~catch:("Exn", "ex")
          [ set "r" (i 999) ];
        ret (v "r");
      ]
  with
  | `Int 11 -> ()
  | _ -> Alcotest.fail "handler must not run without a throw"

let test_subclass_caught () =
  match
    run_int
      [
        decl_i "r" (i 0);
        try_
          (mk_exn "RangeExn" 3 @ [ throw (v "e") ])
          ~catch:("Exn", "ex")
          [ set "r" (i 42) ];
        ret (v "r");
      ]
  with
  | `Int 42 -> ()
  | _ -> Alcotest.fail "subclass must be caught by superclass handler"

let test_unrelated_class_propagates () =
  match
    run_int
      [
        try_
          (mk_exn "OtherExn" 1 @ [ throw (v "e") ])
          ~catch:("RangeExn", "ex")
          [ ret (i 1) ];
        ret (i 2);
      ]
  with
  | `Trap Interp.Uncaught_exception -> ()
  | _ -> Alcotest.fail "expected uncaught propagation past mismatched handler"

let test_nested_innermost_first () =
  match
    run_int
      [
        decl_i "r" (i 0);
        try_
          [
            try_
              (mk_exn "Exn" 5 @ [ throw (v "e") ])
              ~catch:("Exn", "inner")
              [ set "r" (i 1) ];
          ]
          ~catch:("Exn", "outer")
          [ set "r" (i 2) ];
        ret (v "r");
      ]
  with
  | `Int 1 -> ()
  | _ -> Alcotest.fail "innermost handler must win"

let test_rethrow_to_outer () =
  match
    run_int
      [
        decl_i "r" (i 0);
        try_
          [
            try_
              (mk_exn "Exn" 5 @ [ throw (v "e") ])
              ~catch:("Exn", "inner")
              [ set "r" (i 1); throw (v "inner") ];
          ]
          ~catch:("Exn", "outer")
          [ set "r" (v "r" +! i 10) ];
        ret (v "r");
      ]
  with
  | `Int 11 -> ()
  | _ -> Alcotest.fail "rethrow must reach the outer handler"

let test_unwind_across_frames () =
  let defs p =
    S.def_method p ~name:"deep" ~args:[ ("n", S.I) ] ~ret:S.I
      ~body:
        [
          when_ (v "n" =! i 0)
            (mk_exn "Exn" 77 @ [ throw (v "e") ]);
          ret (call "deep" [ v "n" -! i 1 ]);
        ]
      ()
  in
  match
    run_int ~defs
      [
        decl_i "r" (i 0);
        try_
          [ set "r" (call "deep" [ i 10 ]) ]
          ~catch:("Exn", "ex")
          [ set "r" (getf "Exn" "code" (v "ex")) ];
        ret (v "r");
      ]
  with
  | `Int 77 -> ()
  | _ -> Alcotest.fail "exception must unwind ten frames to the handler"

let test_uncaught_traps () =
  match run_int (mk_exn "Exn" 1 @ [ throw (v "e"); ret (i 0) ]) with
  | `Trap Interp.Uncaught_exception -> ()
  | _ -> Alcotest.fail "expected uncaught exception trap"

let test_throw_null_is_npe () =
  match run_int [ throw S.Cnull; ret (i 0) ] with
  | `Trap Interp.Null_pointer -> ()
  | _ -> Alcotest.fail "throw of null is a null pointer error"

let test_operand_stack_cleared () =
  (* values on the operand stack at the throw point must not leak into the
     handler: the handler sees exactly the exception object *)
  match
    run_int
      [
        decl_i "r" (i 0);
        try_
          [
            (* 1000 is on the operand stack when boom throws *)
            set "r" (i 1000 +! call "boom" []);
          ]
          ~catch:("Exn", "ex")
          [ set "r" (getf "Exn" "code" (v "ex")) ];
        ret (v "r");
      ]
      ~defs:(fun p ->
        S.def_method p ~name:"boom" ~args:[] ~ret:S.I
          ~body:(mk_exn "Exn" 13 @ [ throw (v "e"); ret (i 0) ])
          ())
  with
  | `Int 13 -> ()
  | _ -> Alcotest.fail "handler must see a clean stack"

let test_handlers_in_disasm_and_cfg () =
  let p = S.create () in
  exception_classes p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "r" (i 0);
        try_
          (mk_exn "Exn" 1 @ [ throw (v "e") ])
          ~catch:("Exn", "ex")
          [ set "r" (i 5) ];
        ret (v "r");
      ]
    ();
  let program = S.link p ~entry:"main" in
  let main = Bytecode.Program.entry_method program in
  check Alcotest.int "one handler" 1 (Array.length main.Bytecode.Mthd.handlers);
  let h = main.Bytecode.Mthd.handlers.(0) in
  (* the handler target starts a basic block *)
  let cfg = Cfg.Method_cfg.build main in
  let b = Cfg.Method_cfg.block_at_pc cfg h.Bytecode.Mthd.h_target in
  check Alcotest.int "handler target is a leader" h.Bytecode.Mthd.h_target
    b.Cfg.Block.start_pc;
  let listing = Bytecode.Disasm.method_to_string program main in
  check Alcotest.bool "handler listed" true
    (let rec contains i =
       i + 7 <= String.length listing
       && (String.sub listing i 7 = "handler" || contains (i + 1))
     in
     contains 0)

let test_verifier_rejects_bad_handler () =
  (* hand-build a handler whose target expects an empty stack *)
  let b = Bytecode.Builder.create () in
  Bytecode.Builder.declare_class b ~name:"Exn" ~fields:[] ~methods:[] ();
  let m =
    Bytecode.Builder.begin_method b ~name:"main" ~returns:Bytecode.Mthd.Rint
      ~n_args:0 ~n_locals:1 ()
  in
  let l_start = Bytecode.Builder.new_label m in
  let l_end = Bytecode.Builder.new_label m in
  let l_handler = Bytecode.Builder.new_label m in
  Bytecode.Builder.place m l_start;
  Bytecode.Builder.iconst m 1;
  Bytecode.Builder.place m l_end;
  Bytecode.Builder.i m Bytecode.Instr.Ireturn;
  Bytecode.Builder.place m l_handler;
  (* BUG: handler consumes the exception as an int *)
  Bytecode.Builder.i m Bytecode.Instr.Ireturn;
  Bytecode.Builder.add_handler m ~from_:l_start ~to_:l_end ~target:l_handler
    ~cls:"Exn";
  Bytecode.Builder.finish_method m;
  let program = Bytecode.Builder.link b ~entry:"main" in
  try
    Bytecode.Verify.verify_program program;
    Alcotest.fail "expected handler stack-type rejection"
  with Bytecode.Verify.Invalid _ -> ()

(* exceptions as rare trace exits: a hot loop that throws once in a while;
   the engine must keep high completion and stay transparent *)
let test_rare_exceptions_in_traces () =
  let p = S.create () in
  exception_classes p;
  S.def_method p ~name:"may_throw" ~args:[ ("k", S.I) ] ~ret:S.I
    ~body:
      [
        when_
          ((v "k" &! i 1023) =! i 1023)
          (mk_exn "RangeExn" 1 @ [ throw (v "e") ]);
        ret (v "k" *! i 3 &! i 0xFFFF);
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "s" (i 0);
        decl_i "caught" (i 0);
        for_ "k" (i 0) (i 40_000)
          [
            try_
              [ set "s" ((v "s" +! call "may_throw" [ v "k" ]) &! i 0xFFFFF) ]
              ~catch:("Exn", "ex")
              [ set "caught" (v "caught" +! i 1) ];
          ];
        ret ((v "s" *! i 64) +! v "caught");
      ]
    ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  let plain = Interp.run_plain layout in
  let traced = Tracegen.Engine.run layout in
  check Alcotest.bool "transparent with rare exceptions" true
    (Interp.result_value plain
    = Interp.result_value traced.Tracegen.Engine.vm_result);
  (match Interp.result_value plain with
  | Some (Vm.Value.Vint n) ->
      check Alcotest.int "39 exceptions thrown and caught" 39 (n land 63)
  | _ -> Alcotest.fail "int expected");
  let s = traced.Tracegen.Engine.run_stats in
  check Alcotest.bool "exceptions barely dent completion" true
    (Tracegen.Stats.completion_rate s > 0.95);
  check Alcotest.bool "hot loop still covered" true
    (Tracegen.Stats.coverage_total s > 0.7)

let () =
  Alcotest.run "exceptions"
    [
      ( "semantics",
        [
          tc "throw/catch local" `Quick test_throw_catch_local;
          tc "no throw, no handler" `Quick test_no_throw_skips_handler;
          tc "subclass caught" `Quick test_subclass_caught;
          tc "unrelated class propagates" `Quick test_unrelated_class_propagates;
          tc "nested innermost first" `Quick test_nested_innermost_first;
          tc "rethrow to outer" `Quick test_rethrow_to_outer;
          tc "unwind across frames" `Quick test_unwind_across_frames;
          tc "uncaught traps" `Quick test_uncaught_traps;
          tc "throw null" `Quick test_throw_null_is_npe;
          tc "operand stack cleared" `Quick test_operand_stack_cleared;
        ] );
      ( "structure",
        [
          tc "handlers in disasm and cfg" `Quick test_handlers_in_disasm_and_cfg;
          tc "verifier rejects bad handler" `Quick test_verifier_rejects_bad_handler;
        ] );
      ( "tracing",
        [ tc "rare exceptions in traces" `Quick test_rare_exceptions_in_traces ] );
    ]
