(* The six benchmark programs: they verify, run to completion, return
   deterministic checksums, and their dispatch streams have the branch
   character they were designed to have. *)

module Layout = Cfg.Layout
module Interp = Vm.Interp
module Stats = Tracegen.Stats

let tc = Alcotest.test_case
let check = Alcotest.check

let small_size (w : Workloads.Workload.t) =
  max 1 (w.Workloads.Workload.default_size / 4)

let run_checksum (w : Workloads.Workload.t) ~size =
  let program = w.Workloads.Workload.build ~size in
  Bytecode.Verify.verify_program program;
  let layout = Layout.build program in
  match Interp.result_value (Interp.run_plain layout) with
  | Some (Vm.Value.Vint n) -> n
  | _ -> Alcotest.failf "%s: expected int result" w.Workloads.Workload.name

let test_all_run () =
  List.iter
    (fun w ->
      let n = run_checksum w ~size:(small_size w) in
      check Alcotest.bool
        (Printf.sprintf "%s returns a checksum" w.Workloads.Workload.name)
        true
        (n <> 0))
    Workloads.Registry.all

let test_deterministic () =
  List.iter
    (fun w ->
      let a = run_checksum w ~size:(small_size w) in
      let b = run_checksum w ~size:(small_size w) in
      check Alcotest.int
        (Printf.sprintf "%s deterministic" w.Workloads.Workload.name)
        a b)
    Workloads.Registry.all

let test_size_scales_work () =
  List.iter
    (fun w ->
      let build size =
        let layout = Layout.build (w.Workloads.Workload.build ~size) in
        (Interp.run_plain layout).Interp.instructions
      in
      let s = small_size w in
      let small = build s in
      let large = build (2 * s) in
      check Alcotest.bool
        (Printf.sprintf "%s: 2x size -> more instructions"
           w.Workloads.Workload.name)
        true (large > small))
    Workloads.Registry.all

let test_compress_roundtrip_flag () =
  (* the checksum's low bit is the encode/decode verification flag *)
  let n = run_checksum Workloads.Compress.workload ~size:3000 in
  check Alcotest.int "round trip verified" 1 (n land 1)

let test_javac_fold_agrees () =
  (* javac's main returns -1 when constant folding changes evaluation *)
  let n = run_checksum Workloads.Javacish.workload ~size:150 in
  check Alcotest.bool "folding preserved semantics" true (n >= 0)

let test_registry () =
  check Alcotest.int "six workloads" 6 (List.length Workloads.Registry.all);
  check (Alcotest.list Alcotest.string) "paper order"
    [ "compress"; "javac"; "raytrace"; "mpegaudio"; "soot"; "scimark" ]
    (Workloads.Registry.names ());
  check Alcotest.bool "find hits" true (Workloads.Registry.find "soot" <> None);
  check Alcotest.bool "find misses" true
    (Workloads.Registry.find "nope" = None)

(* branch-character checks: the polymorphism-heavy workloads really do make
   virtual calls at a high rate, the numeric one does not *)
let vcall_rate (w : Workloads.Workload.t) =
  let program = w.Workloads.Workload.build ~size:(small_size w) in
  let layout = Layout.build program in
  let vcalls = ref 0 in
  let r =
    Interp.run layout ~on_block:(fun g ->
        let b = Layout.block layout g in
        match b.Cfg.Block.term with
        | Cfg.Block.T_call { virtual_ = true; _ } -> incr vcalls
        | _ -> ())
  in
  float_of_int !vcalls /. float_of_int r.Interp.instructions

let test_polymorphism_profile () =
  let mpeg = vcall_rate Workloads.Mpegaudio.workload in
  let sci = vcall_rate Workloads.Scimark.workload in
  check Alcotest.bool
    (Printf.sprintf "mpegaudio virtual-call dense (%f vs %f)" mpeg sci)
    true (mpeg > 4.0 *. sci)

let test_trace_profile_shape () =
  (* scimark must be the friendliest to tracing among the six; javac and
     soot must be harder than compress *)
  let run w =
    let program =
      w.Workloads.Workload.build ~size:(small_size w)
    in
    let layout = Layout.build program in
    (Tracegen.Engine.run layout).Tracegen.Engine.run_stats
  in
  let compress = run Workloads.Compress.workload in
  let scimark = run Workloads.Scimark.workload in
  check Alcotest.bool "compress completion is very high" true
    (Stats.completion_rate compress > 0.97);
  check Alcotest.bool "scimark coverage is high" true
    (Stats.coverage_completed scimark > 0.75)

let () =
  Alcotest.run "workloads"
    [
      ( "execution",
        [
          tc "all run" `Slow test_all_run;
          tc "deterministic" `Slow test_deterministic;
          tc "size scales work" `Slow test_size_scales_work;
          tc "registry" `Quick test_registry;
        ] );
      ( "semantic checks",
        [
          tc "compress round trip" `Quick test_compress_roundtrip_flag;
          tc "javac folding agrees" `Quick test_javac_fold_agrees;
        ] );
      ( "branch character",
        [
          tc "polymorphism profile" `Slow test_polymorphism_profile;
          tc "trace profile shape" `Slow test_trace_profile_shape;
        ] );
    ]
