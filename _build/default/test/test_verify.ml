module B = Bytecode.Builder
module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Verify = Bytecode.Verify

let tc = Alcotest.test_case

(* assemble a single main with the given raw body and run the verifier *)
let verify_main ?(returns = Mthd.Rint) ?(n_locals = 2) instrs =
  let b = B.create () in
  let m = B.begin_method b ~name:"main" ~returns ~n_args:0 ~n_locals () in
  List.iter (fun ins -> B.i m ins) instrs;
  B.finish_method m;
  let p = B.link b ~entry:"main" in
  Verify.verify_program p

let expect_invalid name instrs =
  try
    verify_main instrs;
    Alcotest.failf "%s: expected verification failure" name
  with Verify.Invalid _ -> ()

let test_accepts_straightline () =
  verify_main [ Instr.Iconst 1; Instr.Iconst 2; Instr.Iadd; Instr.Ireturn ]

let test_underflow () =
  expect_invalid "iadd on 1-deep stack" [ Instr.Iconst 1; Instr.Iadd; Instr.Ireturn ]

let test_type_mismatch () =
  expect_invalid "fadd on ints"
    [ Instr.Iconst 1; Instr.Iconst 2; Instr.Fadd; Instr.Ireturn ];
  expect_invalid "ireturn of float" [ Instr.Fconst 1.0; Instr.Ireturn ];
  expect_invalid "astore of int"
    [ Instr.Iconst 1; Instr.Astore 0; Instr.Iconst 0; Instr.Ireturn ]

let test_fall_off_end () =
  expect_invalid "no return" [ Instr.Iconst 1; Instr.Pop; Instr.Nop ]

let test_bad_local () =
  expect_invalid "local out of range"
    [ Instr.Iload 99; Instr.Ireturn ]

let test_bad_target () =
  (* hand-build with a raw out-of-range target: the CFG builder rejects it
     even before verification *)
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:0 ()
  in
  B.i m (Instr.Goto 99);
  B.finish_method m;
  let p = B.link b ~entry:"main" in
  (try
     Verify.verify_program p;
     ignore (Cfg.Layout.build p);
     Alcotest.fail "expected rejection of wild branch target"
   with Verify.Invalid _ | Invalid_argument _ -> ())

let test_merge_inconsistency () =
  (* one path leaves an int on the stack, the other a float *)
  let b = B.create () in
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:1 ()
  in
  let l_float = B.new_label m in
  let l_join = B.new_label m in
  B.iload m 0;
  B.ifz m Instr.Eq l_float;
  B.iconst m 1;
  B.goto m l_join;
  B.place m l_float;
  B.fconst m 1.0;
  B.place m l_join;
  B.i m Instr.Pop;
  B.iconst m 0;
  B.i m Instr.Ireturn;
  B.finish_method m;
  let p = B.link b ~entry:"main" in
  try
    Verify.verify_program p;
    Alcotest.fail "expected merge inconsistency"
  with Verify.Invalid _ -> ()

let test_call_arity_effects () =
  (* f(int, int) -> int consumed correctly *)
  let b = B.create () in
  let f =
    B.begin_method b ~name:"f" ~returns:Mthd.Rint ~n_args:2 ~n_locals:2 ()
  in
  B.iload f 0;
  B.iload f 1;
  B.i f Instr.Iadd;
  B.i f Instr.Ireturn;
  B.finish_method f;
  let m =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:0 ()
  in
  B.iconst m 1;
  B.iconst m 2;
  B.invokestatic m "f";
  B.i m Instr.Ireturn;
  B.finish_method m;
  let p = B.link b ~entry:"main" in
  Verify.verify_program p;
  (* and underflow when an argument is missing *)
  let b2 = B.create () in
  let f2 =
    B.begin_method b2 ~name:"f" ~returns:Mthd.Rint ~n_args:2 ~n_locals:2 ()
  in
  B.iload f2 0;
  B.i f2 Instr.Ireturn;
  B.finish_method f2;
  let m2 =
    B.begin_method b2 ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:0 ()
  in
  B.iconst m2 1;
  B.invokestatic m2 "f";
  B.i m2 Instr.Ireturn;
  B.finish_method m2;
  let p2 = B.link b2 ~entry:"main" in
  try
    Verify.verify_program p2;
    Alcotest.fail "expected underflow on missing argument"
  with Verify.Invalid _ -> ()

let test_workloads_verify () =
  List.iter
    (fun w ->
      let program =
        w.Workloads.Workload.build ~size:(min 50 w.Workloads.Workload.default_size)
      in
      Verify.verify_program program)
    Workloads.Registry.all

(* qcheck: random structured programs produced by the front end always
   verify — the Structured compiler's output stays inside the verifier's
   type discipline *)
let arb_program =
  let open QCheck.Gen in
  let rec gen_stmts depth st =
    let leaf =
      oneofl
        Workloads.Dsl.
          [
            set "x" (v "x" +! i 1);
            set "acc" (v "acc" +! v "x");
            seti (v "a") (v "x" &! i 7) (v "acc");
            set "acc" (v "acc" +! (v "a" @. (v "x" &! i 7)));
          ]
    in
    if depth = 0 then map (fun s -> [ s ]) leaf st
    else
      let sub = gen_stmts (depth - 1) in
      (oneof
         Workloads.Dsl.
           [
             map (fun s -> [ s ]) leaf;
             map2 (fun a b -> [ if_ (v "x" <! i 50) a b ]) sub sub;
             map (fun a -> [ for_ "k" (i 0) (i 5) a ]) sub;
             map (fun a -> [ while_ (v "x" <! i 10) (set "x" (v "x" +! i 1) :: a) ]) sub;
             map2 (fun a b -> a @ b) sub sub;
           ])
        st
  in
  QCheck.make ~print:(fun _ -> "<program>") (gen_stmts 3)

let prop_structured_verifies =
  QCheck.Test.make ~name:"front-end output always verifies" ~count:50
    arb_program (fun stmts ->
      let open Workloads.Dsl in
      let module S = Bytecode.Structured in
      let p = S.create () in
      S.def_method p ~name:"main" ~args:[] ~ret:S.I
        ~body:
          ([
             decl_i "x" (i 0);
             decl_i "acc" (i 0);
             decl "a" (S.Arr S.I) (new_arr S.I (i 8));
           ]
          @ stmts
          @ [ ret (v "acc") ])
        ();
      let program = S.link p ~entry:"main" in
      Verify.verify_program program;
      true)

let () =
  Alcotest.run "verify"
    [
      ( "rejections",
        [
          tc "stack underflow" `Quick test_underflow;
          tc "type mismatches" `Quick test_type_mismatch;
          tc "fall off end" `Quick test_fall_off_end;
          tc "bad local slot" `Quick test_bad_local;
          tc "wild branch target" `Quick test_bad_target;
          tc "merge inconsistency" `Quick test_merge_inconsistency;
          tc "call arity" `Quick test_call_arity_effects;
        ] );
      ( "acceptance",
        [
          tc "straight-line code" `Quick test_accepts_straightline;
          tc "all workloads verify" `Quick test_workloads_verify;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_structured_verifies ]);
    ]
