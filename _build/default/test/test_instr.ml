module Instr = Bytecode.Instr

let check = Alcotest.check
let tc = Alcotest.test_case

let all_simple_instrs =
  Instr.
    [
      Iconst 7; Fconst 2.5; Aconst_null; Iload 0; Istore 1; Fload 2; Fstore 3;
      Aload 4; Astore 5; Iinc (0, -3); Dup; Pop; Swap; Iadd; Isub; Imul; Idiv;
      Irem; Ineg; Iand; Ior; Ixor; Ishl; Ishr; Iushr; Fadd; Fsub; Fmul; Fdiv;
      Fneg; F2i; I2f; Fcmp; New 0; Getfield (0, 0); Putfield (0, 0);
      Instanceof 0; Newarray Int_array; Iaload; Iastore; Faload; Fastore;
      Aaload; Aastore; Arraylength; Nop;
    ]

let test_ends_block () =
  List.iter
    (fun ins ->
      check Alcotest.bool
        (Printf.sprintf "%s does not end a block" (Instr.to_string ins))
        false (Instr.ends_block ins))
    (List.filter
       (fun ins -> not (Instr.is_call ins))
       all_simple_instrs);
  List.iter
    (fun ins ->
      check Alcotest.bool
        (Printf.sprintf "%s ends a block" (Instr.to_string ins))
        true (Instr.ends_block ins))
    Instr.
      [
        If_icmp (Eq, 0); Ifz (Ne, 0); Goto 0;
        Tableswitch { low = 0; targets = [| 1 |]; default = 2 };
        Invokestatic 0; Invokevirtual 0; Return; Ireturn; Freturn; Areturn;
      ]

let test_branch_targets () =
  check (Alcotest.list Alcotest.int) "cond" [ 9 ]
    (Instr.branch_targets (Instr.If_icmp (Instr.Lt, 9)));
  check (Alcotest.list Alcotest.int) "goto" [ 4 ]
    (Instr.branch_targets (Instr.Goto 4));
  check (Alcotest.list Alcotest.int) "switch" [ 7; 1; 2 ]
    (Instr.branch_targets
       (Instr.Tableswitch { low = 0; targets = [| 1; 2 |]; default = 7 }));
  List.iter
    (fun ins ->
      check (Alcotest.list Alcotest.int)
        (Instr.to_string ins ^ " has no targets")
        []
        (Instr.branch_targets ins))
    all_simple_instrs

let test_eval_cond () =
  let cases =
    [
      (Instr.Eq, 0, true); (Instr.Eq, 1, false);
      (Instr.Ne, 0, false); (Instr.Ne, -2, true);
      (Instr.Lt, -1, true); (Instr.Lt, 0, false);
      (Instr.Ge, 0, true); (Instr.Ge, -1, false);
      (Instr.Gt, 1, true); (Instr.Gt, 0, false);
      (Instr.Le, 0, true); (Instr.Le, 1, false);
    ]
  in
  List.iter
    (fun (c, n, expect) ->
      check Alcotest.bool
        (Printf.sprintf "%s %d" (Instr.cond_to_string c) n)
        expect (Instr.eval_cond c n))
    cases

let test_negate_cond () =
  List.iter
    (fun c ->
      let nc = Instr.negate_cond c in
      for n = -2 to 2 do
        check Alcotest.bool "negation flips outcome"
          (not (Instr.eval_cond c n))
          (Instr.eval_cond nc n)
      done)
    [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Gt; Instr.Le ]

let test_classification () =
  check Alcotest.bool "invokestatic is a call" true
    (Instr.is_call (Instr.Invokestatic 3));
  check Alcotest.bool "ireturn is a return" true (Instr.is_return Instr.Ireturn);
  check Alcotest.bool "iadd is not a return" false (Instr.is_return Instr.Iadd);
  check Alcotest.bool "ifz is conditional" true
    (Instr.is_conditional (Instr.Ifz (Instr.Eq, 0)));
  check Alcotest.bool "goto is not conditional" false
    (Instr.is_conditional (Instr.Goto 0))

let test_stack_delta () =
  check Alcotest.int "iconst pushes 1" 1 (Instr.stack_delta (Instr.Iconst 5));
  check Alcotest.int "iadd nets -1" (-1) (Instr.stack_delta Instr.Iadd);
  check Alcotest.int "iastore nets -3" (-3) (Instr.stack_delta Instr.Iastore);
  check Alcotest.int "swap nets 0" 0 (Instr.stack_delta Instr.Swap)

let test_pp_unique () =
  (* every instruction prints, and distinct instructions print distinctly *)
  let strings = List.map Instr.to_string all_simple_instrs in
  List.iter
    (fun s -> check Alcotest.bool "nonempty" true (String.length s > 0))
    strings;
  let sorted = List.sort_uniq compare strings in
  check Alcotest.int "no two simple instructions print alike"
    (List.length strings) (List.length sorted)

let () =
  Alcotest.run "instr"
    [
      ( "classification",
        [
          tc "ends_block" `Quick test_ends_block;
          tc "branch_targets" `Quick test_branch_targets;
          tc "is_call/is_return/is_conditional" `Quick test_classification;
        ] );
      ( "semantics",
        [
          tc "eval_cond" `Quick test_eval_cond;
          tc "negate_cond" `Quick test_negate_cond;
          tc "stack_delta" `Quick test_stack_delta;
        ] );
      ("printing", [ tc "pp distinct" `Quick test_pp_unique ]);
    ]
