test/test_trace.ml: Alcotest Array Bytecode Cfg Lazy List Tracegen Workloads
