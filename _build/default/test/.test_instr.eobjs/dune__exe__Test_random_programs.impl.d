test/test_random_programs.ml: Alcotest Baselines Bytecode Cfg QCheck QCheck_alcotest Tracegen Vm Workloads
