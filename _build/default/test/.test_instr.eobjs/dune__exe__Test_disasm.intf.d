test/test_disasm.mli:
