test/test_verify.ml: Alcotest Bytecode Cfg List QCheck QCheck_alcotest Workloads
