test/test_failure.mli:
