test/test_builder.mli:
