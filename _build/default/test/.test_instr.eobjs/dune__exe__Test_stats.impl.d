test/test_stats.ml: Alcotest Cfg Format String Tracegen Workloads
