test/test_profiler.ml: Alcotest List Option Printf Tracegen
