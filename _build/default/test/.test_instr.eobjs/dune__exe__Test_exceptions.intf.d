test/test_exceptions.mli:
