test/test_structured.ml: Alcotest Array Bytecode Cfg QCheck QCheck_alcotest Vm Workloads
