test/test_instr.mli:
