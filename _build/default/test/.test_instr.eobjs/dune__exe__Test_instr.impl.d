test/test_instr.ml: Alcotest Bytecode List Printf String
