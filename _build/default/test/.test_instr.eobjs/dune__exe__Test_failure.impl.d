test/test_failure.ml: Alcotest Bytecode Cfg Printf Tracegen Vm Workloads
