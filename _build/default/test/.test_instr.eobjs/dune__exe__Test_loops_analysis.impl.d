test/test_loops_analysis.ml: Alcotest Array Bytecode Cfg Hashtbl List Workloads
