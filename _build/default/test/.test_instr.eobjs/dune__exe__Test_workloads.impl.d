test/test_workloads.ml: Alcotest Bytecode Cfg List Printf Tracegen Vm Workloads
