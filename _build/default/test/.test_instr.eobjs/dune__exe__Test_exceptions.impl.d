test/test_exceptions.ml: Alcotest Array Bytecode Cfg String Tracegen Vm Workloads
