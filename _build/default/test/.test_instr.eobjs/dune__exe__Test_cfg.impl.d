test/test_cfg.ml: Alcotest Array Bytecode Cfg List Printf QCheck QCheck_alcotest String Workloads
