test/test_trace_builder.ml: Alcotest Cfg Lazy List Option Printf Tracegen Workloads
