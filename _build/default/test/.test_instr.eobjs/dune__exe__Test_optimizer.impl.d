test/test_optimizer.ml: Alcotest Array Bytecode Cfg Format List QCheck QCheck_alcotest String Tracegen Workloads
