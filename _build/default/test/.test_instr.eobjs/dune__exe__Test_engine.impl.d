test/test_engine.ml: Alcotest Bytecode Cfg Tracegen Vm Workloads
