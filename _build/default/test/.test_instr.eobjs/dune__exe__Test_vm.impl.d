test/test_vm.ml: Alcotest Bytecode Cfg List QCheck QCheck_alcotest Vm Workloads
