test/test_trace_builder.mli:
