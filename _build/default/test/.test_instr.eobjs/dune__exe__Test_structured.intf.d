test/test_structured.mli:
