test/test_disasm.ml: Alcotest Array Bytecode Cfg Lazy List Option String Vm Workloads
