test/test_harness.ml: Alcotest Bytecode Cfg Harness List Option String Vm Workloads
