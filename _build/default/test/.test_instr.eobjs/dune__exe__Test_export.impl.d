test/test_export.ml: Alcotest Float Harness List Printf String Tracegen
