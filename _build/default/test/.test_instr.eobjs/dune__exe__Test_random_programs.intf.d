test/test_random_programs.mli:
