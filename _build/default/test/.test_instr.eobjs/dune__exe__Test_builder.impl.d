test/test_builder.ml: Alcotest Array Bytecode Cfg Option Vm
