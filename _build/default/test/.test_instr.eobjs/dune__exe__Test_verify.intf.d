test/test_verify.mli:
