test/test_bcg.mli:
