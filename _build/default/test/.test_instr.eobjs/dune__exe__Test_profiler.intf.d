test/test_profiler.mli:
