test/test_bcg.ml: Alcotest Format List Option QCheck QCheck_alcotest Tracegen
