test/test_baselines.ml: Alcotest Baselines Bytecode Cfg List Printf Tracegen Vm Workloads
