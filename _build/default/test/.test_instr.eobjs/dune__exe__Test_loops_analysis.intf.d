test/test_loops_analysis.mli:
