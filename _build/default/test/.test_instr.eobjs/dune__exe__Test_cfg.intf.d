test/test_cfg.mli:
