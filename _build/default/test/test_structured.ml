(* The structured front end, exercised by compiling small programs and
   running them on the VM. *)

open Workloads.Dsl
module S = Bytecode.Structured

let tc = Alcotest.test_case
let check = Alcotest.check

(* compile a single int-returning main from statements and run it *)
let run_main ?(defs = fun (_ : S.t) -> ()) body =
  let p = S.create () in
  defs p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  match Vm.Interp.result_value (Vm.Interp.run_plain layout) with
  | Some (Vm.Value.Vint n) -> n
  | _ -> Alcotest.fail "expected an int result"

let expect name expected body = check Alcotest.int name expected (run_main body)

let test_arith () =
  expect "ints" 17 [ ret (i 3 +! (i 2 *! i 7)) ];
  expect "division" 3 [ ret (i 10 /! i 3) ];
  expect "remainder" 1 [ ret (i 10 %! i 3) ];
  expect "negation" (-5) [ ret (neg (i 5)) ];
  expect "bit ops" 6 [ ret ((i 12 &! i 6) |! (i 2 ^! i 0)) ];
  expect "shifts" 24 [ ret ((i 3 <<! i 3) >>! i 0) ];
  expect "float to int" 7 [ ret (f2i (f 3.5 +! f 4.25)) ];
  expect "int to float round trip" 9 [ ret (f2i (i2f (i 9))) ]

let test_comparisons_as_values () =
  expect "true is 1" 1 [ ret (i 3 <! i 5) ];
  expect "false is 0" 0 [ ret (i 5 <! i 3) ];
  expect "not" 1 [ ret (not_ (i 5 <! i 3)) ];
  expect "and" 1 [ ret ((i 1 <! i 2) &&! (i 2 <! i 3)) ];
  expect "or short circuit" 1 [ ret ((i 1 <! i 2) ||! (i 1 /! i 0 =! i 0)) ];
  expect "float compare" 1 [ ret (f 1.5 <! f 2.5) ]

let test_control_flow () =
  expect "if then" 10 [ if_ (i 1 =! i 1) [ ret (i 10) ] [ ret (i 20) ] ];
  expect "if else" 20 [ if_ (i 1 =! i 2) [ ret (i 10) ] [ ret (i 20) ] ];
  expect "while sum" 55
    [
      decl_i "s" (i 0);
      decl_i "k" (i 1);
      while_ (v "k" <=! i 10)
        [ set "s" (v "s" +! v "k"); incr_ "k" ];
      ret (v "s");
    ];
  expect "for sum" 45
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 10) [ set "s" (v "s" +! v "k") ];
      ret (v "s");
    ];
  expect "do while runs once" 1
    [
      decl_i "n" (i 0);
      do_while [ incr_ "n" ] (i 0 =! i 1);
      ret (v "n");
    ];
  expect "break" 5
    [
      decl_i "k" (i 0);
      while_ (i 1 =! i 1)
        [ when_ (v "k" =! i 5) [ break_ ]; incr_ "k" ];
      ret (v "k");
    ];
  expect "continue" 25
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 10)
        [ when_ ((v "k" &! i 1) =! i 0) [ continue_ ]; set "s" (v "s" +! v "k") ];
      ret (v "s");
    ];
  expect "switch" 42
    [
      decl_i "x" (i 3);
      switch (v "x")
        [ (1, [ ret (i 10) ]); (3, [ ret (i 42) ]); (4, [ ret (i 99) ]) ]
        [ ret (i 0) ];
    ];
  expect "switch default" 7
    [ switch (i 100) [ (1, [ ret (i 1) ]) ] [ ret (i 7) ] ]

let test_arrays () =
  expect "alloc and store" 30
    [
      decl "a" (S.Arr S.I) (new_arr S.I (i 10));
      seti (v "a") (i 3) (i 30);
      ret (v "a" @. i 3);
    ];
  expect "length" 10 [ ret (len (new_arr S.I (i 10))) ];
  expect "float arrays" 9
    [
      decl "a" (S.Arr S.F) (new_arr S.F (i 4));
      seti (v "a") (i 0) (f 4.5);
      ret (f2i ((v "a" @. i 0) *! f 2.0));
    ];
  expect "ref arrays hold null initially" 1
    [
      decl "a" (S.Arr S.R) (new_arr S.R (i 2));
      ret (i 1);
    ]

let test_calls () =
  let defs p =
    S.def_method p ~name:"fact" ~args:[ ("n", S.I) ] ~ret:S.I
      ~body:
        [
          if_ (v "n" <=! i 1) [ ret (i 1) ]
            [ ret (v "n" *! call "fact" [ v "n" -! i 1 ]) ];
        ]
      ();
    S.def_method p ~name:"tick" ~args:[ ("cell", S.Arr S.I) ]
      ~body:[ seti (v "cell") (i 0) ((v "cell" @. i 0) +! i 1) ]
      ()
  in
  check Alcotest.int "recursion" 120
    (run_main ~defs [ ret (call "fact" [ i 5 ]) ]);
  check Alcotest.int "void call for effect" 3
    (run_main ~defs
       [
         decl "c" (S.Arr S.I) (new_arr S.I (i 1));
         ignore_ (call "tick" [ v "c" ]);
         ignore_ (call "tick" [ v "c" ]);
         ignore_ (call "tick" [ v "c" ]);
         ret (v "c" @. i 0);
       ])

let test_objects () =
  let defs p =
    S.def_class p ~name:"Animal" ~fields:[ ("legs", S.I) ]
      ~methods:[ ("noise", "animal_noise") ] ();
    S.def_class p ~name:"Dog" ~super:"Animal" ~fields:[]
      ~methods:[ ("noise", "dog_noise") ] ();
    S.def_method p ~name:"animal_noise" ~kind:Bytecode.Mthd.Virtual ~args:[]
      ~ret:S.I ~body:[ ret (i 1) ] ();
    S.def_method p ~name:"dog_noise" ~kind:Bytecode.Mthd.Virtual ~args:[]
      ~ret:S.I
      ~body:[ ret (i 2 +! getf "Animal" "legs" (v "this")) ]
      ()
  in
  check Alcotest.int "virtual dispatch + inherited field" 6
    (run_main ~defs
       [
         decl "d" S.R (new_obj "Dog");
         setf "Animal" "legs" (v "d") (i 4);
         ret (vcall "noise" (v "d") []);
       ]);
  check Alcotest.int "instanceof" 110
    (run_main ~defs
       [
         decl "d" S.R (new_obj "Dog");
         decl "a" S.R (new_obj "Animal");
         decl_i "acc" (i 0);
         when_ (is_instance "Animal" (v "d")) [ set "acc" (v "acc" +! i 100) ];
         when_ (is_instance "Dog" (v "a")) [ set "acc" (v "acc" +! i 1000) ];
         when_ (is_instance "Animal" (v "a")) [ set "acc" (v "acc" +! i 10) ];
         ret (v "acc");
       ])

let expect_type_error name body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  try
    ignore (S.link p ~entry:"main");
    Alcotest.failf "%s: expected a type error" name
  with S.Type_error _ -> ()

let test_type_errors () =
  expect_type_error "int + float" [ ret (i 1 +! f 2.0) ];
  expect_type_error "unbound variable" [ ret (v "nope") ];
  expect_type_error "wrong decl type" [ decl_f "x" (i 3); ret (i 0) ];
  expect_type_error "redeclare at other type"
    [ decl_i "x" (i 1); decl "x" S.F (f 1.0); ret (i 0) ];
  expect_type_error "indexing non-array" [ decl_i "x" (i 1); ret (v "x" @. i 0) ];
  expect_type_error "float condition" [ if_ (f 1.0) [ ret (i 1) ] [ ret (i 0) ] ];
  expect_type_error "break outside loop" [ break_; ret (i 0) ];
  expect_type_error "call unknown" [ ret (call "ghost" []) ];
  expect_type_error "float modulo" [ ret (f2i (f 5.0 %! f 2.0)) ];
  expect_type_error "returning float from int method" [ ret (f 1.0) ]

let test_iinc_peephole () =
  (* v = v + 3 compiles to a single Iinc *)
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:[ decl_i "x" (i 1); set "x" (v "x" +! i 3); ret (v "x") ]
    ();
  let program = S.link p ~entry:"main" in
  let main = Bytecode.Program.entry_method program in
  let has_iinc =
    Array.exists
      (function Bytecode.Instr.Iinc (_, 3) -> true | _ -> false)
      main.Bytecode.Mthd.code
  in
  check Alcotest.bool "iinc emitted" true has_iinc;
  check Alcotest.int "and it computes 4" 4
    (run_main [ decl_i "x" (i 1); set "x" (v "x" +! i 3); ret (v "x") ])

(* qcheck: constant expressions evaluate like OCaml ints *)
let arb_const_expr =
  let open QCheck.Gen in
  let leaf = map (fun n -> (i n, n)) (int_range (-1000) 1000) in
  let rec gen depth st =
    if depth = 0 then leaf st
    else
      let sub = gen (depth - 1) in
      (oneof
         [
           leaf;
           map2 (fun (ea, va) (eb, vb) -> (ea +! eb, va + vb)) sub sub;
           map2 (fun (ea, va) (eb, vb) -> (ea -! eb, va - vb)) sub sub;
           map2 (fun (ea, va) (eb, vb) -> (ea *! eb, va * vb)) sub sub;
         ])
        st
  in
  QCheck.make
    ~print:(fun (_, v) -> string_of_int v)
    (gen 4)

let prop_const_eval =
  QCheck.Test.make ~name:"constant expressions evaluate correctly" ~count:60
    arb_const_expr (fun (expr, value) -> run_main [ ret expr ] = value)

let () =
  Alcotest.run "structured"
    [
      ( "expressions",
        [
          tc "arithmetic" `Quick test_arith;
          tc "comparisons" `Quick test_comparisons_as_values;
          tc "iinc peephole" `Quick test_iinc_peephole;
        ] );
      ( "statements",
        [
          tc "control flow" `Quick test_control_flow;
          tc "arrays" `Quick test_arrays;
          tc "calls" `Quick test_calls;
          tc "objects" `Quick test_objects;
        ] );
      ("typing", [ tc "type errors rejected" `Quick test_type_errors ]);
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_const_eval ] );
    ]
