(* Traces and the trace cache: keys, hash-consing, replacement
   accounting. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Trace = Tracegen.Trace
module Trace_cache = Tracegen.Trace_cache
module Layout = Cfg.Layout

let tc = Alcotest.test_case
let check = Alcotest.check

(* any layout will do for cache tests; use a small real program *)
let layout =
  lazy
    (let p = S.create () in
     S.def_method p ~name:"main" ~args:[] ~ret:S.I
       ~body:
         [
           decl_i "s" (i 0);
           for_ "k" (i 0) (i 5)
             [ if_ ((v "k" &! i 1) =! i 0) [ set "s" (v "s" +! v "k") ] [] ];
           ret (v "s");
         ]
       ();
     Layout.build (S.link p ~entry:"main"))

let some_gids n =
  let l = Lazy.force layout in
  List.init n (fun k -> k mod l.Layout.n_blocks)

let test_trace_make () =
  let l = Lazy.force layout in
  let blocks = Array.of_list (some_gids 3) in
  let tr = Trace.make ~id:0 ~layout:l ~first:1 ~blocks ~prob:0.98 in
  check Alcotest.int "three blocks" 3 (Trace.n_blocks tr);
  check (Alcotest.pair Alcotest.int Alcotest.int) "entry key" (1, blocks.(0))
    (Trace.entry_key tr);
  check Alcotest.int "last block" blocks.(2) (Trace.last_block tr);
  let expected_len =
    Array.fold_left (fun acc g -> acc + Layout.block_len l g) 0 blocks
  in
  check Alcotest.int "static instruction total" expected_len
    tr.Trace.total_instrs;
  check Alcotest.bool "empty trace rejected" true
    (try
       ignore (Trace.make ~id:1 ~layout:l ~first:0 ~blocks:[||] ~prob:1.0);
       false
     with Invalid_argument _ -> true)

let test_install_and_lookup () =
  let l = Lazy.force layout in
  let cache = Trace_cache.create l in
  let blocks = [| 1; 2; 0 |] in
  let tr = Trace_cache.install cache ~first:0 ~blocks ~prob:0.99 in
  check Alcotest.int "constructed" 1 (Trace_cache.n_constructed cache);
  (match Trace_cache.lookup cache ~prev:0 ~cur:1 with
  | Some found -> check Alcotest.bool "same trace" true (found == tr)
  | None -> Alcotest.fail "lookup missed installed trace");
  check Alcotest.bool "different context misses" true
    (Trace_cache.lookup cache ~prev:2 ~cur:1 = None);
  check Alcotest.bool "negative prev misses" true
    (Trace_cache.lookup cache ~prev:(-1) ~cur:1 = None)

let test_hash_consing () =
  let l = Lazy.force layout in
  let cache = Trace_cache.create l in
  let blocks = [| 1; 2 |] in
  let a = Trace_cache.install cache ~first:0 ~blocks ~prob:0.99 in
  let b = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:0.99 in
  check Alcotest.bool "identical reconstruction reuses the trace" true (a == b);
  check Alcotest.int "only one construction" 1 (Trace_cache.n_constructed cache);
  check Alcotest.int "no replacement" 0 (Trace_cache.n_replaced cache)

let test_replacement () =
  let l = Lazy.force layout in
  let cache = Trace_cache.create l in
  let a = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:0.99 in
  let b = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2; 0 |] ~prob:0.97 in
  check Alcotest.bool "different sequences are different traces" true (a != b);
  check Alcotest.int "replacement counted" 1 (Trace_cache.n_replaced cache);
  (* the entry key now dispatches the new trace *)
  (match Trace_cache.lookup cache ~prev:0 ~cur:1 with
  | Some found -> check Alcotest.bool "newest wins" true (found == b)
  | None -> Alcotest.fail "entry lost");
  (* the displaced trace is still reachable through iter_all *)
  let all = ref 0 in
  Trace_cache.iter_all cache (fun _ -> incr all);
  check Alcotest.int "both traces retained for statistics" 2 !all

let test_live_count () =
  let l = Lazy.force layout in
  let cache = Trace_cache.create l in
  ignore (Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0);
  ignore (Trace_cache.install cache ~first:1 ~blocks:[| 2; 0 |] ~prob:1.0);
  check Alcotest.int "two live entries" 2 (Trace_cache.n_live cache);
  Trace_cache.flush cache;
  check Alcotest.int "flush empties the cache" 0 (Trace_cache.n_live cache)

let test_completion_rate () =
  let l = Lazy.force layout in
  let tr = Trace.make ~id:0 ~layout:l ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  check (Alcotest.float 1e-9) "no entries yet" 0.0 (Trace.completion_rate tr);
  tr.Trace.entered <- 4;
  tr.Trace.completed <- 3;
  check (Alcotest.float 1e-9) "3 of 4" 0.75 (Trace.completion_rate tr)

let test_same_sequence () =
  let l = Lazy.force layout in
  let a = Trace.make ~id:0 ~layout:l ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  let b = Trace.make ~id:1 ~layout:l ~first:0 ~blocks:[| 1; 2 |] ~prob:0.9 in
  let c = Trace.make ~id:2 ~layout:l ~first:2 ~blocks:[| 1; 2 |] ~prob:1.0 in
  check Alcotest.bool "same first and blocks" true (Trace.same_sequence a b);
  check Alcotest.bool "different context differs" false (Trace.same_sequence a c)

let () =
  Alcotest.run "trace"
    [
      ( "trace values",
        [
          tc "make" `Quick test_trace_make;
          tc "completion rate" `Quick test_completion_rate;
          tc "same sequence" `Quick test_same_sequence;
        ] );
      ( "cache",
        [
          tc "install and lookup" `Quick test_install_and_lookup;
          tc "hash consing" `Quick test_hash_consing;
          tc "replacement" `Quick test_replacement;
          tc "live count and flush" `Quick test_live_count;
        ] );
    ]
