(* Deeper CFG analysis coverage: nested loops, multiple back edges, loop
   bodies, and the bottom-tested loop shape the trace machinery relies on
   (the test block is the header and its taken edge jumps backwards). *)

open Workloads.Dsl
module S = Bytecode.Structured
module Method_cfg = Cfg.Method_cfg
module Dominators = Cfg.Dominators
module Block = Cfg.Block

let tc = Alcotest.test_case
let check = Alcotest.check

let cfg_of body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Method_cfg.build (Bytecode.Program.entry_method program)

let nested_loops_body =
  [
    decl_i "s" (i 0);
    for_ "a" (i 0) (i 3)
      [
        for_ "b" (i 0) (i 3)
          [ set "s" (v "s" +! (v "a" *! v "b")) ];
      ];
    ret (v "s");
  ]

let test_nested_loops () =
  let cfg = cfg_of nested_loops_body in
  let dom = Dominators.compute cfg in
  let backs = Dominators.back_edges cfg dom in
  check Alcotest.int "two back edges" 2 (List.length backs);
  let headers = Dominators.loop_headers cfg dom in
  check Alcotest.int "two loop headers" 2 (List.length headers);
  (* the inner loop nests inside the outer: one natural loop strictly
     contains the other *)
  match List.map (fun back -> Dominators.natural_loop cfg ~back) backs with
  | [ l1; l2 ] ->
      let smaller, larger =
        if List.length l1 < List.length l2 then (l1, l2) else (l2, l1)
      in
      check Alcotest.bool "inner loop nested in outer" true
        (List.for_all (fun b -> List.mem b larger) smaller);
      check Alcotest.bool "strictly nested" true
        (List.length smaller < List.length larger)
  | _ -> Alcotest.fail "expected exactly two loops"

let test_loop_shape () =
  (* the structured compiler emits bottom-tested loops entered through a
     goto to the test block, so the test block is the dominator-theoretic
     header (it dominates the body), the latch falls through into it, and
     the *taken* conditional edge of the header jumps backwards to the
     body *)
  let cfg = cfg_of nested_loops_body in
  let dom = Dominators.compute cfg in
  List.iter
    (fun (latch, header) ->
      check Alcotest.bool "header dominates latch" true
        (Dominators.dominates dom ~dom:header ~sub:latch);
      let hb = cfg.Method_cfg.blocks.(header) in
      (match hb.Block.term with
      | Block.T_cond (_, taken_pc, _) ->
          check Alcotest.bool "taken edge of the header jumps backwards" true
            (taken_pc <= hb.Block.start_pc)
      | _ -> Alcotest.fail "loop header (test block) should be conditional");
      (* the latch reaches the header without branching away *)
      match cfg.Method_cfg.blocks.(latch).Block.term with
      | Block.T_fallthrough next ->
          check Alcotest.int "latch falls into the header" hb.Block.start_pc
            next
      | Block.T_cond _ | Block.T_goto _ -> () (* also legal shapes *)
      | _ -> Alcotest.fail "unexpected latch terminator")
    (Dominators.back_edges cfg dom)

let test_while_true_loop () =
  let cfg =
    cfg_of
      [
        decl_i "k" (i 0);
        while_ (i 1 =! i 1)
          [ incr_ "k"; when_ (v "k" >! i 5) [ break_ ] ];
        ret (v "k");
      ]
  in
  let dom = Dominators.compute cfg in
  check Alcotest.bool "loop found" true
    (List.length (Dominators.back_edges cfg dom) >= 1)

let test_unreachable_blocks_have_no_idom () =
  let cfg =
    cfg_of
      [
        if_ (i 1 =! i 1) [ ret (i 1) ] [ ret (i 2) ];
        (* everything after is dead: the implicit return tail *)
        ret (i 3);
      ]
  in
  let dom = Dominators.compute cfg in
  let unreachable =
    Array.to_list (Array.mapi (fun i _ -> i) cfg.Method_cfg.blocks)
    |> List.filter (fun b -> dom.Dominators.idom.(b) < 0)
  in
  check Alcotest.bool "dead code exists and is marked unreachable" true
    (List.length unreachable > 0)

let test_loop_back_candidate_classifier () =
  (* the backward-jumping conditional lives in the loop header (test
     block); the classifier flags exactly those blocks *)
  let cfg = cfg_of nested_loops_body in
  let dom = Dominators.compute cfg in
  List.iter
    (fun (_, header) ->
      check Alcotest.bool "header classified as loop-back candidate" true
        (Block.is_loop_back_candidate cfg.Method_cfg.blocks.(header)))
    (Dominators.back_edges cfg dom)

let test_rpo_starts_at_entry () =
  let cfg = cfg_of nested_loops_body in
  let dom = Dominators.compute cfg in
  check Alcotest.int "rpo head is the entry block" 0 dom.Dominators.rpo.(0);
  (* rpo contains each reachable block exactly once *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun b ->
      check Alcotest.bool "no duplicates in rpo" false (Hashtbl.mem seen b);
      Hashtbl.replace seen b ())
    dom.Dominators.rpo

let test_switch_successors_unique () =
  let cfg =
    cfg_of
      [
        decl_i "x" (i 2);
        switch (v "x")
          [ (0, [ set "x" (i 1) ]); (1, [ set "x" (i 2) ]); (2, [ set "x" (i 3) ]) ]
          [ set "x" (i 9) ];
        ret (v "x");
      ]
  in
  Array.iter
    (fun b ->
      let succs = Method_cfg.successors cfg b in
      check Alcotest.int "successor lists deduplicated"
        (List.length (List.sort_uniq compare succs))
        (List.length succs))
    cfg.Method_cfg.blocks

let () =
  Alcotest.run "loops_analysis"
    [
      ( "loops",
        [
          tc "nested loops" `Quick test_nested_loops;
          tc "bottom-tested loop shape" `Quick test_loop_shape;
          tc "while-true loop" `Quick test_while_true_loop;
          tc "loop-back classifier" `Quick test_loop_back_candidate_classifier;
        ] );
      ( "dominators",
        [
          tc "unreachable blocks" `Quick test_unreachable_blocks_have_no_idom;
          tc "rpo sanity" `Quick test_rpo_starts_at_entry;
        ] );
      ("switch", [ tc "successors unique" `Quick test_switch_successors_unique ]);
    ]
