module Stats = Tracegen.Stats

(* Machine-readable output: JSON for single runs, CSV for sweeps.  No JSON
   dependency is installed in this environment, so a minimal escaper-and-
   printer lives here; it only ever emits objects of numbers and strings. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_obj of (string * json) list
  | J_list of json list

let rec render_json buf = function
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_float f ->
      (* JSON has no NaN/inf; clamp to null-ish zero *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "0"
  | J_string s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, v) ->
          if k > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape name);
          Buffer.add_string buf "\":";
          render_json buf v)
        fields;
      Buffer.add_char buf '}'
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k v ->
          if k > 0 then Buffer.add_char buf ',';
          render_json buf v)
        items;
      Buffer.add_char buf ']'

let to_string j =
  let buf = Buffer.create 256 in
  render_json buf j;
  Buffer.contents buf

(* One run's statistics, raw counts plus the paper's derived values. *)
let stats_json ?(extra = []) (s : Stats.t) : json =
  J_obj
    (extra
    @ [
        ("instructions", J_int s.Stats.instructions);
        ("block_dispatches", J_int s.Stats.block_dispatches);
        ("trace_dispatches", J_int s.Stats.trace_dispatches);
        ("traces_entered", J_int s.Stats.traces_entered);
        ("traces_completed", J_int s.Stats.traces_completed);
        ("signals", J_int s.Stats.signals);
        ("traces_constructed", J_int s.Stats.traces_constructed);
        ("traces_replaced", J_int s.Stats.traces_replaced);
        ("traces_live", J_int s.Stats.traces_live);
        ("bcg_nodes", J_int s.Stats.bcg_nodes);
        ("bcg_edges", J_int s.Stats.bcg_edges);
        ("chained_entries", J_int s.Stats.chained_entries);
        ("avg_trace_length", J_float (Stats.avg_trace_length s));
        ("dynamic_trace_length", J_float (Stats.dynamic_trace_length s));
        ("coverage_completed", J_float (Stats.coverage_completed s));
        ("coverage_total", J_float (Stats.coverage_total s));
        ("completion_rate", J_float (Stats.completion_rate s));
        ("dispatches_per_signal", J_float (Stats.dispatches_per_signal s));
        ("trace_event_interval", J_float (Stats.trace_event_interval s));
        ("linking_rate", J_float (Stats.linking_rate s));
        ("dispatch_reduction", J_float (Stats.dispatch_reduction s));
        ("wall_seconds", J_float s.Stats.wall_seconds);
      ])

let run_json (r : Experiment.run) : json =
  let k = r.Experiment.key in
  stats_json
    ~extra:
      [
        ("workload", J_string k.Experiment.workload);
        ("size", J_int k.Experiment.size);
        ("delay", J_int k.Experiment.delay);
        ("threshold", J_float k.Experiment.threshold);
        ("checksum", J_int r.Experiment.result_value);
      ]
    r.Experiment.stats

(* The full threshold x delay grid as JSON lines (one run per line). *)
let sweep_jsonl ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.thresholds;
      List.iter
        (fun delay ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay;
                threshold = 0.97;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.delays)
    (Experiment.bench_workloads ());
  Buffer.contents buf

(* CSV of the threshold sweep: one row per (workload, threshold). *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let sweep_csv ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "workload,threshold,delay,instructions,avg_trace_length,\
     coverage_completed,coverage_total,completion_rate,\
     dispatches_per_signal,trace_event_interval,signals,traces_constructed\n";
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let r =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          let s = r.Experiment.stats in
          Buffer.add_string buf
            (Printf.sprintf "%s,%.2f,%d,%d,%.3f,%.4f,%.4f,%.5f,%.1f,%.1f,%d,%d\n"
               (csv_escape w.Workloads.Workload.name)
               threshold 64 s.Stats.instructions (Stats.avg_trace_length s)
               (Stats.coverage_completed s) (Stats.coverage_total s)
               (Stats.completion_rate s)
               (Stats.dispatches_per_signal s)
               (Stats.trace_event_interval s)
               s.Stats.signals s.Stats.traces_constructed))
        Experiment.thresholds)
    (Experiment.bench_workloads ());
  Buffer.contents buf
