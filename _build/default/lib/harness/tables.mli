(** Regeneration of the paper's Tables I-V, the Figure 1/2 dispatch-model
    comparison, and the section-5.3 baseline comparison.  Each function
    returns the rendered table; {!Experiment} caches runs so one threshold
    sweep feeds Tables I-IV.

    [scale] multiplies every workload's bench size (1.0 = paper-scale). *)

val table1 : ?scale:float -> unit -> string
(** Average executed trace length (blocks) vs. threshold. *)

val table2 : ?scale:float -> unit -> string
(** Instruction stream coverage by completed traces vs. threshold. *)

val table3 : ?scale:float -> unit -> string
(** Trace completion rate vs. threshold. *)

val table4 : ?scale:float -> unit -> string
(** Thousands of dispatches per state-change signal vs. threshold. *)

val table5 : ?scale:float -> unit -> string
(** Thousands of dispatches per trace event at 97% vs. start state
    delay. *)

val coverage_totals : ?scale:float -> unit -> string
(** Coverage including partially executed traces (the 90.7% number). *)

val figure_dispatch : ?scale:float -> unit -> string
(** Per-instruction vs. per-block vs. per-trace dispatch counts
    (Figures 1 and 2). *)

val baselines : ?scale:float -> unit -> string
(** BCG vs. NET (Dynamo) vs. frames (rePLay) on every workload. *)
