(** Ablations of the design choices called out in DESIGN.md: the decay
    mechanism under phase changes, and the trace-optimization headroom of
    the paper's §6 next step. *)

val phase_program : iters_per_phase:int -> Bytecode.Program.t
(** Four phases alternating the bias (63/64 vs 1/64) of one branch in a
    hot loop's interior, with shared code after the merge — the adversary
    for cache-stability experiments. *)

type decay_row = {
  label : string;
  signals : int;
  traces_replaced : int;
  completion : float;
  coverage_total : float;
  partial_exits : int;
}

val decay_run : decay_period:int -> iters_per_phase:int -> decay_row

val decay_ablation : ?iters_per_phase:int -> unit -> string
(** Rendered comparison of decay 256 / 4096 / disabled on
    {!phase_program}. *)

val optimizer_report : ?scale:float -> unit -> string
(** Completion-weighted straight-line optimization savings over every
    workload's trace cache. *)
