module Stats = Tracegen.Stats

(* Regeneration of the paper's Tables I-VII and the Figure 1/2 dispatch
   comparison.  Each function returns the rendered table as a string;
   [Experiment] caches runs so one sweep feeds Tables I-IV. *)

let workload_names () =
  List.map (fun w -> w.Workloads.Workload.name) (Experiment.bench_workloads ())

(* generic renderer: left header column + one column per workload + average *)
let render ~title ~row_label ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let headers = row_label :: (workload_names () @ [ "average" ]) in
  let cells =
    List.map
      (fun (label, values) ->
        let avg =
          if values = [] then 0.0
          else List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
        in
        label :: List.map (fun x -> Printf.sprintf "%.1f" x) (values @ [ avg ]))
      rows
  in
  let table = headers :: cells in
  let n_cols = List.length headers in
  let widths = Array.make n_cols 0 in
  List.iter
    (List.iteri (fun c s -> widths.(c) <- max widths.(c) (String.length s)))
    table;
  List.iter
    (fun row ->
      List.iteri
        (fun c s ->
          Buffer.add_string buf (Printf.sprintf "%*s" (widths.(c) + 2) s))
        row;
      Buffer.add_char buf '\n')
    table;
  Buffer.contents buf

let pct x = 100.0 *. x

(* threshold sweep at delay 64 over the bench sizes *)
let sweep_runs ~scale =
  List.concat_map
    (fun w ->
      List.map
        (fun threshold ->
          let key =
            {
              Experiment.workload = w.Workloads.Workload.name;
              size = Experiment.size_for ~scale w;
              delay = 64;
              threshold;
              build_traces = true;
            }
          in
          (w.Workloads.Workload.name, threshold, Experiment.execute key))
        Experiment.thresholds)
    (Experiment.bench_workloads ())

let threshold_rows ~scale ~(value : Stats.t -> float) =
  let runs = sweep_runs ~scale in
  List.map
    (fun threshold ->
      let label = Printf.sprintf "%.0f%%" (100.0 *. threshold) in
      let values =
        List.filter_map
          (fun (_, th, run) ->
            if th = threshold then Some (value run.Experiment.stats) else None)
          runs
      in
      (label, values))
    Experiment.thresholds

let table1 ?(scale = 1.0) () =
  render ~title:"Table I: Average executed trace length (blocks) vs. threshold"
    ~row_label:"threshold"
    ~rows:(threshold_rows ~scale ~value:Stats.avg_trace_length)

let table2 ?(scale = 1.0) () =
  render
    ~title:
      "Table II: Instruction stream coverage (%, completed traces) vs. \
       threshold"
    ~row_label:"threshold"
    ~rows:
      (threshold_rows ~scale ~value:(fun s -> pct (Stats.coverage_completed s)))

let table3 ?(scale = 1.0) () =
  render ~title:"Table III: Trace completion rate (%) vs. threshold"
    ~row_label:"threshold"
    ~rows:(threshold_rows ~scale ~value:(fun s -> pct (Stats.completion_rate s)))

let table4 ?(scale = 1.0) () =
  render
    ~title:
      "Table IV: Thousands of dispatches per state-change signal vs. \
       threshold"
    ~row_label:"threshold"
    ~rows:
      (threshold_rows ~scale ~value:(fun s ->
           Stats.dispatches_per_signal s /. 1000.0))

let table5 ?(scale = 1.0) () =
  let rows =
    List.map
      (fun delay ->
        let values =
          List.map
            (fun w ->
              let key =
                {
                  Experiment.workload = w.Workloads.Workload.name;
                  size = Experiment.size_for ~scale w;
                  delay;
                  threshold = 0.97;
                  build_traces = true;
                }
              in
              let run = Experiment.execute key in
              Stats.trace_event_interval run.Experiment.stats /. 1000.0)
            (Experiment.bench_workloads ())
        in
        (string_of_int delay, values))
      Experiment.delays
  in
  render
    ~title:
      "Table V: Thousands of dispatches per trace event (traces built + \
       signals) at 97% threshold vs. start state delay"
    ~row_label:"delay" ~rows

(* coverage including partially executed traces (the 90.7% number) *)
let coverage_totals ?(scale = 1.0) () =
  render
    ~title:
      "Coverage including partially executed traces (%, paper section 5.3)"
    ~row_label:"threshold"
    ~rows:(threshold_rows ~scale ~value:(fun s -> pct (Stats.coverage_total s)))

(* Figure 1 / Figure 2 companion: dispatch counts per model *)
let figure_dispatch ?(scale = 1.0) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Dispatch models (Figures 1 and 2): dispatches needed to execute each \
     program\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %14s %14s %14s %10s\n" "benchmark"
       "per-instruction" "per-block" "per-trace" "reduction");
  List.iter
    (fun w ->
      let key =
        Experiment.default_key ~workload:w.Workloads.Workload.name
          ~size:(Experiment.size_for ~scale w)
      in
      let run = Experiment.execute key in
      let s = run.Experiment.stats in
      let trace_model = Stats.total_dispatches s in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %14d %14d %14d %9.1fx\n"
           w.Workloads.Workload.name s.Stats.instructions
           (s.Stats.block_dispatches + s.Stats.completed_blocks
          + s.Stats.partial_blocks)
           trace_model
           (Stats.dispatch_reduction s)))
    (Experiment.bench_workloads ());
  Buffer.contents buf

(* Baseline comparison (paper section 5.3 compares against rePLay's
   coverage band). *)
let baselines ?(scale = 1.0) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Trace selection comparison: BCG (this paper) vs. NET (Dynamo) vs. \
     frame construction (rePLay)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %-8s %10s %12s %12s %10s\n" "benchmark" "system"
       "len(blk)" "coverage%" "completion%" "built");
  List.iter
    (fun w ->
      let name = w.Workloads.Workload.name in
      let size = Experiment.size_for ~scale w in
      let key = Experiment.default_key ~workload:name ~size in
      let run = Experiment.execute key in
      let s = run.Experiment.stats in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %-8s %10.1f %12.1f %12.2f %10d\n" name "bcg"
           (Stats.avg_trace_length s)
           (pct (Stats.coverage_completed s))
           (pct (Stats.completion_rate s))
           s.Stats.traces_constructed);
      let layout =
        Experiment.layout_for
          (Option.get (Workloads.Registry.find name))
          ~size
      in
      let net = Baselines.Net.run layout in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %-8s %10.1f %12.1f %12.2f %10d\n" "" "net"
           (Baselines.Summary.avg_trace_length net)
           (pct (Baselines.Summary.coverage_completed net))
           (pct (Baselines.Summary.completion_rate net))
           net.Baselines.Summary.traces_built);
      let rp = Baselines.Replay_frames.run layout in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %-8s %10.1f %12.1f %12.2f %10d\n" "" "replay"
           (Baselines.Summary.avg_trace_length rp)
           (pct (Baselines.Summary.coverage_completed rp))
           (pct (Baselines.Summary.completion_rate rp))
           rp.Baselines.Summary.traces_built))
    (Experiment.bench_workloads ());
  Buffer.contents buf
