(** One experimental run: a workload at a size under a configuration.

    Layouts are cached per (workload, size) and runs per full key, because
    one run feeds several tables. *)

type key = {
  workload : string;
  size : int;
  delay : int;
  threshold : float;
  build_traces : bool;
}

type run = {
  key : key;
  stats : Tracegen.Stats.t;
  result_value : int;  (** the program's checksum, for cross-checking *)
}

val layout_for : Workloads.Workload.t -> size:int -> Cfg.Layout.t
(** Build (verified) and cache the block layout for a workload size. *)

val execute : key -> run
(** Run (or fetch the cached run for) one experiment.
    @raise Invalid_argument on an unknown workload name.
    @raise Failure if the workload traps. *)

val default_key : workload:string -> size:int -> key
(** Threshold 0.97, delay 64, traces on. *)

val thresholds : float list
(** The paper's grid: 1.00, 0.99, 0.98, 0.97, 0.95. *)

val delays : int list
(** The paper's grid: 1, 64, 4096. *)

val bench_workloads : unit -> Workloads.Workload.t list

val size_for : ?scale:float -> Workloads.Workload.t -> int
(** The workload's bench size scaled by [scale], at least 1. *)
