(** Wall-clock profiler overhead (paper Tables VI and VII).

    Table VI methodology: time the interpreter with no observer, then
    with the profiler hook on every block dispatch (trace building
    disabled), and report overhead per million dispatches.

    Table VII methodology: under trace dispatch the hook runs once per
    dispatch (block or trace), so multiplying the measured per-dispatch
    cost by the trace-model dispatch count predicts the full system's
    profiling overhead, as the paper does. *)

type row = {
  name : string;
  plain_sec : float;
  dispatches : int;  (** hook executions in the profiled configuration *)
  profiled_sec : float;
  per_million : float;  (** overhead seconds per million dispatches *)
}

val measure :
  ?scale:float -> ?repeats:int -> Workloads.Workload.t -> row
(** Best-of-[repeats] timing of one workload, both configurations. *)

val table6 : ?scale:float -> ?repeats:int -> unit -> string * row list

val table7 : ?scale:float -> ?repeats:int -> ?rows:row list -> unit -> string
(** Pass [rows] from a prior {!table6} to avoid re-measuring (and to keep
    the two tables consistent within one report). *)
