lib/harness/export.mli: Experiment Tracegen
