lib/harness/footprint.mli: Workloads
