lib/harness/experiment.ml: Bytecode Cfg Hashtbl Printf Tracegen Vm Workloads
