lib/harness/footprint.ml: Array Buffer Bytecode Cfg Experiment Hashtbl List Printf Tracegen Workloads
