lib/harness/tables.ml: Array Baselines Buffer Experiment List Option Printf String Tracegen Workloads
