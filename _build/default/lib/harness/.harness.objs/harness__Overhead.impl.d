lib/harness/overhead.ml: Buffer Experiment List Option Printf Tracegen Unix Vm Workloads
