lib/harness/overhead.mli: Workloads
