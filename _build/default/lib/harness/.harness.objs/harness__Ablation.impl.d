lib/harness/ablation.ml: Array Buffer Bytecode Cfg Experiment List Option Printf Tracegen Workloads
