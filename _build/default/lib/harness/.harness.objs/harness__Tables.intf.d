lib/harness/tables.mli:
