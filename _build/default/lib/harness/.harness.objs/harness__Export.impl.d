lib/harness/export.ml: Buffer Char Experiment Float List Printf String Tracegen Workloads
