lib/harness/ablation.mli: Bytecode
