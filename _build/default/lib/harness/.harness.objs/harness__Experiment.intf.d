lib/harness/experiment.mli: Cfg Tracegen Workloads
