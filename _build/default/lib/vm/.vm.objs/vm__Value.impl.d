lib/vm/value.ml: Array Bytecode Format Printf
