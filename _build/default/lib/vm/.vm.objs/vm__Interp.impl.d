lib/vm/interp.ml: Array Bytecode Cfg Format List Printf Value
