lib/vm/value.mli: Bytecode Format
