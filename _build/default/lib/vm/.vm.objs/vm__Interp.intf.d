lib/vm/interp.mli: Cfg Value
