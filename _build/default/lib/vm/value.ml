module Instr = Bytecode.Instr

(* Runtime values.  Objects carry their class id and a flat field array laid
   out per the class's field layout; arrays carry their element kind so the
   typed array instructions can be checked dynamically. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vnull
  | Vobj of obj
  | Varr of arr

and obj = {
  cls : int;
  fields : t array;
}

and arr = {
  kind : Instr.array_kind;
  cells : t array;
}

let default_of_field_kind = function
  | Bytecode.Klass.Kint -> Vint 0
  | Bytecode.Klass.Kfloat -> Vfloat 0.0
  | Bytecode.Klass.Kref -> Vnull

let default_of_array_kind = function
  | Instr.Int_array -> Vint 0
  | Instr.Float_array -> Vfloat 0.0
  | Instr.Ref_array -> Vnull

let rec to_string = function
  | Vint n -> string_of_int n
  | Vfloat f -> string_of_float f
  | Vnull -> "null"
  | Vobj o -> Printf.sprintf "obj#%d(%d fields)" o.cls (Array.length o.fields)
  | Varr a ->
      Printf.sprintf "%s[%d]"
        (Instr.array_kind_to_string a.kind)
        (Array.length a.cells)

and pp ppf v = Format.pp_print_string ppf (to_string v)
