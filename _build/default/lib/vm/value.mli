(** Runtime values of the VM.

    Objects carry their class id and a flat field array laid out per the
    class's field layout; arrays carry their element kind so the typed
    array instructions can be checked dynamically. *)

type t =
  | Vint of int
  | Vfloat of float
  | Vnull
  | Vobj of obj
  | Varr of arr

and obj = {
  cls : int;
  fields : t array;
}

and arr = {
  kind : Bytecode.Instr.array_kind;
  cells : t array;
}

val default_of_field_kind : Bytecode.Klass.field_kind -> t
(** The value a freshly allocated object's field starts with. *)

val default_of_array_kind : Bytecode.Instr.array_kind -> t
(** The value a freshly allocated array's cells start with. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
