module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

(* Basic blocks as the direct-threaded-inlining interpreter sees them: a
   maximal straight-line instruction sequence ending at a control transfer.
   Calls end blocks too — the inlining interpreter must dispatch into the
   callee — so the successor set of a call block is the return continuation
   (recorded as [Sk_call]). *)

type terminator =
  | T_cond of Instr.cond * int * int (* taken pc, fallthrough pc *)
  | T_goto of int
  | T_switch of { low : int; targets : int array; default : int }
  | T_call of { next_pc : int; virtual_ : bool }
  | T_return
  | T_throw
  | T_fallthrough of int (* block ends because the next pc is a leader *)

type t = {
  method_id : int;
  index : int; (* block index within the method *)
  start_pc : int;
  len : int; (* number of instructions *)
  term : terminator;
}

let end_pc b = b.start_pc + b.len (* exclusive *)

let last_pc b = b.start_pc + b.len - 1

let is_loop_back_candidate b =
  (* a branch whose target precedes it is the usual Java loop back edge *)
  match b.term with
  | T_cond (_, taken, _) -> taken <= b.start_pc
  | T_goto t -> t <= b.start_pc
  | T_switch _ | T_call _ | T_return | T_throw | T_fallthrough _ -> false

let terminator_to_string = function
  | T_cond (c, t, f) ->
      Printf.sprintf "cond(%s) taken=%d fall=%d" (Instr.cond_to_string c) t f
  | T_goto t -> Printf.sprintf "goto %d" t
  | T_switch { targets; default; _ } ->
      Printf.sprintf "switch(%d targets, default=%d)" (Array.length targets)
        default
  | T_call { next_pc; virtual_ } ->
      Printf.sprintf "%s-call ret=%d" (if virtual_ then "v" else "s") next_pc
  | T_return -> "return"
  | T_throw -> "throw"
  | T_fallthrough t -> Printf.sprintf "fallthrough %d" t

let pp ppf b =
  Format.fprintf ppf "B%d.%d [%d..%d) %s" b.method_id b.index b.start_pc
    (end_pc b) (terminator_to_string b.term)
