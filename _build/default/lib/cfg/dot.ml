module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

(* Graphviz export of a method CFG, for debugging and documentation. *)

let method_to_dot (cfg : Method_cfg.t) : string =
  let buf = Buffer.create 1024 in
  let name = cfg.Method_cfg.method_.Mthd.name in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iteri
    (fun i b ->
      let code = cfg.Method_cfg.method_.Mthd.code in
      let lines = ref [] in
      for pc = Block.end_pc b - 1 downto b.Block.start_pc do
        lines := Printf.sprintf "%d: %s" pc (Instr.to_string code.(pc)) :: !lines
      done;
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"B%d\\l%s\\l\"];\n" i i
           (String.concat "\\l" !lines)))
    cfg.Method_cfg.blocks;
  Array.iteri
    (fun i b ->
      List.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  b%d -> b%d;\n" i s))
        (Method_cfg.successors cfg b))
    cfg.Method_cfg.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
