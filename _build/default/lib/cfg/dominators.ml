module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

(* Iterative dominator computation (Cooper-Harvey-Kennedy) over a method
   CFG, plus back-edge and natural-loop discovery.  Used by analyses, the
   dot exporter and the NET baseline's notion of loop headers. *)

type t = {
  idom : int array; (* immediate dominator; entry maps to itself; -1 = unreachable *)
  rpo : int array; (* reverse postorder sequence of reachable blocks *)
}

let compute (cfg : Method_cfg.t) : t =
  let n = Method_cfg.n_blocks cfg in
  let succs = Array.init n (fun i -> Method_cfg.successors cfg cfg.Method_cfg.blocks.(i)) in
  (* reverse postorder from block 0 *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs succs.(i);
      order := i :: !order
    end
  in
  dfs 0;
  let rpo = Array.of_list !order in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun k b -> rpo_index.(b) <- k) rpo;
  let preds = Method_cfg.predecessors cfg in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let processed =
            List.filter (fun p -> idom.(p) >= 0) preds.(b)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo }

let dominates t ~dom ~sub =
  if t.idom.(sub) < 0 || t.idom.(dom) < 0 then false
  else
    let rec walk b = b = dom || (b <> t.idom.(b) && walk t.idom.(b)) in
    walk sub

(* Back edges: edges b -> h where h dominates b. *)
let back_edges (cfg : Method_cfg.t) (t : t) : (int * int) list =
  let acc = ref [] in
  Array.iteri
    (fun b blk ->
      if t.idom.(b) >= 0 then
        List.iter
          (fun h ->
            if dominates t ~dom:h ~sub:b then acc := (b, h) :: !acc)
          (Method_cfg.successors cfg blk))
    cfg.Method_cfg.blocks;
  List.rev !acc

(* Natural loop of a back edge (b, h): all blocks that can reach b without
   passing through h, plus h. *)
let natural_loop (cfg : Method_cfg.t) ~(back : int * int) : int list =
  let b, h = back in
  let preds = Method_cfg.predecessors cfg in
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop h ();
  let rec add x =
    if not (Hashtbl.mem in_loop x) then begin
      Hashtbl.replace in_loop x ();
      List.iter add preds.(x)
    end
  in
  add b;
  Hashtbl.fold (fun k () acc -> k :: acc) in_loop [] |> List.sort compare

let loop_headers (cfg : Method_cfg.t) (t : t) : int list =
  back_edges cfg t |> List.map snd |> List.sort_uniq compare
