module Mthd = Bytecode.Mthd

(** Basic-block discovery for one method.

    Leaders are: pc 0, every branch/switch target, and the pc following
    any block-ending instruction (branch, switch, call, return).  Blocks
    cover the instruction array exactly, in order; unreachable blocks are
    kept (the VM never enters them, so the profiler never sees them). *)

type t = {
  method_ : Mthd.t;
  blocks : Block.t array;
  pc_to_block : int array;  (** pc -> block index *)
}

val build : Mthd.t -> t
(** @raise Invalid_argument on out-of-range branch targets or control
    falling off the end of the code. *)

val n_blocks : t -> int

val block_at_pc : t -> int -> Block.t

val block_index_at_pc : t -> int -> int

val successors : t -> Block.t -> int list
(** Intraprocedural successor block indices.  Calls fall through to their
    return continuation; returns have none. *)

val predecessors : t -> int list array
(** Predecessor lists for every block, computed on demand. *)

val pp : Format.formatter -> t -> unit
