(** Iterative dominator computation (Cooper–Harvey–Kennedy) over a method
    CFG, plus back-edge and natural-loop discovery. *)

type t = {
  idom : int array;
      (** immediate dominator; the entry maps to itself; -1 marks
          unreachable blocks *)
  rpo : int array;  (** reverse postorder of the reachable blocks *)
}

val compute : Method_cfg.t -> t

val dominates : t -> dom:int -> sub:int -> bool

val back_edges : Method_cfg.t -> t -> (int * int) list
(** Edges [(b, h)] where [h] dominates [b]. *)

val natural_loop : Method_cfg.t -> back:int * int -> int list
(** The natural loop of a back edge: every block that reaches the latch
    without passing through the header, plus the header.  Sorted. *)

val loop_headers : Method_cfg.t -> t -> int list
