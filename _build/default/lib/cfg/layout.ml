module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

(* Program-wide block numbering.  Every basic block of every method gets a
   dense global id ("gid"); the profiler, the trace cache and all statistics
   speak gids.  The layout also records each block's static instruction
   count, needed for instruction-stream-coverage accounting. *)

type gid = int

type t = {
  program : Program.t;
  cfgs : Method_cfg.t array; (* indexed by method id *)
  offsets : int array; (* method id -> first gid of its blocks *)
  n_blocks : int;
  block_of_gid : Block.t array;
  instr_len : int array; (* gid -> static instruction count *)
}

let build (program : Program.t) : t =
  let cfgs = Array.map Method_cfg.build program.Program.methods in
  let n_methods = Array.length cfgs in
  let offsets = Array.make n_methods 0 in
  let total = ref 0 in
  Array.iteri
    (fun i cfg ->
      offsets.(i) <- !total;
      total := !total + Method_cfg.n_blocks cfg)
    cfgs;
  let n_blocks = !total in
  let block_of_gid = Array.make n_blocks cfgs.(0).Method_cfg.blocks.(0) in
  let instr_len = Array.make n_blocks 0 in
  Array.iteri
    (fun mid cfg ->
      Array.iteri
        (fun i b ->
          let g = offsets.(mid) + i in
          block_of_gid.(g) <- b;
          instr_len.(g) <- b.Block.len)
        cfg.Method_cfg.blocks)
    cfgs;
  { program; cfgs; offsets; n_blocks; block_of_gid; instr_len }

let gid t ~method_id ~block_index = t.offsets.(method_id) + block_index

let gid_at_pc t ~method_id ~pc =
  t.offsets.(method_id)
  + Method_cfg.block_index_at_pc t.cfgs.(method_id) pc

let block t (g : gid) = t.block_of_gid.(g)

let method_of_gid t (g : gid) =
  t.program.Program.methods.((t.block_of_gid.(g)).Block.method_id)

let cfg_of_method t ~method_id = t.cfgs.(method_id)

let block_len t (g : gid) = t.instr_len.(g)

let entry_gid t =
  gid t ~method_id:t.program.Program.entry ~block_index:0

(* A readable block name: "method:Bk@pc". *)
let describe t (g : gid) =
  let b = block t g in
  Printf.sprintf "%s:B%d@%d" (method_of_gid t g).Mthd.name b.Block.index
    b.Block.start_pc

let pp ppf t =
  Format.fprintf ppf "layout: %d methods, %d blocks total"
    (Array.length t.cfgs) t.n_blocks
