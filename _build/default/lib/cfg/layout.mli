module Program = Bytecode.Program
module Mthd = Bytecode.Mthd

(** Program-wide block numbering.

    Every basic block of every method gets a dense global id ("gid"); the
    profiler, the trace cache and all statistics speak gids.  The layout
    also records each block's static instruction count, needed for
    instruction-stream-coverage accounting. *)

type gid = int

type t = {
  program : Program.t;
  cfgs : Method_cfg.t array;  (** indexed by method id *)
  offsets : int array;  (** method id -> first gid of its blocks *)
  n_blocks : int;
  block_of_gid : Block.t array;
  instr_len : int array;  (** gid -> static instruction count *)
}

val build : Program.t -> t
(** Build every method's CFG and assign global ids.
    @raise Invalid_argument on malformed control flow (wild branch
    targets, code falling off a method's end). *)

val gid : t -> method_id:int -> block_index:int -> gid

val gid_at_pc : t -> method_id:int -> pc:int -> gid
(** The gid of the block containing [pc]. *)

val block : t -> gid -> Block.t

val method_of_gid : t -> gid -> Mthd.t

val cfg_of_method : t -> method_id:int -> Method_cfg.t

val block_len : t -> gid -> int

val entry_gid : t -> gid
(** The entry method's first block. *)

val describe : t -> gid -> string
(** A readable block name: ["method:Bk@pc"]. *)

val pp : Format.formatter -> t -> unit
