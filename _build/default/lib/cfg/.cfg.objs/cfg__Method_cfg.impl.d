lib/cfg/method_cfg.ml: Array Block Bytecode Format List Printf String
