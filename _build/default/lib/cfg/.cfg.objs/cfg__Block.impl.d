lib/cfg/block.ml: Array Bytecode Format Printf
