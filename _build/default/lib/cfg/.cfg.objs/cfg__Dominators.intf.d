lib/cfg/dominators.mli: Method_cfg
