lib/cfg/layout.mli: Block Bytecode Format Method_cfg
