lib/cfg/dominators.ml: Array Bytecode Hashtbl List Method_cfg
