lib/cfg/dot.ml: Array Block Buffer Bytecode List Method_cfg Printf String
