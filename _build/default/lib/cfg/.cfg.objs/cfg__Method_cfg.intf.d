lib/cfg/method_cfg.mli: Block Bytecode Format
