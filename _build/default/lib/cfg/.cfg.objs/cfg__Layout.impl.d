lib/cfg/layout.ml: Array Block Bytecode Format Method_cfg Printf
