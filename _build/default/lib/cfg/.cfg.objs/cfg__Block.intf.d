lib/cfg/block.mli: Bytecode Format
