module Instr = Bytecode.Instr

(** Basic blocks as the direct-threaded-inlining interpreter sees them: a
    maximal straight-line instruction sequence ending at a control
    transfer.  Calls end blocks too — the inlining interpreter must
    dispatch into the callee — so a call block's intraprocedural successor
    is its return continuation. *)

type terminator =
  | T_cond of Instr.cond * int * int  (** taken pc, fallthrough pc *)
  | T_goto of int
  | T_switch of { low : int; targets : int array; default : int }
  | T_call of { next_pc : int; virtual_ : bool }
  | T_return
  | T_throw
      (** control leaves through the exception machinery; any covering
          handler is an exceptional (dynamic) edge, not a CFG successor *)
  | T_fallthrough of int
      (** the block ends only because the next pc is a leader *)

type t = {
  method_id : int;
  index : int;  (** block index within the method *)
  start_pc : int;
  len : int;  (** number of instructions *)
  term : terminator;
}

val end_pc : t -> int
(** One past the last instruction. *)

val last_pc : t -> int

val is_loop_back_candidate : t -> bool
(** A branch whose target does not lie after the block — the usual shape
    of a compiled loop back edge. *)

val terminator_to_string : terminator -> string

val pp : Format.formatter -> t -> unit
