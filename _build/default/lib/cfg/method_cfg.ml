module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program

(* Basic-block discovery for one method.

   Leaders are: pc 0, every branch/switch target, and the pc following any
   block-ending instruction (branch, switch, call, return).  Blocks cover
   the instruction array exactly; unreachable blocks are kept (the VM never
   enters them, and the profiler never sees them). *)

type t = {
  method_ : Mthd.t;
  blocks : Block.t array;
  pc_to_block : int array; (* pc -> block index *)
}

let build (m : Mthd.t) : t =
  let code = m.Mthd.code in
  let n = Array.length code in
  if n = 0 then invalid_arg "Method_cfg.build: empty method";
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc ins ->
      List.iter
        (fun t ->
          if t < 0 || t >= n then
            invalid_arg
              (Printf.sprintf "Method_cfg.build(%s): branch target %d out of range"
                 m.Mthd.name t);
          leader.(t) <- true)
        (Instr.branch_targets ins);
      if Instr.ends_block ins && pc + 1 < n then leader.(pc + 1) <- true)
    code;
  (* exception handler entries are reached by dynamic edges *)
  Array.iter
    (fun h ->
      if h.Mthd.h_target >= 0 && h.Mthd.h_target < n then
        leader.(h.Mthd.h_target) <- true)
    m.Mthd.handlers;
  let starts =
    Array.to_list (Array.mapi (fun pc is_l -> (pc, is_l)) leader)
    |> List.filter_map (fun (pc, is_l) -> if is_l then Some pc else None)
    |> Array.of_list
  in
  let n_blocks = Array.length starts in
  let block_end i = if i + 1 < n_blocks then starts.(i + 1) else n in
  let terminator i =
    let last = block_end i - 1 in
    let next = block_end i in
    match code.(last) with
    | Instr.If_icmp (c, t) -> Block.T_cond (c, t, next)
    | Instr.Ifz (c, t) -> Block.T_cond (c, t, next)
    | Instr.Goto t -> Block.T_goto t
    | Instr.Tableswitch { low; targets; default } ->
        Block.T_switch { low; targets; default }
    | Instr.Invokestatic _ ->
        Block.T_call { next_pc = next; virtual_ = false }
    | Instr.Invokevirtual _ ->
        Block.T_call { next_pc = next; virtual_ = true }
    | Instr.Return | Instr.Ireturn | Instr.Freturn | Instr.Areturn ->
        Block.T_return
    | Instr.Athrow -> Block.T_throw
    | _ ->
        if next >= n then
          invalid_arg
            (Printf.sprintf
               "Method_cfg.build(%s): control falls off the end of the code"
               m.Mthd.name)
        else Block.T_fallthrough next
  in
  let blocks =
    Array.init n_blocks (fun i ->
        {
          Block.method_id = m.Mthd.id;
          index = i;
          start_pc = starts.(i);
          len = block_end i - starts.(i);
          term = terminator i;
        })
  in
  let pc_to_block = Array.make n 0 in
  Array.iteri
    (fun i b ->
      for pc = b.Block.start_pc to Block.end_pc b - 1 do
        pc_to_block.(pc) <- i
      done)
    blocks;
  { method_ = m; blocks; pc_to_block }

let n_blocks t = Array.length t.blocks

let block_at_pc t pc = t.blocks.(t.pc_to_block.(pc))

let block_index_at_pc t pc = t.pc_to_block.(pc)

(* Intraprocedural successor block indices (calls fall through to their
   return continuation; returns have no intraprocedural successor). *)
let successors t (b : Block.t) : int list =
  let idx pc = t.pc_to_block.(pc) in
  match b.Block.term with
  | Block.T_cond (_, taken, fall) ->
      if taken = fall then [ idx taken ] else [ idx taken; idx fall ]
  | Block.T_goto target -> [ idx target ]
  | Block.T_switch { targets; default; _ } ->
      let all = default :: Array.to_list targets in
      List.sort_uniq compare (List.map idx all)
  | Block.T_call { next_pc; _ } ->
      if next_pc < Array.length t.pc_to_block then [ idx next_pc ] else []
  | Block.T_return -> []
  | Block.T_throw -> []
  | Block.T_fallthrough next -> [ idx next ]

(* Predecessor lists, computed on demand. *)
let predecessors t : int list array =
  let preds = Array.make (n_blocks t) [] in
  Array.iteri
    (fun i b ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (successors t b))
    t.blocks;
  preds

let pp ppf t =
  Format.fprintf ppf "cfg of %s: %d blocks@\n" t.method_.Mthd.name
    (n_blocks t);
  Array.iter
    (fun b ->
      Format.fprintf ppf "  %a -> [%s]@\n" Block.pp b
        (String.concat ","
           (List.map string_of_int (successors t b))))
    t.blocks
