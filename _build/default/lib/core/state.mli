(** Branch-correlation states (paper §4.1.1), in descending degree of
    correlation. *)

type t =
  | Unique
      (** Exactly one successor is live: every surviving observation took
          the same branch.  Correlation is exactly 1. *)
  | Strongly_correlated
      (** The best successor's correlation is at or above the threshold:
          trace construction may follow it. *)
  | Weakly_correlated
      (** No successor is predictable enough to follow. *)
  | Newly_created
      (** Still inside the start-state delay: possibly rare code, not yet
          eligible for traces. *)

val to_string : t -> string

val is_hot : t -> bool
(** [true] once the branch has left the start state. *)

val is_followable : t -> bool
(** [true] when trace construction may extend a trace through this branch
    ({!Unique} or {!Strongly_correlated}). *)

val pp : Format.formatter -> t -> unit
