(* Branch-correlation states (paper §4.1.1).  In descending degree of
   correlation: unique, strongly correlated, weakly correlated, newly
   created. *)

type t =
  | Unique (* exactly one successor has ever been observed (or survives decay) *)
  | Strongly_correlated (* best successor correlation >= threshold *)
  | Weakly_correlated (* best successor correlation < threshold *)
  | Newly_created (* still inside the start-state delay *)

let to_string = function
  | Unique -> "unique"
  | Strongly_correlated -> "strong"
  | Weakly_correlated -> "weak"
  | Newly_created -> "new"

(* A branch is "hot" once it has left the start state. *)
let is_hot = function
  | Unique | Strongly_correlated | Weakly_correlated -> true
  | Newly_created -> false

(* Trace construction may follow a branch only when its behaviour is
   predictable enough. *)
let is_followable = function
  | Unique | Strongly_correlated -> true
  | Weakly_correlated | Newly_created -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)
