(** Straight-line optimization of traces — the paper's stated next step
    (§6: "measure what further improvement can be achieved by applying
    optimizations to the traces").

    A trace has a single entry and is expected to execute to completion,
    so its concatenated block bodies form one straight-line region.  This
    pass runs the classic local optimizations that the completion
    assumption makes speculative-but-profitable (paper §3.7): constant
    folding and algebraic simplification, store/load forwarding through
    locals, dead-store elimination (sound under the completion assumption;
    a real system would compensate on side exits), push/pop cancellation,
    and removal of intra-trace dispatch glue (gotos, nops).  Calls and
    returns are optimization barriers. *)

type result = {
  original : Bytecode.Instr.t array;
      (** the trace's blocks, concatenated *)
  optimized : Bytecode.Instr.t array;
  folded : int;  (** instructions removed by folding/identities/glue *)
  forwarded : int;  (** loads satisfied from a prior store's value *)
  dead_stores : int;
}

val trace_code : Cfg.Layout.t -> Trace.t -> Bytecode.Instr.t array
(** The trace's instruction sequence. *)

val optimize_code : Bytecode.Instr.t array -> result
(** Optimize any straight-line sequence (exposed for testing). *)

val optimize : Cfg.Layout.t -> Trace.t -> result

val saved : result -> int
(** Instructions removed. *)

val savings_ratio : result -> float
(** Fraction of the trace's instructions removed, in [0, 1]. *)
