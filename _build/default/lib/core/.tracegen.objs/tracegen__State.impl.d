lib/core/state.ml: Format
