lib/core/trace.mli: Cfg Format
