lib/core/state.mli: Format
