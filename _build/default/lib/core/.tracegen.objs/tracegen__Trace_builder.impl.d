lib/core/trace_builder.ml: Array Bcg Cfg Config Hashtbl List State Trace_cache
