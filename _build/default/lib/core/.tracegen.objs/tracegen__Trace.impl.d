lib/core/trace.ml: Array Cfg Format Printf String
