lib/core/profiler.ml: Bcg Cfg Config
