lib/core/engine.mli: Cfg Config Profiler Stats Trace Trace_cache Vm
