lib/core/stats.ml: Format
