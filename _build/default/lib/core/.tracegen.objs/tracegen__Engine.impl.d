lib/core/engine.ml: Array Bcg Cfg Config Profiler Stats Trace Trace_builder Trace_cache Unix Vm
