lib/core/trace_cache.ml: Array Buffer Cfg Hashtbl Trace
