lib/core/bcg.ml: Cfg Config Format Hashtbl List Printf State String
