lib/core/bcg.mli: Cfg Config Format Hashtbl State
