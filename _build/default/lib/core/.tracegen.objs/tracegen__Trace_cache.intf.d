lib/core/trace_cache.mli: Cfg Trace
