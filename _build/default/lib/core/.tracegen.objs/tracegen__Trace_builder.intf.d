lib/core/trace_builder.mli: Bcg Config Trace_cache
