lib/core/trace_optimizer.ml: Array Bytecode Cfg Hashtbl List Trace
