lib/core/trace_optimizer.mli: Bytecode Cfg Trace
