lib/core/profiler.mli: Bcg Cfg Config
