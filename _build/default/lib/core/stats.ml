(* The five dependent values of the evaluation (paper §5.2), plus the raw
   counts they derive from. *)

type t = {
  instructions : int; (* bytecodes executed (= Figure-1 dispatch count) *)
  block_dispatches : int; (* dispatches outside traces (profiled) *)
  trace_dispatches : int; (* trace entries (one hook each) *)
  traces_entered : int;
  traces_completed : int;
  completed_blocks : int; (* sum over completions of the trace's block count *)
  partial_blocks : int; (* blocks executed by partially executed traces *)
  completed_instrs : int; (* instructions executed by completed traces *)
  partial_instrs : int; (* instructions executed by partially executed traces *)
  signals : int;
  traces_constructed : int;
  traces_replaced : int;
  traces_live : int;
  (* static view over distinct traces that completed at least once *)
  static_traces : int;
  static_blocks : int;
  bcg_nodes : int;
  bcg_edges : int;
  ic_predictions : int; (* inline-cache hits in the profiler *)
  chained_entries : int;
      (* trace entries directly following another trace's completion *)
  wall_seconds : float;
}

let zero =
  {
    instructions = 0;
    block_dispatches = 0;
    trace_dispatches = 0;
    traces_entered = 0;
    traces_completed = 0;
    completed_blocks = 0;
    partial_blocks = 0;
    completed_instrs = 0;
    partial_instrs = 0;
    signals = 0;
    traces_constructed = 0;
    traces_replaced = 0;
    traces_live = 0;
    static_traces = 0;
    static_blocks = 0;
    bcg_nodes = 0;
    bcg_edges = 0;
    ic_predictions = 0;
    chained_entries = 0;
    wall_seconds = 0.0;
  }

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* Total dispatches under the trace-dispatch model: blocks executed outside
   traces plus one dispatch per trace entry. *)
let total_dispatches t = t.block_dispatches + t.trace_dispatches

(* Average executed trace length in basic blocks (paper: "the sum of the
   lengths of the traces which execute to completion divided by the number
   of traces") — one term per distinct trace that ever completed, so a
   long trace counts as much as a hot short one. *)
let avg_trace_length t = ratio t.static_blocks t.static_traces

(* Completion-event-weighted average length: what the dispatch stream
   actually executes.  Dominated by the hottest (often shortest) traces. *)
let dynamic_trace_length t = ratio t.completed_blocks t.traces_completed

(* Fraction of the instruction stream executed by traces that ran to
   completion. *)
let coverage_completed t = ratio t.completed_instrs t.instructions

(* Coverage counting partially executed traces too (the paper's 90.7%
   vs. 87.1% distinction). *)
let coverage_total t = ratio (t.completed_instrs + t.partial_instrs) t.instructions

(* Dynamic trace completion rate: completed / entered. *)
let completion_rate t = ratio t.traces_completed t.traces_entered

(* Dispatches per state-change signal (Table IV reports thousands). *)
let dispatches_per_signal t = ratio (total_dispatches t) t.signals

(* Trace event interval: instructions per (trace constructed + signal)
   (Table V reports thousands of dispatches; the paper defines it over the
   program's executed instructions). *)
let trace_events t = t.signals + t.traces_constructed

let trace_event_interval t = ratio (total_dispatches t) (trace_events t)

(* Fraction of trace entries that chain directly from another trace's
   completion — the dispatch-level analogue of Dynamo's trace linking. *)
let linking_rate t = ratio t.chained_entries t.traces_entered

(* Dispatch reduction factor: how many block-model dispatches each
   trace-model dispatch replaces.  Blocks executed inside traces would each
   have been a dispatch in the block model. *)
let dispatch_reduction t =
  let block_model = t.block_dispatches + t.completed_blocks + t.partial_blocks in
  if total_dispatches t = 0 then 1.0
  else float_of_int block_model /. float_of_int (total_dispatches t)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>instructions        %d@,\
     block dispatches    %d@,\
     trace dispatches    %d@,\
     entered/completed   %d/%d (%.2f%%)@,\
     avg trace length    %.2f blocks@,\
     coverage completed  %.1f%%@,\
     coverage total      %.1f%%@,\
     signals             %d@,\
     traces constructed  %d (replaced %d, live %d)@,\
     kdisp/signal        %.1f@,\
     kdisp/trace event   %.1f@,\
     linking rate        %.1f%%@,\
     bcg                 %d nodes, %d edges@]"
    t.instructions t.block_dispatches t.trace_dispatches t.traces_entered
    t.traces_completed
    (100.0 *. completion_rate t)
    (avg_trace_length t)
    (100.0 *. coverage_completed t)
    (100.0 *. coverage_total t)
    t.signals t.traces_constructed t.traces_replaced t.traces_live
    (dispatches_per_signal t /. 1000.0)
    (trace_event_interval t /. 1000.0)
    (100.0 *. linking_rate t)
    t.bcg_nodes t.bcg_edges
