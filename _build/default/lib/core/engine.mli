(** The complete system: VM + profiler + trace cache (paper §4).

    The VM's block-dispatch stream drives the profiler; profiler signals
    drive trace reconstruction; and the trace cache overlays trace
    dispatch onto the stream.  Dispatch accounting mirrors the modified
    SableVM:

    - a block dispatched outside any trace executes the profiler hook and
      counts as one {e block dispatch};
    - a dispatch whose transition enters a trace executes the hook once
      and counts as one {e trace dispatch}; the trace's interior blocks
      are inlined — no dispatch, no hook;
    - on a side exit or completion the profiler context is
      resynchronized to the last two executed blocks and normal
      dispatching resumes.

    Tracing is a pure overlay: results and instruction counts are
    identical with and without it. *)

type t = {
  config : Config.t;
  layout : Cfg.Layout.t;
  profiler : Profiler.t;
  cache : Trace_cache.t;
  mutable active : Trace.t option;
  mutable active_pos : int;
  mutable matched_blocks : int;
  mutable matched_instrs : int;
  mutable prev : Cfg.Layout.gid;
  mutable prev2 : Cfg.Layout.gid;
  mutable block_dispatches : int;
  mutable trace_dispatches : int;
  mutable traces_entered : int;
  mutable traces_completed : int;
  mutable completed_blocks : int;
  mutable partial_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable traces_constructed : int;
  mutable builder_reuses : int;
  mutable chained_entries : int;
  mutable just_completed : bool;
}

val create : ?config:Config.t -> Cfg.Layout.t -> t

val on_block : t -> Cfg.Layout.gid -> unit
(** The VM observer: feed one dispatched block.  Exposed so the engine
    can be driven by any block stream (the baselines and tests do). *)

val stats : t -> vm_result:Vm.Interp.result -> wall_seconds:float -> Stats.t

type run_result = {
  engine : t;
  vm_result : Vm.Interp.result;
  run_stats : Stats.t;
}

val run :
  ?config:Config.t -> ?max_instructions:int -> Cfg.Layout.t -> run_result
(** Execute the program under the full system and collect statistics. *)
