module Layout = Cfg.Layout
module Block = Cfg.Block

(* Next-Executing-Tail trace selection, after Dynamo (Bala et al., PLDI
   2000).  Counters sit on potential trace heads — targets of backward
   taken branches.  When a counter crosses the hot threshold, the
   instructions executed *next* are recorded as a trace until a backward
   taken branch (the next loop iteration), the head of an existing trace,
   or the length cap.  Traces are keyed by their head block alone (Dynamo
   dispatches fragments by address).

   This is the "assume what follows a hot point will recur" strategy the
   paper contrasts with branch-correlation profiling. *)

type config = {
  hot_threshold : int; (* Dynamo uses ~50 *)
  max_blocks : int;
}

let default_config = { hot_threshold = 50; max_blocks = 64 }

type trace = {
  head : Layout.gid;
  blocks : Layout.gid array;
  total_instrs : int;
  instr_len : int array;
}

type mode =
  | Profiling
  | Recording of Layout.gid list (* reversed blocks recorded so far *)
  | Executing of trace * int * int * int
    (* trace, next position, matched blocks, matched instrs *)

type t = {
  layout : Layout.t;
  config : config;
  counters : (Layout.gid, int ref) Hashtbl.t;
  traces : (Layout.gid, trace) Hashtbl.t;
  mutable mode : mode;
  mutable prev : Layout.gid;
  mutable dispatches : int;
  mutable traces_entered : int;
  mutable traces_completed : int;
  mutable completed_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable traces_built : int;
}

let create ?(config = default_config) (layout : Layout.t) : t =
  {
    layout;
    config;
    counters = Hashtbl.create 256;
    traces = Hashtbl.create 64;
    mode = Profiling;
    prev = -1;
    dispatches = 0;
    traces_entered = 0;
    traces_completed = 0;
    completed_blocks = 0;
    completed_instrs = 0;
    partial_instrs = 0;
    traces_built = 0;
  }

(* A transition is a backward taken branch when it stays in one method and
   moves to an earlier bytecode address. *)
let is_backward (t : t) ~prev ~cur =
  prev >= 0
  &&
  let pb = Layout.block t.layout prev in
  let cb = Layout.block t.layout cur in
  pb.Block.method_id = cb.Block.method_id
  && cb.Block.start_pc <= pb.Block.start_pc

let mk_trace (t : t) (rev_blocks : Layout.gid list) : trace =
  let blocks = Array.of_list (List.rev rev_blocks) in
  let instr_len = Array.map (fun g -> Layout.block_len t.layout g) blocks in
  {
    head = blocks.(0);
    blocks;
    total_instrs = Array.fold_left ( + ) 0 instr_len;
    instr_len;
  }

let finish_recording (t : t) (rev_blocks : Layout.gid list) =
  (match rev_blocks with
  | [] | [ _ ] -> () (* too short to be worth caching *)
  | _ ->
      let tr = mk_trace t rev_blocks in
      if not (Hashtbl.mem t.traces tr.head) then begin
        Hashtbl.replace t.traces tr.head tr;
        t.traces_built <- t.traces_built + 1
      end);
  t.mode <- Profiling

let enter_or_profile (t : t) g =
  match Hashtbl.find_opt t.traces g with
  | Some tr ->
      t.dispatches <- t.dispatches + 1;
      t.traces_entered <- t.traces_entered + 1;
      if Array.length tr.blocks = 1 then begin
        t.traces_completed <- t.traces_completed + 1;
        t.completed_blocks <- t.completed_blocks + 1;
        t.completed_instrs <- t.completed_instrs + tr.total_instrs
      end
      else t.mode <- Executing (tr, 1, 1, tr.instr_len.(0))
  | None -> (
      t.dispatches <- t.dispatches + 1;
      (* hot-head counting on backward taken branches *)
      if is_backward t ~prev:t.prev ~cur:g then begin
        let c =
          match Hashtbl.find_opt t.counters g with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.replace t.counters g c;
              c
        in
        incr c;
        if !c = t.config.hot_threshold then t.mode <- Recording [ g ]
      end)

let rec on_block (t : t) (g : Layout.gid) =
  match t.mode with
  | Profiling ->
      enter_or_profile t g;
      t.prev <- g
  | Recording acc ->
      t.dispatches <- t.dispatches + 1;
      let stop_backward = is_backward t ~prev:t.prev ~cur:g in
      let hits_existing = Hashtbl.mem t.traces g in
      if
        stop_backward || hits_existing
        || List.length acc >= t.config.max_blocks
      then finish_recording t acc
      else t.mode <- Recording (g :: acc);
      t.prev <- g
  | Executing (tr, pos, mblocks, minstrs) ->
      if g = tr.blocks.(pos) then begin
        let mblocks = mblocks + 1 in
        let minstrs = minstrs + tr.instr_len.(pos) in
        if pos = Array.length tr.blocks - 1 then begin
          t.traces_completed <- t.traces_completed + 1;
          t.completed_blocks <- t.completed_blocks + mblocks;
          t.completed_instrs <- t.completed_instrs + minstrs;
          t.mode <- Profiling
        end
        else t.mode <- Executing (tr, pos + 1, mblocks, minstrs);
        t.prev <- g
      end
      else begin
        (* side exit *)
        t.partial_instrs <- t.partial_instrs + minstrs;
        t.mode <- Profiling;
        on_block t g
      end

let summary (t : t) ~instructions : Summary.t =
  {
    Summary.name = "net";
    instructions;
    dispatches = t.dispatches;
    traces_entered = t.traces_entered;
    traces_completed = t.traces_completed;
    completed_blocks = t.completed_blocks;
    completed_instrs = t.completed_instrs;
    partial_instrs = t.partial_instrs;
    traces_built = t.traces_built;
  }

let run ?config ?max_instructions (layout : Layout.t) : Summary.t =
  let t = create ?config layout in
  let result =
    Vm.Interp.run ?max_instructions layout ~on_block:(fun g -> on_block t g)
  in
  summary t ~instructions:result.Vm.Interp.instructions
