(** Next-Executing-Tail trace selection, after Dynamo (Bala, Duesterwald &
    Banerjia, PLDI 2000).

    Counters sit on potential trace heads — targets of backward taken
    branches.  When a counter crosses the hot threshold, the blocks
    executed {e next} are recorded as a trace until a backward taken
    branch, the head of an existing trace, or the length cap.  Traces are
    keyed by head block alone, as Dynamo dispatches fragments by address.
    This is the "assume what follows a hot point will recur" strategy the
    paper contrasts with branch-correlation profiling. *)

type config = {
  hot_threshold : int;  (** Dynamo uses ~50 *)
  max_blocks : int;
}

val default_config : config

type t

val create : ?config:config -> Cfg.Layout.t -> t

val on_block : t -> Cfg.Layout.gid -> unit
(** Feed one dispatched block (attach to {!Vm.Interp.run}'s observer). *)

val summary : t -> instructions:int -> Summary.t

val run :
  ?config:config -> ?max_instructions:int -> Cfg.Layout.t -> Summary.t
(** Run a program under NET selection and summarize. *)
