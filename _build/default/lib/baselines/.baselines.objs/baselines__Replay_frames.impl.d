lib/baselines/replay_frames.ml: Array Bool Cfg Hashtbl List Summary Vm
