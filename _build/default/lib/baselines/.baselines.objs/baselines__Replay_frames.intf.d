lib/baselines/replay_frames.mli: Cfg Hashtbl Summary
