lib/baselines/summary.ml: Format
