lib/baselines/net.mli: Cfg Summary
