lib/baselines/net.ml: Array Cfg Hashtbl List Summary Vm
