lib/baselines/summary.mli: Format
