(** Frame construction after rePLay (Patel & Lumetta, IEEE TC 2001),
    simulated in software.

    A conditional branch is {e promoted} to an assertion once it resolves
    the same way {!field:config.promotion_run} consecutive times under the
    same depth-{!field:config.history_bits} branch history.  Frames are
    maximal block sequences whose internal conditional branches were all
    promoted when executed; an assertion failure at run time aborts the
    frame (the hardware would roll the work back, so aborted work is
    accounted as partial, not completed).

    Deviations from the hardware (also recorded in DESIGN.md): frames are
    keyed by entry block rather than fetch address + history register, and
    construction happens on the dispatch stream rather than in a
    retirement buffer. *)

type config = {
  promotion_run : int;  (** consecutive same-direction outcomes: 32 *)
  history_bits : int;  (** correlated history depth: 6 *)
  max_blocks : int;
  min_blocks : int;
}

val default_config : config

type t = private {
  layout : Cfg.Layout.t;
  config : config;
  bias : (int, bias) Hashtbl.t;
  frames : (Cfg.Layout.gid, frame) Hashtbl.t;
  mutable history : int;
  mutable mode : mode;
  mutable prev : Cfg.Layout.gid;
  mutable dispatches : int;
  mutable frames_entered : int;
  mutable frames_completed : int;
  mutable completed_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int;
  mutable frames_built : int;
  mutable promotions : int;
  mutable demotions : int;
}

and bias = {
  mutable dir : bool;
  mutable count : int;
  mutable promoted : bool;
}

and frame = {
  entry : Cfg.Layout.gid;
  blocks : Cfg.Layout.gid array;
  total_instrs : int;
  instr_len : int array;
}

and mode =
  | Idle
  | Recording of Cfg.Layout.gid list
  | Executing of frame * int * int * int

val create : ?config:config -> Cfg.Layout.t -> t

val on_block : t -> Cfg.Layout.gid -> unit

val summary : t -> instructions:int -> Summary.t

val run :
  ?config:config -> ?max_instructions:int -> Cfg.Layout.t -> Summary.t
