module Layout = Cfg.Layout
module Block = Cfg.Block

(* Frame construction after rePLay (Patel & Lumetta, IEEE TC 2001),
   simulated in software.  A conditional branch is *promoted* to an
   assertion once it resolves the same way 32 consecutive times under the
   same depth-6 branch history.  Frames are maximal block sequences whose
   internal conditional branches are all promoted; an assertion failure at
   run time aborts the frame (the hardware would roll back).

   Differences from hardware rePLay, recorded in DESIGN.md: frames are
   keyed by entry block (not fetch address + history register), and frame
   construction happens on the dispatch stream rather than in a retirement
   buffer.  Bias profiling runs in every mode, as the hardware's would. *)

type config = {
  promotion_run : int; (* consecutive same-direction outcomes: 32 *)
  history_bits : int; (* depth of correlated history: 6 *)
  max_blocks : int;
  min_blocks : int;
}

let default_config =
  { promotion_run = 32; history_bits = 6; max_blocks = 32; min_blocks = 2 }

type bias = {
  mutable dir : bool;
  mutable count : int;
  mutable promoted : bool;
}

type frame = {
  entry : Layout.gid;
  blocks : Layout.gid array;
  total_instrs : int;
  instr_len : int array;
}

type mode =
  | Idle
  | Recording of Layout.gid list (* reversed *)
  | Executing of frame * int * int * int

type t = {
  layout : Layout.t;
  config : config;
  bias : (int, bias) Hashtbl.t; (* key = gid * 2^history_bits + history *)
  frames : (Layout.gid, frame) Hashtbl.t;
  mutable history : int;
  mutable mode : mode;
  mutable prev : Layout.gid;
  mutable dispatches : int;
  mutable frames_entered : int;
  mutable frames_completed : int;
  mutable completed_blocks : int;
  mutable completed_instrs : int;
  mutable partial_instrs : int; (* rolled-back work *)
  mutable frames_built : int;
  mutable promotions : int;
  mutable demotions : int;
}

let create ?(config = default_config) (layout : Layout.t) : t =
  {
    layout;
    config;
    bias = Hashtbl.create 1024;
    frames = Hashtbl.create 64;
    history = 0;
    mode = Idle;
    prev = -1;
    dispatches = 0;
    frames_entered = 0;
    frames_completed = 0;
    completed_blocks = 0;
    completed_instrs = 0;
    partial_instrs = 0;
    frames_built = 0;
    promotions = 0;
    demotions = 0;
  }

(* Classify the transition prev -> cur: None when prev's terminator is not
   conditional, Some taken otherwise. *)
let branch_outcome (t : t) ~prev ~cur : bool option =
  if prev < 0 then None
  else
    let pb = Layout.block t.layout prev in
    match pb.Block.term with
    | Block.T_cond (_, taken_pc, _) ->
        let cb = Layout.block t.layout cur in
        if cb.Block.method_id <> pb.Block.method_id then None
        else Some (cb.Block.start_pc = taken_pc)
    | Block.T_goto _ | Block.T_switch _ | Block.T_call _ | Block.T_return
    | Block.T_throw | Block.T_fallthrough _ ->
        None

(* Update bias profiling; returns whether the transition was covered by a
   promoted assertion (non-branches count as promoted). *)
let profile_transition (t : t) ~prev ~cur : bool =
  match branch_outcome t ~prev ~cur with
  | None -> true
  | Some taken ->
      let hist_mask = (1 lsl t.config.history_bits) - 1 in
      let key = (prev lsl t.config.history_bits) lor t.history in
      let b =
        match Hashtbl.find_opt t.bias key with
        | Some b -> b
        | None ->
            let b = { dir = taken; count = 0; promoted = false } in
            Hashtbl.replace t.bias key b;
            b
      in
      let was_promoted = b.promoted in
      if b.dir = taken then begin
        b.count <- b.count + 1;
        if (not b.promoted) && b.count >= t.config.promotion_run then begin
          b.promoted <- true;
          t.promotions <- t.promotions + 1
        end
      end
      else begin
        b.dir <- taken;
        b.count <- 1;
        if b.promoted then begin
          b.promoted <- false;
          t.demotions <- t.demotions + 1
        end
      end;
      t.history <- ((t.history lsl 1) lor Bool.to_int taken) land hist_mask;
      was_promoted

let mk_frame (t : t) (rev_blocks : Layout.gid list) : frame =
  let blocks = Array.of_list (List.rev rev_blocks) in
  let instr_len = Array.map (fun g -> Layout.block_len t.layout g) blocks in
  {
    entry = blocks.(0);
    blocks;
    total_instrs = Array.fold_left ( + ) 0 instr_len;
    instr_len;
  }

let finish_recording (t : t) rev_blocks =
  (match rev_blocks with
  | [] -> ()
  | blocks when List.length blocks >= t.config.min_blocks ->
      let fr = mk_frame t blocks in
      if not (Hashtbl.mem t.frames fr.entry) then begin
        Hashtbl.replace t.frames fr.entry fr;
        t.frames_built <- t.frames_built + 1
      end
  | _ -> ());
  t.mode <- Idle

(* Handle one block in Idle mode: enter an existing frame if one starts
   here, otherwise (if the incoming transition was asserted) begin
   recording a new one. *)
let process_idle (t : t) g ~asserted =
  t.dispatches <- t.dispatches + 1;
  match Hashtbl.find_opt t.frames g with
  | Some fr ->
      t.frames_entered <- t.frames_entered + 1;
      if Array.length fr.blocks = 1 then begin
        t.frames_completed <- t.frames_completed + 1;
        t.completed_blocks <- t.completed_blocks + 1;
        t.completed_instrs <- t.completed_instrs + fr.total_instrs
      end
      else t.mode <- Executing (fr, 1, 1, fr.instr_len.(0))
  | None -> if asserted then t.mode <- Recording [ g ]

let on_block (t : t) (g : Layout.gid) =
  let asserted = profile_transition t ~prev:t.prev ~cur:g in
  (match t.mode with
  | Idle -> process_idle t g ~asserted
  | Recording acc ->
      if not asserted then begin
        finish_recording t acc;
        process_idle t g ~asserted
      end
      else if Hashtbl.mem t.frames g then begin
        (* a frame already starts here: close the recording and chain into
           the existing frame, as rePLay links frames end to end *)
        finish_recording t acc;
        process_idle t g ~asserted
      end
      else if List.length acc + 1 >= t.config.max_blocks then
        finish_recording t (g :: acc)
      else begin
        t.dispatches <- t.dispatches + 1;
        t.mode <- Recording (g :: acc)
      end
  | Executing (fr, pos, mblocks, minstrs) ->
      if g = fr.blocks.(pos) then begin
        let mblocks = mblocks + 1 in
        let minstrs = minstrs + fr.instr_len.(pos) in
        if pos = Array.length fr.blocks - 1 then begin
          t.frames_completed <- t.frames_completed + 1;
          t.completed_blocks <- t.completed_blocks + mblocks;
          t.completed_instrs <- t.completed_instrs + minstrs;
          t.mode <- Idle
        end
        else t.mode <- Executing (fr, pos + 1, mblocks, minstrs)
      end
      else begin
        (* assertion failure: the hardware rolls the frame back *)
        t.partial_instrs <- t.partial_instrs + minstrs;
        t.mode <- Idle;
        process_idle t g ~asserted
      end);
  t.prev <- g

let summary (t : t) ~instructions : Summary.t =
  {
    Summary.name = "replay";
    instructions;
    dispatches = t.dispatches;
    traces_entered = t.frames_entered;
    traces_completed = t.frames_completed;
    completed_blocks = t.completed_blocks;
    completed_instrs = t.completed_instrs;
    partial_instrs = t.partial_instrs;
    traces_built = t.frames_built;
  }

let run ?config ?max_instructions (layout : Layout.t) : Summary.t =
  let t = create ?config layout in
  let result =
    Vm.Interp.run ?max_instructions layout ~on_block:(fun g -> on_block t g)
  in
  summary t ~instructions:result.Vm.Interp.instructions
