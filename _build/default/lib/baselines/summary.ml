(* Trace-quality summary shared by the baseline selectors, reporting the
   same dependent values as the paper's system so the three approaches can
   sit in one table. *)

type t = {
  name : string;
  instructions : int;
  dispatches : int; (* block dispatches outside traces + trace entries *)
  traces_entered : int;
  traces_completed : int;
  completed_blocks : int;
  completed_instrs : int;
  partial_instrs : int;
  traces_built : int;
}

let avg_trace_length t =
  if t.traces_completed = 0 then 0.0
  else float_of_int t.completed_blocks /. float_of_int t.traces_completed

let coverage_completed t =
  if t.instructions = 0 then 0.0
  else float_of_int t.completed_instrs /. float_of_int t.instructions

let coverage_total t =
  if t.instructions = 0 then 0.0
  else
    float_of_int (t.completed_instrs + t.partial_instrs)
    /. float_of_int t.instructions

let completion_rate t =
  if t.traces_entered = 0 then 0.0
  else float_of_int t.traces_completed /. float_of_int t.traces_entered

let pp ppf t =
  Format.fprintf ppf
    "%-8s len=%5.1f cov=%5.1f%% (total %5.1f%%) compl=%6.2f%% built=%d" t.name
    (avg_trace_length t)
    (100.0 *. coverage_completed t)
    (100.0 *. coverage_total t)
    (100.0 *. completion_rate t)
    t.traces_built
