(** Trace-quality summary shared by the baseline selectors, reporting the
    same dependent values as the paper's system so the three approaches
    can sit in one table. *)

type t = {
  name : string;
  instructions : int;
  dispatches : int;
      (** block dispatches outside traces + trace entries *)
  traces_entered : int;
  traces_completed : int;
  completed_blocks : int;
  completed_instrs : int;
  partial_instrs : int;
  traces_built : int;
}

val avg_trace_length : t -> float

val coverage_completed : t -> float

val coverage_total : t -> float

val completion_rate : t -> float

val pp : Format.formatter -> t -> unit
