(* A small structured language compiled to the stack bytecode.  Workload
   programs are written against this AST; the compiler performs local type
   checking (needed to select between the int/float/ref instruction
   variants), lowers conditions to branches without materializing booleans,
   lowers loops bottom-tested (so the back edge is the taken branch, as a
   Java compiler would), and resolves named locals to slots.

   The language is deliberately Java-shaped: typed locals, virtual calls
   through selectors, fields resolved through a class's declared layout. *)

type ty =
  | I
  | F
  | R (* object reference *)
  | Arr of ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ushr

type cmp =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

type expr =
  | Cint of int
  | Cflt of float
  | Cnull
  | Var of string
  | Bin of binop * expr * expr
  | Neg of expr
  | I2f_ of expr
  | F2i_ of expr
  | Cmp of cmp * expr * expr (* int-valued 0/1 when materialized *)
  | Not of expr
  | And_also of expr * expr
  | Or_else of expr * expr
  | Call of string * expr list
  | Vcall of string * expr * expr list (* selector, receiver, args *)
  | New_obj of string
  | Getf of string * string * expr (* class, field, receiver *)
  | New_arr of ty * expr (* element type, length *)
  | Idx of expr * expr (* array, index *)
  | Len of expr
  | Is_instance of string * expr

type stmt =
  | Decl of string * ty * expr
  | Set of string * expr
  | Set_idx of expr * expr * expr (* array, index, value *)
  | Setf of string * string * expr * expr (* class, field, receiver, value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of string * expr * expr * stmt list
    (* for v = lo; v < hi; v++ — v is implicitly declared as an int *)
  | Switch of expr * (int * stmt list) list * stmt list
  | Ret of expr option
  | Ignore of expr (* evaluate for effect, discard any result *)
  | Break
  | Continue
  | Throw of expr (* must be an object reference *)
  | Try of stmt list * string * string * stmt list
    (* protected body, exception class name, binder for the caught
       exception, handler body *)

type method_sig = {
  sig_args : ty list; (* receiver excluded for virtual methods *)
  sig_ret : ty option;
}

type method_def = {
  d_name : string;
  d_kind : Mthd.kind;
  d_args : (string * ty) list;
  d_ret : ty option;
  d_body : stmt list;
}

type class_def = {
  k_name : string;
  k_super : string option;
  k_fields : (string * ty) list;
  k_methods : (string * string) list;
}

type t = {
  mutable defs : method_def list; (* reverse order *)
  mutable cdefs : class_def list; (* reverse order *)
}

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec ty_to_string = function
  | I -> "int"
  | F -> "float"
  | R -> "ref"
  | Arr t -> ty_to_string t ^ "[]"

let ty_equal a b =
  let rec eq a b =
    match (a, b) with
    | I, I | F, F | R, R -> true
    | Arr x, Arr y -> eq x y
    (* any array is also a reference for assignment purposes *)
    | Arr _, R | R, Arr _ -> true
    | (I | F | R | Arr _), _ -> false
  in
  eq a b

let create () = { defs = []; cdefs = [] }

let def_class t ~name ?super ~fields ~methods () =
  t.cdefs <-
    { k_name = name; k_super = super; k_fields = fields; k_methods = methods }
    :: t.cdefs

let def_method t ~name ?(kind = Mthd.Static) ~args ?ret ~body () =
  t.defs <- { d_name = name; d_kind = kind; d_args = args; d_ret = ret; d_body = body } :: t.defs

(* ------------------------------------------------------------------ *)
(* Compilation environment built at link time                          *)
(* ------------------------------------------------------------------ *)

type link_env = {
  sigs : (string, method_sig * Mthd.kind) Hashtbl.t; (* method name -> sig *)
  sel_sigs : (string, method_sig) Hashtbl.t; (* selector -> sig *)
  field_tys : (string, ty) Hashtbl.t; (* "class.field" -> ty *)
  class_fields : (string, (string * ty) list) Hashtbl.t; (* full layout *)
  class_super : (string, string option) Hashtbl.t;
}

let field_type env cname fname =
  (* Walk up the superclass chain: a field slot named in a class may be
     declared by an ancestor. *)
  let rec walk c =
    match Hashtbl.find_opt env.field_tys (c ^ "." ^ fname) with
    | Some ty -> Some ty
    | None -> (
        match Hashtbl.find_opt env.class_super c with
        | Some (Some s) -> walk s
        | Some None | None -> None)
  in
  walk cname

let build_link_env (t : t) : link_env =
  let env =
    {
      sigs = Hashtbl.create 64;
      sel_sigs = Hashtbl.create 16;
      field_tys = Hashtbl.create 64;
      class_fields = Hashtbl.create 16;
      class_super = Hashtbl.create 16;
    }
  in
  List.iter
    (fun d ->
      let args = List.map snd d.d_args in
      Hashtbl.replace env.sigs d.d_name
        ({ sig_args = args; sig_ret = d.d_ret }, d.d_kind))
    t.defs;
  List.iter
    (fun c ->
      Hashtbl.replace env.class_super c.k_name c.k_super;
      List.iter
        (fun (f, ty) ->
          Hashtbl.replace env.field_tys (c.k_name ^ "." ^ f) ty)
        c.k_fields;
      List.iter
        (fun (sel, mname) ->
          match Hashtbl.find_opt env.sigs mname with
          | None -> type_error "class %s: selector %s bound to unknown method %s" c.k_name sel mname
          | Some (s, kind) ->
              if kind <> Mthd.Virtual then
                type_error "class %s: selector %s bound to static method %s" c.k_name sel mname;
              (match Hashtbl.find_opt env.sel_sigs sel with
              | None -> Hashtbl.replace env.sel_sigs sel s
              | Some prev ->
                  if
                    prev.sig_ret <> s.sig_ret
                    || List.length prev.sig_args <> List.length s.sig_args
                  then
                    type_error
                      "selector %s bound with inconsistent signatures" sel))
        c.k_methods)
    t.cdefs;
  env

(* ------------------------------------------------------------------ *)
(* Method body compilation                                             *)
(* ------------------------------------------------------------------ *)

type scope = {
  env : link_env;
  meth : Builder.meth;
  locals : (string, int * ty) Hashtbl.t;
  mutable next_slot : int;
  ret : ty option;
  mname : string;
  (* enclosing loop labels for break/continue *)
  mutable loop_stack : (Builder.label * Builder.label) list; (* break, continue *)
}

(* Locals share one flat function scope.  Redeclaring a name with the same
   type reuses its slot (re-initialization, convenient for loop counters);
   redeclaring at a different type is an error. *)
let declare_local sc name ty =
  match Hashtbl.find_opt sc.locals name with
  | Some (slot, ty') ->
      if ty' <> ty then
        type_error "%s: local %s redeclared at a different type" sc.mname name;
      slot
  | None ->
      let slot = sc.next_slot in
      sc.next_slot <- slot + 1;
      Hashtbl.replace sc.locals name (slot, ty);
      slot

let lookup_local sc name =
  match Hashtbl.find_opt sc.locals name with
  | Some x -> x
  | None -> type_error "%s: unbound local %s" sc.mname name

let ty_is_boolish = function I -> true | F | R | Arr _ -> false

let load_instr ty slot =
  match ty with
  | I -> Instr.Iload slot
  | F -> Instr.Fload slot
  | R | Arr _ -> Instr.Aload slot

let store_instr ty slot =
  match ty with
  | I -> Instr.Istore slot
  | F -> Instr.Fstore slot
  | R | Arr _ -> Instr.Astore slot

let arr_load_instr = function
  | I -> Instr.Iaload
  | F -> Instr.Faload
  | R | Arr _ -> Instr.Aaload

let arr_store_instr = function
  | I -> Instr.Iastore
  | F -> Instr.Fastore
  | R | Arr _ -> Instr.Aastore

let int_binop_instr = function
  | Add -> Instr.Iadd
  | Sub -> Instr.Isub
  | Mul -> Instr.Imul
  | Div -> Instr.Idiv
  | Rem -> Instr.Irem
  | And -> Instr.Iand
  | Or -> Instr.Ior
  | Xor -> Instr.Ixor
  | Shl -> Instr.Ishl
  | Shr -> Instr.Ishr
  | Ushr -> Instr.Iushr

let float_binop_instr op =
  match op with
  | Add -> Instr.Fadd
  | Sub -> Instr.Fsub
  | Mul -> Instr.Fmul
  | Div -> Instr.Fdiv
  | Rem | And | Or | Xor | Shl | Shr | Ushr ->
      type_error "operator not defined on floats"

let instr_cond = function
  | Ceq -> Instr.Eq
  | Cne -> Instr.Ne
  | Clt -> Instr.Lt
  | Cle -> Instr.Le
  | Cgt -> Instr.Gt
  | Cge -> Instr.Ge

let rec compile_expr sc (e : expr) : ty =
  let m = sc.meth in
  match e with
  | Cint n ->
      Builder.iconst m n;
      I
  | Cflt f ->
      Builder.fconst m f;
      F
  | Cnull ->
      Builder.i m Instr.Aconst_null;
      R
  | Var name ->
      let slot, ty = lookup_local sc name in
      Builder.i m (load_instr ty slot);
      ty
  | Bin (op, a, b) -> (
      let ta = compile_expr sc a in
      let tb = compile_expr sc b in
      match (ta, tb) with
      | I, I ->
          Builder.i m (int_binop_instr op);
          I
      | F, F ->
          Builder.i m (float_binop_instr op);
          F
      | _ ->
          type_error "%s: binop on mismatched types %s / %s" sc.mname
            (ty_to_string ta) (ty_to_string tb))
  | Neg a -> (
      match compile_expr sc a with
      | I ->
          Builder.i m Instr.Ineg;
          I
      | F ->
          Builder.i m Instr.Fneg;
          F
      | (R | Arr _) as ty ->
          type_error "%s: negation of %s" sc.mname (ty_to_string ty))
  | I2f_ a ->
      let ty = compile_expr sc a in
      if ty <> I then type_error "%s: i2f on %s" sc.mname (ty_to_string ty);
      Builder.i m Instr.I2f;
      F
  | F2i_ a ->
      let ty = compile_expr sc a in
      if ty <> F then type_error "%s: f2i on %s" sc.mname (ty_to_string ty);
      Builder.i m Instr.F2i;
      I
  | Cmp _ | Not _ | And_also _ | Or_else _ ->
      (* materialize a 0/1 int through the branching translation *)
      let l_true = Builder.new_label m in
      let l_end = Builder.new_label m in
      compile_cond sc e ~jump_if_true:l_true;
      Builder.iconst m 0;
      Builder.goto m l_end;
      Builder.place m l_true;
      Builder.iconst m 1;
      Builder.place m l_end;
      I
  | Call (name, args) -> (
      match Hashtbl.find_opt sc.env.sigs name with
      | None -> type_error "%s: call to unknown method %s" sc.mname name
      | Some (s, kind) ->
          if kind <> Mthd.Static then
            type_error "%s: static call to virtual method %s" sc.mname name;
          compile_args sc name s.sig_args args;
          Builder.invokestatic m name;
          ret_ty_or_void sc name s.sig_ret)
  | Vcall (sel, recv, args) -> (
      match Hashtbl.find_opt sc.env.sel_sigs sel with
      | None -> type_error "%s: unknown selector %s" sc.mname sel
      | Some s ->
          let tr = compile_expr sc recv in
          (match tr with
          | R | Arr _ -> ()
          | I | F ->
              type_error "%s: virtual call on non-reference receiver" sc.mname);
          compile_args sc sel s.sig_args args;
          Builder.invokevirtual m sel;
          ret_ty_or_void sc sel s.sig_ret)
  | New_obj cname ->
      Builder.new_object m cname;
      R
  | Getf (cname, fname, recv) -> (
      let tr = compile_expr sc recv in
      (match tr with
      | R | Arr _ -> ()
      | I | F -> type_error "%s: getfield on non-reference" sc.mname);
      Builder.getfield m cname fname;
      match field_type sc.env cname fname with
      | Some ty -> ty
      | None -> type_error "%s: class %s has no field %s" sc.mname cname fname)
  | New_arr (elem, len) ->
      let tl = compile_expr sc len in
      if tl <> I then type_error "%s: array length must be int" sc.mname;
      let kind =
        match elem with
        | I -> Instr.Int_array
        | F -> Instr.Float_array
        | R | Arr _ -> Instr.Ref_array
      in
      Builder.i m (Instr.Newarray kind);
      Arr elem
  | Idx (arr, idx) -> (
      let ta = compile_expr sc arr in
      let ti = compile_expr sc idx in
      if ti <> I then type_error "%s: array index must be int" sc.mname;
      match ta with
      | Arr elem ->
          Builder.i m (arr_load_instr elem);
          elem
      | I | F | R ->
          type_error "%s: indexing a non-array (%s)" sc.mname (ty_to_string ta))
  | Len arr -> (
      match compile_expr sc arr with
      | Arr _ | R ->
          Builder.i m Instr.Arraylength;
          I
      | I | F -> type_error "%s: arraylength of non-array" sc.mname)
  | Is_instance (cname, recv) -> (
      match compile_expr sc recv with
      | R | Arr _ ->
          Builder.instanceof m cname;
          I
      | I | F -> type_error "%s: instanceof on non-reference" sc.mname)

and ret_ty_or_void sc name = function
  | Some ty -> ty
  | None ->
      type_error
        "%s: void call %s used as an expression (use Ignore for effects)"
        sc.mname name

and compile_args sc what formal_tys actuals =
  if List.length formal_tys <> List.length actuals then
    type_error "%s: wrong arity calling %s" sc.mname what;
  List.iter2
    (fun formal actual ->
      let got = compile_expr sc actual in
      if not (ty_equal formal got) then
        type_error "%s: argument of %s has type %s, expected %s" sc.mname
          what (ty_to_string got) (ty_to_string formal))
    formal_tys actuals

(* Compile [e] as a condition: fall through when false, jump to
   [jump_if_true] when true.  Comparisons compile to a single conditional
   branch; short-circuit operators compile structurally. *)
and compile_cond sc (e : expr) ~jump_if_true =
  let m = sc.meth in
  match e with
  | Cmp (c, a, b) -> (
      let ta = compile_expr sc a in
      let tb = compile_expr sc b in
      match (ta, tb) with
      | I, I -> Builder.if_icmp m (instr_cond c) jump_if_true
      | F, F ->
          Builder.i m Instr.Fcmp;
          Builder.ifz m (instr_cond c) jump_if_true
      | _ ->
          type_error "%s: comparison of %s and %s" sc.mname (ty_to_string ta)
            (ty_to_string tb))
  | Not a ->
      let l_false = Builder.new_label m in
      compile_cond sc a ~jump_if_true:l_false;
      Builder.goto m jump_if_true;
      Builder.place m l_false
  | And_also (a, b) ->
      let l_false = Builder.new_label m in
      (* a false -> skip b *)
      compile_cond sc (Not a) ~jump_if_true:l_false;
      compile_cond sc b ~jump_if_true;
      Builder.place m l_false
  | Or_else (a, b) ->
      compile_cond sc a ~jump_if_true;
      compile_cond sc b ~jump_if_true
  | Cint _ | Cflt _ | Cnull | Var _ | Bin _ | Neg _ | I2f_ _ | F2i_ _
  | Call _ | Vcall _ | New_obj _ | Getf _ | New_arr _ | Idx _ | Len _
  | Is_instance _ ->
      let ty = compile_expr sc e in
      if not (ty_is_boolish ty) then
        type_error "%s: condition must be int-valued" sc.mname;
      Builder.ifz m Instr.Ne jump_if_true

let rec compile_stmt sc (s : stmt) =
  let m = sc.meth in
  match s with
  | Decl (name, ty, init) ->
      let got = compile_expr sc init in
      if not (ty_equal ty got) then
        type_error "%s: local %s declared %s, initialized with %s" sc.mname
          name (ty_to_string ty) (ty_to_string got);
      let slot = declare_local sc name ty in
      Builder.i m (store_instr ty slot)
  | Set (name, e) ->
      let slot, ty = lookup_local sc name in
      (* iinc peephole: v = v + k compiles to a single instruction, like
         javac does; keeps hot loop blocks realistic. *)
      (match (ty, e) with
      | I, Bin (Add, Var v, Cint k) when String.equal v name ->
          Builder.iinc m slot k
      | I, Bin (Sub, Var v, Cint k) when String.equal v name ->
          Builder.iinc m slot (-k)
      | _ ->
          let got = compile_expr sc e in
          if not (ty_equal ty got) then
            type_error "%s: assigning %s to local %s of type %s" sc.mname
              (ty_to_string got) name (ty_to_string ty);
          Builder.i m (store_instr ty slot))
  | Set_idx (arr, idx, v) -> (
      let ta = compile_expr sc arr in
      let ti = compile_expr sc idx in
      if ti <> I then type_error "%s: array index must be int" sc.mname;
      match ta with
      | Arr elem ->
          let tv = compile_expr sc v in
          if not (ty_equal elem tv) then
            type_error "%s: storing %s into %s array" sc.mname
              (ty_to_string tv) (ty_to_string elem);
          Builder.i m (arr_store_instr elem)
      | I | F | R -> type_error "%s: indexed store to non-array" sc.mname)
  | Setf (cname, fname, recv, v) -> (
      (match compile_expr sc recv with
      | R | Arr _ -> ()
      | I | F -> type_error "%s: putfield on non-reference" sc.mname);
      let tv = compile_expr sc v in
      match field_type sc.env cname fname with
      | None -> type_error "%s: class %s has no field %s" sc.mname cname fname
      | Some fty ->
          if not (ty_equal fty tv) then
            type_error "%s: storing %s into field %s.%s of type %s" sc.mname
              (ty_to_string tv) cname fname (ty_to_string fty);
          Builder.putfield m cname fname)
  | If (cond, then_, else_) ->
      let l_then = Builder.new_label m in
      let l_end = Builder.new_label m in
      compile_cond sc cond ~jump_if_true:l_then;
      List.iter (compile_stmt sc) else_;
      Builder.goto m l_end;
      Builder.place m l_then;
      List.iter (compile_stmt sc) then_;
      Builder.place m l_end
  | While (cond, body) ->
      (* bottom-tested: goto test; body: ...; test: cond -> body *)
      let l_body = Builder.new_label m in
      let l_test = Builder.new_label m in
      let l_break = Builder.new_label m in
      Builder.goto m l_test;
      Builder.place m l_body;
      sc.loop_stack <- (l_break, l_test) :: sc.loop_stack;
      List.iter (compile_stmt sc) body;
      sc.loop_stack <- List.tl sc.loop_stack;
      Builder.place m l_test;
      compile_cond sc cond ~jump_if_true:l_body;
      Builder.place m l_break
  | Do_while (body, cond) ->
      let l_body = Builder.new_label m in
      let l_test = Builder.new_label m in
      let l_break = Builder.new_label m in
      Builder.place m l_body;
      sc.loop_stack <- (l_break, l_test) :: sc.loop_stack;
      List.iter (compile_stmt sc) body;
      sc.loop_stack <- List.tl sc.loop_stack;
      Builder.place m l_test;
      compile_cond sc cond ~jump_if_true:l_body;
      Builder.place m l_break
  | For (var, lo, hi, body) ->
      (* continue must reach the increment, so the loop gets its own
         continue label rather than reusing While's test label *)
      let got = compile_expr sc lo in
      if got <> I then type_error "%s: for-loop bound must be int" sc.mname;
      let slot = declare_local sc var I in
      Builder.i m (Instr.Istore slot);
      let l_body = Builder.new_label m in
      let l_cont = Builder.new_label m in
      let l_test = Builder.new_label m in
      let l_break = Builder.new_label m in
      Builder.goto m l_test;
      Builder.place m l_body;
      sc.loop_stack <- (l_break, l_cont) :: sc.loop_stack;
      List.iter (compile_stmt sc) body;
      sc.loop_stack <- List.tl sc.loop_stack;
      Builder.place m l_cont;
      Builder.i m (Instr.Iinc (slot, 1));
      Builder.place m l_test;
      compile_cond sc (Cmp (Clt, Var var, hi)) ~jump_if_true:l_body;
      Builder.place m l_break
  | Switch (scrutinee, cases, default) ->
      let ts = compile_expr sc scrutinee in
      if ts <> I then type_error "%s: switch on non-int" sc.mname;
      let keys = List.map fst cases in
      (match keys with
      | [] -> type_error "%s: switch with no cases" sc.mname
      | k0 :: rest ->
          let low = List.fold_left min k0 rest in
          let high = List.fold_left max k0 rest in
          if high - low > 4096 then
            type_error "%s: switch range too sparse" sc.mname;
          let l_default = Builder.new_label m in
          let l_end = Builder.new_label m in
          let targets =
            Array.init (high - low + 1) (fun i ->
                match List.assoc_opt (low + i) cases with
                | Some _ -> Builder.new_label m
                | None -> l_default)
          in
          Builder.tableswitch m ~low ~targets ~default:l_default;
          List.iter
            (fun (k, body) ->
              Builder.place m targets.(k - low);
              List.iter (compile_stmt sc) body;
              Builder.goto m l_end)
            cases;
          Builder.place m l_default;
          List.iter (compile_stmt sc) default;
          Builder.place m l_end)
  | Ret None ->
      if sc.ret <> None then
        type_error "%s: missing return value" sc.mname;
      Builder.i m Instr.Return
  | Ret (Some e) -> (
      let got = compile_expr sc e in
      match sc.ret with
      | None -> type_error "%s: returning a value from a void method" sc.mname
      | Some want ->
          if not (ty_equal want got) then
            type_error "%s: returning %s, expected %s" sc.mname
              (ty_to_string got) (ty_to_string want);
          let ins =
            match want with
            | I -> Instr.Ireturn
            | F -> Instr.Freturn
            | R | Arr _ -> Instr.Areturn
          in
          Builder.i m ins)
  | Ignore e -> (
      (* void calls are allowed here; anything else is popped *)
      match e with
      | Call (name, args) when call_is_void sc name ->
          let s, _ = Hashtbl.find sc.env.sigs name in
          compile_args sc name s.sig_args args;
          Builder.invokestatic m name
      | Vcall (sel, recv, args) when selector_is_void sc sel ->
          let s = Hashtbl.find sc.env.sel_sigs sel in
          ignore (compile_expr sc recv);
          compile_args sc sel s.sig_args args;
          Builder.invokevirtual m sel
      | _ ->
          ignore (compile_expr sc e);
          Builder.i m Instr.Pop)
  | Break -> (
      match sc.loop_stack with
      | (l_break, _) :: _ -> Builder.goto m l_break
      | [] -> type_error "%s: break outside a loop" sc.mname)
  | Continue -> (
      match sc.loop_stack with
      | (_, l_cont) :: _ -> Builder.goto m l_cont
      | [] -> type_error "%s: continue outside a loop" sc.mname)
  | Throw e -> (
      match compile_expr sc e with
      | R | Arr _ -> Builder.athrow m
      | I | F -> type_error "%s: throwing a non-reference" sc.mname)
  | Try (body, cls, var, catch) ->
      (* protect [body]; on an exception of class [cls] (or subclass),
         bind it to [var] and run [catch].  Inner regions register their
         handlers first, giving innermost-first search order. *)
      let l_start = Builder.new_label m in
      let l_end = Builder.new_label m in
      let l_handler = Builder.new_label m in
      let l_done = Builder.new_label m in
      Builder.place m l_start;
      (* a region must be non-empty for the handler range to be valid *)
      Builder.i m Instr.Nop;
      List.iter (compile_stmt sc) body;
      Builder.place m l_end;
      Builder.goto m l_done;
      Builder.place m l_handler;
      let slot = declare_local sc var R in
      Builder.i m (Instr.Astore slot);
      List.iter (compile_stmt sc) catch;
      Builder.place m l_done;
      Builder.add_handler m ~from_:l_start ~to_:l_end ~target:l_handler ~cls

and call_is_void sc name =
  match Hashtbl.find_opt sc.env.sigs name with
  | Some (s, _) -> s.sig_ret = None
  | None -> false

and selector_is_void sc sel =
  match Hashtbl.find_opt sc.env.sel_sigs sel with
  | Some s -> s.sig_ret = None
  | None -> false

(* Count the local slots a body will need: arguments plus every Decl/For. *)
let rec count_decls stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Decl _ -> 1
      | For (_, _, _, body) -> 1 + count_decls body
      | If (_, a, b) -> count_decls a + count_decls b
      | While (_, b) | Do_while (b, _) -> count_decls b
      | Switch (_, cases, d) ->
          List.fold_left (fun a (_, b) -> a + count_decls b) (count_decls d)
            cases
      | Try (body, _, _, catch) -> count_decls body + 1 + count_decls catch
      | Set _ | Set_idx _ | Setf _ | Ret _ | Ignore _ | Break | Continue
      | Throw _ ->
          0)
    0 stmts

let compile_method env (b : Builder.t) (d : method_def) =
  let args =
    match d.d_kind with
    | Mthd.Static -> d.d_args
    | Mthd.Virtual -> ("this", R) :: d.d_args
  in
  let n_args = List.length args in
  let n_locals = n_args + count_decls d.d_body in
  let returns =
    match d.d_ret with
    | None -> Mthd.Rvoid
    | Some I -> Mthd.Rint
    | Some F -> Mthd.Rfloat
    | Some (R | Arr _) -> Mthd.Rref
  in
  let meth =
    Builder.begin_method b ~name:d.d_name ~kind:d.d_kind ~returns ~n_args
      ~n_locals ()
  in
  let sc =
    {
      env;
      meth;
      locals = Hashtbl.create 16;
      next_slot = 0;
      ret = d.d_ret;
      mname = d.d_name;
      loop_stack = [];
    }
  in
  List.iter (fun (name, ty) -> ignore (declare_local sc name ty)) args;
  List.iter (compile_stmt sc) d.d_body;
  (* implicit return for void methods falling off the end *)
  (match d.d_ret with
  | None -> Builder.i meth Instr.Return
  | Some _ ->
      (* a value-returning method must return on every path; emit a
         defensive zero return so the verifier sees a terminator. *)
      (match d.d_ret with
      | Some I ->
          Builder.iconst meth 0;
          Builder.i meth Instr.Ireturn
      | Some F ->
          Builder.fconst meth 0.0;
          Builder.i meth Instr.Freturn
      | Some (R | Arr _) ->
          Builder.i meth Instr.Aconst_null;
          Builder.i meth Instr.Areturn
      | None -> ()));
  Builder.finish_method meth

let kind_of_ty = function
  | I -> Klass.Kint
  | F -> Klass.Kfloat
  | R | Arr _ -> Klass.Kref

let link (t : t) ~entry : Program.t =
  let env = build_link_env t in
  let b = Builder.create () in
  List.iter
    (fun c ->
      Builder.declare_class b ~name:c.k_name ?super:c.k_super
        ~fields:(List.map (fun (f, ty) -> (f, kind_of_ty ty)) c.k_fields)
        ~methods:c.k_methods ())
    (List.rev t.cdefs);
  List.iter (fun d -> compile_method env b d) (List.rev t.defs);
  Builder.link b ~entry
