lib/bytecode/structured.ml: Array Builder Format Hashtbl Instr Klass List Mthd Program String
