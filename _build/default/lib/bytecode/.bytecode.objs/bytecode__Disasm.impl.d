lib/bytecode/disasm.ml: Array Format Hashtbl Instr Klass List Mthd Program
