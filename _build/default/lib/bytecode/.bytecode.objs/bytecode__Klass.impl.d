lib/bytecode/klass.ml: Array Format Printf String
