lib/bytecode/structured.mli: Mthd Program
