lib/bytecode/program.ml: Array Format Klass Mthd Printf String
