lib/bytecode/verify.mli: Mthd Program
