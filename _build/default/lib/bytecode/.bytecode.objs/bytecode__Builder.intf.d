lib/bytecode/builder.mli: Instr Klass Mthd Program
