lib/bytecode/instr.mli: Format
