lib/bytecode/verify.ml: Array Format Instr Klass List Mthd Printf Program Queue String
