lib/bytecode/mthd.mli: Format Instr
