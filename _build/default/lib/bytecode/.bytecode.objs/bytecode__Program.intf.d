lib/bytecode/program.mli: Format Klass Mthd
