lib/bytecode/instr.ml: Array Format String
