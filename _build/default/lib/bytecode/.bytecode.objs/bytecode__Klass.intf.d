lib/bytecode/klass.mli: Format
