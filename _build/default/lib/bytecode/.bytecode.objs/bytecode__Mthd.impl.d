lib/bytecode/mthd.ml: Array Format Instr
