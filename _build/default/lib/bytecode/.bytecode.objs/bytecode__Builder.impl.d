lib/bytecode/builder.ml: Array Hashtbl Instr Klass List Mthd Option Printf Program String
