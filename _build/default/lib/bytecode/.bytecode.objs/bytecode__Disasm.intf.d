lib/bytecode/disasm.mli: Format Instr Mthd Program
