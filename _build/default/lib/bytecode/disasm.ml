(* Human-readable listings of methods and programs, with symbolic names for
   method/class/selector/field operands. *)

let pp_instr_resolved (program : Program.t) ppf (ins : Instr.t) =
  match ins with
  | Instr.Invokestatic mid ->
      Format.fprintf ppf "invokestatic %s"
        (Program.method_by_id program mid).Mthd.name
  | Instr.Invokevirtual slot ->
      Format.fprintf ppf "invokevirtual %s" (Program.selector_name program slot)
  | Instr.New cid ->
      Format.fprintf ppf "new %s" (Program.class_by_id program cid).Klass.name
  | Instr.Getfield (cid, slot) ->
      let k = Program.class_by_id program cid in
      Format.fprintf ppf "getfield %s.%s" k.Klass.name
        k.Klass.field_names.(slot)
  | Instr.Putfield (cid, slot) ->
      let k = Program.class_by_id program cid in
      Format.fprintf ppf "putfield %s.%s" k.Klass.name
        k.Klass.field_names.(slot)
  | Instr.Instanceof cid ->
      Format.fprintf ppf "instanceof %s"
        (Program.class_by_id program cid).Klass.name
  | _ -> Instr.pp ppf ins

let pp_method (program : Program.t) ppf (m : Mthd.t) =
  Format.fprintf ppf "%a@\n" Mthd.pp m;
  (* mark branch targets so listings read like javap output *)
  let targets = Hashtbl.create 8 in
  Array.iter
    (fun ins ->
      List.iter (fun t -> Hashtbl.replace targets t ()) (Instr.branch_targets ins))
    m.Mthd.code;
  Array.iteri
    (fun pc ins ->
      let mark = if Hashtbl.mem targets pc then ">" else " " in
      Format.fprintf ppf "  %s%4d: %a@\n" mark pc
        (pp_instr_resolved program) ins)
    m.Mthd.code;
  Array.iter
    (fun h ->
      Format.fprintf ppf "  handler [%d,%d) -> %d catches %s@\n"
        h.Mthd.h_from h.Mthd.h_to h.Mthd.h_target
        (Program.class_by_id program h.Mthd.h_class).Klass.name)
    m.Mthd.handlers

let pp_program ppf (program : Program.t) =
  Format.fprintf ppf "%a@\n@\n" Program.pp program;
  Array.iter
    (fun k -> Format.fprintf ppf "%a@\n" Klass.pp k)
    program.Program.classes;
  Format.fprintf ppf "@\n";
  Array.iter
    (fun m -> Format.fprintf ppf "%a@\n" (pp_method program) m)
    program.Program.methods

let method_to_string program m = Format.asprintf "%a" (pp_method program) m

let program_to_string program = Format.asprintf "%a" pp_program program
