(* The instruction set of the virtual machine: a stack-based bytecode modeled
   on the JVM subset that matters for block-level dispatch and trace
   generation — integer and float arithmetic, locals, objects with virtual
   dispatch, arrays, conditional branches, switches and calls.

   Branch targets and switch targets are absolute instruction indices within
   the enclosing method; the {!Builder} module provides symbolic labels and
   resolves them. *)

type cond =
  | Eq
  | Ne
  | Lt
  | Ge
  | Gt
  | Le

type array_kind =
  | Int_array
  | Float_array
  | Ref_array

type t =
  (* Constants and locals *)
  | Iconst of int
  | Fconst of float
  | Aconst_null
  | Iload of int
  | Istore of int
  | Fload of int
  | Fstore of int
  | Aload of int
  | Astore of int
  | Iinc of int * int
  (* Operand stack manipulation *)
  | Dup
  | Pop
  | Swap
  (* Integer arithmetic and logic *)
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Iushr
  (* Float arithmetic and conversion *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | F2i
  | I2f
  | Fcmp (* pushes -1, 0 or 1 *)
  (* Control flow; operands are absolute instruction indices *)
  | If_icmp of cond * int (* pops two ints, branches on comparison *)
  | Ifz of cond * int (* pops one int, compares against zero *)
  | Goto of int
  | Tableswitch of { low : int; targets : int array; default : int }
  (* Calls and returns; operand of Invokestatic is a method id, operand of
     Invokevirtual is a global selector slot resolved through the receiver's
     vtable *)
  | Invokestatic of int
  | Invokevirtual of int
  | Return
  | Ireturn
  | Freturn
  | Areturn
  (* Objects; New carries a class id, field accesses carry the static class
     id (for verification) and the field slot (valid for all subclasses
     because layouts place inherited fields first) *)
  | New of int
  | Getfield of int * int
  | Putfield of int * int
  | Instanceof of int
  (* Arrays *)
  | Newarray of array_kind
  | Iaload
  | Iastore
  | Faload
  | Fastore
  | Aaload
  | Aastore
  | Arraylength
  (* Exceptions: pops the exception object and transfers control to the
     innermost covering handler, unwinding frames as needed *)
  | Athrow
  (* Misc *)
  | Nop

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Gt -> Le
  | Le -> Gt

let eval_cond c n =
  match c with
  | Eq -> n = 0
  | Ne -> n <> 0
  | Lt -> n < 0
  | Ge -> n >= 0
  | Gt -> n > 0
  | Le -> n <= 0

let array_kind_to_string = function
  | Int_array -> "int"
  | Float_array -> "float"
  | Ref_array -> "ref"

(* Block-boundary classification, used by the CFG builder.  An instruction
   [ends_block] when control after it does not necessarily fall through to
   the next instruction in sequence — or, for calls, when the
   direct-threaded-inlining interpreter must emit a dispatch (control
   transfers to the callee). *)
let ends_block = function
  | If_icmp _ | Ifz _ | Goto _ | Tableswitch _ | Invokestatic _
  | Invokevirtual _ | Return | Ireturn | Freturn | Areturn | Athrow ->
      true
  | Iconst _ | Fconst _ | Aconst_null | Iload _ | Istore _ | Fload _
  | Fstore _ | Aload _ | Astore _ | Iinc _ | Dup | Pop | Swap | Iadd | Isub
  | Imul | Idiv | Irem | Ineg | Iand | Ior | Ixor | Ishl | Ishr | Iushr
  | Fadd | Fsub | Fmul | Fdiv | Fneg | F2i | I2f | Fcmp | New _ | Getfield _
  | Putfield _ | Instanceof _ | Newarray _ | Iaload | Iastore | Faload
  | Fastore | Aaload | Aastore | Arraylength | Nop ->
      false

(* Instruction indices that are branch targets; they become block leaders. *)
let branch_targets = function
  | If_icmp (_, t) | Ifz (_, t) | Goto t -> [ t ]
  | Tableswitch { targets; default; _ } ->
      default :: Array.to_list targets
  | Iconst _ | Fconst _ | Aconst_null | Iload _ | Istore _ | Fload _
  | Fstore _ | Aload _ | Astore _ | Iinc _ | Dup | Pop | Swap | Iadd | Isub
  | Imul | Idiv | Irem | Ineg | Iand | Ior | Ixor | Ishl | Ishr | Iushr
  | Fadd | Fsub | Fmul | Fdiv | Fneg | F2i | I2f | Fcmp | Invokestatic _
  | Invokevirtual _ | Return | Ireturn | Freturn | Areturn | Athrow | New _
  | Getfield _ | Putfield _ | Instanceof _ | Newarray _ | Iaload | Iastore
  | Faload | Fastore | Aaload | Aastore | Arraylength | Nop ->
      []

let is_return = function
  | Return | Ireturn | Freturn | Areturn -> true
  | _ -> false

let is_throw = function Athrow -> true | _ -> false

let is_call = function Invokestatic _ | Invokevirtual _ -> true | _ -> false

let is_conditional = function If_icmp _ | Ifz _ -> true | _ -> false

(* Net change in operand-stack height; used by the verifier. *)
let stack_delta = function
  | Iconst _ | Fconst _ | Aconst_null -> 1
  | Iload _ | Fload _ | Aload _ -> 1
  | Istore _ | Fstore _ | Astore _ -> -1
  | Iinc _ -> 0
  | Dup -> 1
  | Pop -> -1
  | Swap -> 0
  | Iadd | Isub | Imul | Idiv | Irem -> -1
  | Ineg -> 0
  | Iand | Ior | Ixor | Ishl | Ishr | Iushr -> -1
  | Fadd | Fsub | Fmul | Fdiv -> -1
  | Fneg -> 0
  | F2i | I2f -> 0
  | Fcmp -> -1
  | If_icmp _ -> -2
  | Ifz _ -> -1
  | Goto _ -> 0
  | Tableswitch _ -> -1
  | Invokestatic _ | Invokevirtual _ ->
      (* call deltas depend on the callee's signature; handled separately *)
      0
  | Return -> 0
  | Ireturn | Freturn | Areturn -> -1
  | New _ -> 1
  | Getfield _ -> 0
  | Putfield _ -> -2
  | Instanceof _ -> 0
  | Newarray _ -> 0
  | Iaload | Faload | Aaload -> -1
  | Iastore | Fastore | Aastore -> -3
  | Arraylength -> 0
  | Athrow -> -1
  | Nop -> 0

let pp ppf t =
  let s fmt = Format.fprintf ppf fmt in
  match t with
  | Iconst n -> s "iconst %d" n
  | Fconst f -> s "fconst %g" f
  | Aconst_null -> s "aconst_null"
  | Iload n -> s "iload %d" n
  | Istore n -> s "istore %d" n
  | Fload n -> s "fload %d" n
  | Fstore n -> s "fstore %d" n
  | Aload n -> s "aload %d" n
  | Astore n -> s "astore %d" n
  | Iinc (l, d) -> s "iinc %d %d" l d
  | Dup -> s "dup"
  | Pop -> s "pop"
  | Swap -> s "swap"
  | Iadd -> s "iadd"
  | Isub -> s "isub"
  | Imul -> s "imul"
  | Idiv -> s "idiv"
  | Irem -> s "irem"
  | Ineg -> s "ineg"
  | Iand -> s "iand"
  | Ior -> s "ior"
  | Ixor -> s "ixor"
  | Ishl -> s "ishl"
  | Ishr -> s "ishr"
  | Iushr -> s "iushr"
  | Fadd -> s "fadd"
  | Fsub -> s "fsub"
  | Fmul -> s "fmul"
  | Fdiv -> s "fdiv"
  | Fneg -> s "fneg"
  | F2i -> s "f2i"
  | I2f -> s "i2f"
  | Fcmp -> s "fcmp"
  | If_icmp (c, t) -> s "if_icmp%s -> %d" (cond_to_string c) t
  | Ifz (c, t) -> s "if%s -> %d" (cond_to_string c) t
  | Goto t -> s "goto %d" t
  | Tableswitch { low; targets; default } ->
      s "tableswitch low=%d targets=[%s] default=%d" low
        (String.concat ";"
           (Array.to_list (Array.map string_of_int targets)))
        default
  | Invokestatic m -> s "invokestatic #%d" m
  | Invokevirtual sel -> s "invokevirtual sel#%d" sel
  | Return -> s "return"
  | Ireturn -> s "ireturn"
  | Freturn -> s "freturn"
  | Areturn -> s "areturn"
  | New c -> s "new #%d" c
  | Getfield (c, f) -> s "getfield #%d.%d" c f
  | Putfield (c, f) -> s "putfield #%d.%d" c f
  | Instanceof c -> s "instanceof #%d" c
  | Newarray k -> s "newarray %s" (array_kind_to_string k)
  | Iaload -> s "iaload"
  | Iastore -> s "iastore"
  | Faload -> s "faload"
  | Fastore -> s "fastore"
  | Aaload -> s "aaload"
  | Aastore -> s "aastore"
  | Arraylength -> s "arraylength"
  | Athrow -> s "athrow"
  | Nop -> s "nop"

let to_string t = Format.asprintf "%a" pp t
