(** Human-readable listings of methods and programs, with symbolic names
    for method/class/selector/field operands and branch targets marked. *)

val pp_instr_resolved : Program.t -> Format.formatter -> Instr.t -> unit

val pp_method : Program.t -> Format.formatter -> Mthd.t -> unit

val pp_program : Format.formatter -> Program.t -> unit

val method_to_string : Program.t -> Mthd.t -> string

val program_to_string : Program.t -> string
