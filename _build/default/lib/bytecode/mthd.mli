(** Method representation.

    Locals [0 .. n_args-1] hold the arguments at entry — for virtual
    methods the receiver is local 0 and counts toward [n_args] — and the
    remaining locals up to [n_locals] start zeroed. *)

type return_type =
  | Rvoid
  | Rint
  | Rfloat
  | Rref

type kind =
  | Static
  | Virtual

(** An exception handler: protects pcs in [[h_from, h_to)] and receives
    exceptions whose class is a subclass of [h_class] at [h_target], with
    the exception object as the only stack operand. *)
type handler = {
  h_from : int;
  h_to : int;  (** exclusive *)
  h_target : int;
  h_class : int;
}

type t = {
  id : int;
  name : string;
  kind : kind;
  n_args : int;  (** argument slots, receiver included for virtual methods *)
  n_locals : int;  (** total local slots, [n_locals >= n_args] *)
  returns : return_type;
  code : Instr.t array;
  handlers : handler array;  (** innermost-first for nested regions *)
}

val handler_for :
  t ->
  pc:int ->
  cls:int ->
  is_subclass:(sub:int -> super:int -> bool) ->
  handler option
(** The innermost handler covering [pc] that catches class [cls]. *)

val return_type_to_string : return_type -> string

val kind_to_string : kind -> string

val invocation_pops : t -> int
(** Values an invocation pops from the caller's operand stack. *)

val invocation_pushes : t -> int
(** Values an invocation pushes on return (0 or 1). *)

val pp : Format.formatter -> t -> unit
