(** A small structured language compiled to the stack bytecode.

    Workload programs are written against this AST.  The compiler performs
    local type checking (selecting between the int/float/ref instruction
    variants), lowers conditions to branches without materializing
    booleans, lowers loops bottom-tested (the back edge is the taken
    branch, as a Java compiler would emit), and resolves named locals to
    slots.  The language is deliberately Java-shaped: typed locals,
    virtual calls through selectors, fields resolved through a class's
    declared layout. *)

type ty =
  | I
  | F
  | R  (** object reference *)
  | Arr of ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ushr

type cmp =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

type expr =
  | Cint of int
  | Cflt of float
  | Cnull
  | Var of string
  | Bin of binop * expr * expr
  | Neg of expr
  | I2f_ of expr
  | F2i_ of expr
  | Cmp of cmp * expr * expr  (** int-valued 0/1 when materialized *)
  | Not of expr
  | And_also of expr * expr  (** short-circuit *)
  | Or_else of expr * expr  (** short-circuit *)
  | Call of string * expr list
  | Vcall of string * expr * expr list  (** selector, receiver, args *)
  | New_obj of string
  | Getf of string * string * expr  (** class, field, receiver *)
  | New_arr of ty * expr  (** element type, length *)
  | Idx of expr * expr  (** array, index *)
  | Len of expr
  | Is_instance of string * expr

type stmt =
  | Decl of string * ty * expr
      (** declare-and-initialize; redeclaring a name at the same type
          reuses its slot (flat function scope) *)
  | Set of string * expr
  | Set_idx of expr * expr * expr  (** array, index, value *)
  | Setf of string * string * expr * expr
      (** class, field, receiver, value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | For of string * expr * expr * stmt list
      (** [For (v, lo, hi, body)]: v from lo while v < hi, step 1; v is
          implicitly declared as an int; [Continue] reaches the
          increment *)
  | Switch of expr * (int * stmt list) list * stmt list
      (** compiled to a tableswitch over the compact key range *)
  | Ret of expr option
  | Ignore of expr  (** evaluate for effect; void calls allowed *)
  | Break
  | Continue
  | Throw of expr  (** throw an object; must be a reference *)
  | Try of stmt list * string * string * stmt list
      (** [Try (body, cls, var, catch)]: run [body]; an exception whose
          class is [cls] or a subclass binds to the fresh local [var] and
          runs [catch].  Uncaught exceptions unwind to outer regions and
          callers. *)

type method_sig = {
  sig_args : ty list;  (** receiver excluded for virtual methods *)
  sig_ret : ty option;
}

type t
(** A compilation unit under construction. *)

exception Type_error of string

val ty_to_string : ty -> string

val ty_equal : ty -> ty -> bool
(** Structural, except any array type is compatible with [R]. *)

val create : unit -> t

val def_class :
  t ->
  name:string ->
  ?super:string ->
  fields:(string * ty) list ->
  methods:(string * string) list ->
  unit ->
  unit
(** Own fields only; [methods] binds selectors to virtual method names.
    All methods bound to one selector must share a signature. *)

val def_method :
  t ->
  name:string ->
  ?kind:Mthd.kind ->
  args:(string * ty) list ->
  ?ret:ty ->
  body:stmt list ->
  unit ->
  unit
(** Virtual methods get an implicit first local ["this" : R].  Methods may
    reference classes and methods defined later; everything resolves at
    {!link}. *)

val link : t -> entry:string -> Program.t
(** Type-check and compile every method body, then assemble and link.
    @raise Type_error on any typing violation.
    @raise Invalid_argument on unresolved names. *)
