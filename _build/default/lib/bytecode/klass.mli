(** Class representation.

    Field layout places inherited fields first, so a field slot valid for
    a class is valid for all its subclasses; each slot carries a kind so
    the VM can initialize fields and the verifier can type field loads.
    Virtual dispatch goes through a selector-indexed vtable: the program
    assigns every distinct selector name a global slot, and each class's
    vtable maps the slot to a method id (or -1 when the class does not
    understand the selector). *)

type field_kind =
  | Kint
  | Kfloat
  | Kref

type t = {
  id : int;
  name : string;
  super : int option;
  field_names : string array;  (** full layout, inherited fields first *)
  field_kinds : field_kind array;  (** same indexing as [field_names] *)
  vtable : int array;  (** selector slot -> method id, -1 if absent *)
}

val field_kind_to_string : field_kind -> string

val n_fields : t -> int

val field_slot : t -> string -> int option

val method_for_selector : t -> slot:int -> int option

val is_subclass_of : t array -> sub:int -> super:int -> bool
(** Follows the superclass chain through the given class table;
    reflexive. *)

val pp : Format.formatter -> t -> unit
