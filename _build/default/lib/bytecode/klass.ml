(* Class representation.  Field layout places inherited fields first, so a
   field slot valid for a class is valid for all its subclasses.  Each slot
   carries a kind so the VM can initialize fields and the verifier can type
   field loads.  Virtual dispatch goes through a selector-indexed vtable:
   the program assigns every distinct selector name a global slot, and each
   class's [vtable] maps the slot to a method id, or to -1 when the class
   does not understand the selector. *)

type field_kind =
  | Kint
  | Kfloat
  | Kref

type t = {
  id : int;
  name : string;
  super : int option;
  field_names : string array; (* full layout, inherited fields first *)
  field_kinds : field_kind array; (* same indexing as field_names *)
  vtable : int array; (* selector slot -> method id, -1 if absent *)
}

let field_kind_to_string = function
  | Kint -> "int"
  | Kfloat -> "float"
  | Kref -> "ref"

let n_fields t = Array.length t.field_names

let field_slot t name =
  let rec find i =
    if i >= Array.length t.field_names then None
    else if String.equal t.field_names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let method_for_selector t ~slot =
  if slot < 0 || slot >= Array.length t.vtable then None
  else
    let m = t.vtable.(slot) in
    if m < 0 then None else Some m

(* [is_subclass_of classes ~sub ~super] follows the superclass chain. *)
let is_subclass_of (classes : t array) ~sub ~super =
  let rec walk id =
    if id = super then true
    else
      match classes.(id).super with None -> false | Some s -> walk s
  in
  walk sub

let pp ppf t =
  Format.fprintf ppf "class %s (#%d)%s fields=[%s]" t.name t.id
    (match t.super with None -> "" | Some s -> Printf.sprintf " extends #%d" s)
    (String.concat "; "
       (Array.to_list
          (Array.mapi
             (fun i f -> field_kind_to_string t.field_kinds.(i) ^ " " ^ f)
             t.field_names)))
