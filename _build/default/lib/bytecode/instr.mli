(** The instruction set of the virtual machine: a stack-based bytecode
    modeled on the JVM subset that matters for block-level dispatch and
    trace generation — integer and float arithmetic, locals, objects with
    virtual dispatch, arrays, conditional branches, switches and calls.

    Branch and switch targets are absolute instruction indices within the
    enclosing method; {!Builder} provides symbolic labels and resolves
    them. *)

type cond =
  | Eq
  | Ne
  | Lt
  | Ge
  | Gt
  | Le

type array_kind =
  | Int_array
  | Float_array
  | Ref_array

type t =
  | Iconst of int
  | Fconst of float
  | Aconst_null
  | Iload of int
  | Istore of int
  | Fload of int
  | Fstore of int
  | Aload of int
  | Astore of int
  | Iinc of int * int  (** local slot, immediate delta *)
  | Dup
  | Pop
  | Swap
  | Iadd
  | Isub
  | Imul
  | Idiv
  | Irem
  | Ineg
  | Iand
  | Ior
  | Ixor
  | Ishl
  | Ishr
  | Iushr
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fneg
  | F2i
  | I2f
  | Fcmp  (** pushes -1, 0 or 1 *)
  | If_icmp of cond * int  (** pops two ints, branches on comparison *)
  | Ifz of cond * int  (** pops one int, compares against zero *)
  | Goto of int
  | Tableswitch of { low : int; targets : int array; default : int }
  | Invokestatic of int  (** method id *)
  | Invokevirtual of int
      (** global selector slot, resolved through the receiver's vtable *)
  | Return
  | Ireturn
  | Freturn
  | Areturn
  | New of int  (** class id *)
  | Getfield of int * int
      (** static class id (for verification) and field slot (valid for all
          subclasses: layouts place inherited fields first) *)
  | Putfield of int * int
  | Instanceof of int
  | Newarray of array_kind
  | Iaload
  | Iastore
  | Faload
  | Fastore
  | Aaload
  | Aastore
  | Arraylength
  | Athrow
      (** pops the exception object; control transfers to the innermost
          covering handler, unwinding frames as needed *)
  | Nop

val cond_to_string : cond -> string

val negate_cond : cond -> cond

val eval_cond : cond -> int -> bool
(** [eval_cond c n] evaluates the condition against a comparison result or
    operand [n] (e.g. [Lt] holds when [n < 0]). *)

val array_kind_to_string : array_kind -> string

val ends_block : t -> bool
(** Whether control after this instruction does not necessarily fall
    through in sequence — branches, switches, returns, and calls (the
    direct-threaded-inlining interpreter dispatches into callees). *)

val branch_targets : t -> int list
(** Instruction indices this instruction can branch to; they become block
    leaders. *)

val is_return : t -> bool

val is_throw : t -> bool

val is_call : t -> bool

val is_conditional : t -> bool

val stack_delta : t -> int
(** Net change in operand-stack height; call deltas depend on the callee's
    signature and are reported as 0 here. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
