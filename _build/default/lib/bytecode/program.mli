(** A linked program: all methods and classes with identifiers resolved, a
    selector-name table for virtual dispatch, and a designated entry
    method (a zero-argument static method). *)

type t = {
  methods : Mthd.t array;
  classes : Klass.t array;
  selectors : string array;  (** slot -> selector name *)
  entry : int;  (** method id *)
}

val method_by_id : t -> int -> Mthd.t
(** @raise Invalid_argument on an unknown id. *)

val class_by_id : t -> int -> Klass.t
(** @raise Invalid_argument on an unknown id. *)

val find_method : t -> string -> Mthd.t option

val find_class : t -> string -> Klass.t option

val selector_name : t -> int -> string

val entry_method : t -> Mthd.t

val total_instructions : t -> int
(** Static code size across all methods. *)

val pp : Format.formatter -> t -> unit
