(* A linked program: all methods and classes with identifiers resolved, a
   selector-name table for virtual dispatch, and a designated entry method
   (a static method of zero arguments). *)

type t = {
  methods : Mthd.t array;
  classes : Klass.t array;
  selectors : string array; (* slot -> selector name *)
  entry : int; (* method id *)
}

let method_by_id t id =
  if id < 0 || id >= Array.length t.methods then
    invalid_arg (Printf.sprintf "Program.method_by_id: no method #%d" id);
  t.methods.(id)

let class_by_id t id =
  if id < 0 || id >= Array.length t.classes then
    invalid_arg (Printf.sprintf "Program.class_by_id: no class #%d" id);
  t.classes.(id)

let find_method t name =
  let n = Array.length t.methods in
  let rec go i =
    if i >= n then None
    else if String.equal t.methods.(i).Mthd.name name then Some t.methods.(i)
    else go (i + 1)
  in
  go 0

let find_class t name =
  let n = Array.length t.classes in
  let rec go i =
    if i >= n then None
    else if String.equal t.classes.(i).Klass.name name then
      Some t.classes.(i)
    else go (i + 1)
  in
  go 0

let selector_name t slot =
  if slot < 0 || slot >= Array.length t.selectors then
    Printf.sprintf "sel#%d" slot
  else t.selectors.(slot)

let entry_method t = t.methods.(t.entry)

let total_instructions t =
  Array.fold_left (fun acc m -> acc + Array.length m.Mthd.code) 0 t.methods

let pp ppf t =
  Format.fprintf ppf "program: %d methods, %d classes, %d selectors, entry=%s"
    (Array.length t.methods) (Array.length t.classes)
    (Array.length t.selectors)
    (entry_method t).Mthd.name
