(* Method representation.  Locals [0 .. n_args-1] hold the arguments at
   entry (for virtual methods the receiver is local 0 and counts toward
   [n_args]); the remaining locals up to [n_locals] start as zero/null. *)

type return_type =
  | Rvoid
  | Rint
  | Rfloat
  | Rref

type kind =
  | Static
  | Virtual

(* An exception handler: protects pcs in [h_from, h_to) and receives
   exceptions whose class is a subclass of [h_class] at [h_target] (with
   the exception object as the only stack operand). *)
type handler = {
  h_from : int;
  h_to : int; (* exclusive *)
  h_target : int;
  h_class : int; (* class id the handler catches (with subclasses) *)
}

type t = {
  id : int;
  name : string;
  kind : kind;
  n_args : int; (* argument slots, receiver included for virtual methods *)
  n_locals : int; (* total local slots, n_locals >= n_args *)
  returns : return_type;
  code : Instr.t array;
  handlers : handler array; (* innermost-first for nested regions *)
}

(* The innermost handler covering [pc] whose class matches, searching in
   table order. *)
let handler_for t ~pc ~cls ~is_subclass =
  let n = Array.length t.handlers in
  let rec go i =
    if i >= n then None
    else
      let h = t.handlers.(i) in
      if pc >= h.h_from && pc < h.h_to && is_subclass ~sub:cls ~super:h.h_class
      then Some h
      else go (i + 1)
  in
  go 0

let return_type_to_string = function
  | Rvoid -> "void"
  | Rint -> "int"
  | Rfloat -> "float"
  | Rref -> "ref"

let kind_to_string = function Static -> "static" | Virtual -> "virtual"

(* Number of values an invocation pops from the caller's stack. *)
let invocation_pops t = t.n_args

(* Number of values an invocation pushes on return. *)
let invocation_pushes t = match t.returns with Rvoid -> 0 | _ -> 1

let pp ppf t =
  Format.fprintf ppf "%s %s %s(args=%d, locals=%d) [%d instrs]"
    (kind_to_string t.kind)
    (return_type_to_string t.returns)
    t.name t.n_args t.n_locals (Array.length t.code)
