(** Two-phase program construction: a symbolic assembler and linker.

    Phase one declares classes (named fields with kinds, selector/method
    bindings) and assembles methods from instructions whose control and
    reference operands are symbolic — labels, method names, class names,
    selectors, field names.

    Phase two ({!link}) resolves names to identifiers — method ids, class
    ids, global selector slots, field slots with inherited fields laid out
    first — and labels to absolute instruction indices, producing a
    {!Program.t}. *)

type t
(** A program under construction. *)

type meth
(** A method under construction. *)

type label

val create : unit -> t

val declare_class :
  t ->
  name:string ->
  ?super:string ->
  fields:(string * Klass.field_kind) list ->
  methods:(string * string) list ->
  unit ->
  unit
(** [fields] lists the class's own fields only (inherited fields come from
    [super]); [methods] binds selector names to virtual method names. *)

val begin_method :
  t ->
  name:string ->
  ?kind:Mthd.kind ->
  ?returns:Mthd.return_type ->
  n_args:int ->
  n_locals:int ->
  unit ->
  meth

val new_label : meth -> label

val place : meth -> label -> unit
(** Bind the label to the next emitted instruction's index.
    @raise Invalid_argument if placed twice. *)

(** Pseudo-instructions: instructions whose control or reference operands
    are still symbolic. *)
type pseudo =
  | P of Instr.t
  | P_if_icmp of Instr.cond * label
  | P_ifz of Instr.cond * label
  | P_goto of label
  | P_tableswitch of int * label array * label
  | P_invokestatic of string
  | P_invokevirtual of string
  | P_new of string
  | P_getfield of string * string
  | P_putfield of string * string
  | P_instanceof of string

val emit : meth -> pseudo -> unit

(** Emission helpers so call sites read like assembly: *)

val i : meth -> Instr.t -> unit

val iconst : meth -> int -> unit

val fconst : meth -> float -> unit

val iload : meth -> int -> unit

val istore : meth -> int -> unit

val fload : meth -> int -> unit

val fstore : meth -> int -> unit

val aload : meth -> int -> unit

val astore : meth -> int -> unit

val iinc : meth -> int -> int -> unit

val if_icmp : meth -> Instr.cond -> label -> unit

val ifz : meth -> Instr.cond -> label -> unit

val goto : meth -> label -> unit

val tableswitch :
  meth -> low:int -> targets:label array -> default:label -> unit

val invokestatic : meth -> string -> unit

val invokevirtual : meth -> string -> unit
(** Argument is a selector name. *)

val new_object : meth -> string -> unit

val getfield : meth -> string -> string -> unit
(** Class name, field name. *)

val putfield : meth -> string -> string -> unit

val instanceof : meth -> string -> unit

val athrow : meth -> unit

val add_handler :
  meth -> from_:label -> to_:label -> target:label -> cls:string -> unit
(** Register an exception handler: pcs in [[from_, to_)] protected,
    control transferred to [target] (exception object as the only stack
    operand) for exceptions of class [cls] or a subclass.  Handlers
    registered first are searched first — register inner regions before
    outer ones. *)

val finish_method : meth -> unit
(** Register the assembled method with its program.
    @raise Invalid_argument on unplaced labels. *)

val link : t -> entry:string -> Program.t
(** Resolve all names and labels.
    @raise Invalid_argument on unknown names, duplicate fields, selector
    misuse, or a non-static / non-nullary entry. *)
