(* Two-phase program construction.

   Phase one: classes are declared with named fields and (selector, method)
   pairs; methods are assembled from pseudo-instructions carrying symbolic
   labels, method names, class names, selectors and field names.

   Phase two ([link]): names are resolved to identifiers — method ids, class
   ids, global selector slots and field slots (inherited fields laid out
   first) — and labels to absolute instruction indices, producing a
   {!Program.t}. *)

type label = int

type pseudo =
  | P of Instr.t
  | P_if_icmp of Instr.cond * label
  | P_ifz of Instr.cond * label
  | P_goto of label
  | P_tableswitch of int * label array * label
  | P_invokestatic of string
  | P_invokevirtual of string (* selector name *)
  | P_new of string
  | P_getfield of string * string (* class name, field name *)
  | P_putfield of string * string
  | P_instanceof of string

type class_decl = {
  c_name : string;
  c_super : string option;
  c_fields : (string * Klass.field_kind) list;
    (* own fields only; inherited come from super *)
  c_methods : (string * string) list; (* selector, method name *)
}

type handler_decl = {
  hd_from : label;
  hd_to : label;
  hd_target : label;
  hd_class : string;
}

type method_decl = {
  m_name : string;
  m_kind : Mthd.kind;
  m_returns : Mthd.return_type;
  m_n_args : int;
  m_n_locals : int;
  m_code : pseudo array;
  m_label_pcs : int array; (* label id -> resolved pc *)
  m_handlers : handler_decl list; (* innermost first *)
}

type t = {
  mutable classes : class_decl list; (* reverse order *)
  mutable methods : method_decl list; (* reverse order *)
}

type meth = {
  owner : t;
  name : string;
  kind : Mthd.kind;
  returns : Mthd.return_type;
  n_args : int;
  mutable n_locals : int;
  mutable code_rev : pseudo list;
  mutable code_len : int;
  mutable labels : (int * int) list; (* label id, pc; -1 = unplaced *)
  mutable next_label : int;
  mutable handlers_rev : handler_decl list;
}

let create () = { classes = []; methods = [] }

let declare_class t ~name ?super ~fields ~methods () =
  if List.exists (fun c -> String.equal c.c_name name) t.classes then
    invalid_arg (Printf.sprintf "Builder.declare_class: duplicate class %s" name);
  t.classes <-
    { c_name = name; c_super = super; c_fields = fields; c_methods = methods }
    :: t.classes

let begin_method t ~name ?(kind = Mthd.Static) ?(returns = Mthd.Rvoid)
    ~n_args ~n_locals () =
  if n_locals < n_args then
    invalid_arg "Builder.begin_method: n_locals < n_args";
  if List.exists (fun m -> String.equal m.m_name name) t.methods then
    invalid_arg (Printf.sprintf "Builder.begin_method: duplicate method %s" name);
  {
    owner = t;
    name;
    kind;
    returns;
    n_args;
    n_locals;
    code_rev = [];
    code_len = 0;
    labels = [];
    next_label = 0;
    handlers_rev = [];
  }

let new_label (m : meth) =
  let l = m.next_label in
  m.next_label <- l + 1;
  m.labels <- (l, -1) :: m.labels;
  l

let place (m : meth) (l : label) =
  match List.assoc_opt l m.labels with
  | None -> invalid_arg "Builder.place: unknown label"
  | Some pc when pc >= 0 -> invalid_arg "Builder.place: label placed twice"
  | Some _ ->
      m.labels <-
        List.map (fun (l', pc) -> if l' = l then (l', m.code_len) else (l', pc))
          m.labels

let emit (m : meth) (p : pseudo) =
  m.code_rev <- p :: m.code_rev;
  m.code_len <- m.code_len + 1

(* Common emission helpers so call sites read like assembly. *)
let i m x = emit m (P x)
let iconst m n = i m (Instr.Iconst n)
let fconst m f = i m (Instr.Fconst f)
let iload m n = i m (Instr.Iload n)
let istore m n = i m (Instr.Istore n)
let fload m n = i m (Instr.Fload n)
let fstore m n = i m (Instr.Fstore n)
let aload m n = i m (Instr.Aload n)
let astore m n = i m (Instr.Astore n)
let iinc m l d = i m (Instr.Iinc (l, d))
let if_icmp m c l = emit m (P_if_icmp (c, l))
let ifz m c l = emit m (P_ifz (c, l))
let goto m l = emit m (P_goto l)
let tableswitch m ~low ~targets ~default =
  emit m (P_tableswitch (low, targets, default))
let invokestatic m name = emit m (P_invokestatic name)
let invokevirtual m selector = emit m (P_invokevirtual selector)
let new_object m cls = emit m (P_new cls)
let getfield m cls fld = emit m (P_getfield (cls, fld))
let putfield m cls fld = emit m (P_putfield (cls, fld))
let instanceof m cls = emit m (P_instanceof cls)
let athrow m = i m Instr.Athrow

(* Register an exception handler: pcs in [from_, to_) protected, control
   transferred to [target] (exception object on the stack) for exceptions
   of class [cls] or a subclass.  Handlers registered first are searched
   first, so register inner regions before outer ones. *)
let add_handler m ~from_ ~to_ ~target ~cls =
  m.handlers_rev <-
    { hd_from = from_; hd_to = to_; hd_target = target; hd_class = cls }
    :: m.handlers_rev

let finish_method (m : meth) =
  let code = Array.of_list (List.rev m.code_rev) in
  let label_pcs = Array.make m.next_label (-1) in
  List.iter
    (fun (l, pc) ->
      if pc < 0 then
        invalid_arg
          (Printf.sprintf "Builder.finish_method(%s): label %d never placed"
             m.name l);
      label_pcs.(l) <- pc)
    m.labels;
  (* Labels placed at the very end of the method would resolve past the
     code array; that is a builder bug surfaced at link time by the
     verifier, but catch the obvious case here. *)
  Array.iter
    (fun pc ->
      if pc > Array.length code then
        invalid_arg
          (Printf.sprintf "Builder.finish_method(%s): label beyond code end"
             m.name))
    label_pcs;
  m.owner.methods <-
    {
      m_name = m.name;
      m_kind = m.kind;
      m_returns = m.returns;
      m_n_args = m.n_args;
      m_n_locals = m.n_locals;
      m_code = code;
      m_label_pcs = label_pcs;
      m_handlers = List.rev m.handlers_rev;
    }
    :: m.owner.methods

(* ------------------------------------------------------------------ *)
(* Linking                                                              *)
(* ------------------------------------------------------------------ *)

let link (t : t) ~entry : Program.t =
  let classes = Array.of_list (List.rev t.classes) in
  let methods = Array.of_list (List.rev t.methods) in
  let method_id name =
    let rec go i =
      if i >= Array.length methods then
        invalid_arg (Printf.sprintf "Builder.link: unknown method %s" name)
      else if String.equal methods.(i).m_name name then i
      else go (i + 1)
    in
    go 0
  in
  let class_id name =
    let rec go i =
      if i >= Array.length classes then
        invalid_arg (Printf.sprintf "Builder.link: unknown class %s" name)
      else if String.equal classes.(i).c_name name then i
      else go (i + 1)
    in
    go 0
  in
  (* Global selector slots: every selector mentioned in any class. *)
  let selector_tbl = Hashtbl.create 16 in
  let selectors_rev = ref [] in
  let selector_slot name =
    match Hashtbl.find_opt selector_tbl name with
    | Some s -> s
    | None ->
        let s = Hashtbl.length selector_tbl in
        Hashtbl.add selector_tbl name s;
        selectors_rev := name :: !selectors_rev;
        s
  in
  Array.iter
    (fun c -> List.iter (fun (sel, _) -> ignore (selector_slot sel)) c.c_methods)
    classes;
  (* Field layouts, superclass fields first, memoized over the hierarchy. *)
  let layouts : (string * Klass.field_kind) array option array =
    Array.make (Array.length classes) None
  in
  let rec layout cid =
    match layouts.(cid) with
    | Some l -> l
    | None ->
        let c = classes.(cid) in
        let inherited =
          match c.c_super with
          | None -> [||]
          | Some s -> layout (class_id s)
        in
        let l = Array.append inherited (Array.of_list c.c_fields) in
        Array.iteri
          (fun i (f, _) ->
            for j = i + 1 to Array.length l - 1 do
              if String.equal (fst l.(j)) f then
                invalid_arg
                  (Printf.sprintf
                     "Builder.link: class %s: duplicate field %s in layout"
                     c.c_name f)
            done)
          l;
        layouts.(cid) <- Some l;
        l
  in
  let n_selectors = Hashtbl.length selector_tbl in
  (* Vtables with inheritance: copy super's, then apply own overrides. *)
  let vtables : int array option array = Array.make (Array.length classes) None in
  let rec vtable cid =
    match vtables.(cid) with
    | Some v -> v
    | None ->
        let c = classes.(cid) in
        let v =
          match c.c_super with
          | None -> Array.make n_selectors (-1)
          | Some s -> Array.copy (vtable (class_id s))
        in
        List.iter
          (fun (sel, mname) ->
            let m = method_id mname in
            if methods.(m).m_kind <> Mthd.Virtual then
              invalid_arg
                (Printf.sprintf
                   "Builder.link: class %s binds selector %s to non-virtual %s"
                   c.c_name sel mname);
            v.(selector_slot sel) <- m)
          c.c_methods;
        vtables.(cid) <- Some v;
        v
  in
  let linked_classes =
    Array.mapi
      (fun cid c ->
        let l = layout cid in
        {
          Klass.id = cid;
          name = c.c_name;
          super = Option.map class_id c.c_super;
          field_names = Array.map fst l;
          field_kinds = Array.map snd l;
          vtable = vtable cid;
        })
      classes
  in
  let resolve_field cname fname =
    let cid = class_id cname in
    match Klass.field_slot linked_classes.(cid) fname with
    | Some slot -> (cid, slot)
    | None ->
        invalid_arg
          (Printf.sprintf "Builder.link: class %s has no field %s" cname fname)
  in
  let link_method (md : method_decl) id : Mthd.t =
    let lbl l =
      let pc = md.m_label_pcs.(l) in
      if pc < 0 || pc >= Array.length md.m_code then
        invalid_arg
          (Printf.sprintf "Builder.link(%s): label resolves outside code"
             md.m_name);
      pc
    in
    let code =
      Array.map
        (function
          | P x -> x
          | P_if_icmp (c, l) -> Instr.If_icmp (c, lbl l)
          | P_ifz (c, l) -> Instr.Ifz (c, lbl l)
          | P_goto l -> Instr.Goto (lbl l)
          | P_tableswitch (low, targets, default) ->
              Instr.Tableswitch
                { low; targets = Array.map lbl targets; default = lbl default }
          | P_invokestatic name -> Instr.Invokestatic (method_id name)
          | P_invokevirtual sel ->
              (match Hashtbl.find_opt selector_tbl sel with
              | Some slot -> Instr.Invokevirtual slot
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Builder.link(%s): selector %s bound by no class"
                       md.m_name sel))
          | P_new cname -> Instr.New (class_id cname)
          | P_getfield (c, f) ->
              let cid, slot = resolve_field c f in
              Instr.Getfield (cid, slot)
          | P_putfield (c, f) ->
              let cid, slot = resolve_field c f in
              Instr.Putfield (cid, slot)
          | P_instanceof c -> Instr.Instanceof (class_id c))
        md.m_code
    in
    let resolve_handler_label l =
      let pc = md.m_label_pcs.(l) in
      if pc < 0 || pc > Array.length md.m_code then
        invalid_arg
          (Printf.sprintf "Builder.link(%s): handler label out of range"
             md.m_name);
      pc
    in
    let handlers =
      Array.of_list
        (List.map
           (fun hd ->
             let h_from = resolve_handler_label hd.hd_from in
             let h_to = resolve_handler_label hd.hd_to in
             let h_target = lbl hd.hd_target in
             if h_from >= h_to then
               invalid_arg
                 (Printf.sprintf "Builder.link(%s): empty handler range"
                    md.m_name);
             {
               Mthd.h_from;
               h_to;
               h_target;
               h_class = class_id hd.hd_class;
             })
           md.m_handlers)
    in
    {
      Mthd.id;
      name = md.m_name;
      kind = md.m_kind;
      n_args = md.m_n_args;
      n_locals = md.m_n_locals;
      returns = md.m_returns;
      code;
      handlers;
    }
  in
  let linked_methods = Array.mapi (fun id md -> link_method md id) methods in
  let entry_id = method_id entry in
  let em = linked_methods.(entry_id) in
  if em.Mthd.kind <> Mthd.Static || em.Mthd.n_args <> 0 then
    invalid_arg "Builder.link: entry must be a zero-argument static method";
  let selectors = Array.of_list (List.rev !selectors_rev) in
  {
    Program.methods = linked_methods;
    classes = linked_classes;
    selectors;
    entry = entry_id;
  }
