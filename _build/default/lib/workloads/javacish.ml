(* Stand-in for SPECjvm98 javac: a compiler front end written in the guest
   bytecode.  It generates random arithmetic-expression token streams, runs
   a recursive-descent parser building heap-allocated AST nodes, then makes
   three tree passes through virtual dispatch (evaluate, measure, constant
   fold).  Branching is irregular — parser switches, rng-shaped trees, and
   polymorphic call sites — which is what makes javac hard for trace
   caches. *)

open Dsl
module S = Bytecode.Structured

(* token encoding *)
let t_num = 0
let t_var = 1
let t_plus = 2
let t_minus = 3
let t_star = 4
let t_lpar = 5
let t_rpar = 6
let t_end = 7

let define (p : S.t) ~size =
  define_prelude p;
  (* parse errors are real exceptions: thrown by the parser on malformed
     input (which the generator produces for a small fraction of streams),
     caught per-expression in main — the rarely-taken handler edges the
     paper calls out *)
  S.def_class p ~name:"ParseExn" ~fields:[ ("at", S.I) ] ~methods:[] ();
  S.def_class p ~name:"Node" ~fields:[] ~methods:[] ();
  S.def_class p ~name:"Num" ~super:"Node"
    ~fields:[ ("value", S.I) ]
    ~methods:[ ("eval", "num_eval"); ("nsize", "num_size"); ("fold", "num_fold") ]
    ();
  S.def_class p ~name:"Varn" ~super:"Node"
    ~fields:[ ("idx", S.I) ]
    ~methods:[ ("eval", "var_eval"); ("nsize", "var_size"); ("fold", "var_fold") ]
    ();
  S.def_class p ~name:"Bin" ~super:"Node"
    ~fields:[ ("op", S.I); ("left", S.R); ("right", S.R) ]
    ~methods:[ ("eval", "bin_eval"); ("nsize", "bin_size"); ("fold", "bin_fold") ]
    ();
  (* eval *)
  S.def_method p ~name:"num_eval" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("env", S.Arr S.I) ]
    ~ret:S.I
    ~body:[ ret (getf "Num" "value" (v "this")) ]
    ();
  S.def_method p ~name:"var_eval" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("env", S.Arr S.I) ]
    ~ret:S.I
    ~body:[ ret (v "env" @. (getf "Varn" "idx" (v "this") &! i 15)) ]
    ();
  S.def_method p ~name:"bin_eval" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("env", S.Arr S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "l" (vcall "eval" (getf "Bin" "left" (v "this")) [ v "env" ]);
        decl_i "r" (vcall "eval" (getf "Bin" "right" (v "this")) [ v "env" ]);
        switch
          (getf "Bin" "op" (v "this"))
          [
            (0, [ ret (v "l" +! v "r") ]);
            (1, [ ret (v "l" -! v "r") ]);
            (2, [ ret ((v "l" *! v "r") &! i 0xFFFFFF) ]);
          ]
          [ ret (i 0) ];
      ]
    ();
  (* nsize *)
  S.def_method p ~name:"num_size" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.I
    ~body:[ ret (i 1) ] ();
  S.def_method p ~name:"var_size" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.I
    ~body:[ ret (i 1) ] ();
  S.def_method p ~name:"bin_size" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.I
    ~body:
      [
        ret
          (i 1
          +! vcall "nsize" (getf "Bin" "left" (v "this")) []
          +! vcall "nsize" (getf "Bin" "right" (v "this")) []);
      ]
    ();
  (* fold: constant folding, rebuilding the tree *)
  S.def_method p ~name:"num_fold" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.R
    ~body:[ ret (v "this") ] ();
  S.def_method p ~name:"var_fold" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.R
    ~body:[ ret (v "this") ] ();
  S.def_method p ~name:"mk_num" ~args:[ ("value", S.I) ] ~ret:S.R
    ~body:
      [
        decl "n" S.R (new_obj "Num");
        setf "Num" "value" (v "n") (v "value");
        ret (v "n");
      ]
    ();
  S.def_method p ~name:"mk_bin"
    ~args:[ ("op", S.I); ("l", S.R); ("r", S.R) ]
    ~ret:S.R
    ~body:
      [
        decl "n" S.R (new_obj "Bin");
        setf "Bin" "op" (v "n") (v "op");
        setf "Bin" "left" (v "n") (v "l");
        setf "Bin" "right" (v "n") (v "r");
        ret (v "n");
      ]
    ();
  S.def_method p ~name:"bin_fold" ~kind:Bytecode.Mthd.Virtual ~args:[] ~ret:S.R
    ~body:
      [
        decl "l" S.R (vcall "fold" (getf "Bin" "left" (v "this")) []);
        decl "r" S.R (vcall "fold" (getf "Bin" "right" (v "this")) []);
        if_
          (is_instance "Num" (v "l") &&! is_instance "Num" (v "r"))
          [
            decl_i "lv" (getf "Num" "value" (v "l"));
            decl_i "rv" (getf "Num" "value" (v "r"));
            switch
              (getf "Bin" "op" (v "this"))
              [
                (0, [ ret (call "mk_num" [ v "lv" +! v "rv" ]) ]);
                (1, [ ret (call "mk_num" [ v "lv" -! v "rv" ]) ]);
                (2, [ ret (call "mk_num" [ (v "lv" *! v "rv") &! i 0xFFFFFF ]) ]);
              ]
              [ ret (call "mk_num" [ i 0 ]) ];
          ]
          [ ret (call "mk_bin" [ getf "Bin" "op" (v "this"); v "l"; v "r" ]) ];
      ]
    ();
  (* Token generation: a bounded recursive grammar expansion.  [limit]
     protects the buffer; when close to it the generator forces leaves. *)
  S.def_method p ~name:"gen_factor"
    ~args:
      [ ("state", S.Arr S.I); ("toks", S.Arr S.I); ("pos", S.Arr S.I);
        ("depth", S.I) ]
    ~body:
      [
        decl_i "pp" (v "pos" @. i 0);
        decl_i "choice" (call "rng_range" [ v "state"; i 8 ]);
        if_
          (v "choice" <! i 4 ||! (v "pp" >! len (v "toks") -! i 16)
          ||! (v "depth" >! i 4))
          [
            (* number literal *)
            seti (v "toks") (v "pp") (i t_num);
            seti (v "toks") (v "pp" +! i 1)
              (call "rng_range" [ v "state"; i 1000 ]);
            seti (v "pos") (i 0) (v "pp" +! i 2);
          ]
          [
            if_
              (v "choice" <! i 7)
              [
                (* variable *)
                seti (v "toks") (v "pp") (i t_var);
                seti (v "toks") (v "pp" +! i 1)
                  (call "rng_range" [ v "state"; i 16 ]);
                seti (v "pos") (i 0) (v "pp" +! i 2);
              ]
              [
                (* parenthesised subexpression *)
                seti (v "toks") (v "pp") (i t_lpar);
                seti (v "pos") (i 0) (v "pp" +! i 1);
                ignore_
                  (call "gen_expr"
                     [ v "state"; v "toks"; v "pos"; v "depth" +! i 1 ]);
                decl_i "pe" (v "pos" @. i 0);
                seti (v "toks") (v "pe") (i t_rpar);
                seti (v "pos") (i 0) (v "pe" +! i 1);
              ];
          ];
      ]
    ();
  S.def_method p ~name:"gen_term"
    ~args:
      [ ("state", S.Arr S.I); ("toks", S.Arr S.I); ("pos", S.Arr S.I);
        ("depth", S.I) ]
    ~body:
      [
        ignore_ (call "gen_factor" [ v "state"; v "toks"; v "pos"; v "depth" ]);
        while_
          (call "rng_range" [ v "state"; i 4 ] =! i 0
          &&! (v "pos" @. i 0 <! len (v "toks") -! i 16))
          [
            decl_i "pp" (v "pos" @. i 0);
            seti (v "toks") (v "pp") (i t_star);
            seti (v "pos") (i 0) (v "pp" +! i 1);
            ignore_
              (call "gen_factor" [ v "state"; v "toks"; v "pos"; v "depth" ]);
          ];
      ]
    ();
  S.def_method p ~name:"gen_expr"
    ~args:
      [ ("state", S.Arr S.I); ("toks", S.Arr S.I); ("pos", S.Arr S.I);
        ("depth", S.I) ]
    ~body:
      [
        ignore_ (call "gen_term" [ v "state"; v "toks"; v "pos"; v "depth" ]);
        while_
          (call "rng_range" [ v "state"; i 3 ] =! i 0
          &&! (v "pos" @. i 0 <! len (v "toks") -! i 16))
          [
            decl_i "pp" (v "pos" @. i 0);
            if_
              (call "rng_range" [ v "state"; i 2 ] =! i 0)
              [ seti (v "toks") (v "pp") (i t_plus) ]
              [ seti (v "toks") (v "pp") (i t_minus) ];
            seti (v "pos") (i 0) (v "pp" +! i 1);
            ignore_
              (call "gen_term" [ v "state"; v "toks"; v "pos"; v "depth" ]);
          ];
      ]
    ();
  (* Recursive-descent parser over the token buffer. *)
  S.def_method p ~name:"parse_factor"
    ~args:[ ("toks", S.Arr S.I); ("pos", S.Arr S.I) ]
    ~ret:S.R
    ~body:
      [
        decl_i "pp" (v "pos" @. i 0);
        decl_i "t" (v "toks" @. v "pp");
        switch (v "t")
          [
            ( t_num,
              [
                seti (v "pos") (i 0) (v "pp" +! i 2);
                ret (call "mk_num" [ v "toks" @. (v "pp" +! i 1) ]);
              ] );
            ( t_var,
              [
                seti (v "pos") (i 0) (v "pp" +! i 2);
                decl "n" S.R (new_obj "Varn");
                setf "Varn" "idx" (v "n") (v "toks" @. (v "pp" +! i 1));
                ret (v "n");
              ] );
            ( t_lpar,
              [
                seti (v "pos") (i 0) (v "pp" +! i 1);
                decl "e" S.R (call "parse_expr" [ v "toks"; v "pos" ]);
                (* consume ')' *)
                seti (v "pos") (i 0) ((v "pos" @. i 0) +! i 1);
                ret (v "e");
              ] );
          ]
          [
            (* unexpected token: parse error *)
            decl "err" S.R (new_obj "ParseExn");
            setf "ParseExn" "at" (v "err") (v "pp");
            throw (v "err");
          ];
      ]
    ();
  S.def_method p ~name:"parse_term"
    ~args:[ ("toks", S.Arr S.I); ("pos", S.Arr S.I) ]
    ~ret:S.R
    ~body:
      [
        decl "acc" S.R (call "parse_factor" [ v "toks"; v "pos" ]);
        while_
          ((v "toks" @. (v "pos" @. i 0)) =! i t_star)
          [
            seti (v "pos") (i 0) ((v "pos" @. i 0) +! i 1);
            decl "rhs" S.R (call "parse_factor" [ v "toks"; v "pos" ]);
            set "acc" (call "mk_bin" [ i 2; v "acc"; v "rhs" ]);
          ];
        ret (v "acc");
      ]
    ();
  S.def_method p ~name:"parse_expr"
    ~args:[ ("toks", S.Arr S.I); ("pos", S.Arr S.I) ]
    ~ret:S.R
    ~body:
      [
        decl "acc" S.R (call "parse_term" [ v "toks"; v "pos" ]);
        decl_i "t" (v "toks" @. (v "pos" @. i 0));
        while_
          (v "t" =! i t_plus ||! (v "t" =! i t_minus))
          [
            seti (v "pos") (i 0) ((v "pos" @. i 0) +! i 1);
            decl "rhs" S.R (call "parse_term" [ v "toks"; v "pos" ]);
            if_
              (v "t" =! i t_plus)
              [ set "acc" (call "mk_bin" [ i 0; v "acc"; v "rhs" ]) ]
              [ set "acc" (call "mk_bin" [ i 1; v "acc"; v "rhs" ]) ];
            set "t" (v "toks" @. (v "pos" @. i 0));
          ];
        ret (v "acc");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl "state" (S.Arr S.I) (new_arr S.I (i 1));
        seti (v "state") (i 0) (i 24680);
        decl "toks" (S.Arr S.I) (new_arr S.I (i 4096));
        decl "pos" (S.Arr S.I) (new_arr S.I (i 1));
        decl "env" (S.Arr S.I) (new_arr S.I (i 16));
        for_ "k" (i 0) (i 16)
          [ seti (v "env") (v "k") (call "rng_range" [ v "state"; i 100 ]) ];
        decl_i "chk" (i 0);
        decl_i "errors" (i 0);
        for_ "e" (i 0) (i size)
          [
            (* generate one expression's tokens *)
            seti (v "pos") (i 0) (i 0);
            ignore_ (call "gen_expr" [ v "state"; v "toks"; v "pos"; i 0 ]);
            decl_i "endp" (v "pos" @. i 0);
            seti (v "toks") (v "endp") (i t_end);
            (* a few streams are corrupted; the parser throws on them *)
            when_
              (call "rng_range" [ v "state"; i 32 ] =! i 0)
              [ seti (v "toks") (i 0) (i t_rpar) ];
            try_
              [
                (* parse *)
                seti (v "pos") (i 0) (i 0);
                decl "ast" S.R (call "parse_expr" [ v "toks"; v "pos" ]);
                (* evaluate, measure, fold, re-evaluate *)
                decl_i "x" (vcall "eval" (v "ast") [ v "env" ]);
                decl_i "sz" (vcall "nsize" (v "ast") []);
                decl "folded" S.R (vcall "fold" (v "ast") []);
                decl_i "y" (vcall "eval" (v "folded") [ v "env" ]);
                decl_i "sz2" (vcall "nsize" (v "folded") []);
                when_ (v "x" <>! v "y") [ ret (i (-1)) ];
                set "chk"
                  ((v "chk" +! v "x" +! (v "sz" *! i 31) +! v "sz2")
                  &! i 0x3FFFFFFF);
              ]
              ~catch:("ParseExn", "perr")
              [
                set "errors" (v "errors" +! i 1);
                set "chk"
                  ((v "chk" +! getf "ParseExn" "at" (v "perr"))
                  &! i 0x3FFFFFFF);
              ];
          ];
        ret ((v "chk" *! i 2 +! v "errors") &! i 0x3FFFFFFF);
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "javac";
    description =
      "expression-language front end: token generation, recursive-descent \
       parsing into heap ASTs, and three virtual-dispatch tree passes";
    paper_counterpart = "SPECjvm98 javac";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 400;
    bench_size = 15_000;
  }
