(** A benchmark program: a named generator producing a linked bytecode
    program at a given size. *)

type t = {
  name : string;
  description : string;
  paper_counterpart : string;
      (** the benchmark from the paper this one stands in for *)
  build : size:int -> Bytecode.Program.t;
  default_size : int;  (** drives tests and examples *)
  bench_size : int;  (** drives the table-regeneration runs *)
}

val build_default : t -> Bytecode.Program.t

val build_bench : t -> Bytecode.Program.t

val pp : Format.formatter -> t -> unit
