(* Stand-in for SPECjvm98 raytrace: a small recursive-free ray tracer over
   a polymorphic scene (spheres and a checkerboard ground plane), with
   primary rays and shadow rays.  Intersection and shading go through
   virtual dispatch per shape; float math dominates; branch behaviour is
   moderately predictable (hit/miss patterns are spatially coherent). *)

open Dsl
module S = Bytecode.Structured

let define (p : S.t) ~size =
  define_prelude p;
  S.def_class p ~name:"Shape" ~fields:[] ~methods:[] ();
  S.def_class p ~name:"Sphere" ~super:"Shape"
    ~fields:[ ("cx", S.F); ("cy", S.F); ("cz", S.F); ("r", S.F) ]
    ~methods:[ ("hit", "sphere_hit"); ("shade", "sphere_shade") ]
    ();
  S.def_class p ~name:"PlaneY" ~super:"Shape"
    ~fields:[ ("y0", S.F) ]
    ~methods:[ ("hit", "plane_hit"); ("shade", "plane_shade") ]
    ();
  (* hit(ox..dz) -> parameter t along the ray, or -1 on miss *)
  S.def_method p ~name:"sphere_hit" ~kind:Bytecode.Mthd.Virtual
    ~args:
      [ ("ox", S.F); ("oy", S.F); ("oz", S.F); ("dx", S.F); ("dy", S.F);
        ("dz", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "lx" (v "ox" -! getf "Sphere" "cx" (v "this"));
        decl_f "ly" (v "oy" -! getf "Sphere" "cy" (v "this"));
        decl_f "lz" (v "oz" -! getf "Sphere" "cz" (v "this"));
        decl_f "b" ((v "lx" *! v "dx") +! (v "ly" *! v "dy") +! (v "lz" *! v "dz"));
        decl_f "rr" (getf "Sphere" "r" (v "this"));
        decl_f "c2"
          ((v "lx" *! v "lx") +! (v "ly" *! v "ly") +! (v "lz" *! v "lz")
          -! (v "rr" *! v "rr"));
        decl_f "disc" ((v "b" *! v "b") -! v "c2");
        when_ (v "disc" <! f 0.0) [ ret (f (-1.0)) ];
        decl_f "sq" (call "fsqrt" [ v "disc" ]);
        decl_f "t" (neg (v "b") -! v "sq");
        when_ (v "t" >! f 0.001) [ ret (v "t") ];
        set "t" (neg (v "b") +! v "sq");
        when_ (v "t" >! f 0.001) [ ret (v "t") ];
        ret (f (-1.0));
      ]
    ();
  S.def_method p ~name:"plane_hit" ~kind:Bytecode.Mthd.Virtual
    ~args:
      [ ("ox", S.F); ("oy", S.F); ("oz", S.F); ("dx", S.F); ("dy", S.F);
        ("dz", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "ady" (call "fabs" [ v "dy" ]);
        when_ (v "ady" <! f 0.0001) [ ret (f (-1.0)) ];
        decl_f "t" ((getf "PlaneY" "y0" (v "this") -! v "oy") /! v "dy");
        when_ (v "t" >! f 0.001) [ ret (v "t") ];
        ret (f (-1.0));
      ]
    ();
  (* shade(px,py,pz) -> diffuse intensity in [0,1] given the fixed light *)
  S.def_method p ~name:"sphere_shade" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("px", S.F); ("py", S.F); ("pz", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "nx" ((v "px" -! getf "Sphere" "cx" (v "this"))
                     /! getf "Sphere" "r" (v "this"));
        decl_f "ny" ((v "py" -! getf "Sphere" "cy" (v "this"))
                     /! getf "Sphere" "r" (v "this"));
        decl_f "nz" ((v "pz" -! getf "Sphere" "cz" (v "this"))
                     /! getf "Sphere" "r" (v "this"));
        decl_f "d"
          ((v "nx" *! f 0.577) +! (v "ny" *! f 0.577) +! (v "nz" *! f (-0.577)));
        when_ (v "d" <! f 0.0) [ ret (f 0.0) ];
        ret (v "d");
      ]
    ();
  S.def_method p ~name:"plane_shade" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("px", S.F); ("py", S.F); ("pz", S.F) ]
    ~ret:S.F
    ~body:
      [
        (* checkerboard albedo *)
        decl_i "cx" (f2i (v "px" +! f 1000.0));
        decl_i "cz" (f2i (v "pz" +! f 1000.0));
        if_
          (((v "cx" +! v "cz") &! i 1) =! i 0)
          [ ret (f 0.52) ]
          [ ret (f 0.18) ];
      ]
    ();
  (* closest_hit: scan the scene, returning the shape index (or -1) and
     leaving the hit distance in out[0] *)
  S.def_method p ~name:"closest_hit"
    ~args:
      [ ("scene", S.Arr S.R); ("ox", S.F); ("oy", S.F); ("oz", S.F);
        ("dx", S.F); ("dy", S.F); ("dz", S.F); ("out", S.Arr S.F) ]
    ~ret:S.I
    ~body:
      [
        decl_f "best" (f 1e30);
        decl_i "who" (i (-1));
        for_ "k" (i 0)
          (len (v "scene"))
          [
            decl_f "t"
              (vcall "hit"
                 (v "scene" @. v "k")
                 [ v "ox"; v "oy"; v "oz"; v "dx"; v "dy"; v "dz" ]);
            when_
              (v "t" >! f 0.0 &&! (v "t" <! v "best"))
              [ set "best" (v "t"); set "who" (v "k") ];
          ];
        seti (v "out") (i 0) (v "best");
        ret (v "who");
      ]
    ();
  S.def_method p ~name:"mk_sphere"
    ~args:[ ("cx", S.F); ("cy", S.F); ("cz", S.F); ("r", S.F) ]
    ~ret:S.R
    ~body:
      [
        decl "s" S.R (new_obj "Sphere");
        setf "Sphere" "cx" (v "s") (v "cx");
        setf "Sphere" "cy" (v "s") (v "cy");
        setf "Sphere" "cz" (v "s") (v "cz");
        setf "Sphere" "r" (v "s") (v "r");
        ret (v "s");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl "scene" (S.Arr S.R) (new_arr S.R (i 6));
        seti (v "scene") (i 0)
          (call "mk_sphere" [ f 0.0; f 1.0; f 3.0; f 1.0 ]);
        seti (v "scene") (i 1)
          (call "mk_sphere" [ f (-1.8); f 0.6; f 2.2; f 0.6 ]);
        seti (v "scene") (i 2)
          (call "mk_sphere" [ f 1.7; f 0.5; f 2.4; f 0.5 ]);
        seti (v "scene") (i 3)
          (call "mk_sphere" [ f 0.4; f 0.3; f 1.4; f 0.3 ]);
        seti (v "scene") (i 4)
          (call "mk_sphere" [ f (-0.7); f 0.25; f 1.2; f 0.25 ]);
        decl "plane" S.R (new_obj "PlaneY");
        setf "PlaneY" "y0" (v "plane") (f 0.0);
        seti (v "scene") (i 5) (v "plane");
        decl "tout" (S.Arr S.F) (new_arr S.F (i 1));
        decl_i "w" (i size);
        decl_i "chk" (i 0);
        for_ "py" (i 0) (v "w")
          [
            for_ "px" (i 0) (v "w")
              [
                (* camera at (0, 1, -4) looking towards +z *)
                decl_f "dx" ((i2f (v "px") /! i2f (v "w")) -! f 0.5);
                decl_f "dy" (f 0.5 -! (i2f (v "py") /! i2f (v "w")));
                decl_f "dz" (f 1.0);
                decl_f "ilen"
                  (f 1.0
                  /! call "fsqrt"
                       [
                         (v "dx" *! v "dx") +! (v "dy" *! v "dy")
                         +! (v "dz" *! v "dz");
                       ]);
                set "dx" (v "dx" *! v "ilen");
                set "dy" (v "dy" *! v "ilen");
                set "dz" (v "dz" *! v "ilen");
                decl_i "who"
                  (call "closest_hit"
                     [
                       v "scene"; f 0.0; f 1.0; f (-4.0); v "dx"; v "dy";
                       v "dz"; v "tout";
                     ]);
                decl_f "color" (f 0.05);
                when_
                  (v "who" >=! i 0)
                  [
                    decl_f "t" (v "tout" @. i 0);
                    decl_f "hx" (v "dx" *! v "t");
                    decl_f "hy" (f 1.0 +! (v "dy" *! v "t"));
                    decl_f "hz" (f (-4.0) +! (v "dz" *! v "t"));
                    set "color"
                      (vcall "shade"
                         (v "scene" @. v "who")
                         [ v "hx"; v "hy"; v "hz" ]);
                    (* shadow ray towards the light direction *)
                    decl_i "blocker"
                      (call "closest_hit"
                         [
                           v "scene";
                           v "hx" +! f 0.01;
                           v "hy" +! f 0.01;
                           v "hz" -! f 0.01;
                           f 0.577;
                           f 0.577;
                           f (-0.577);
                           v "tout";
                         ]);
                    when_
                      (v "blocker" >=! i 0 &&! (v "blocker" <>! v "who"))
                      [ set "color" (v "color" *! f 0.25) ];
                  ];
                set "chk"
                  ((v "chk" +! f2i (v "color" *! f 255.0)) &! i 0x3FFFFFFF);
              ];
          ];
        ret (v "chk");
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "raytrace";
    description =
      "ray tracer: primary + shadow rays against a polymorphic scene of \
       spheres and a checkerboard plane";
    paper_counterpart = "SPECjvm98 raytrace";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 24;
    bench_size = 100;
  }
