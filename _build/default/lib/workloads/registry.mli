(** All benchmark programs, in the order the paper's tables list them:
    compress, javac, raytrace, mpegaudio, soot, scimark. *)

val all : Workload.t list

val find : string -> Workload.t option

val names : unit -> string list
