(* A benchmark program: a named generator producing a linked, verified
   bytecode program at a given size.  [default_size] drives tests and the
   examples; [bench_size] drives the table-regeneration runs. *)

type t = {
  name : string;
  description : string;
  paper_counterpart : string; (* the benchmark this one stands in for *)
  build : size:int -> Bytecode.Program.t;
  default_size : int;
  bench_size : int;
}

let build_default w = w.build ~size:w.default_size

let build_bench w = w.build ~size:w.bench_size

let pp ppf w =
  Format.fprintf ppf "%-10s (for %s): %s" w.name w.paper_counterpart
    w.description
