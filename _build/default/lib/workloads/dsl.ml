(* Thin combinator layer over {!Bytecode.Structured} so workload programs
   read close to the Java they stand in for.  Conventions:

   - integer/float expression operators end in [!]: [a +! b], [a <! b];
   - [v "x"] reads a local, [i 42] and [f 3.14] are literals;
   - [a @. k] indexes array [a] at [k]. *)

module S = Bytecode.Structured

type expr = S.expr
type stmt = S.stmt

let i n = S.Cint n
let f x = S.Cflt x
let null = S.Cnull
let v name = S.Var name

let ( +! ) a b = S.Bin (S.Add, a, b)
let ( -! ) a b = S.Bin (S.Sub, a, b)
let ( *! ) a b = S.Bin (S.Mul, a, b)
let ( /! ) a b = S.Bin (S.Div, a, b)
let ( %! ) a b = S.Bin (S.Rem, a, b)
let ( &! ) a b = S.Bin (S.And, a, b)
let ( |! ) a b = S.Bin (S.Or, a, b)
let ( ^! ) a b = S.Bin (S.Xor, a, b)
let ( <<! ) a b = S.Bin (S.Shl, a, b)
let ( >>! ) a b = S.Bin (S.Shr, a, b)
let ( >>>! ) a b = S.Bin (S.Ushr, a, b)
let neg a = S.Neg a

let ( =! ) a b = S.Cmp (S.Ceq, a, b)
let ( <>! ) a b = S.Cmp (S.Cne, a, b)
let ( <! ) a b = S.Cmp (S.Clt, a, b)
let ( <=! ) a b = S.Cmp (S.Cle, a, b)
let ( >! ) a b = S.Cmp (S.Cgt, a, b)
let ( >=! ) a b = S.Cmp (S.Cge, a, b)
let ( &&! ) a b = S.And_also (a, b)
let ( ||! ) a b = S.Or_else (a, b)
let not_ a = S.Not a

let i2f e = S.I2f_ e
let f2i e = S.F2i_ e

let call name args = S.Call (name, args)
let vcall sel recv args = S.Vcall (sel, recv, args)
let new_obj cls = S.New_obj cls
let getf cls fld recv = S.Getf (cls, fld, recv)
let new_arr ty len = S.New_arr (ty, len)
let ( @. ) a idx = S.Idx (a, idx)
let len a = S.Len a
let is_instance cls e = S.Is_instance (cls, e)

(* statements *)
let decl name ty e = S.Decl (name, ty, e)
let decl_i name e = S.Decl (name, S.I, e)
let decl_f name e = S.Decl (name, S.F, e)
let set name e = S.Set (name, e)
let seti arr idx e = S.Set_idx (arr, idx, e)
let setf cls fld recv e = S.Setf (cls, fld, recv, e)
let if_ c t e = S.If (c, t, e)
let when_ c t = S.If (c, t, [])
let while_ c body = S.While (c, body)
let do_while body c = S.Do_while (body, c)
let for_ var lo hi body = S.For (var, lo, hi, body)
let switch e cases default = S.Switch (e, cases, default)
let ret e = S.Ret (Some e)
let ret_void = S.Ret None
let ignore_ e = S.Ignore e
let break_ = S.Break
let continue_ = S.Continue
let throw e = S.Throw e
let try_ body ~catch:(cls, var) handler = S.Try (body, cls, var, handler)

let incr_ name = set name (v name +! i 1)

(* Shared runtime helpers every workload program gets: a linear
   congruential RNG whose state lives in a one-element int array (the VM
   has no statics), plus small math utilities. *)
let define_prelude (p : S.t) =
  (* rng_next(state) -> int in [0, 2^30) *)
  S.def_method p ~name:"rng_next"
    ~args:[ ("state", S.Arr S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "s" ((v "state" @. i 0) *! i 1103515245 +! i 12345);
        set "s" (v "s" &! i 0x3FFFFFFF);
        seti (v "state") (i 0) (v "s");
        ret (v "s");
      ]
    ();
  (* rng_range(state, n) -> int in [0, n) *)
  S.def_method p ~name:"rng_range"
    ~args:[ ("state", S.Arr S.I); ("n", S.I) ]
    ~ret:S.I
    ~body:[ ret (call "rng_next" [ v "state" ] %! v "n") ]
    ();
  S.def_method p ~name:"imin"
    ~args:[ ("a", S.I); ("b", S.I) ]
    ~ret:S.I
    ~body:[ if_ (v "a" <! v "b") [ ret (v "a") ] [ ret (v "b") ] ]
    ();
  S.def_method p ~name:"imax"
    ~args:[ ("a", S.I); ("b", S.I) ]
    ~ret:S.I
    ~body:[ if_ (v "a" >! v "b") [ ret (v "a") ] [ ret (v "b") ] ]
    ();
  S.def_method p ~name:"iabs"
    ~args:[ ("a", S.I) ]
    ~ret:S.I
    ~body:[ if_ (v "a" <! i 0) [ ret (neg (v "a")) ] [ ret (v "a") ] ]
    ();
  S.def_method p ~name:"fabs"
    ~args:[ ("a", S.F) ]
    ~ret:S.F
    ~body:[ if_ (v "a" <! f 0.0) [ ret (neg (v "a")) ] [ ret (v "a") ] ]
    ();
  (* fsqrt(x): Newton's method, enough precision for the workloads *)
  S.def_method p ~name:"fsqrt"
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:
      [
        if_ (v "x" <=! f 0.0) [ ret (f 0.0) ] [];
        decl_f "g" (v "x");
        when_ (v "g" >! f 1.0) [ set "g" (v "x" /! f 2.0) ];
        for_ "it" (i 0) (i 20)
          [ set "g" ((v "g" +! (v "x" /! v "g")) /! f 2.0) ];
        ret (v "g");
      ]
    ();
  (* fsin via Taylor series after range reduction; coarse but deterministic *)
  S.def_method p ~name:"fsin"
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "two_pi" (f 6.283185307179586);
        decl_f "y" (v "x");
        while_ (v "y" >! f 3.141592653589793) [ set "y" (v "y" -! v "two_pi") ];
        while_ (v "y" <! f (-3.141592653589793))
          [ set "y" (v "y" +! v "two_pi") ];
        decl_f "y2" (v "y" *! v "y");
        decl_f "t" (v "y");
        decl_f "acc" (v "y");
        (* terms up to y^9/9! *)
        set "t" (neg (v "t" *! v "y2" /! f 6.0));
        set "acc" (v "acc" +! v "t");
        set "t" (neg (v "t" *! v "y2" /! f 20.0));
        set "acc" (v "acc" +! v "t");
        set "t" (neg (v "t" *! v "y2" /! f 42.0));
        set "acc" (v "acc" +! v "t");
        set "t" (neg (v "t" *! v "y2" /! f 72.0));
        set "acc" (v "acc" +! v "t");
        ret (v "acc");
      ]
    ();
  S.def_method p ~name:"fcos"
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:[ ret (call "fsin" [ v "x" +! f 1.5707963267948966 ]) ]
    ()
