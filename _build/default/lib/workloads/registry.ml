(* All benchmark programs, in the order the paper's tables list them. *)

let all : Workload.t list =
  [
    Compress.workload;
    Javacish.workload;
    Raytrace.workload;
    Mpegaudio.workload;
    Sootlike.workload;
    Scimark.workload;
  ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let names () = List.map (fun w -> w.Workload.name) all
