(* Stand-in for soot: a bytecode-analysis-style workload.  For each of many
   synthetic "methods" it builds a random control-flow graph with def/use
   bit sets, computes predecessor lists, and runs a backward liveness
   fixpoint with a ring-buffer worklist, then popcounts the solution.
   Irregular, data-dependent branching over pointer-free graph structures —
   the large-real-application profile of the paper. *)

open Dsl
module S = Bytecode.Structured

let blocks_per_method = 60

let define (p : S.t) ~size =
  define_prelude p;
  (* popcount over the 30-bit masks we use as variable sets *)
  S.def_method p ~name:"popcount" ~args:[ ("x", S.I) ] ~ret:S.I
    ~body:
      [
        decl_i "n" (i 0);
        decl_i "y" (v "x");
        while_
          (v "y" <>! i 0)
          [ set "n" (v "n" +! (v "y" &! i 1)); set "y" (v "y" >>>! i 1) ];
        ret (v "n");
      ]
    ();
  (* One liveness problem: build CFG + sets from the rng, solve, popcount. *)
  S.def_method p ~name:"analyze_method"
    ~args:[ ("state", S.Arr S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "nb" (i blocks_per_method);
        (* successors: up to 2 per block, flat arrays *)
        decl "succ1" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "succ2" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "def" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "use" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "live_in" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "live_out" (S.Arr S.I) (new_arr S.I (v "nb"));
        for_ "b" (i 0) (v "nb")
          [
            (* mostly fallthrough, sometimes a jump; a few returns *)
            decl_i "r" (call "rng_range" [ v "state"; i 10 ]);
            if_
              (v "r" <! i 1 ||! (v "b" =! (v "nb" -! i 1)))
              [ seti (v "succ1") (v "b") (i (-1)) ]
              [
                if_
                  (v "r" <! i 7)
                  [ seti (v "succ1") (v "b") (v "b" +! i 1) ]
                  [
                    seti (v "succ1") (v "b")
                      (call "rng_range" [ v "state"; v "nb" ]);
                  ];
              ];
            (* conditional second edge *)
            if_
              (call "rng_range" [ v "state"; i 3 ] =! i 0
              &&! ((v "succ1" @. v "b") >=! i 0))
              [
                seti (v "succ2") (v "b")
                  (call "rng_range" [ v "state"; v "nb" ]);
              ]
              [ seti (v "succ2") (v "b") (i (-1)) ];
            (* sparse random def/use masks over 30 variables *)
            decl_i "d" (i 0);
            decl_i "u" (i 0);
            for_ "k" (i 0) (i 3)
              [
                set "d"
                  (v "d" |! (i 1 <<! call "rng_range" [ v "state"; i 30 ]));
                set "u"
                  (v "u" |! (i 1 <<! call "rng_range" [ v "state"; i 30 ]));
              ];
            seti (v "def") (v "b") (v "d");
            seti (v "use") (v "b") (v "u");
            seti (v "live_in") (v "b") (i 0);
            seti (v "live_out") (v "b") (i 0);
          ];
        (* predecessor counts and lists (flat, capacity 2*nb) *)
        decl "pred_cnt" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl "pred_dat" (S.Arr S.I) (new_arr S.I (v "nb" *! i 8));
        for_ "b" (i 0) (v "nb")
          [
            decl_i "s1" (v "succ1" @. v "b");
            when_
              (v "s1" >=! i 0 &&! ((v "pred_cnt" @. v "s1") <! i 8))
              [
                seti (v "pred_dat")
                  ((v "s1" *! i 8) +! (v "pred_cnt" @. v "s1"))
                  (v "b");
                seti (v "pred_cnt") (v "s1") ((v "pred_cnt" @. v "s1") +! i 1);
              ];
            decl_i "s2" (v "succ2" @. v "b");
            when_
              (v "s2" >=! i 0 &&! ((v "pred_cnt" @. v "s2") <! i 8))
              [
                seti (v "pred_dat")
                  ((v "s2" *! i 8) +! (v "pred_cnt" @. v "s2"))
                  (v "b");
                seti (v "pred_cnt") (v "s2") ((v "pred_cnt" @. v "s2") +! i 1);
              ];
          ];
        (* worklist: ring buffer of block ids + membership flags *)
        decl "wl" (S.Arr S.I) (new_arr S.I (v "nb" *! i 4));
        decl "inwl" (S.Arr S.I) (new_arr S.I (v "nb"));
        decl_i "head" (i 0);
        decl_i "tail" (i 0);
        decl_i "wcap" (len (v "wl"));
        for_ "b" (i 0) (v "nb")
          [
            seti (v "wl") (v "tail") (v "b");
            set "tail" ((v "tail" +! i 1) %! v "wcap");
            seti (v "inwl") (v "b") (i 1);
          ];
        decl_i "iterations" (i 0);
        while_
          (v "head" <>! v "tail")
          [
            decl_i "b" (v "wl" @. v "head");
            set "head" ((v "head" +! i 1) %! v "wcap");
            seti (v "inwl") (v "b") (i 0);
            set "iterations" (v "iterations" +! i 1);
            (* out[b] = union of in[succ] *)
            decl_i "out" (i 0);
            decl_i "s1" (v "succ1" @. v "b");
            when_
              (v "s1" >=! i 0)
              [ set "out" (v "out" |! (v "live_in" @. v "s1")) ];
            decl_i "s2" (v "succ2" @. v "b");
            when_
              (v "s2" >=! i 0)
              [ set "out" (v "out" |! (v "live_in" @. v "s2")) ];
            seti (v "live_out") (v "b") (v "out");
            (* in[b] = use[b] | (out[b] & ~def[b]) *)
            decl_i "newin"
              ((v "use" @. v "b")
              |! (v "out" &! ((v "def" @. v "b") ^! i 0x3FFFFFFF)));
            when_
              (v "newin" <>! (v "live_in" @. v "b"))
              [
                seti (v "live_in") (v "b") (v "newin");
                (* push predecessors *)
                for_ "k" (i 0)
                  (v "pred_cnt" @. v "b")
                  [
                    decl_i "pb" (v "pred_dat" @. ((v "b" *! i 8) +! v "k"));
                    when_
                      ((v "inwl" @. v "pb") =! i 0)
                      [
                        seti (v "wl") (v "tail") (v "pb");
                        set "tail" ((v "tail" +! i 1) %! v "wcap");
                        seti (v "inwl") (v "pb") (i 1);
                      ];
                  ];
              ];
          ];
        decl_i "acc" (v "iterations");
        for_ "b" (i 0) (v "nb")
          [
            set "acc"
              ((v "acc" +! call "popcount" [ v "live_in" @. v "b" ])
              &! i 0x3FFFFFFF);
          ];
        ret (v "acc");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl "state" (S.Arr S.I) (new_arr S.I (i 1));
        seti (v "state") (i 0) (i 13579);
        decl_i "chk" (i 0);
        for_ "m" (i 0) (i size)
          [
            set "chk"
              ((v "chk" +! call "analyze_method" [ v "state" ])
              &! i 0x3FFFFFFF);
          ];
        ret (v "chk");
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "soot";
    description =
      "dataflow analyzer: random CFGs with def/use bit sets solved by a \
       worklist liveness fixpoint, many methods in sequence";
    paper_counterpart = "soot (bytecode analysis framework)";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 40;
    bench_size = 250;
  }
