(* Stand-in for SPECjvm98 compress: a 12-bit LZW codec over a run-heavy
   synthetic input, followed by decompression and verification.  The
   encoder's inner loop is dominated by a hash-table probe that almost
   always hits on the first probe, and the input generator repeats symbols
   with high probability — simple, predictable branch behaviour, like the
   paper's description of compress. *)

open Dsl
module S = Bytecode.Structured

let dict_cap = 4096 (* 12-bit codes, as in classic compress *)

let htab_size = 16384 (* power of two, ~4x dict capacity *)

let define (p : S.t) ~size =
  define_prelude p;
  (* Runs of repeated symbols: 7/8 repeat, 1/8 fresh. *)
  S.def_method p ~name:"gen_input"
    ~args:[ ("state", S.Arr S.I); ("n", S.I) ]
    ~ret:(S.Arr S.I)
    ~body:
      [
        decl "buf" (S.Arr S.I) (new_arr S.I (v "n"));
        decl_i "sym" (i 65);
        for_ "k" (i 0) (v "n")
          [
            when_
              (call "rng_range" [ v "state"; i 8 ] =! i 0)
              [ set "sym" (call "rng_range" [ v "state"; i 64 ] +! i 32) ];
            seti (v "buf") (v "k") (v "sym");
          ];
        ret (v "buf");
      ]
    ();
  S.def_method p ~name:"hash_find"
    ~args:[ ("keys", S.Arr S.I); ("vals", S.Arr S.I); ("key", S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "mask" (len (v "keys") -! i 1);
        decl_i "h" (v "key" *! i 40503 &! v "mask");
        while_
          ((v "keys" @. v "h") <>! i (-1))
          [
            when_ ((v "keys" @. v "h") =! v "key") [ ret (v "vals" @. v "h") ];
            set "h" (v "h" +! i 1 &! v "mask");
          ];
        ret (i (-1));
      ]
    ();
  S.def_method p ~name:"hash_put"
    ~args:
      [ ("keys", S.Arr S.I); ("vals", S.Arr S.I); ("key", S.I); ("value", S.I) ]
    ~body:
      [
        decl_i "mask" (len (v "keys") -! i 1);
        decl_i "h" (v "key" *! i 40503 &! v "mask");
        while_
          ((v "keys" @. v "h") <>! i (-1))
          [ set "h" (v "h" +! i 1 &! v "mask") ];
        seti (v "keys") (v "h") (v "key");
        seti (v "vals") (v "h") (v "value");
      ]
    ();
  (* LZW encode; returns the number of codes written to [out]. *)
  S.def_method p ~name:"lzw_encode"
    ~args:[ ("input", S.Arr S.I); ("out", S.Arr S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "n" (len (v "input"));
        when_ (v "n" =! i 0) [ ret (i 0) ];
        decl "keys" (S.Arr S.I) (new_arr S.I (i htab_size));
        decl "vals" (S.Arr S.I) (new_arr S.I (i htab_size));
        for_ "k" (i 0) (i htab_size) [ seti (v "keys") (v "k") (i (-1)) ];
        decl_i "next_code" (i 256);
        decl_i "w" (v "input" @. i 0);
        decl_i "pos" (i 0);
        for_ "k" (i 1) (v "n")
          [
            decl_i "c" (v "input" @. v "k");
            decl_i "key" (v "w" *! i 256 +! v "c");
            decl_i "code" (call "hash_find" [ v "keys"; v "vals"; v "key" ]);
            if_
              (v "code" >=! i 0)
              [ set "w" (v "code") ]
              [
                seti (v "out") (v "pos") (v "w");
                set "pos" (v "pos" +! i 1);
                when_
                  (v "next_code" <! i dict_cap)
                  [
                    ignore_
                      (call "hash_put"
                         [ v "keys"; v "vals"; v "key"; v "next_code" ]);
                    set "next_code" (v "next_code" +! i 1);
                  ];
                set "w" (v "c");
              ];
          ];
        seti (v "out") (v "pos") (v "w");
        ret (v "pos" +! i 1);
      ]
    ();
  (* LZW decode; returns the number of symbols written to [out]. *)
  S.def_method p ~name:"lzw_decode"
    ~args:[ ("codes", S.Arr S.I); ("ncodes", S.I); ("out", S.Arr S.I) ]
    ~ret:S.I
    ~body:
      [
        when_ (v "ncodes" =! i 0) [ ret (i 0) ];
        decl "prefix" (S.Arr S.I) (new_arr S.I (i dict_cap));
        decl "suffix" (S.Arr S.I) (new_arr S.I (i dict_cap));
        decl "stack" (S.Arr S.I) (new_arr S.I (i dict_cap));
        decl_i "next_code" (i 256);
        decl_i "prev" (v "codes" @. i 0);
        decl_i "pos" (i 0);
        seti (v "out") (v "pos") (v "prev");
        set "pos" (v "pos" +! i 1);
        decl_i "prev_first" (v "prev");
        for_ "k" (i 1) (v "ncodes")
          [
            decl_i "cur" (v "codes" @. v "k");
            decl_i "sp" (i 0);
            decl_i "c" (v "cur");
            (* KwKwK: the code about to be defined *)
            when_
              (v "cur" >=! v "next_code")
              [
                seti (v "stack") (v "sp") (v "prev_first");
                set "sp" (v "sp" +! i 1);
                set "c" (v "prev");
              ];
            while_
              (v "c" >=! i 256)
              [
                seti (v "stack") (v "sp") (v "suffix" @. (v "c" -! i 256));
                set "sp" (v "sp" +! i 1);
                set "c" (v "prefix" @. (v "c" -! i 256));
              ];
            decl_i "first" (v "c");
            seti (v "stack") (v "sp") (v "c");
            set "sp" (v "sp" +! i 1);
            while_
              (v "sp" >! i 0)
              [
                set "sp" (v "sp" -! i 1);
                seti (v "out") (v "pos") (v "stack" @. v "sp");
                set "pos" (v "pos" +! i 1);
              ];
            when_
              (v "next_code" <! i dict_cap)
              [
                seti (v "prefix") (v "next_code" -! i 256) (v "prev");
                seti (v "suffix") (v "next_code" -! i 256) (v "first");
                set "next_code" (v "next_code" +! i 1);
              ];
            set "prev" (v "cur");
            set "prev_first" (v "first");
          ];
        ret (v "pos");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl "state" (S.Arr S.I) (new_arr S.I (i 1));
        seti (v "state") (i 0) (i 987654321);
        decl_i "n" (i size);
        decl "input" (S.Arr S.I) (call "gen_input" [ v "state"; v "n" ]);
        decl "codes" (S.Arr S.I) (new_arr S.I (v "n" +! i 1));
        decl_i "ncodes" (call "lzw_encode" [ v "input"; v "codes" ]);
        decl "decoded" (S.Arr S.I) (new_arr S.I (v "n" +! i 8));
        decl_i "m" (call "lzw_decode" [ v "codes"; v "ncodes"; v "decoded" ]);
        (* verify round trip *)
        decl_i "ok" (i 1);
        when_ (v "m" <>! v "n") [ set "ok" (i 0) ];
        when_
          (v "ok" =! i 1)
          [
            for_ "k" (i 0) (v "n")
              [
                when_
                  ((v "input" @. v "k") <>! (v "decoded" @. v "k"))
                  [ set "ok" (i 0); break_ ];
              ];
          ];
        decl_i "chk" (i 0);
        for_ "k" (i 0) (v "ncodes")
          [ set "chk" (v "chk" +! (v "codes" @. v "k") &! i 0x3FFFFFFF) ];
        ret (v "chk" *! i 2 +! v "ok");
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "compress";
    description = "12-bit LZW encode + decode + verify over run-heavy input";
    paper_counterpart = "SPECjvm98 compress";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 8_000;
    bench_size = 120_000;
  }
