lib/workloads/sootlike.ml: Bytecode Dsl Workload
