lib/workloads/registry.ml: Compress Javacish List Mpegaudio Raytrace Scimark Sootlike String Workload
