lib/workloads/compress.ml: Bytecode Dsl Workload
