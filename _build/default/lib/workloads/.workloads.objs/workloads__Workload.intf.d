lib/workloads/workload.mli: Bytecode Format
