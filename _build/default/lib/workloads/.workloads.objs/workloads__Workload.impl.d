lib/workloads/workload.ml: Bytecode Format
