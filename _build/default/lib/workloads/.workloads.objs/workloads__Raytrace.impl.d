lib/workloads/raytrace.ml: Bytecode Dsl Workload
