lib/workloads/mpegaudio.ml: Bytecode Dsl Workload
