lib/workloads/registry.mli: Workload
