lib/workloads/scimark.ml: Bytecode Dsl Workload
