lib/workloads/dsl.ml: Bytecode
