lib/workloads/javacish.ml: Bytecode Dsl Workload
