(* Stand-in for SciMark: four numeric kernels — iterative radix-2 FFT,
   successive over-relaxation on a grid, Monte Carlo integration, and LU
   factorization with partial pivoting — run repeatedly.  Scientific code:
   long counted loops with extremely biased branches, the easiest case for
   trace construction (the paper's scimark shows the longest, most stable
   traces). *)

open Dsl
module S = Bytecode.Structured

let fft_n = 256 (* complex points, power of two *)
let sor_n = 96
let lu_n = 48

let define (p : S.t) ~size =
  define_prelude p;
  (* in-place iterative FFT over split re/im arrays *)
  S.def_method p ~name:"fft"
    ~args:[ ("re", S.Arr S.F); ("im", S.Arr S.F) ]
    ~body:
      [
        decl_i "n" (len (v "re"));
        (* bit-reversal permutation *)
        decl_i "j" (i 0);
        for_ "k" (i 0)
          (v "n" -! i 1)
          [
            when_
              (v "k" <! v "j")
              [
                decl_f "tr" (v "re" @. v "k");
                seti (v "re") (v "k") (v "re" @. v "j");
                seti (v "re") (v "j") (v "tr");
                decl_f "ti" (v "im" @. v "k");
                seti (v "im") (v "k") (v "im" @. v "j");
                seti (v "im") (v "j") (v "ti");
              ];
            decl_i "m" (v "n" >>! i 1);
            while_
              (v "m" >=! i 1 &&! (v "j" >=! v "m"))
              [ set "j" (v "j" -! v "m"); set "m" (v "m" >>! i 1) ];
            set "j" (v "j" +! v "m");
          ];
        (* butterflies *)
        decl_i "span" (i 1);
        while_
          (v "span" <! v "n")
          [
            decl_f "ang" (f (-3.141592653589793) /! i2f (v "span"));
            for_ "mgroup" (i 0) (v "span")
              [
                decl_f "wr" (call "fcos" [ v "ang" *! i2f (v "mgroup") ]);
                decl_f "wi" (call "fsin" [ v "ang" *! i2f (v "mgroup") ]);
                decl_i "kk" (v "mgroup");
                while_
                  (v "kk" <! v "n")
                  [
                    decl_i "partner" (v "kk" +! v "span");
                    decl_f "xr"
                      ((v "wr" *! (v "re" @. v "partner"))
                      -! (v "wi" *! (v "im" @. v "partner")));
                    decl_f "xi"
                      ((v "wr" *! (v "im" @. v "partner"))
                      +! (v "wi" *! (v "re" @. v "partner")));
                    seti (v "re") (v "partner") ((v "re" @. v "kk") -! v "xr");
                    seti (v "im") (v "partner") ((v "im" @. v "kk") -! v "xi");
                    seti (v "re") (v "kk") ((v "re" @. v "kk") +! v "xr");
                    seti (v "im") (v "kk") ((v "im" @. v "kk") +! v "xi");
                    set "kk" (v "kk" +! (v "span" <<! i 1));
                  ];
              ];
            set "span" (v "span" <<! i 1);
          ];
      ]
    ();
  (* one SOR sweep over an n x n grid (flat array) *)
  S.def_method p ~name:"sor_sweep"
    ~args:[ ("g", S.Arr S.F); ("n", S.I); ("omega", S.F) ]
    ~body:
      [
        for_ "r" (i 1)
          (v "n" -! i 1)
          [
            decl_i "row" (v "r" *! v "n");
            for_ "c" (i 1)
              (v "n" -! i 1)
              [
                decl_i "k" (v "row" +! v "c");
                decl_f "nbr"
                  (((v "g" @. (v "k" -! v "n")) +! (v "g" @. (v "k" +! v "n"))
                   +! (v "g" @. (v "k" -! i 1))
                   +! (v "g" @. (v "k" +! i 1)))
                  *! f 0.25);
                seti (v "g") (v "k")
                  ((v "omega" *! v "nbr")
                  +! ((f 1.0 -! v "omega") *! (v "g" @. v "k")));
              ];
          ];
      ]
    ();
  (* Monte Carlo estimate of pi *)
  S.def_method p ~name:"montecarlo"
    ~args:[ ("state", S.Arr S.I); ("samples", S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "inside" (i 0);
        for_ "k" (i 0) (v "samples")
          [
            decl_f "x"
              (i2f (call "rng_range" [ v "state"; i 10000 ]) /! f 10000.0);
            decl_f "y"
              (i2f (call "rng_range" [ v "state"; i 10000 ]) /! f 10000.0);
            when_
              ((v "x" *! v "x") +! (v "y" *! v "y") <=! f 1.0)
              [ set "inside" (v "inside" +! i 1) ];
          ];
        ret (v "inside");
      ]
    ();
  (* LU factorization with partial pivoting on a flat n x n matrix;
     returns the number of row swaps *)
  S.def_method p ~name:"lu_factor"
    ~args:[ ("a", S.Arr S.F); ("n", S.I) ]
    ~ret:S.I
    ~body:
      [
        decl_i "swaps" (i 0);
        for_ "col" (i 0) (v "n")
          [
            (* find pivot *)
            decl_i "piv" (v "col");
            decl_f "best" (call "fabs" [ v "a" @. ((v "col" *! v "n") +! v "col") ]);
            for_ "r" (v "col" +! i 1) (v "n")
              [
                decl_f "cand" (call "fabs" [ v "a" @. ((v "r" *! v "n") +! v "col") ]);
                when_
                  (v "cand" >! v "best")
                  [ set "best" (v "cand"); set "piv" (v "r") ];
              ];
            (* swap rows if needed (rare for our matrices) *)
            when_
              (v "piv" <>! v "col")
              [
                set "swaps" (v "swaps" +! i 1);
                for_ "c2" (i 0) (v "n")
                  [
                    decl_f "tmp" (v "a" @. ((v "col" *! v "n") +! v "c2"));
                    seti (v "a")
                      ((v "col" *! v "n") +! v "c2")
                      (v "a" @. ((v "piv" *! v "n") +! v "c2"));
                    seti (v "a") ((v "piv" *! v "n") +! v "c2") (v "tmp");
                  ];
              ];
            decl_f "pivval" (v "a" @. ((v "col" *! v "n") +! v "col"));
            when_ (call "fabs" [ v "pivval" ] <! f 1e-12) [ continue_ ];
            for_ "r" (v "col" +! i 1) (v "n")
              [
                decl_f "factor"
                  ((v "a" @. ((v "r" *! v "n") +! v "col")) /! v "pivval");
                seti (v "a") ((v "r" *! v "n") +! v "col") (v "factor");
                for_ "c2" (v "col" +! i 1) (v "n")
                  [
                    seti (v "a")
                      ((v "r" *! v "n") +! v "c2")
                      ((v "a" @. ((v "r" *! v "n") +! v "c2"))
                      -! (v "factor"
                         *! (v "a" @. ((v "col" *! v "n") +! v "c2"))));
                  ];
              ];
          ];
        ret (v "swaps");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl "state" (S.Arr S.I) (new_arr S.I (i 1));
        seti (v "state") (i 0) (i 777);
        decl "re" (S.Arr S.F) (new_arr S.F (i fft_n));
        decl "im" (S.Arr S.F) (new_arr S.F (i fft_n));
        decl "grid" (S.Arr S.F) (new_arr S.F (i (sor_n * sor_n)));
        decl "mat" (S.Arr S.F) (new_arr S.F (i (lu_n * lu_n)));
        decl_i "chk" (i 0);
        for_ "round" (i 0) (i size)
          [
            (* FFT of a synthesized signal *)
            for_ "k" (i 0) (i fft_n)
              [
                seti (v "re") (v "k")
                  (call "fsin" [ i2f (v "k" *! (v "round" +! i 1)) *! f 0.02 ]);
                seti (v "im") (v "k") (f 0.0);
              ];
            ignore_ (call "fft" [ v "re"; v "im" ]);
            set "chk"
              ((v "chk" +! call "iabs" [ f2i ((v "re" @. i 3) *! f 100.0) ])
              &! i 0x3FFFFFFF);
            (* SOR sweeps *)
            for_ "k" (i 0)
              (i (sor_n * sor_n))
              [
                seti (v "grid") (v "k")
                  (i2f (call "rng_range" [ v "state"; i 100 ]) /! f 100.0);
              ];
            for_ "s" (i 0) (i 3)
              [ ignore_ (call "sor_sweep" [ v "grid"; i sor_n; f 1.25 ]) ];
            set "chk"
              ((v "chk"
               +! call "iabs"
                    [ f2i ((v "grid" @. i ((sor_n * sor_n) / 2)) *! f 1000.0) ])
              &! i 0x3FFFFFFF);
            (* Monte Carlo *)
            decl_i "inside" (call "montecarlo" [ v "state"; i 6000 ]);
            set "chk" ((v "chk" +! v "inside") &! i 0x3FFFFFFF);
            (* LU *)
            for_ "k" (i 0)
              (i (lu_n * lu_n))
              [
                seti (v "mat") (v "k")
                  (i2f (call "rng_range" [ v "state"; i 2000 ]) /! f 1000.0
                  -! f 1.0);
              ];
            (* diagonal dominance keeps pivoting rare but non-zero *)
            for_ "k" (i 0) (i lu_n)
              [
                seti (v "mat")
                  ((v "k" *! i lu_n) +! v "k")
                  ((v "mat" @. ((v "k" *! i lu_n) +! v "k")) +! f 2.5);
              ];
            decl_i "swaps" (call "lu_factor" [ v "mat"; i lu_n ]);
            set "chk"
              ((v "chk" +! (v "swaps" *! i 17)
               +! call "iabs" [ f2i ((v "mat" @. i 5) *! f 100.0) ])
              &! i 0x3FFFFFFF);
          ];
        ret (v "chk");
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "scimark";
    description =
      "numeric kernels: iterative FFT, SOR grid relaxation, Monte Carlo \
       integration and pivoted LU factorization";
    paper_counterpart = "scimark";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 2;
    bench_size = 8;
  }
