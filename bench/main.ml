(* The benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (Tables I-VII plus the Figure 1/2 dispatch-model
   comparison and the section-5.3 baseline comparison), then runs a
   Bechamel microbenchmark suite over the mechanisms whose cost the paper
   argues about (the per-dispatch profiler hook, BCG maintenance, trace
   cache lookup, and the interpreter dispatch models).

   BENCH_SCALE scales the workload sizes (default 1.0 = paper-scale runs,
   a few minutes; 0.1 gives a quick smoke run).  BENCH_SKIP_MICRO=1 skips
   the Bechamel section. *)

module Stats = Tracegen.Stats

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --json: besides the printed tables, accumulate every section's headline
   numbers as [Harness.Perf] metrics and write them out as a single
   machine-readable baseline (BENCH_<label>.json) at exit —
   [repro_cli bench-diff] compares two such files. *)
let json_mode = Array.exists (fun a -> a = "--json") Sys.argv
let perf_sections : Harness.Perf.section list ref = ref []

let perf label metrics =
  if json_mode then
    perf_sections := { Harness.Perf.label; metrics } :: !perf_sections

let m name value unit_ better =
  Harness.Perf.metric ~name ~value ~unit_ ~better

let mhigher = Harness.Perf.Higher
let mlower = Harness.Perf.Lower

let write_perf ~label =
  if json_mode then begin
    let run =
      {
        Harness.Perf.bench = label;
        env = Harness.Perf.env_stamp ~scale;
        sections = List.rev !perf_sections;
      }
    in
    let path = Printf.sprintf "BENCH_%s.json" label in
    let oc = open_out path in
    output_string oc (Harness.Perf.to_string run);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nperf baseline written to %s (%d sections)\n" path
      (List.length run.Harness.Perf.sections)
  end

let tables () =
  section "Paper tables";
  Printf.printf "(workload scale %.2f; see EXPERIMENTS.md for analysis)\n\n"
    scale;
  print_string (Harness.Tables.figure_dispatch ~scale ());
  print_newline ();
  print_string (Harness.Tables.table1 ~scale ());
  print_newline ();
  print_string (Harness.Tables.table2 ~scale ());
  print_newline ();
  print_string (Harness.Tables.coverage_totals ~scale ());
  print_newline ();
  print_string (Harness.Tables.table3 ~scale ());
  print_newline ();
  print_string (Harness.Tables.table4 ~scale ());
  print_newline ();
  print_string (Harness.Tables.table5 ~scale ());
  print_newline ();
  let t6, rows6 = Harness.Overhead.table6 ~scale () in
  print_string t6;
  print_newline ();
  print_string (Harness.Overhead.table7 ~scale ~rows:rows6 ());
  print_newline ();
  print_string (Harness.Tables.baselines ~scale ());
  print_newline ();
  print_string (Harness.Ablation.decay_ablation ());
  print_newline ();
  print_string (Harness.Ablation.optimizer_report ~scale:(min scale 0.3) ());
  print_newline ();
  print_string (Harness.Footprint.report ~scale:(min scale 0.3) ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Warm starts and eviction policy                                      *)
(* ------------------------------------------------------------------ *)

(* Time-to-peak-throughput cold vs warm (the payoff of Persist
   snapshots), and the LRU vs footprint-aware eviction ablation over a
   starved cache. *)
let warmstart () =
  section "Warm starts / eviction policy";
  print_string (Harness.Warmstart.cold_vs_warm ~scale:(min scale 0.5) ());
  print_newline ();
  print_string (Harness.Warmstart.eviction_ablation ~scale:(min scale 0.5) ())

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                             *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* a small real layout for mechanism benches *)
let bench_layout =
  lazy
    (let w = Workloads.Compress.workload in
     Cfg.Layout.build (w.Workloads.Workload.build ~size:500))

(* Table VI's subject: the profiler hook, one dispatch *)
let bench_profiler_hook () =
  let layout = Lazy.force bench_layout in
  let profiler =
    Tracegen.Profiler.create Tracegen.Config.default
      ~n_blocks:layout.Cfg.Layout.n_blocks ~on_signal:(fun _ -> ())
  in
  (* warm the graph with a short cyclic stream *)
  let stream = [| 0; 1; 2; 3; 1; 2; 4 |] in
  Array.iter (Tracegen.Profiler.dispatch profiler) stream;
  let k = ref 0 in
  Staged.stage (fun () ->
      Tracegen.Profiler.dispatch profiler stream.(!k);
      k := (!k + 1) mod Array.length stream)

(* BCG node visit + successor recording, the inner work of the hook *)
let bench_bcg_touch () =
  let bcg =
    Tracegen.Bcg.create Tracegen.Config.default ~n_blocks:1024
      ~on_signal:(fun _ -> ())
  in
  let k = ref 0 in
  Staged.stage (fun () ->
      let x = !k land 7 and y = (!k + 1) land 7 and z = (!k + 2) land 7 in
      let ctx = Tracegen.Bcg.visit_node bcg ~x ~y in
      let target = Tracegen.Bcg.visit_node bcg ~x:y ~y:z in
      Tracegen.Bcg.record_successor bcg ~ctx ~target;
      incr k)

(* trace-cache dispatch lookup *)
let bench_cache_lookup () =
  let layout = Lazy.force bench_layout in
  let cache = Tracegen.Trace_cache.create layout in
  for g = 0 to 30 do
    ignore
      (Tracegen.Trace_cache.install cache ~first:g
         ~blocks:[| g + 1; g + 2 |] ~prob:1.0)
  done;
  let k = ref 0 in
  Staged.stage (fun () ->
      ignore
        (Tracegen.Trace_cache.lookup cache ~prev:(!k land 31)
           ~cur:((!k land 31) + 1));
      incr k)

(* the interpreter itself, per dispatch model (Figures 1 and 2) *)
let interp_bench ~with_profiler () =
  let layout = Lazy.force bench_layout in
  Staged.stage (fun () ->
      if with_profiler then begin
        let config = Tracegen.Config.make ~build_traces:false () in
        ignore (Tracegen.Engine.run ~config layout)
      end
      else ignore (Vm.Interp.run_plain layout))

let bench_full_engine () =
  let layout = Lazy.force bench_layout in
  Staged.stage (fun () -> ignore (Tracegen.Engine.run layout))

(* same run with a live subscriber: the priced-in cost of observing *)
let bench_engine_events () =
  let layout = Lazy.force bench_layout in
  Staged.stage (fun () ->
      let events = Tracegen.Events.create () in
      let n = ref 0 in
      let _sub = Tracegen.Events.subscribe events (fun _ -> incr n) in
      ignore (Tracegen.Engine.run ~events layout))

(* same run with the debug invariant sweeps on: every trace construction
   and decay boundary re-checks the BCG and the trace cache *)
let bench_engine_debug_checks () =
  let layout = Lazy.force bench_layout in
  let config = Tracegen.Config.make ~debug_checks:true () in
  Staged.stage (fun () -> ignore (Tracegen.Engine.run ~config layout))

(* ------------------------------------------------------------------ *)
(* Observability overhead                                               *)
(* ------------------------------------------------------------------ *)

(* The event stream's contract is "free when nobody subscribes": every
   emission site is a single predictable branch on the disabled path.
   Time the full engine with no subscribers against the same run with a
   subscriber counting every event (plus periodic metric snapshots), and
   report both sides. *)
let observability () =
  section "Observability overhead (events disabled vs enabled)";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    (* median of 5 samples of [reps] runs *)
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let disabled () = ignore (Tracegen.Engine.run layout) in
  let counted = ref 0 in
  let enabled () =
    let events = Tracegen.Events.create () in
    let _sub = Tracegen.Events.subscribe events (fun _ -> incr counted) in
    let config = Tracegen.Config.make ~snapshot_period:10_000 () in
    ignore (Tracegen.Engine.run ~config ~events layout)
  in
  let td = time disabled in
  let te = time enabled in
  let runs = (5 * reps) + 1 in
  Printf.printf
    "engine, events disabled : %8.2f ms/run (median of 5x%d)\n\
     engine, events enabled  : %8.2f ms/run (~%d events per run)\n\
     enabled-path cost       : %+7.2f%%\n"
    (1000.0 *. td /. float_of_int reps)
    reps
    (1000.0 *. te /. float_of_int reps)
    (!counted / runs)
    (100.0 *. (te -. td) /. td);
  perf "observability"
    [
      m "events_disabled_ms" (1000.0 *. td /. float_of_int reps) "ms/run"
        mlower;
      m "events_enabled_ms" (1000.0 *. te /. float_of_int reps) "ms/run"
        mlower;
      m "enabled_cost_pct" (100.0 *. (te -. td) /. td) "pct" mlower;
      m "events_per_run" (float_of_int (!counted / runs)) "count" mhigher;
    ]

(* The black box and the decision ledger are on by default; their
   contract is O(1) per record with bounded retention (the ring) and
   per-consequential-action cost (the ledger), so the priced-in overhead
   on an events-enabled run must stay small — the acceptance line is 3%.
   Time the events-enabled engine with both disarmed
   ([flightrec_capacity:0], [ledger:false]) against the same run with the
   defaults, and report the delta plus the recorder's window accounting.
   The enabled run's trace-length distribution feeds the perf baseline as
   p50/p90/p99 ({!Tracegen.Metrics.percentile}). *)
let flightrec_ledger_overhead () =
  section "Flight recorder / ledger overhead (events-enabled config)";
  let layout = Lazy.force bench_layout in
  (* paired interleaved samples: the 3% acceptance line is finer than
     the drift between two separately-timed blocks on a busy machine, so
     time (off, on) back to back and take the median of the per-pair
     relative deltas; the reps floor keeps each sample long enough to
     ride over scheduler noise even at smoke scale *)
  let reps = max 5 (int_of_float (10.0 *. scale)) in
  let sample f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  (* "events-enabled" means what it means everywhere else in this repo:
     the reconciliation oracle's tally is subscribed, as the chaos gate
     and the events subcommand both do — both sides of the comparison
     carry it, so the delta is exactly the ring + the ledger *)
  let run_with config =
    let events = Tracegen.Events.create () in
    let _tally = Harness.Oracle.attach events in
    Tracegen.Engine.run ~config ~events layout
  in
  let off () =
    ignore
      (run_with (Tracegen.Config.make ~flightrec_capacity:0 ~ledger:false ()))
  in
  let recorded = ref 0 in
  let dropped = ref 0 in
  let decisions = ref 0 in
  let pcts = ref None in
  let on () =
    let r = run_with (Tracegen.Config.make ()) in
    let e = r.Tracegen.Engine.engine in
    (match Tracegen.Engine.flightrec e with
    | Some fr ->
        recorded := Tracegen.Flightrec.recorded fr;
        dropped := Tracegen.Flightrec.dropped fr
    | None -> ());
    (match Tracegen.Engine.ledger e with
    | Some l -> decisions := Tracegen.Ledger.length l
    | None -> ());
    (* keep only the three ints, not the engine: retaining the previous
       run's heap across timed runs would tax the GC we are measuring *)
    let h = Tracegen.Engine.trace_len_hist e in
    let p q = Tracegen.Metrics.percentile h q in
    pcts := Some (p 50.0, p 90.0, p 99.0)
  in
  off ();
  on ();
  Gc.compact ();
  let pairs = List.init 9 (fun _ -> (sample off, sample on)) in
  (* the minimum of each side is the run without scheduler interference —
     medians still wander by several percent on a contended machine *)
  let t_off = List.fold_left min infinity (List.map fst pairs) in
  let t_on = List.fold_left min infinity (List.map snd pairs) in
  let cost = 100.0 *. (t_on -. t_off) /. t_off in
  Printf.printf
    "engine, both disarmed   : %8.2f ms/run (median of 5x%d)\n\
     engine, ring + ledger   : %8.2f ms/run (%d recorded, %d dropped, %d \
     ledger records)\n\
     enabled-path cost       : %+7.2f%% (budget 3%%: %s)\n"
    (1000.0 *. t_off /. float_of_int reps)
    reps
    (1000.0 *. t_on /. float_of_int reps)
    !recorded !dropped !decisions cost
    (if cost <= 3.0 then "within" else "OVER");
  let percentiles =
    match !pcts with
    | None -> []
    | Some (p50, p90, p99) ->
        Printf.printf
          "trace length            : p50<=%d p90<=%d p99<=%d blocks\n" p50 p90
          p99;
        [
          m "trace_len_p50" (float_of_int p50) "blocks" mhigher;
          m "trace_len_p90" (float_of_int p90) "blocks" mhigher;
          m "trace_len_p99" (float_of_int p99) "blocks" mhigher;
        ]
  in
  perf "flightrec_ledger"
    ([
       m "disarmed_ms" (1000.0 *. t_off /. float_of_int reps) "ms/run" mlower;
       m "armed_ms" (1000.0 *. t_on /. float_of_int reps) "ms/run" mlower;
       m "overhead_pct" cost "pct" mlower;
       m "flightrec_recorded" (float_of_int !recorded) "count" mhigher;
       m "ledger_records" (float_of_int !decisions) "count" mhigher;
     ]
    @ percentiles)

(* The span recorder and attribution arrays have the same contract as the
   event stream: with [Config.Obs] off (the default) every site is a
   single branch — a [None]/empty-array test — so the dispatch loop must
   not slow down.  Time the disabled path twice to estimate the noise
   floor, then the same run with spans + attribution on, and report both
   deltas: the disabled re-run should sit inside the noise, the enabled
   cost is the priced-in cost of deep observability. *)
let span_overhead () =
  section "Span overhead (Config.Obs disabled vs enabled)";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let disabled () = ignore (Tracegen.Engine.run layout) in
  let spans_seen = ref 0 in
  let enabled () =
    let config =
      Tracegen.Config.make ~obs_spans:true ~obs_attribution:true ()
    in
    let r = Tracegen.Engine.run ~config layout in
    match Tracegen.Engine.spans r.Tracegen.Engine.engine with
    | Some s -> spans_seen := Tracegen.Spans.recorded s
    | None -> ()
  in
  let d1 = time disabled in
  let d2 = time disabled in
  let te = time enabled in
  let noise = 100.0 *. abs_float (d2 -. d1) /. d1 in
  let cost = 100.0 *. (te -. d1) /. d1 in
  Printf.printf
    "engine, obs disabled    : %8.2f ms/run (median of 5x%d)\n\
     engine, obs disabled #2 : %8.2f ms/run (noise floor %.2f%%)\n\
     engine, spans + attrib  : %8.2f ms/run (%d spans per run)\n\
     enabled-path cost       : %+7.2f%%\n\
     disabled path within noise: %s\n"
    (1000.0 *. d1 /. float_of_int reps)
    reps
    (1000.0 *. d2 /. float_of_int reps)
    noise
    (1000.0 *. te /. float_of_int reps)
    !spans_seen cost
    (if abs_float (d2 -. d1) /. d1 <= 0.15 then "yes" else "NO (rerun)");
  perf "span_overhead"
    [
      m "obs_disabled_ms" (1000.0 *. d1 /. float_of_int reps) "ms/run" mlower;
      m "obs_enabled_ms" (1000.0 *. te /. float_of_int reps) "ms/run" mlower;
      m "enabled_cost_pct" cost "pct" mlower;
      m "spans_per_run" (float_of_int !spans_seen) "count" mhigher;
    ]

(* The invariant sweeps' contract is the same shape: one boolean test per
   block dispatch and per builder outcome when [debug_checks] is off.
   Time the engine with the sweeps off against the same run with them on
   (every construction and decay boundary re-checks the BCG + cache). *)
let debug_checks_overhead () =
  section "Debug-check overhead (invariant sweeps off vs on)";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let off () = ignore (Tracegen.Engine.run layout) in
  let violations = ref 0 in
  let on () =
    let config = Tracegen.Config.make ~debug_checks:true () in
    let r = Tracegen.Engine.run ~config layout in
    violations :=
      !violations + Tracegen.Engine.invariant_violations r.Tracegen.Engine.engine
  in
  let t_off = time off in
  let t_on = time on in
  Printf.printf
    "engine, debug_checks off: %8.2f ms/run (median of 5x%d)\n\
     engine, debug_checks on : %8.2f ms/run (%d violations found)\n\
     checked-path cost       : %+7.2f%%\n"
    (1000.0 *. t_off /. float_of_int reps)
    reps
    (1000.0 *. t_on /. float_of_int reps)
    !violations
    (100.0 *. (t_on -. t_off) /. t_off);
  perf "debug_checks"
    [
      m "checks_off_ms" (1000.0 *. t_off /. float_of_int reps) "ms/run"
        mlower;
      m "checks_on_ms" (1000.0 *. t_on /. float_of_int reps) "ms/run" mlower;
      m "checked_cost_pct" (100.0 *. (t_on -. t_off) /. t_off) "pct" mlower;
    ]

(* Chaos costs two numbers: the steady-state overhead of running with the
   self-healing machinery armed (dispatch-time validation, quarantine
   bookkeeping, health accounting) versus the plain engine, and the
   recovery latency — how many dispatches the engine spends below full
   tracing after a fault burst before the ladder climbs back. *)
let chaos_overhead () =
  section "Chaos overhead / recovery latency";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let plain () = ignore (Tracegen.Engine.run layout) in
  (* self-healing armed but no faults scheduled: the pure price of the
     armour *)
  let armed () =
    let config =
      Tracegen.Config.make ~debug_checks:true ~self_heal:true
        ~max_cache_traces:48 ()
    in
    ignore (Tracegen.Engine.run ~config layout)
  in
  (* the chaos operating point: full default fault schedule *)
  let faults = ref 0 in
  let quarantined = ref 0 in
  let under_fire () =
    let config = Harness.Chaos.config ~seed:42 () in
    let r = Tracegen.Engine.run ~config layout in
    let s = r.Tracegen.Engine.run_stats in
    faults := !faults + s.Stats.faults_injected;
    quarantined := !quarantined + s.Stats.traces_quarantined
  in
  let t_plain = time plain in
  let t_armed = time armed in
  let t_fire = time under_fire in
  Printf.printf
    "engine, plain           : %8.2f ms/run (median of 5x%d)\n\
     engine, self-heal armed : %8.2f ms/run (no faults scheduled)\n\
     engine, under fire      : %8.2f ms/run (default chaos schedule)\n\
     armed-path cost         : %+7.2f%%\n\
     under-fire cost         : %+7.2f%%\n"
    (1000.0 *. t_plain /. float_of_int reps)
    reps
    (1000.0 *. t_armed /. float_of_int reps)
    (1000.0 *. t_fire /. float_of_int reps)
    (100.0 *. (t_armed -. t_plain) /. t_plain)
    (100.0 *. (t_fire -. t_plain) /. t_plain);
  perf "chaos"
    [
      m "plain_ms" (1000.0 *. t_plain /. float_of_int reps) "ms/run" mlower;
      m "armed_cost_pct" (100.0 *. (t_armed -. t_plain) /. t_plain) "pct"
        mlower;
      m "under_fire_cost_pct" (100.0 *. (t_fire -. t_plain) /. t_plain) "pct"
        mlower;
    ];
  (* Recovery latency: subscribe to Mode_degraded/Mode_recovered and
     measure, in dispatches, each excursion below full tracing.  A hotter
     schedule than the gate's, so the ladder actually moves on this small
     layout. *)
  let config =
    Harness.Chaos.config
      ~spec:
        "corrupt-trace@0.02,corrupt-instrs@0.02,zero-counter@0.01,budget=60"
      ~seed:42 ()
  in
  let events = Tracegen.Events.create () in
  let down_at = ref None in
  let excursions = ref [] in
  let _sub =
    Tracegen.Events.subscribe events (fun ev ->
        match ev.Tracegen.Events.payload with
        | Tracegen.Events.Mode_degraded _ ->
            if !down_at = None then down_at := Some ev.Tracegen.Events.time
        | Tracegen.Events.Mode_recovered
            { to_level = Tracegen.Health.Full_tracing; _ } -> (
            match !down_at with
            | Some d ->
                excursions := (ev.Tracegen.Events.time - d) :: !excursions;
                down_at := None
            | None -> ())
        | _ -> ())
  in
  let r = Tracegen.Engine.run ~config ~events layout in
  let s = r.Tracegen.Engine.run_stats in
  let ex = List.rev !excursions in
  let n = List.length ex in
  Printf.printf
    "recovery latency        : %d excursion(s) below full tracing\n" n;
  if n > 0 then begin
    let total = List.fold_left ( + ) 0 ex in
    Printf.printf
      "                          mean %d dispatches, max %d (of %d total)\n"
      (total / n)
      (List.fold_left max 0 ex)
      (Stats.total_dispatches s)
  end;
  Printf.printf
    "                          (run: faults=%d quarantined=%d healed=%d)\n"
    s.Stats.faults_injected s.Stats.traces_quarantined s.Stats.healed_nodes

(* On-stack replacement: the standing price of arming the machinery
   (hot-loop polling, entry pinning, promotion walks) with no faults
   scheduled, then a guard-flip schedule that forces mid-trace
   deoptimization — the wall-time delta over the armed baseline divided
   by the deopt count approximates the per-deopt latency. *)
let osr_overhead () =
  section "OSR overhead / deopt latency";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let off () =
    let config =
      Tracegen.Config.make ~debug_checks:true ~self_heal:true
        ~max_cache_traces:48 ()
    in
    ignore (Tracegen.Engine.run ~config layout)
  in
  let armed () =
    let config =
      Tracegen.Config.make ~debug_checks:true ~self_heal:true
        ~max_cache_traces:48 ~osr:true ~osr_promote_after:64 ()
    in
    ignore (Tracegen.Engine.run ~config layout)
  in
  let deopts = ref 0 in
  let promotions = ref 0 in
  let entries = ref 0 in
  let runs = ref 0 in
  let flipped () =
    let config =
      Harness.Chaos.config ~spec:"guard-flip@0.05,budget=200" ~osr:true
        ~seed:42 ()
    in
    let r = Tracegen.Engine.run ~config layout in
    let e = r.Tracegen.Engine.engine in
    deopts := !deopts + Tracegen.Engine.deopts e;
    promotions := !promotions + Tracegen.Engine.osr_promotions e;
    entries := !entries + Tracegen.Engine.osr_entries e;
    incr runs
  in
  let t_off = time off in
  let t_armed = time armed in
  let t_flip = time flipped in
  let per_run c = float_of_int c /. float_of_int (max 1 !runs) in
  Printf.printf
    "engine, OSR off         : %8.2f ms/run (median of 5x%d)\n\
     engine, OSR armed       : %8.2f ms/run (polling + pinning, no faults)\n\
     arming cost             : %+7.2f%%\n\
     engine, guard flips     : %8.2f ms/run (guard-flip@0.05, budget=200)\n\
     per run                 : %.1f deopts, %.1f promotions, %.1f OSR \
     entries\n"
    (1000.0 *. t_off /. float_of_int reps)
    reps
    (1000.0 *. t_armed /. float_of_int reps)
    (100.0 *. (t_armed -. t_off) /. t_off)
    (1000.0 *. t_flip /. float_of_int reps)
    (per_run !deopts) (per_run !promotions) (per_run !entries);
  if per_run !deopts > 0.0 then
    Printf.printf "deopt latency           : %8.2f us/deopt ((flips - \
                   armed) / deopts)\n"
      (1_000_000.0
      *. (t_flip -. t_armed)
      /. float_of_int reps /. per_run !deopts);
  perf "osr"
    ([
       m "arming_cost_pct" (100.0 *. (t_armed -. t_off) /. t_off) "pct"
         mlower;
       m "deopts_per_run" (per_run !deopts) "count" mlower;
       m "promotions_per_run" (per_run !promotions) "count" mhigher;
     ]
    @
    if per_run !deopts > 0.0 then
      [
        m "deopt_latency_us"
          (1_000_000.0
          *. (t_flip -. t_armed)
          /. float_of_int reps /. per_run !deopts)
          "us/deopt" mlower;
      ]
    else [])

(* The engine re-reads the health ladder at every observed block to pick
   a backend; pinning skips that.  Time pinned-trace against the
   ladder-following default (both stay at full tracing, so the delta is
   the pure selection cost), then a fault schedule hot enough to move the
   ladder, reporting how often the strategy actually changed. *)
let backend_switch_overhead () =
  section "Backend switch overhead (ladder-following vs pinned)";
  let layout = Lazy.force bench_layout in
  let reps = max 1 (int_of_float (10.0 *. scale)) in
  let time f =
    f ();
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            f ()
          done;
          Unix.gettimeofday () -. t0)
    in
    List.nth (List.sort compare samples) 2
  in
  let pinned () =
    ignore (Tracegen.Engine.run ~backend:Tracegen.Engine.Trace layout)
  in
  let following () = ignore (Tracegen.Engine.run layout) in
  let switches = ref 0 in
  let switching () =
    let config =
      Harness.Chaos.config
        ~spec:
          "corrupt-trace@0.02,corrupt-instrs@0.02,zero-counter@0.01,budget=60"
        ~seed:42 ()
    in
    let r = Tracegen.Engine.run ~config layout in
    switches :=
      !switches + Tracegen.Engine.backend_switches r.Tracegen.Engine.engine
  in
  let t_pin = time pinned in
  let t_follow = time following in
  let t_switch = time switching in
  let runs = (5 * reps) + 1 in
  Printf.printf
    "engine, pinned trace    : %8.2f ms/run (median of 5x%d)\n\
     engine, ladder-followed : %8.2f ms/run (0 switches on a clean run)\n\
     selection cost          : %+7.2f%%\n\
     engine, under chaos     : %8.2f ms/run (~%d backend switches per run)\n"
    (1000.0 *. t_pin /. float_of_int reps)
    reps
    (1000.0 *. t_follow /. float_of_int reps)
    (100.0 *. (t_follow -. t_pin) /. t_pin)
    (1000.0 *. t_switch /. float_of_int reps)
    (!switches / runs);
  perf "backend_switch"
    [
      m "pinned_ms" (1000.0 *. t_pin /. float_of_int reps) "ms/run" mlower;
      m "selection_cost_pct" (100.0 *. (t_follow -. t_pin) /. t_pin) "pct"
        mlower;
      m "chaos_ms" (1000.0 *. t_switch /. float_of_int reps) "ms/run" mlower;
    ]

(* Four members of the same workload, private caches (solo engines) vs
   one shared cache (a session): the shared side should reconstruct far
   fewer traces and enter traces built by its siblings. *)
let shared_cache () =
  section "Shared vs private trace cache (4 members, compress)";
  let layout = Lazy.force bench_layout in
  let members = 4 in
  let t0 = Unix.gettimeofday () in
  let private_constructed = ref 0 in
  for _ = 1 to members do
    let r = Tracegen.Engine.run layout in
    private_constructed :=
      !private_constructed
      + r.Tracegen.Engine.run_stats.Stats.traces_constructed
  done;
  let t_private = Unix.gettimeofday () -. t0 in
  let session = Tracegen.Session.create () in
  for u = 1 to members do
    ignore (Tracegen.Session.add ~name:(Printf.sprintf "compress#%d" u)
              session layout)
  done;
  let t1 = Unix.gettimeofday () in
  Tracegen.Session.run session;
  let t_shared = Unix.gettimeofday () -. t1 in
  let shared_constructed =
    List.fold_left
      (fun n m ->
        n + (Tracegen.Session.stats m).Stats.traces_constructed)
      0
      (Tracegen.Session.members session)
  in
  Printf.printf
    "private caches          : %8.2f ms total, %d traces constructed\n\
     shared cache (session)  : %8.2f ms total, %d traces constructed\n\
     cross-session reuse     : %d installs saved, %d trace entries\n"
    (1000.0 *. t_private) !private_constructed (1000.0 *. t_shared)
    shared_constructed
    (Tracegen.Session.cross_installs session)
    (Tracegen.Session.cross_entries session);
  perf "shared_cache"
    [
      m "private_ms" (1000.0 *. t_private) "ms" mlower;
      m "shared_ms" (1000.0 *. t_shared) "ms" mlower;
      m "shared_traces_constructed" (float_of_int shared_constructed) "count"
        mlower;
      m "cross_installs_saved"
        (float_of_int (Tracegen.Session.cross_installs session))
        "count" mhigher;
    ]

(* Guard pruning: the payoff of the install-time implication prover.
   Run compress and scimark with pruning off and on, and report the
   dynamic guard-comparison rate (checks per 1k executed instructions),
   the fraction of in-trace positions covered by a static proof, and the
   run-time delta.  Dispatch counts must be identical — pruning only
   changes which positions still pay the comparison. *)
let guard_pruning () =
  section "Guard pruning (implication prover off vs on)";
  let time f =
    ignore (f ());
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r))
    in
    match List.sort compare samples with
    | _ :: _ :: (t, r) :: _ -> (t, r)
    | (t, r) :: _ -> (t, r)
    | [] -> assert false
  in
  List.iter
    (fun name ->
      match Workloads.Registry.find name with
      | None -> ()
      | Some w ->
          let layout =
            Cfg.Layout.build (Workloads.Workload.build_default w)
          in
          let run prune () =
            let config = Tracegen.Config.make ~prune_guards:prune () in
            (Tracegen.Engine.run ~config layout).Tracegen.Engine.run_stats
          in
          let t_off, s_off = time (run false) in
          let t_on, s_on = time (run true) in
          if Stats.total_dispatches s_off <> Stats.total_dispatches s_on then
            Printf.printf "%-10s DISPATCH MISMATCH (%d vs %d)\n" name
              (Stats.total_dispatches s_off)
              (Stats.total_dispatches s_on)
          else begin
            Printf.printf
              "%-10s off: %6.2f guards/kinstr          %8.2f ms\n\
               %-10s on : %6.2f guards/kinstr (-%4.1f%%) %8.2f ms (%+.1f%%)\n\
               %-10s      %d of %d positions proven (%d static verdicts)\n"
              name
              (Stats.guards_per_kinstr s_off)
              (1000.0 *. t_off) ""
              (Stats.guards_per_kinstr s_on)
              (100.0 *. Stats.guard_elision_rate s_on)
              (1000.0 *. t_on)
              (100.0 *. (t_on -. t_off) /. t_off)
              "" s_on.Stats.guards_elided
              (s_on.Stats.guards_checked + s_on.Stats.guards_elided)
              s_on.Stats.guards_pruned;
            perf ("guard_pruning." ^ name)
              [
                m "guards_per_kinstr"
                  (Stats.guards_per_kinstr s_on)
                  "guards/kinstr" mlower;
                m "elision_pct"
                  (100.0 *. Stats.guard_elision_rate s_on)
                  "pct" mhigher;
                m "guards_pruned"
                  (float_of_int s_on.Stats.guards_pruned)
                  "count" mhigher;
              ]
          end)
    [ "compress"; "scimark" ]

(* Micro-IR dispatch: the payoff of the compiled tier.  Run compress and
   scimark with the tier off and on, and report how many traces reached
   the compiled tier, the per-position dispatch cost (micro-ops executed
   per position vs the source instructions those positions replaced —
   folding, dead-store elision and superinstruction fusion are exactly
   the gap), and the run-time delta.  Dispatch counts must be identical —
   the tier only changes the cost of a position, never the dispatch
   stream. *)
let microir_dispatch () =
  section "Micro-IR dispatch (compiled tier off vs on)";
  let time f =
    ignore (f ());
    let samples =
      List.init 5 (fun _ ->
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (Unix.gettimeofday () -. t0, r))
    in
    match List.sort compare samples with
    | _ :: _ :: (t, r) :: _ -> (t, r)
    | (t, r) :: _ -> (t, r)
    | [] -> assert false
  in
  List.iter
    (fun name ->
      match Workloads.Registry.find name with
      | None -> ()
      | Some w ->
          let layout =
            Cfg.Layout.build (Workloads.Workload.build_default w)
          in
          let run tier () =
            let config = Tracegen.Config.make ~tier () in
            (Tracegen.Engine.run ~config layout).Tracegen.Engine.run_stats
          in
          let t_off, s_off = time (run false) in
          let t_on, s_on = time (run true) in
          if Stats.total_dispatches s_off <> Stats.total_dispatches s_on then
            Printf.printf "%-10s DISPATCH MISMATCH (%d vs %d)\n" name
              (Stats.total_dispatches s_off)
              (Stats.total_dispatches s_on)
          else begin
            let per denom n =
              float_of_int n /. float_of_int (max 1 denom)
            in
            let ops_pp = per s_on.Stats.mi_positions s_on.Stats.mi_ops in
            let src_pp =
              per s_on.Stats.mi_positions s_on.Stats.mi_src_instrs
            in
            Printf.printf
              "%-10s off: %6.2f instrs/position           %8.2f ms\n\
               %-10s on : %6.2f micro-ops/position (-%4.1f%%) %8.2f ms \
               (%+.1f%%)\n\
               %-10s      %d traces compiled, %d compiled entries, %d fused \
               ops\n"
              name src_pp (1000.0 *. t_off) "" ops_pp
              (100.0 *. (1.0 -. (ops_pp /. src_pp)))
              (1000.0 *. t_on)
              (100.0 *. (t_on -. t_off) /. t_off)
              "" s_on.Stats.traces_compiled s_on.Stats.compiled_entries
              s_on.Stats.mi_fused;
            perf ("microir." ^ name)
              [
                m "micro_ops_per_position" ops_pp "ops/position" mlower;
                m "fold_pct"
                  (100.0 *. (1.0 -. (ops_pp /. src_pp)))
                  "pct" mhigher;
                m "traces_compiled"
                  (float_of_int s_on.Stats.traces_compiled)
                  "count" mhigher;
                m "fused_ops"
                  (float_of_int s_on.Stats.mi_fused)
                  "count" mhigher;
              ]
          end)
    [ "compress"; "scimark" ]

let micro () =
  section "Bechamel microbenchmarks";
  let test =
    Test.make_grouped ~name:"tracevm"
      [
        Test.make ~name:"profiler_hook_per_dispatch" (bench_profiler_hook ());
        Test.make ~name:"bcg_touch" (bench_bcg_touch ());
        Test.make ~name:"trace_cache_lookup" (bench_cache_lookup ());
        Test.make ~name:"interp_plain_small_compress"
          (interp_bench ~with_profiler:false ());
        Test.make ~name:"interp_profiled_small_compress"
          (interp_bench ~with_profiler:true ());
        Test.make ~name:"engine_traced_small_compress" (bench_full_engine ());
        Test.make ~name:"engine_events_enabled_small_compress"
          (bench_engine_events ());
        Test.make ~name:"engine_debug_checks_small_compress"
          (bench_engine_debug_checks ());
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Instance.monotonic_clock results in
    Analyze.merge ols Instance.[ monotonic_clock ] [ results ]
  in
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-42s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-42s (no estimate)\n" name)
        tbl)
    results

(* --smoke: the seconds-long subset check.sh runs on every gate — the
   mechanism sections over the small layout, no paper tables, no
   Bechamel. *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv

let () =
  if smoke then begin
    span_overhead ();
    flightrec_ledger_overhead ();
    backend_switch_overhead ();
    osr_overhead ();
    guard_pruning ();
    microir_dispatch ();
    shared_cache ();
    warmstart ();
    write_perf ~label:"smoke";
    print_newline ();
    print_endline "smoke ok."
  end
  else begin
    tables ();
    warmstart ();
    observability ();
    span_overhead ();
    flightrec_ledger_overhead ();
    debug_checks_overhead ();
    chaos_overhead ();
    backend_switch_overhead ();
    osr_overhead ();
    guard_pruning ();
    microir_dispatch ();
    shared_cache ();
    (match Sys.getenv_opt "BENCH_SKIP_MICRO" with
    | Some "1" -> ()
    | Some _ | None -> micro ());
    write_perf ~label:"full";
    print_newline ();
    print_endline "done."
  end
