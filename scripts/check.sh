#!/bin/sh
# Repo health check: full build, test suite, and (when odoc is
# available) the documentation build.  Run from anywhere.
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest

if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed; skipping 'dune build @doc'" >&2
fi

echo "check.sh: all checks passed"
