#!/bin/sh
# Repo health check: full build (warnings fatal), test suite, the linter
# over every registered workload, and (when odoc is available) the
# documentation build.  Run from anywhere.
set -eu
cd "$(dirname "$0")/.."

# Promote every compiler warning to an error for this build; the dune
# profile keeps warnings non-fatal for day-to-day iteration.
dune build --profile release 2>&1 | tee /tmp/check_build.$$ || {
  rm -f /tmp/check_build.$$
  exit 1
}
if grep -q "Warning" /tmp/check_build.$$; then
  echo "check.sh: build produced warnings (shown above); failing" >&2
  rm -f /tmp/check_build.$$
  exit 1
fi
rm -f /tmp/check_build.$$

dune build
dune runtest

# Static dataflow lint + dynamic invariant sweep over every registered
# workload, plus the symbolic trace validator over every trace the
# sweep's engine installed; exits non-zero on any error-severity finding.
dune exec bin/repro_cli.exe -- lint --traces

# Translation-validation gate: every trace installed on every workload
# must prove observationally equivalent to its source blocks (TL21x
# clean), guard pruning must engage on at least two workloads, and the
# pruned run's VM result must stay bit-identical to the unpruned run —
# the pruning on/off ablation in one sweep.  Non-zero exit on any
# unprovable trace, divergence, or insufficient pruning.
dune exec bin/repro_cli.exe -- prove --min-pruning 2

# Chaos gate: every workload under 50 seeded fault schedules must yield
# VM results identical to the no-tracing baseline and recover to full
# tracing; exits non-zero on any FT901/FT902 verdict.
dune exec bin/repro_cli.exe -- chaos --seed 42 --quick

# Deopt-transparency gate: with on-stack replacement armed, guard-flip
# schedules (FT008) force mid-trace deoptimization at pseudo-random
# positions on every workload — results must stay bit-identical and the
# ladder must still end the run at full tracing.
dune exec bin/repro_cli.exe -- chaos --spec 'guard_flip@0.05,budget=24' \
  --schedules 25 --seed 42 --quick --osr

# Tier-transparency gate: with the compiled micro-IR tier armed, every
# workload pinned to every backend must stay bit-identical to the plain
# interpreter, and at least one trace must actually reach the compiled
# tier — a transparency pass over an idle tier proves nothing.
dune exec bin/repro_cli.exe -- backends --tier > /dev/null

# Compiled-tier chaos: guard-flip schedules force mid-trace deopt while
# traces are dispatched from the micro-IR tier (--tier --osr), putting
# the deopt-from-compiled-tier path under the FT901/FT902 gate.
dune exec bin/repro_cli.exe -- chaos --spec 'guard_flip@0.05,budget=24' \
  --schedules 25 --seed 42 --quick --osr --tier

# Hot-path attribution: the ranked report's every column must reconcile
# exactly with the end-of-run statistics; exits non-zero on mismatch.
dune exec bin/repro_cli.exe -- top compress > /dev/null

# Timeline round trip: export a Chrome trace and hold it to the
# structural oracle (valid JSON, monotone timestamps, every E closing a
# B); exits non-zero on any violation.
chrome_out=$(mktemp /tmp/check_chrome.XXXXXX.json)
dune exec bin/repro_cli.exe -- timeline compress --self-heal \
  --fault-spec 'corrupt-trace@0.005,budget=20' --chrome "$chrome_out" \
  > /dev/null || { rm -f "$chrome_out"; exit 1; }
rm -f "$chrome_out"

# Warm-start gate: save a snapshot, load it back, and require the warm
# run to report a bit-identical VM result; then corrupt one byte and
# require the loader to reject the file with a non-zero exit.
snap_out=$(mktemp /tmp/check_snap.XXXXXX.tcsnap)
dune exec bin/repro_cli.exe -- warm compress --save "$snap_out" > /dev/null
warm_report=$(dune exec bin/repro_cli.exe -- warm compress --load "$snap_out") || {
  echo "check.sh: warm --load failed" >&2
  rm -f "$snap_out"
  exit 1
}
case "$warm_report" in
*"identical to cold"*) ;;
*)
  echo "check.sh: warm run did not report an identical result" >&2
  rm -f "$snap_out"
  exit 1
  ;;
esac
# stomp 4 bytes of the stored MD5 (header offset 36-51), guaranteeing a
# checksum mismatch
printf '\377\377\377\377' | dd of="$snap_out" bs=1 seek=40 count=4 conv=notrunc 2> /dev/null
if dune exec bin/repro_cli.exe -- warm compress --load "$snap_out" \
  > /dev/null 2>&1; then
  echo "check.sh: corrupted snapshot was accepted" >&2
  rm -f "$snap_out"
  exit 1
fi
rm -f "$snap_out"

# Bench smoke: the seconds-long mechanism sections (span overhead,
# backend switching, shared-vs-private trace cache) — catches bench
# bitrot without the paper-scale tables.  --json additionally writes
# the machine-readable BENCH_smoke.json baseline, which the next three
# gates exercise.
dune build bench/main.exe
bench_dir=$(mktemp -d /tmp/check_bench.XXXXXX)
repo=$PWD
(cd "$bench_dir" && "$repo/_build/default/bench/main.exe" --smoke --json)
if ! test -s "$bench_dir/BENCH_smoke.json"; then
  echo "check.sh: bench --json wrote no BENCH_smoke.json" >&2
  rm -rf "$bench_dir"
  exit 1
fi

# A baseline diffed against itself is a clean zero-regression pass even
# at zero tolerance...
dune exec bin/repro_cli.exe -- bench-diff \
  "$bench_dir/BENCH_smoke.json" "$bench_dir/BENCH_smoke.json" \
  --max-regress 0 > /dev/null

# ...and a stomped metric must make bench-diff exit nonzero.
sed 's/"value":[0-9.eE+-]*/"value":99999999/' \
  "$bench_dir/BENCH_smoke.json" > "$bench_dir/BENCH_stomped.json"
if dune exec bin/repro_cli.exe -- bench-diff \
  "$bench_dir/BENCH_smoke.json" "$bench_dir/BENCH_stomped.json" \
  > /dev/null 2>&1; then
  echo "check.sh: bench-diff accepted a stomped baseline" >&2
  rm -rf "$bench_dir"
  exit 1
fi
rm -rf "$bench_dir"

# Flight-recorder round trip: a faulted self-healing run forced to dump
# its ring must produce a JSONL artifact the postmortem reader accepts.
fr_out=$(mktemp /tmp/check_flightrec.XXXXXX.jsonl)
dune exec bin/repro_cli.exe -- run compress --self-heal \
  --fault-spec 'corrupt-trace@0.01,budget=12' \
  --dump-flightrec "$fr_out" > /dev/null
dune exec bin/repro_cli.exe -- postmortem "$fr_out" > /dev/null
rm -f "$fr_out"

if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "check.sh: odoc not installed; skipping 'dune build @doc'" >&2
fi

echo "check.sh: all checks passed"
