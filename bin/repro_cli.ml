(* Command-line interface to the reproduction: run workloads under any
   configuration, regenerate the paper's tables, and inspect the BCG and
   the trace cache. *)

open Cmdliner

let find_workload name =
  match Workloads.Registry.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " (Workloads.Registry.names ()));
      exit 2

(* Config.make validates; turn a bad --threshold/--delay/--snapshot-period
   into a clean CLI error rather than an uncaught exception. *)
let config_or_die f =
  try f () with
  | Invalid_argument msg ->
      Printf.eprintf "invalid configuration: %s\n" msg;
      exit 2

let layout_of w ~size =
  let program =
    match size with
    | Some s -> w.Workloads.Workload.build ~size:s
    | None -> Workloads.Workload.build_default w
  in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let run_cmd workload size threshold delay fault_spec fault_seed self_heal
    dump_traces dump_bcg top =
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    config_or_die (fun () ->
        (* the engine parses the spec at create; surface a bad one here *)
        ignore (Tracegen.Faults.create ~seed:fault_seed fault_spec);
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~fault_spec ~fault_seed ~self_heal ~debug_checks:self_heal ())
  in
  let result = Tracegen.Engine.run ~config layout in
  let s = result.Tracegen.Engine.run_stats in
  (match result.Tracegen.Engine.vm_result.Vm.Interp.outcome with
  | Vm.Interp.Finished (Some value) ->
      Printf.printf "result: %s\n" (Vm.Value.to_string value)
  | Vm.Interp.Finished None -> Printf.printf "result: void\n"
  | Vm.Interp.Trapped (kind, msg) ->
      Printf.printf "trapped: %s (%s)\n"
        (Vm.Interp.error_kind_to_string kind)
        msg);
  Format.printf "%a@." Tracegen.Stats.pp s;
  if dump_traces then begin
    let engine = result.Tracegen.Engine.engine in
    let traces = ref [] in
    Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache engine) (fun tr ->
        traces := tr :: !traces);
    let sorted =
      List.sort
        (fun a b -> compare b.Tracegen.Trace.completed a.Tracegen.Trace.completed)
        !traces
    in
    Printf.printf "\ntraces (%d total, showing up to %d by completions):\n"
      (List.length sorted) top;
    List.iteri
      (fun k tr ->
        if k < top then
          print_endline (Tracegen.Trace.describe layout tr))
      sorted
  end;
  if dump_bcg then begin
    let bcg =
      Tracegen.Profiler.bcg
        (Tracegen.Engine.profiler result.Tracegen.Engine.engine)
    in
    let nodes = ref [] in
    Tracegen.Bcg.iter_nodes bcg (fun n -> nodes := n :: !nodes);
    let sorted =
      List.sort
        (fun a b -> compare b.Tracegen.Bcg.exec_total a.Tracegen.Bcg.exec_total)
        !nodes
    in
    Printf.printf "\nbcg nodes (%d total, showing up to %d by executions):\n"
      (List.length sorted) top;
    List.iteri
      (fun k n ->
        if k < top then
          Format.printf "%a@." (Tracegen.Bcg.pp_node layout) n)
      sorted
  end

(* ------------------------------------------------------------------ *)
(* events                                                               *)
(* ------------------------------------------------------------------ *)

(* Replay a workload with the event stream enabled and dump the timeline
   as JSON lines on stdout.  After the run the per-kind event totals are
   checked against the end-of-run statistics: the stream and the counters
   are two views of the same execution and must agree exactly. *)
let events_cmd workload size threshold delay fault_spec fault_seed self_heal
    snapshot_period =
  let module Events = Tracegen.Events in
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    config_or_die (fun () ->
        ignore (Tracegen.Faults.create ~seed:fault_seed fault_spec);
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~fault_spec ~fault_seed ~self_heal ~debug_checks:self_heal
          ~snapshot_period ())
  in
  let events = Events.create () in
  let tally = Hashtbl.create 8 in
  let constructed_new = ref 0 in
  let _sub =
    Events.subscribe events (fun e ->
        let k = Events.kind e.Events.payload in
        Hashtbl.replace tally k
          (1 + (try Hashtbl.find tally k with Not_found -> 0));
        (match e.Events.payload with
        | Events.Trace_constructed { reused = false; _ } -> incr constructed_new
        | _ -> ());
        print_endline (Harness.Export.to_string (Harness.Export.event_json e)))
  in
  let result = Tracegen.Engine.run ~config ~events layout in
  let s = result.Tracegen.Engine.run_stats in
  let engine = result.Tracegen.Engine.engine in
  let count k = try Hashtbl.find tally k with Not_found -> 0 in
  let in_flight =
    match Tracegen.Engine.active_trace engine with Some _ -> 1 | None -> 0
  in
  let checks =
    [
      ("signal_raised = signals", count "signal_raised", s.Tracegen.Stats.signals);
      ( "trace_constructed (new) = traces_constructed",
        !constructed_new,
        s.Tracegen.Stats.traces_constructed );
      ( "trace_constructed (reused) = builder reuses",
        count "trace_constructed" - !constructed_new,
        Tracegen.Engine.builder_reuses engine );
      ( "trace_entered = traces_entered",
        count "trace_entered",
        s.Tracegen.Stats.traces_entered );
      ( "trace_completed = traces_completed",
        count "trace_completed",
        s.Tracegen.Stats.traces_completed );
      ( "side_exit = entered - completed - in-flight",
        count "side_exit",
        s.Tracegen.Stats.traces_entered - s.Tracegen.Stats.traces_completed
        - in_flight );
      ( "trace_replaced = traces_replaced",
        count "trace_replaced",
        s.Tracegen.Stats.traces_replaced );
      ( "fault_injected = faults_injected",
        count "fault_injected",
        s.Tracegen.Stats.faults_injected );
      ( "trace_quarantined = traces_quarantined",
        count "trace_quarantined",
        s.Tracegen.Stats.traces_quarantined );
      ( "trace_evicted = traces_evicted",
        count "trace_evicted",
        s.Tracegen.Stats.traces_evicted );
      ( "mode_degraded = health_demotions",
        count "mode_degraded",
        s.Tracegen.Stats.health_demotions );
      ( "mode_recovered = health_promotions",
        count "mode_recovered",
        s.Tracegen.Stats.health_promotions );
    ]
  in
  Printf.eprintf "# %d events across %d kinds\n"
    (Events.emitted events)
    (Hashtbl.length tally);
  let ok =
    List.fold_left
      (fun ok (name, got, want) ->
        if got = want then begin
          Printf.eprintf "# ok: %s (%d)\n" name got;
          ok
        end
        else begin
          Printf.eprintf "# MISMATCH: %s (timeline %d, stats %d)\n" name got
            want;
          false
        end)
      true checks
  in
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* table                                                                *)
(* ------------------------------------------------------------------ *)

let table_cmd which scale =
  let s =
    match which with
    | "1" -> Harness.Tables.table1 ~scale ()
    | "2" -> Harness.Tables.table2 ~scale ()
    | "3" -> Harness.Tables.table3 ~scale ()
    | "4" -> Harness.Tables.table4 ~scale ()
    | "5" -> Harness.Tables.table5 ~scale ()
    | "6" -> fst (Harness.Overhead.table6 ~scale ())
    | "7" -> Harness.Overhead.table7 ~scale ()
    | "coverage-total" -> Harness.Tables.coverage_totals ~scale ()
    | "figure" -> Harness.Tables.figure_dispatch ~scale ()
    | "baselines" -> Harness.Tables.baselines ~scale ()
    | "ablation-decay" -> Harness.Ablation.decay_ablation ()
    | "optimizer" -> Harness.Ablation.optimizer_report ~scale ()
    | "footprint" -> Harness.Footprint.report ~scale ()
    | other ->
        Printf.eprintf
          "unknown table %s (1-7, coverage-total, figure, baselines, \
           ablation-decay, optimizer, footprint)\n" other;
        exit 2
  in
  print_string s

(* ------------------------------------------------------------------ *)
(* disasm / list                                                        *)
(* ------------------------------------------------------------------ *)

let disasm_cmd workload size meth =
  let w = find_workload workload in
  let program =
    match size with
    | Some s -> w.Workloads.Workload.build ~size:s
    | None -> Workloads.Workload.build_default w
  in
  match meth with
  | None -> print_string (Bytecode.Disasm.program_to_string program)
  | Some name -> (
      match Bytecode.Program.find_method program name with
      | Some m -> print_string (Bytecode.Disasm.method_to_string program m)
      | None ->
          Printf.eprintf "no method %s\n" name;
          exit 2)

let export_cmd format workload scale =
  match format with
  | "csv" -> print_string (Harness.Export.sweep_csv ~scale ())
  | "jsonl" -> print_string (Harness.Export.sweep_jsonl ~scale ())
  | "json" -> (
      match workload with
      | None ->
          Printf.eprintf "json format needs --workload\n";
          exit 2
      | Some name ->
          let w = find_workload name in
          let run =
            Harness.Experiment.execute
              (Harness.Experiment.default_key ~workload:name
                 ~size:(Harness.Experiment.size_for ~scale w))
          in
          print_endline (Harness.Export.to_string (Harness.Export.run_json run)))
  | other ->
      Printf.eprintf "unknown format %s (csv, jsonl, json)\n" other;
      exit 2

let list_cmd () =
  List.iter
    (fun w -> Format.printf "%a@." Workloads.Workload.pp w)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

(* Static dataflow lint over the workload's bytecode, then a profiled run
   with the trace/BCG invariant checks on and a final end-of-run sweep.
   Exit 1 when any error-severity finding survives. *)
let lint_cmd workload size threshold delay json static_only =
  let module Diag = Analysis.Diag in
  let ws =
    match workload with
    | Some name -> [ find_workload name ]
    | None -> Workloads.Registry.all
  in
  let config =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~debug_checks:true ())
  in
  let diags =
    List.concat_map
      (fun w ->
        let name = w.Workloads.Workload.name in
        let program =
          match size with
          | Some s -> w.Workloads.Workload.build ~size:s
          | None -> Workloads.Workload.build_default w
        in
        let static = Analysis.Lint.lint_program ~context:name program in
        (* A verify-rejected program cannot be laid out, let alone run;
           its TL001 findings stand alone. *)
        let rejected =
          List.exists (fun d -> d.Diag.code = "TL001") static
        in
        if static_only || rejected then static
        else
          let layout = Cfg.Layout.build program in
          let r = Tracegen.Engine.run ~config layout in
          let engine = r.Tracegen.Engine.engine in
          let dynamic =
            Tracegen.Invariants.check_all ~context:name config
              ~bcg:(Tracegen.Profiler.bcg (Tracegen.Engine.profiler engine))
              ~cache:(Tracegen.Engine.cache engine)
          in
          static @ dynamic)
      ws
  in
  let diags = List.stable_sort Diag.compare diags in
  if json then print_string (Harness.Export.diags_jsonl diags)
  else begin
    List.iter (fun d -> print_endline (Diag.to_string d)) diags;
    Printf.printf "%d error(s), %d warning(s), %d note(s) across %d workload(s)\n"
      (Diag.count Diag.Error diags)
      (Diag.count Diag.Warning diags)
      (Diag.count Diag.Info diags)
      (List.length ws)
  end;
  if Diag.has_errors diags then exit 1

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

(* Run workloads under seeded fault schedules and hold the engine to the
   chaos gate's two promises: VM results bit-identical to the no-tracing
   baseline (FT901) and recovery to full tracing by the end of the run
   (FT902).  Exit 1 on any violated promise. *)
let chaos_cmd workload size seed schedules spec quick verbose catalogue =
  if catalogue then
    List.iter
      (fun (code, doc) -> Printf.printf "%s  %s\n" code doc)
      Tracegen.Faults.catalogue
  else begin
    let ws =
      match workload with
      | Some name -> [ find_workload name ]
      | None -> Workloads.Registry.all
    in
    let spec = Option.value spec ~default:Harness.Chaos.default_spec in
    (* validate the schedule before spending any run time on it *)
    (try ignore (Tracegen.Faults.create ~seed spec) with
    | Invalid_argument msg ->
        Printf.eprintf "invalid fault spec: %s\n" msg;
        exit 2);
    let max_instructions = if quick then Some 120_000 else None in
    let failures = ref 0 in
    let total = ref 0 in
    List.iter
      (fun (w : Workloads.Workload.t) ->
        let size =
          Option.value size ~default:w.Workloads.Workload.default_size
        in
        let faults = ref 0 in
        let quarantined = ref 0 in
        let evicted = ref 0 in
        let healed = ref 0 in
        let demoted = ref 0 in
        let ok = ref 0 in
        for i = 0 to schedules - 1 do
          let v =
            Harness.Chaos.run_one ~spec ?max_instructions w ~size
              ~seed:(seed + (1000 * i))
          in
          incr total;
          let s = v.Harness.Chaos.stats in
          faults := !faults + s.Tracegen.Stats.faults_injected;
          quarantined := !quarantined + s.Tracegen.Stats.traces_quarantined;
          evicted := !evicted + s.Tracegen.Stats.traces_evicted;
          healed := !healed + s.Tracegen.Stats.healed_nodes;
          demoted := !demoted + s.Tracegen.Stats.health_demotions;
          if Harness.Chaos.passed v then incr ok
          else begin
            incr failures;
            Printf.printf "FAIL %s\n" (Harness.Chaos.describe v)
          end;
          if verbose && Harness.Chaos.passed v then
            Printf.printf "ok   %s\n" (Harness.Chaos.describe v)
        done;
        Printf.printf
          "%-10s %d/%d schedules ok; faults=%d quarantined=%d evicted=%d \
           healed=%d demoted=%d\n"
          w.Workloads.Workload.name !ok schedules !faults !quarantined
          !evicted !healed !demoted)
      ws;
    Printf.printf "chaos gate: %d/%d runs identical and recovered\n"
      (!total - !failures) !total;
    if !failures > 0 then exit 1
  end

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let size_arg =
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
         ~doc:"Workload size (default: the workload's test size).")

let threshold_arg =
  Arg.(value & opt float 0.97 & info [ "threshold" ] ~docv:"P"
         ~doc:"Trace completion threshold in (0,1].")

let delay_arg =
  Arg.(value & opt int 64 & info [ "delay" ] ~docv:"D"
         ~doc:"Start state delay (paper: 1, 64 or 4096).")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S"
         ~doc:"Scale factor on workload bench sizes (1.0 = paper-scale runs).")

let fault_spec_arg =
  Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC"
         ~doc:"Fault schedule DSL (kind@prob, kind!tick, budget=K; empty = \
               no injection).  See 'chaos --catalogue' for kinds.")

let fault_seed_arg =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"PRNG seed for the fault schedule.")

let self_heal_arg =
  Arg.(value & flag & info [ "self-heal" ]
         ~doc:"Enable quarantine, node repair and the degradation ladder \
               (also turns on the invariant sweeps that drive them).")

let run_term =
  let dump_traces =
    Arg.(value & flag & info [ "traces" ] ~doc:"Dump the trace cache.")
  in
  let dump_bcg =
    Arg.(value & flag & info [ "bcg" ] ~doc:"Dump the hottest BCG nodes.")
  in
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K"
           ~doc:"How many traces/nodes to dump.")
  in
  Term.(
    const run_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg
    $ dump_traces $ dump_bcg $ top)

let run_info =
  Cmd.info "run" ~doc:"Run one workload under the trace-cache engine."

let events_term =
  let snapshot_period =
    Arg.(value & opt int 10_000 & info [ "snapshot-period" ] ~docv:"N"
           ~doc:"Take a metrics snapshot every N dispatches (0 disables).")
  in
  Term.(
    const events_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg $ snapshot_period)

let events_info =
  Cmd.info "events"
    ~doc:
      "Replay a workload with the event stream enabled and dump the timeline \
       as JSON lines (stdout); per-kind totals are cross-checked against the \
       end-of-run statistics (stderr, non-zero exit on mismatch)."

let table_term =
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE")
  in
  Term.(const table_cmd $ which $ scale_arg)

let table_info =
  Cmd.info "table"
    ~doc:"Regenerate one of the paper's tables (1-7, coverage-total, figure, baselines, ablation-decay, optimizer)."

let disasm_term =
  let meth =
    Arg.(value & opt (some string) None & info [ "method" ] ~docv:"NAME"
           ~doc:"Only this method.")
  in
  Term.(const disasm_cmd $ workload_arg $ size_arg $ meth)

let disasm_info = Cmd.info "disasm" ~doc:"Disassemble a workload program."

let export_term =
  let format =
    Arg.(value & opt string "csv" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: csv, jsonl or json (one workload).")
  in
  let workload =
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"W"
           ~doc:"Workload for --format json.")
  in
  Term.(const export_cmd $ format $ workload $ scale_arg)

let export_info =
  Cmd.info "export" ~doc:"Emit sweep results as CSV / JSON for external tools."

let list_term = Term.(const list_cmd $ const ())

let list_info = Cmd.info "list" ~doc:"List the available workloads."

let lint_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to lint (default: every registered workload).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit diagnostics as JSON lines instead of human-readable text.")
  in
  let static_only =
    Arg.(value & flag & info [ "static-only" ]
           ~doc:"Skip the profiled run and its trace/BCG invariant sweep.")
  in
  Term.(
    const lint_cmd $ workload $ size_arg $ threshold_arg $ delay_arg $ json
    $ static_only)

let lint_info =
  Cmd.info "lint"
    ~doc:
      "Lint workload programs with the dataflow analyses (dead stores, \
       unreachable blocks, always-taken branches, ...), then run each one \
       under the engine with debug checks on and sweep the trace cache and \
       BCG for invariant violations.  Exits 1 on any error-severity finding."

let chaos_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to chaos-test (default: every registered workload).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Base PRNG seed; schedule i uses seed + 1000*i.")
  in
  let schedules =
    Arg.(value & opt int 50 & info [ "schedules" ] ~docv:"K"
           ~doc:"Seeded fault schedules per workload.")
  in
  let spec =
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"SPEC"
           ~doc:"Fault schedule DSL (kind@prob, kind!tick, budget=K; \
                 see --catalogue for kinds).")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Bound each run to 120k instructions (the check.sh gate).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Print every verdict, not only failures.")
  in
  let catalogue =
    Arg.(value & flag & info [ "catalogue" ]
           ~doc:"Print the FT fault catalogue and exit.")
  in
  Term.(
    const chaos_cmd $ workload $ size_arg $ seed $ schedules $ spec $ quick
    $ verbose $ catalogue)

let chaos_info =
  Cmd.info "chaos"
    ~doc:
      "Run workloads under seeded fault schedules (corrupted traces, \
       flipped BCG counters, failed installations, allocation pressure) \
       with self-healing on, asserting VM results stay bit-identical to a \
       no-tracing baseline and the engine recovers to full tracing.  Exits \
       1 on any divergence or permanently degraded run."

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "tracevm" ~version:"1.0.0"
      ~doc:
        "Dynamic profiling and trace cache generation for a bytecode VM \
         (CGO 2003 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v run_info run_term;
            Cmd.v events_info events_term;
            Cmd.v table_info table_term;
            Cmd.v disasm_info disasm_term;
            Cmd.v export_info export_term;
            Cmd.v list_info list_term;
            Cmd.v lint_info lint_term;
            Cmd.v chaos_info chaos_term;
          ]))
