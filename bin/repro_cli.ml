(* Command-line interface to the reproduction: run workloads under any
   configuration, regenerate the paper's tables, and inspect the BCG and
   the trace cache. *)

open Cmdliner

(* workload lookup, layout building, config validation and the shared
   argument definitions live in Cli_common *)
let find_workload = Cli_common.find_workload

let config_or_die = Cli_common.config_or_die

let layout_of = Cli_common.layout_of

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let run_cmd workload size threshold delay fault_spec fault_seed self_heal
    osr tier prune_guards dump_traces dump_bcg top dump_flightrec =
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    Cli_common.engine_config ~threshold ~delay ~fault_spec ~fault_seed
      ~self_heal ~osr ~tier ~prune_guards ()
  in
  let result = Tracegen.Engine.run ~config layout in
  let s = result.Tracegen.Engine.run_stats in
  (* --dump-flightrec: force a Manual post-mortem dump of the black-box
     ring — what an invariant/divergence trigger would have written *)
  (match dump_flightrec with
  | None -> ()
  | Some path -> (
      match Tracegen.Engine.flightrec result.Tracegen.Engine.engine with
      | Some fr ->
          Harness.Postmortem.write ~reason:Tracegen.Flightrec.Manual ~path fr;
          Printf.eprintf "# flightrec: %d of %d recorded entrie(s) -> %s\n"
            (min
               (Tracegen.Flightrec.recorded fr)
               (Tracegen.Flightrec.capacity fr))
            (Tracegen.Flightrec.recorded fr)
            path
      | None ->
          Printf.eprintf
            "--dump-flightrec: flight recorder disabled \
             (flightrec_capacity 0)\n";
          exit 2));
  (match result.Tracegen.Engine.vm_result.Vm.Interp.outcome with
  | Vm.Interp.Finished (Some value) ->
      Printf.printf "result: %s\n" (Vm.Value.to_string value)
  | Vm.Interp.Finished None -> Printf.printf "result: void\n"
  | Vm.Interp.Trapped (kind, msg) ->
      Printf.printf "trapped: %s (%s)\n"
        (Vm.Interp.error_kind_to_string kind)
        msg);
  Format.printf "%a@." Tracegen.Stats.pp s;
  if dump_traces then begin
    let engine = result.Tracegen.Engine.engine in
    let traces = ref [] in
    Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache engine) (fun tr ->
        traces := tr :: !traces);
    let sorted =
      List.sort
        (fun a b -> compare b.Tracegen.Trace.completed a.Tracegen.Trace.completed)
        !traces
    in
    Printf.printf "\ntraces (%d total, showing up to %d by completions):\n"
      (List.length sorted) top;
    List.iteri
      (fun k tr ->
        if k < top then begin
          print_endline (Tracegen.Trace.describe layout tr);
          match tr.Tracegen.Trace.lowered with
          | Some body ->
              Printf.printf
                "       tier: compiled (%d micro-ops, %d fused, from %d \
                 instrs)\n"
                (Tracegen.Microir.n_ops body)
                body.Tracegen.Microir.fused body.Tracegen.Microir.src_instrs
          | None -> if tier then print_endline "       tier: interp"
        end)
      sorted
  end;
  if dump_bcg then begin
    let bcg =
      Tracegen.Profiler.bcg
        (Tracegen.Engine.profiler result.Tracegen.Engine.engine)
    in
    let nodes = ref [] in
    Tracegen.Bcg.iter_nodes bcg (fun n -> nodes := n :: !nodes);
    let sorted =
      List.sort
        (fun a b -> compare b.Tracegen.Bcg.exec_total a.Tracegen.Bcg.exec_total)
        !nodes
    in
    Printf.printf "\nbcg nodes (%d total, showing up to %d by executions):\n"
      (List.length sorted) top;
    List.iteri
      (fun k n ->
        if k < top then
          Format.printf "%a@." (Tracegen.Bcg.pp_node layout) n)
      sorted
  end

(* ------------------------------------------------------------------ *)
(* events                                                               *)
(* ------------------------------------------------------------------ *)

(* Replay a workload with the event stream enabled and dump the timeline
   as JSON lines on stdout.  After the run the per-kind event totals and
   the decision-ledger aggregates are checked against the end-of-run
   statistics (Harness.Oracle): the stream, the ledger and the counters
   are three views of the same execution and must agree exactly. *)
let events_cmd workload size threshold delay fault_spec fault_seed self_heal
    osr tier snapshot_period stats_only =
  let module Events = Tracegen.Events in
  let module Oracle = Harness.Oracle in
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    Cli_common.engine_config ~snapshot_period ~threshold ~delay ~fault_spec
      ~fault_seed ~self_heal ~osr ~tier ()
  in
  let events = Events.create () in
  let tally = Oracle.attach events in
  let version_prefix =
    Printf.sprintf "{\"schema_version\":%d," Harness.Codec.schema_version
  in
  let unversioned = ref 0 in
  (* --stats-only skips the per-event JSON rendering entirely: the
     oracle's tally is all the cross-checks need *)
  let _sub =
    if stats_only then None
    else
      Some
        (Events.subscribe events (fun e ->
             let line =
               Harness.Codec.to_string (Harness.Codec.event_json e)
             in
             (* every record must announce the export schema version *)
             if
               not
                 (String.length line >= String.length version_prefix
                 && String.sub line 0 (String.length version_prefix)
                    = version_prefix)
             then incr unversioned;
             print_endline line))
  in
  let result = Tracegen.Engine.run ~config ~events layout in
  let s = result.Tracegen.Engine.run_stats in
  let engine = result.Tracegen.Engine.engine in
  let checks =
    Oracle.run_checks tally ~engine s
    @ [
        {
          Oracle.name = "schema_version on every record";
          got = !unversioned;
          want = 0;
        };
      ]
  in
  Printf.eprintf "# %d events across %d kinds\n"
    (Events.emitted events)
    (Oracle.n_kinds tally);
  if stats_only then begin
    (* the run's distributions with their percentile summaries, since
       the per-event timeline was suppressed *)
    let hists =
      [
        Tracegen.Engine.trace_len_hist engine;
        Tracegen.Engine.exit_distance_hist engine;
        Tracegen.Engine.build_len_hist engine;
        Tracegen.Engine.backoff_hist engine;
        Tracegen.Engine.deopt_residue_hist engine;
      ]
    in
    prerr_string (Harness.Report.hist_summary hists)
  end;
  let ok =
    List.fold_left
      (fun ok (c : Oracle.check) ->
        if Oracle.check_ok c then begin
          Printf.eprintf "# ok: %s (%d)\n" c.Oracle.name c.Oracle.got;
          ok
        end
        else begin
          Printf.eprintf "# MISMATCH: %s (timeline %d, stats %d)\n"
            c.Oracle.name c.Oracle.got c.Oracle.want;
          false
        end)
      true checks
  in
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* table                                                                *)
(* ------------------------------------------------------------------ *)

let table_cmd which scale =
  let s =
    match which with
    | "1" -> Harness.Tables.table1 ~scale ()
    | "2" -> Harness.Tables.table2 ~scale ()
    | "3" -> Harness.Tables.table3 ~scale ()
    | "4" -> Harness.Tables.table4 ~scale ()
    | "5" -> Harness.Tables.table5 ~scale ()
    | "6" -> fst (Harness.Overhead.table6 ~scale ())
    | "7" -> Harness.Overhead.table7 ~scale ()
    | "coverage-total" -> Harness.Tables.coverage_totals ~scale ()
    | "figure" -> Harness.Tables.figure_dispatch ~scale ()
    | "baselines" -> Harness.Tables.baselines ~scale ()
    | "ablation-decay" -> Harness.Ablation.decay_ablation ()
    | "optimizer" -> Harness.Ablation.optimizer_report ~scale ()
    | "footprint" -> Harness.Footprint.report ~scale ()
    | other ->
        Printf.eprintf
          "unknown table %s (1-7, coverage-total, figure, baselines, \
           ablation-decay, optimizer, footprint)\n" other;
        exit 2
  in
  print_string s

(* ------------------------------------------------------------------ *)
(* disasm / list                                                        *)
(* ------------------------------------------------------------------ *)

let disasm_cmd workload size meth =
  let w = find_workload workload in
  let program =
    match size with
    | Some s -> w.Workloads.Workload.build ~size:s
    | None -> Workloads.Workload.build_default w
  in
  match meth with
  | None -> print_string (Bytecode.Disasm.program_to_string program)
  | Some name -> (
      match Bytecode.Program.find_method program name with
      | Some m -> print_string (Bytecode.Disasm.method_to_string program m)
      | None ->
          Printf.eprintf "no method %s\n" name;
          exit 2)

let export_cmd format workload scale =
  match format with
  | "csv" -> print_string (Harness.Export.sweep_csv ~scale ())
  | "jsonl" -> print_string (Harness.Export.sweep_jsonl ~scale ())
  | "json" -> (
      match workload with
      | None ->
          Printf.eprintf "json format needs --workload\n";
          exit 2
      | Some name ->
          let w = find_workload name in
          let run =
            Harness.Experiment.execute
              (Harness.Experiment.default_key ~workload:name
                 ~size:(Harness.Experiment.size_for ~scale w))
          in
          print_endline (Harness.Export.to_string (Harness.Export.run_json run)))
  | other ->
      Printf.eprintf "unknown format %s (csv, jsonl, json)\n" other;
      exit 2

let list_cmd () =
  List.iter
    (fun w -> Format.printf "%a@." Workloads.Workload.pp w)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

(* Static dataflow lint over the workload's bytecode, then a profiled run
   with the trace/BCG invariant checks on and a final end-of-run sweep.
   Exit 1 when any error-severity finding survives. *)
let lint_cmd workload size threshold delay json static_only traces =
  let module Diag = Analysis.Diag in
  let ws =
    match workload with
    | Some name -> [ find_workload name ]
    | None -> Workloads.Registry.all
  in
  let config =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~debug_checks:true ~prune_guards:traces ())
  in
  let diags =
    List.concat_map
      (fun w ->
        let name = w.Workloads.Workload.name in
        let program =
          match size with
          | Some s -> w.Workloads.Workload.build ~size:s
          | None -> Workloads.Workload.build_default w
        in
        let static = Analysis.Lint.lint_program ~context:name program in
        (* A verify-rejected program cannot be laid out, let alone run;
           its TL001 findings stand alone. *)
        let rejected =
          List.exists (fun d -> d.Diag.code = "TL001") static
        in
        if static_only || rejected then static
        else
          let layout = Cfg.Layout.build program in
          let r = Tracegen.Engine.run ~config layout in
          let engine = r.Tracegen.Engine.engine in
          let dynamic =
            Tracegen.Invariants.check_all ~context:name config
              ~bcg:(Tracegen.Profiler.bcg (Tracegen.Engine.profiler engine))
              ~cache:(Tracegen.Engine.cache engine)
          in
          (* --traces: translation-validate every installed trace (the
             run above pruned them, so the TL217 re-derivations are
             exercised too) *)
          let proved =
            if traces then
              Tracegen.Trace_prover.check_cache ~context:name layout
                (Tracegen.Engine.cache engine)
            else []
          in
          static @ dynamic @ proved)
      ws
  in
  let diags = List.stable_sort Diag.compare diags in
  if json then print_string (Harness.Codec.diags_jsonl diags)
  else begin
    List.iter (fun d -> print_endline (Diag.to_string d)) diags;
    Printf.printf "%d error(s), %d warning(s), %d note(s) across %d workload(s)\n"
      (Diag.count Diag.Error diags)
      (Diag.count Diag.Warning diags)
      (Diag.count Diag.Info diags)
      (List.length ws)
  end;
  if Diag.has_errors diags then exit 1

(* ------------------------------------------------------------------ *)
(* prove                                                                *)
(* ------------------------------------------------------------------ *)

(* Translation-validate every trace the engine builds, with guard
   pruning on: run each workload under prune_guards, symbolically prove
   every installed trace equivalent to its original block sequence
   (TL212-TL218) and re-derive every pruning claim (TL217), then re-run
   with pruning off and hold the two VM results to the same fingerprint
   — proofs must not change what the program computes.  Exit 1 on any
   error-severity finding, a diverging fingerprint, or fewer than
   --min-pruning workloads actually losing guards. *)
let prove_cmd workload size threshold delay min_pruning =
  let module Diag = Analysis.Diag in
  let module Engine = Tracegen.Engine in
  let ws =
    match workload with
    | Some name -> [ find_workload name ]
    | None -> Workloads.Registry.all
  in
  let config_on =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~prune_guards:true ())
  in
  let config_off =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay ())
  in
  let errors = ref 0 in
  let diverged = ref 0 in
  let pruning_workloads = ref 0 in
  Printf.printf "%-10s %-6s %7s %7s %10s %10s %8s %10s\n" "workload" "ok"
    "traces" "diags" "g-checked" "g-elided" "pruned" "identical";
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.name in
      let layout = layout_of w ~size in
      let r = Engine.run ~config:config_on layout in
      let engine = r.Engine.engine in
      let cache = Engine.cache engine in
      let n_traces = ref 0 in
      Tracegen.Trace_cache.iter_all cache (fun _ -> incr n_traces);
      let diags = Tracegen.Trace_prover.check_cache ~context:name layout cache in
      List.iter (fun d -> Printf.eprintf "%s\n" (Diag.to_string d)) diags;
      let n_errors = Diag.count Diag.Error diags in
      errors := !errors + n_errors;
      let base = Engine.run ~config:config_off layout in
      let identical =
        Harness.Chaos.fingerprint r.Engine.vm_result
        = Harness.Chaos.fingerprint base.Engine.vm_result
      in
      if not identical then incr diverged;
      let s = r.Engine.run_stats in
      if s.Tracegen.Stats.guards_elided > 0 then incr pruning_workloads;
      Printf.printf "%-10s %-6s %7d %7d %10d %10d %8d %10s\n" name
        (if n_errors = 0 && identical then "yes" else "NO")
        !n_traces (List.length diags) s.Tracegen.Stats.guards_checked
        s.Tracegen.Stats.guards_elided s.Tracegen.Stats.guards_pruned
        (if identical then "yes" else "NO"))
    ws;
  Printf.printf
    "prove gate: %d proof error(s), %d diverging run(s), pruning active on \
     %d/%d workload(s)\n"
    !errors !diverged !pruning_workloads (List.length ws);
  if !errors > 0 || !diverged > 0 then exit 1;
  if !pruning_workloads < min_pruning then begin
    Printf.eprintf
      "pruning removed guards on only %d workload(s) (need %d)\n"
      !pruning_workloads min_pruning;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

(* Run workloads under seeded fault schedules and hold the engine to the
   chaos gate's two promises: VM results bit-identical to the no-tracing
   baseline (FT901) and recovery to full tracing by the end of the run
   (FT902).  Exit 1 on any violated promise. *)
let chaos_cmd workload size seed schedules spec osr tier quick verbose
    catalogue dump_dir =
  if catalogue then
    List.iter
      (fun (code, doc) -> Printf.printf "%s  %s\n" code doc)
      Tracegen.Faults.catalogue
  else begin
    let ws =
      match workload with
      | Some name -> [ find_workload name ]
      | None -> Workloads.Registry.all
    in
    let spec = Option.value spec ~default:Harness.Chaos.default_spec in
    (* validate the schedule before spending any run time on it *)
    (try ignore (Tracegen.Faults.create ~seed spec) with
    | Invalid_argument msg ->
        Printf.eprintf "invalid fault spec: %s\n" msg;
        exit 2);
    let max_instructions = if quick then Some 120_000 else None in
    let failures = ref 0 in
    let total = ref 0 in
    List.iter
      (fun (w : Workloads.Workload.t) ->
        let size =
          Option.value size ~default:w.Workloads.Workload.default_size
        in
        let faults = ref 0 in
        let quarantined = ref 0 in
        let evicted = ref 0 in
        let healed = ref 0 in
        let demoted = ref 0 in
        let ok = ref 0 in
        for i = 0 to schedules - 1 do
          let v =
            Harness.Chaos.run_one ~spec ~osr ~tier ?max_instructions
              ?dump_dir w ~size ~seed:(seed + (1000 * i))
          in
          incr total;
          let s = v.Harness.Chaos.stats in
          faults := !faults + s.Tracegen.Stats.faults_injected;
          quarantined := !quarantined + s.Tracegen.Stats.traces_quarantined;
          evicted := !evicted + s.Tracegen.Stats.traces_evicted;
          healed := !healed + s.Tracegen.Stats.healed_nodes;
          demoted := !demoted + s.Tracegen.Stats.health_demotions;
          if Harness.Chaos.passed v then incr ok
          else begin
            incr failures;
            Printf.printf "FAIL %s\n" (Harness.Chaos.describe v)
          end;
          if verbose && Harness.Chaos.passed v then
            Printf.printf "ok   %s\n" (Harness.Chaos.describe v)
        done;
        Printf.printf
          "%-10s %d/%d schedules ok; faults=%d quarantined=%d evicted=%d \
           healed=%d demoted=%d\n"
          w.Workloads.Workload.name !ok schedules !faults !quarantined
          !evicted !healed !demoted)
      ws;
    Printf.printf "chaos gate: %d/%d runs identical and recovered\n"
      (!total - !failures) !total;
    if !failures > 0 then exit 1
  end

(* ------------------------------------------------------------------ *)
(* backends                                                             *)
(* ------------------------------------------------------------------ *)

(* Describe the dispatch backends, then pin each one over every selected
   workload and hold its VM result to the plain-interpreter fingerprint —
   the pure-overlay promise, per strategy.  With --tier the microir
   backend runs with the compiled tier armed, and the gate additionally
   requires that at least one workload actually compiled a trace: a
   transparency pass over an idle tier proves nothing.  Exit 1 on any
   divergence (or, under --tier, an idle tier). *)
let backends_cmd workload size threshold delay tier =
  let module Engine = Tracegen.Engine in
  Printf.printf "%-8s %s\n" "backend" "strategy";
  List.iter
    (fun k ->
      let (module B : Tracegen.Backend.S) = Engine.implementation k in
      Printf.printf "%-8s %s\n" B.name B.describe)
    Engine.backends;
  let ws =
    match workload with
    | Some name -> [ find_workload name ]
    | None -> Workloads.Registry.all
  in
  let config =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay ~tier ())
  in
  Printf.printf "\n%-10s %-8s %-6s %12s %12s %10s %9s\n" "workload" "backend"
    "ok" "block-disp" "trace-disp" "signals" "compiled";
  let failures = ref 0 in
  let compiled_total = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let layout = layout_of w ~size in
      let baseline = Vm.Interp.run_plain layout in
      List.iter
        (fun k ->
          let r = Engine.run ~config ~backend:k layout in
          let s = r.Engine.run_stats in
          let ok =
            Harness.Chaos.fingerprint baseline
            = Harness.Chaos.fingerprint r.Engine.vm_result
          in
          if not ok then incr failures;
          compiled_total := !compiled_total + s.Tracegen.Stats.traces_compiled;
          Printf.printf "%-10s %-8s %-6s %12d %12d %10d %9d\n"
            w.Workloads.Workload.name
            (Engine.backend_kind_name k)
            (if ok then "yes" else "NO")
            s.Tracegen.Stats.block_dispatches
            s.Tracegen.Stats.trace_dispatches s.Tracegen.Stats.signals
            s.Tracegen.Stats.traces_compiled)
        Engine.backends)
    ws;
  if !failures > 0 then begin
    Printf.eprintf "%d backend run(s) diverged from the interpreter\n"
      !failures;
    exit 1
  end;
  if tier && !compiled_total = 0 then begin
    Printf.eprintf
      "--tier: no trace reached the compiled tier on any workload\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* session                                                              *)
(* ------------------------------------------------------------------ *)

(* Run several workloads interleaved in one session, [users] members per
   workload, sharing a trace cache per layout; assert every member's VM
   result is bit-identical to a solo plain-interpreter run and report the
   cross-session trace reuse.  Exit 1 on any divergence. *)
let session_cmd workloads users batch size threshold delay fault_spec
    fault_seed self_heal =
  let module Engine = Tracegen.Engine in
  let module Session = Tracegen.Session in
  let names = String.split_on_char ',' workloads in
  let names = List.filter (fun n -> String.trim n <> "") names in
  if names = [] then begin
    Printf.eprintf "no workloads given (try --workloads compress,raytrace)\n";
    exit 2
  end;
  if users < 1 then begin
    Printf.eprintf "--users must be >= 1\n";
    exit 2
  end;
  let config =
    Cli_common.engine_config ~threshold ~delay ~fault_spec ~fault_seed
      ~self_heal ()
  in
  let session =
    config_or_die (fun () -> Session.create ?batch ())
  in
  (* one layout per workload name; members of the same workload run the
     same layout value and therefore share its trace cache *)
  let layouts =
    List.map
      (fun name ->
        let w = find_workload (String.trim name) in
        (w.Workloads.Workload.name, layout_of w ~size))
      names
  in
  List.iter
    (fun (name, layout) ->
      for u = 1 to users do
        ignore
          (Session.add
             ~name:(Printf.sprintf "%s#%d" name u)
             ~config session layout)
      done)
    layouts;
  Session.run session;
  let baselines =
    List.map (fun (_, layout) -> (layout, Vm.Interp.run_plain layout)) layouts
  in
  Printf.printf "%-14s %-6s %12s %12s %12s %8s\n" "member" "ok" "instrs"
    "block-disp" "trace-disp" "switches";
  let failures = ref 0 in
  List.iter
    (fun m ->
      let engine = Session.engine m in
      let baseline =
        List.assq (Engine.layout engine) baselines
      in
      let r = Session.vm_result m in
      let ok =
        Harness.Chaos.fingerprint baseline = Harness.Chaos.fingerprint r
      in
      if not ok then incr failures;
      Printf.printf "%-14s %-6s %12d %12d %12d %8d\n" (Session.member_name m)
        (if ok then "yes" else "NO")
        r.Vm.Interp.instructions
        (Engine.block_dispatches engine)
        (Engine.trace_dispatches engine)
        (Engine.backend_switches engine))
    (Session.members session);
  Printf.printf
    "shared caches: %d for %d members; cross-session reuse: %d installs \
     saved, %d trace entries\n"
    (List.length (Session.caches session))
    (List.length (Session.members session))
    (Session.cross_installs session)
    (Session.cross_entries session);
  if !failures > 0 then begin
    Printf.eprintf "%d member(s) diverged from the solo interpreter\n"
      !failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* top                                                                  *)
(* ------------------------------------------------------------------ *)

(* Run workloads with per-block attribution on and print the hot-report:
   ranked traces (self dispatches, completions, attributed instructions)
   and ranked blocks (self vs inlined executions).  Every column is then
   reconciled against the end-of-run statistics — the report and Stats
   are two views of the same dispatch loop and must agree exactly over
   the unbounded, non-healing cache used here.  Exit 1 on mismatch. *)
let top_cmd workload size threshold delay prune_guards tier top json =
  let ws =
    match workload with
    | Some name -> [ find_workload name ]
    | None -> Workloads.Registry.all
  in
  let config =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay
          ~obs_attribution:true ~prune_guards ~tier ())
  in
  let failures = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let layout = layout_of w ~size in
      let r = Tracegen.Engine.run ~config layout in
      let engine = r.Tracegen.Engine.engine in
      let s = r.Tracegen.Engine.run_stats in
      let report = Harness.Report.of_engine engine in
      if json then
        (* one schema-versioned object per workload, JSONL *)
        print_endline
          (Harness.Codec.to_string
             (match Harness.Report.json report with
             | Harness.Codec.J_obj (sv :: fields) ->
                 (* keep schema_version leading, as on every record *)
                 Harness.Codec.J_obj
                   (sv
                   :: ( "workload",
                        Harness.Codec.J_string w.Workloads.Workload.name )
                   :: fields)
             | other -> other))
      else begin
        Printf.printf "== %s ==\n" w.Workloads.Workload.name;
        print_string (Harness.Report.render ~top report);
        print_newline ();
        print_string
          (Harness.Report.hist_summary
             [
               Tracegen.Engine.trace_len_hist engine;
               Tracegen.Engine.exit_distance_hist engine;
               Tracegen.Engine.build_len_hist engine;
             ]);
        print_newline ()
      end;
      List.iter
        (fun (name, got, want) ->
          if got = want then Printf.eprintf "# ok: %s (%d)\n" name got
          else begin
            incr failures;
            Printf.eprintf "# MISMATCH: %s (report %d, stats %d)\n" name got
              want
          end)
        (Harness.Report.checks report engine s))
    ws;
  if !failures > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* timeline                                                             *)
(* ------------------------------------------------------------------ *)

(* Replay a workload with the span recorder on and export the causal
   timeline: span JSONL on stdout, or Chrome trace_event JSON with
   --chrome FILE (loadable in Perfetto / about://tracing).  The Chrome
   export is self-validating: the file is re-parsed and held to the
   structural oracle (monotone timestamps, every E closing a B, X events
   carrying dur).  Exit 1 on any violation. *)
let timeline_cmd workload size threshold delay fault_spec fault_seed self_heal
    chrome folded =
  let module Spans = Tracegen.Spans in
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    Cli_common.engine_config ~obs_spans:true ~threshold ~delay ~fault_spec
      ~fault_seed ~self_heal ()
  in
  let result = Tracegen.Engine.run ~config layout in
  let engine = result.Tracegen.Engine.engine in
  let spans =
    match Tracegen.Engine.spans engine with
    | Some s -> s
    | None -> assert false (* obs_spans:true above *)
  in
  Spans.end_all spans ~now:(Tracegen.Engine.total_dispatches engine);
  let list = Spans.to_list spans in
  Printf.eprintf "# %d span(s) recorded, %d dropped by wraparound\n"
    (Spans.recorded spans) (Spans.dropped spans);
  (* --folded: the span tree as folded stacks (frame;frame;frame weight),
     weighted by self time in dispatch ticks — flamegraph.pl input *)
  (match folded with
  | None -> ()
  | Some path -> (
      let out = Harness.Report.folded list in
      try
        let oc = open_out path in
        output_string oc out;
        close_out oc;
        Printf.eprintf "# ok: %d folded stack(s): %s\n"
          (List.length
             (String.split_on_char '\n' out |> List.filter (( <> ) "")))
          path
      with Sys_error msg ->
        Printf.eprintf "cannot write %s: %s\n" path msg;
        exit 2));
  match chrome with
  | None -> if folded = None then print_string (Harness.Codec.spans_jsonl list)
  | Some path ->
      let out = Harness.Codec.to_string (Harness.Codec.chrome_trace list) in
      (try
         let oc = open_out path in
         output_string oc out;
         output_char oc '\n';
         close_out oc
       with Sys_error msg ->
         Printf.eprintf "cannot write %s: %s\n" path msg;
         exit 2);
      (* round-trip oracle: re-parse what was just written *)
      (match Harness.Codec.parse out with
      | Error msg ->
          Printf.eprintf "# MISMATCH: chrome trace does not re-parse: %s\n"
            msg;
          exit 1
      | Ok parsed -> (
          match Harness.Report.check_chrome parsed with
          | [] -> Printf.eprintf "# ok: chrome trace valid: %s\n" path
          | violations ->
              List.iter
                (fun v -> Printf.eprintf "# MISMATCH: %s\n" v)
                violations;
              exit 1))

(* ------------------------------------------------------------------ *)
(* warm                                                                 *)
(* ------------------------------------------------------------------ *)

(* Persist and reuse profile state across processes.  --save runs the
   workload cold and writes the engine's end-of-run snapshot (BCG +
   trace cache, Persist-encoded); --load validates a snapshot into a
   fresh engine, drives it warm, and holds the warm VM result to an
   in-process cold control run — the pure-overlay promise, across
   process boundaries.  Exit 1 on a rejected snapshot or a diverging
   result; rejection prints the typed Persist error. *)
let warm_cmd workload size threshold delay save load =
  let module Engine = Tracegen.Engine in
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    config_or_die (fun () ->
        Tracegen.Config.make ~threshold ~start_state_delay:delay ())
  in
  let summarize tag (r : Engine.run_result) seconds =
    let s = r.Engine.run_stats in
    Printf.printf
      "%-5s %11d instrs %10d block-disp %10d trace-disp %6d constructed \
       %.3fs\n"
      tag s.Tracegen.Stats.instructions s.Tracegen.Stats.block_dispatches
      s.Tracegen.Stats.trace_dispatches s.Tracegen.Stats.traces_constructed
      seconds
  in
  let run_cold () =
    let t0 = Unix.gettimeofday () in
    let r = Tracegen.Engine.run ~config layout in
    (r, Unix.gettimeofday () -. t0)
  in
  let write_snapshot path (r : Engine.run_result) =
    let data = Engine.snapshot r.Engine.engine in
    (try
       let oc = open_out_bin path in
       output_string oc data;
       close_out oc
     with Sys_error msg ->
       Printf.eprintf "cannot write %s: %s\n" path msg;
       exit 2);
    Printf.printf "snapshot: %d bytes -> %s\n" (String.length data) path
  in
  match (save, load) with
  | None, None ->
      Printf.eprintf "warm needs --save FILE and/or --load FILE\n";
      exit 2
  | Some path, None ->
      let r, seconds = run_cold () in
      summarize "cold" r seconds;
      write_snapshot path r
  | _, Some path -> (
      let data =
        try
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        with Sys_error msg ->
          Printf.eprintf "cannot read %s: %s\n" path msg;
          exit 2
      in
      let engine = Engine.create ~config layout in
      match Engine.restore engine data with
      | Error e ->
          Printf.eprintf "snapshot rejected: %s\n"
            (Tracegen.Persist.error_to_string e);
          exit 1
      | Ok info ->
          Printf.printf
            "restored: %d trace(s) (%d cache blocks), %d BCG node(s), %d \
             edge(s) from %s\n"
            info.Engine.restored_traces info.Engine.restored_blocks
            info.Engine.restored_bcg_nodes info.Engine.restored_bcg_edges
            path;
          let t0 = Unix.gettimeofday () in
          let warm = Engine.drive engine in
          let warm_seconds = Unix.gettimeofday () -. t0 in
          let cold, cold_seconds = run_cold () in
          summarize "warm" warm warm_seconds;
          summarize "cold" cold cold_seconds;
          if
            Harness.Chaos.fingerprint warm.Engine.vm_result
            = Harness.Chaos.fingerprint cold.Engine.vm_result
          then
            print_endline "warm result identical to cold (pure overlay holds)"
          else begin
            Printf.eprintf "MISMATCH: warm result diverged from the cold run\n";
            exit 1
          end;
          (* --load --save re-saves the evolved profile *)
          Option.iter (fun p -> write_snapshot p warm) save)

(* ------------------------------------------------------------------ *)
(* postmortem                                                           *)
(* ------------------------------------------------------------------ *)

(* Pretty-print a flight-recorder dump (flightrec_<reason>.jsonl, as
   written by a trigger or --dump-flightrec).  Every line is re-parsed
   through the Codec JSON parser, so this command doubles as the dump
   format's round-trip oracle.  Exit 1 on any unparseable line. *)
let postmortem_cmd file =
  let contents =
    try
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "cannot read %s: %s\n" file msg;
      exit 2
  in
  match Harness.Postmortem.describe_dump contents with
  | Ok lines -> List.iter print_endline lines
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1

(* ------------------------------------------------------------------ *)
(* explain                                                              *)
(* ------------------------------------------------------------------ *)

let describe_ledger_action (a : Tracegen.Ledger.action) : string =
  let module L = Tracegen.Ledger in
  match a with
  | L.Build { new_traces; reused; pruned } ->
      Printf.sprintf "builder: %d new trace(s), %d reused, %d guard(s) pruned"
        new_traces reused pruned
  | L.Install { replaced; n_blocks } ->
      Printf.sprintf "installed (%d block(s)%s)" n_blocks
        (if replaced then ", replacing a predecessor" else "")
  | L.Guard_prune { pruned } ->
      Printf.sprintf "implication proofs elided %d guard(s)" pruned
  | L.Quarantine { code; attempts; until; permanent } ->
      Printf.sprintf "quarantined (%s, attempt %d, %s)" code attempts
        (if permanent then "blacklisted"
         else Printf.sprintf "until tick %d" until)
  | L.Evict { reason; footprint; heat; stamp } ->
      Printf.sprintf
        "evicted (%s; footprint %d bytes, heat %d, last used tick %d)"
        reason footprint heat stamp
  | L.Compile { heat; compile_after; budget; n_compiled } ->
      Printf.sprintf
        "compiled to micro-IR (heat %d >= threshold %d, budget slot %d/%d)"
        heat compile_after n_compiled budget
  | L.Demote { heat; winner_heat } ->
      Printf.sprintf
        "demoted from the compiled tier (heat %d, displaced by heat %d)"
        heat winner_heat
  | L.Osr_promote { header; latch; hotness } ->
      Printf.sprintf "OSR-promoted loop header %d (latch %d, hotness %d)"
        header latch hotness
  | L.Deopt { at_pos; resume; residue; reason } ->
      Printf.sprintf
        "deopt at trace position %d (%s), resumed at block %d with %d \
         residue block(s)"
        at_pos reason resume residue

(* Replay a workload and narrate the decision ledger: why a trace (or an
   entry-key block) was built, installed, compiled, evicted, quarantined
   — each record linked to its span id and dispatch tick.  The ledger
   aggregates are then reconciled against the end-of-run statistics
   (Harness.Oracle); exit 1 on any drift. *)
let explain_cmd workload size threshold delay fault_spec fault_seed self_heal
    osr tier trace_id block =
  let module L = Tracegen.Ledger in
  let module Oracle = Harness.Oracle in
  let w = find_workload workload in
  let layout = layout_of w ~size in
  let config =
    Cli_common.engine_config ~threshold ~delay ~fault_spec ~fault_seed
      ~self_heal ~osr ~tier ()
  in
  let result = Tracegen.Engine.run ~config layout in
  let engine = result.Tracegen.Engine.engine in
  let s = result.Tracegen.Engine.run_stats in
  let ledger =
    match Tracegen.Engine.ledger engine with
    | Some l -> l
    | None ->
        Printf.eprintf "explain: the decision ledger is disabled\n";
        exit 2
  in
  let records, what =
    match (trace_id, block) with
    | Some id, _ -> (L.for_trace ledger id, Printf.sprintf "trace %d" id)
    | None, Some b -> (L.for_block ledger b, Printf.sprintf "block %d" b)
    | None, None -> (L.to_list ledger, "the whole run")
  in
  Printf.printf "%d of %d ledger record(s) concern %s:\n" (List.length records)
    (L.length ledger) what;
  List.iter
    (fun (r : L.record) ->
      Printf.printf "  seq=%-5d tick=%-8d span=%-4d trace=%-4d %s\n" r.L.seq
        r.L.tick r.L.span r.L.trace_id
        (describe_ledger_action r.L.action))
    records;
  Printf.printf "\naction totals:";
  List.iter
    (fun (kind, n) -> Printf.printf " %s=%d" kind n)
    (L.totals ledger);
  print_newline ();
  (* the ledger must reconcile with Stats no matter what was asked *)
  let ok =
    List.fold_left
      (fun ok (c : Oracle.check) ->
        if Oracle.check_ok c then begin
          Printf.eprintf "# ok: %s (%d)\n" c.Oracle.name c.Oracle.got;
          ok
        end
        else begin
          Printf.eprintf "# MISMATCH: %s (ledger %d, stats %d)\n"
            c.Oracle.name c.Oracle.got c.Oracle.want;
          false
        end)
      true
      (Oracle.ledger_checks ledger ~engine s)
  in
  if not ok then exit 1

(* ------------------------------------------------------------------ *)
(* bench-diff                                                           *)
(* ------------------------------------------------------------------ *)

(* Compare two bench baseline documents (BENCH_<label>.json) direction-
   aware and gate on regressions: exit 1 when any metric moved more than
   --max-regress percent in its worse direction, or when a baseline
   metric vanished from the candidate. *)
let bench_diff_cmd old_path new_path max_regress =
  let read path =
    let contents =
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error msg ->
        Printf.eprintf "cannot read %s: %s\n" path msg;
        exit 2
    in
    match Harness.Perf.of_string contents with
    | Ok run -> run
    | Error msg ->
        Printf.eprintf "%s: not a bench baseline: %s\n" path msg;
        exit 2
  in
  let baseline = read old_path in
  let candidate = read new_path in
  let d = Harness.Perf.diff ~baseline ~candidate in
  Printf.printf "%-18s %-26s %12s %12s %9s  %s\n" "section" "metric" "old"
    "new" "change" "verdict";
  List.iter
    (fun (dl : Harness.Perf.delta) ->
      Printf.printf "%-18s %-26s %12.4g %12.4g %8.2f%%  %s\n" dl.d_section
        dl.d_name dl.d_old dl.d_new dl.d_regress_pct
        (if dl.Harness.Perf.d_regress_pct > max_regress then "REGRESSED"
         else if dl.Harness.Perf.d_regress_pct < 0.0 then "improved"
         else "ok"))
    d.Harness.Perf.deltas;
  List.iter
    (fun (sec, name) ->
      Printf.printf "%-18s %-26s %35s  MISSING in %s\n" sec name "" new_path)
    d.Harness.Perf.missing;
  List.iter
    (fun (sec, name) -> Printf.eprintf "# note: new metric %s/%s\n" sec name)
    d.Harness.Perf.added;
  let regressions = Harness.Perf.regressions ~max_regress d in
  Printf.printf
    "bench-diff: %d metric(s) compared, %d regression(s) beyond %.2f%%, %d \
     missing\n"
    (List.length d.Harness.Perf.deltas)
    (List.length regressions) max_regress
    (List.length d.Harness.Perf.missing);
  if not (Harness.Perf.ok ~max_regress d) then exit 1

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let workload_arg = Cli_common.workload_arg

let size_arg = Cli_common.size_arg

let threshold_arg = Cli_common.threshold_arg

let delay_arg = Cli_common.delay_arg

let scale_arg = Cli_common.scale_arg

let fault_spec_arg = Cli_common.fault_spec_arg

let fault_seed_arg = Cli_common.fault_seed_arg

let self_heal_arg = Cli_common.self_heal_arg

let run_term =
  let dump_traces =
    Arg.(value & flag & info [ "traces" ] ~doc:"Dump the trace cache.")
  in
  let dump_bcg =
    Arg.(value & flag & info [ "bcg" ] ~doc:"Dump the hottest BCG nodes.")
  in
  let top =
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"K"
           ~doc:"How many traces/nodes to dump.")
  in
  let dump_flightrec =
    Arg.(value & opt (some string) None & info [ "dump-flightrec" ]
           ~docv:"FILE"
           ~doc:"Force a post-mortem dump of the flight-recorder ring to \
                 $(docv) after the run (reason \"manual\") — the same \
                 JSONL an invariant or divergence trigger writes.")
  in
  Term.(
    const run_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg $ Cli_common.osr_arg
    $ Cli_common.tier_arg $ Cli_common.prune_guards_arg $ dump_traces
    $ dump_bcg $ top $ dump_flightrec)

let () =
  Cli_common.Subcommand.register ~name:"run"
    ~doc:"Run one workload under the trace-cache engine." run_term

let events_term =
  let snapshot_period =
    Arg.(value & opt int 10_000 & info [ "snapshot-period" ] ~docv:"N"
           ~doc:"Take a metrics snapshot every N dispatches (0 disables).")
  in
  let stats_only =
    Arg.(value & flag & info [ "stats-only" ]
           ~doc:"Skip the per-event JSON timeline on stdout; only tally \
                 kinds and run the stderr cross-checks (much faster on \
                 large runs).")
  in
  Term.(
    const events_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg $ Cli_common.osr_arg
    $ Cli_common.tier_arg $ snapshot_period $ stats_only)

let () =
  Cli_common.Subcommand.register ~name:"events"
    ~doc:
      "Replay a workload with the event stream enabled and dump the timeline \
       as JSON lines (stdout); per-kind totals are cross-checked against the \
       end-of-run statistics (stderr, non-zero exit on mismatch)."
    events_term

let table_term =
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE")
  in
  Term.(const table_cmd $ which $ scale_arg)

let () =
  Cli_common.Subcommand.register ~name:"table"
    ~doc:
      "Regenerate one of the paper's tables (1-7, coverage-total, figure, \
       baselines, ablation-decay, optimizer, footprint)."
    table_term

let disasm_term =
  let meth =
    Arg.(value & opt (some string) None & info [ "method" ] ~docv:"NAME"
           ~doc:"Only this method.")
  in
  Term.(const disasm_cmd $ workload_arg $ size_arg $ meth)

let () =
  Cli_common.Subcommand.register ~name:"disasm"
    ~doc:"Disassemble a workload program." disasm_term

let export_term =
  let format =
    Arg.(value & opt string "csv" & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: csv, jsonl or json (one workload).")
  in
  let workload =
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"W"
           ~doc:"Workload for --format json.")
  in
  Term.(const export_cmd $ format $ workload $ scale_arg)

let () =
  Cli_common.Subcommand.register ~name:"export"
    ~doc:"Emit sweep results as CSV / JSON for external tools." export_term

let list_term = Term.(const list_cmd $ const ())

let () =
  Cli_common.Subcommand.register ~name:"list"
    ~doc:"List the available workloads." list_term

let lint_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to lint (default: every registered workload).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit diagnostics as JSON lines instead of human-readable text.")
  in
  let static_only =
    Arg.(value & flag & info [ "static-only" ]
           ~doc:"Skip the profiled run and its trace/BCG invariant sweep.")
  in
  let traces =
    Arg.(value & flag & info [ "traces" ]
           ~doc:"Also translation-validate every installed trace \
                 (symbolic equivalence of the optimized body, TL212-TL218) \
                 with guard pruning enabled, so pruning claims are \
                 re-derived too.")
  in
  Term.(
    const lint_cmd $ workload $ size_arg $ threshold_arg $ delay_arg $ json
    $ static_only $ traces)

let () =
  Cli_common.Subcommand.register ~name:"lint"
    ~doc:
      "Lint workload programs with the dataflow analyses (dead stores, \
       unreachable blocks, always-taken branches, ...), then run each one \
       under the engine with debug checks on and sweep the trace cache and \
       BCG for invariant violations.  Exits 1 on any error-severity finding."
    lint_term

let prove_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to prove (default: every registered workload).")
  in
  let min_pruning =
    Arg.(value & opt int 0 & info [ "min-pruning" ] ~docv:"K"
           ~doc:"Fail unless guard pruning elided at least one guard on \
                 $(docv) or more workloads.")
  in
  Term.(
    const prove_cmd $ workload $ size_arg $ threshold_arg $ delay_arg
    $ min_pruning)

let () =
  Cli_common.Subcommand.register ~name:"prove"
    ~doc:
      "Translation-validate every trace the engine builds: run each \
       workload with guard pruning on, symbolically prove every installed \
       trace equivalent to its original block sequence and re-derive every \
       pruning claim, then re-run with pruning off and assert bit-identical \
       VM results.  Exits 1 on any unprovable trace, diverging result, or \
       less pruning than --min-pruning demands."
    prove_term

let chaos_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to chaos-test (default: every registered workload).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Base PRNG seed; schedule i uses seed + 1000*i.")
  in
  let schedules =
    Arg.(value & opt int 50 & info [ "schedules" ] ~docv:"K"
           ~doc:"Seeded fault schedules per workload.")
  in
  let spec =
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"SPEC"
           ~doc:"Fault schedule DSL (kind@prob, kind!tick, budget=K; \
                 see --catalogue for kinds).")
  in
  let osr =
    Arg.(value & flag & info [ "osr" ]
           ~doc:"Arm on-stack replacement (mid-trace deoptimization and \
                 mid-loop promotion) so guard-flip schedules exercise the \
                 deopt paths under the transparency gate.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Bound each run to 120k instructions (the check.sh gate).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ]
           ~doc:"Print every verdict, not only failures.")
  in
  let catalogue =
    Arg.(value & flag & info [ "catalogue" ]
           ~doc:"Print the FT fault catalogue and exit.")
  in
  let dump_dir =
    Arg.(value & opt (some string) None & info [ "dump-dir" ] ~docv:"DIR"
           ~doc:"Arm the flight recorder's post-mortem file sink: dumps \
                 triggered during chaos runs (invariant violations, \
                 divergences, rejections, degradations) land in $(docv) \
                 as flightrec_<reason>.jsonl, latest dump per reason.")
  in
  Term.(
    const chaos_cmd $ workload $ size_arg $ seed $ schedules $ spec $ osr
    $ Cli_common.tier_arg $ quick $ verbose $ catalogue $ dump_dir)

let backends_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to check (default: every registered workload).")
  in
  Term.(
    const backends_cmd $ workload $ size_arg $ threshold_arg $ delay_arg
    $ Cli_common.tier_arg)

let () =
  Cli_common.Subcommand.register ~name:"backends"
    ~doc:
      "List the dispatch backends (interp, profile, trace, microir), then \
       run workloads with each one pinned and assert the VM result matches \
       the plain interpreter — the pure-overlay promise, per strategy.  \
       With --tier the microir backend compiles hot traces to the micro-IR \
       tier and the gate also requires at least one compiled trace."
    backends_term

let session_term =
  let workloads =
    Arg.(required & opt (some string) None & info [ "workloads" ] ~docv:"A,B,C"
           ~doc:"Comma-separated workloads to interleave.")
  in
  let users =
    Arg.(value & opt int 2 & info [ "users" ] ~docv:"K"
           ~doc:"Members per workload; 2+ makes same-workload members share \
                 a trace cache and exercise cross-session reuse.")
  in
  let batch =
    Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"N"
           ~doc:"Basic blocks each member advances per round-robin turn.")
  in
  Term.(
    const session_cmd $ workloads $ users $ batch $ size_arg $ threshold_arg
    $ delay_arg $ fault_spec_arg $ fault_seed_arg $ self_heal_arg)

let () =
  Cli_common.Subcommand.register ~name:"session"
    ~doc:
      "Run several workloads interleaved in one multi-session engine over \
       shared per-layout trace caches, assert every member's VM result is \
       bit-identical to a solo interpreter run, and report cross-session \
       trace reuse."
    session_term

let () =
  Cli_common.Subcommand.register ~name:"chaos"
    ~doc:
      "Run workloads under seeded fault schedules (corrupted traces, \
       flipped BCG counters, failed installations, allocation pressure) \
       with self-healing on, asserting VM results stay bit-identical to a \
       no-tracing baseline and the engine recovers to full tracing.  Exits \
       1 on any divergence or permanently degraded run."
    chaos_term

let top_term =
  let workload =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
           ~doc:"Workload to profile (default: every registered workload).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K"
           ~doc:"Rows per ranked table.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the full report as one schema-versioned JSON object \
                 per workload instead of the ranked tables (the \
                 reconciliation still runs on stderr).")
  in
  Term.(
    const top_cmd $ workload $ size_arg $ threshold_arg $ delay_arg
    $ Cli_common.prune_guards_arg $ Cli_common.tier_arg $ top $ json)

let () =
  Cli_common.Subcommand.register ~name:"top"
    ~doc:
      "Run workloads with per-block attribution on and print the \
       hot-report: ranked traces and ranked blocks (self vs inlined \
       executions).  Every column is reconciled against the end-of-run \
       statistics (stderr, non-zero exit on mismatch)."
    top_term

let timeline_term =
  let chrome =
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE"
           ~doc:"Write the timeline as Chrome trace_event JSON to $(docv) \
                 (loadable in Perfetto or about://tracing) and \
                 self-validate it, instead of printing span JSONL.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"Also write the span tree as folded stacks \
                 (frame;frame;frame weight, weighted by self dispatch \
                 ticks) to $(docv) — direct flamegraph.pl / speedscope \
                 input.")
  in
  Term.(
    const timeline_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg $ chrome $ folded)

let () =
  Cli_common.Subcommand.register ~name:"timeline"
    ~doc:
      "Replay a workload with the causal span recorder on (trace builds, \
       heal sweeps, quarantine episodes) and export the timeline: span \
       JSON lines on stdout, or self-validated Chrome trace_event JSON \
       with --chrome FILE."
    timeline_term

let warm_term =
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE"
           ~doc:"Run the workload cold and write the engine's end-of-run \
                 profile snapshot (BCG + trace cache) to $(docv).")
  in
  let load =
    Arg.(value & opt (some string) None & info [ "load" ] ~docv:"FILE"
           ~doc:"Warm-start from the snapshot in $(docv), then verify the \
                 warm VM result against an in-process cold run.")
  in
  Term.(
    const warm_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ save $ load)

let () =
  Cli_common.Subcommand.register ~name:"warm"
    ~doc:
      "Persist profile state across processes: --save writes a versioned, \
       checksummed snapshot of the BCG and trace cache after a cold run; \
       --load validates it into a fresh engine, drives the run warm, and \
       asserts the result is bit-identical to a cold control run.  Exits 1 \
       on a rejected snapshot (typed error on stderr) or a diverging \
       result."
    warm_term

let postmortem_term =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"A flight-recorder dump (flightrec_<reason>.jsonl).")
  in
  Term.(const postmortem_cmd $ file)

let () =
  Cli_common.Subcommand.register ~name:"postmortem"
    ~doc:
      "Pretty-print a flight-recorder post-mortem dump: the dump header \
       (trigger reason, ring occupancy) followed by the surviving window \
       of events, span closures and metric deltas, oldest first.  Every \
       line is re-parsed through the Codec JSON parser; exits 1 on any \
       malformed record."
    postmortem_term

let explain_term =
  let trace_id =
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"ID"
           ~doc:"Only the records concerning trace $(docv).")
  in
  let block =
    Arg.(value & opt (some int) None & info [ "block" ] ~docv:"GID"
           ~doc:"Only the records whose entry key involves block $(docv).")
  in
  Term.(
    const explain_cmd $ workload_arg $ size_arg $ threshold_arg $ delay_arg
    $ fault_spec_arg $ fault_seed_arg $ self_heal_arg $ Cli_common.osr_arg
    $ Cli_common.tier_arg $ trace_id $ block)

let () =
  Cli_common.Subcommand.register ~name:"explain"
    ~doc:
      "Replay a workload and narrate its decision ledger: why each trace \
       was built, installed, compiled, demoted, evicted or quarantined, \
       with the victim-scoring and budget inputs that justified the \
       decision, each record linked to its causal span and dispatch tick.  \
       The ledger's aggregates are reconciled against the end-of-run \
       statistics (stderr, non-zero exit on drift)."
    explain_term

let bench_diff_term =
  let old_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD"
           ~doc:"Baseline BENCH_<label>.json.")
  in
  let new_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW"
           ~doc:"Candidate BENCH_<label>.json.")
  in
  let max_regress =
    Arg.(value & opt float 0.0 & info [ "max-regress" ] ~docv:"PCT"
           ~doc:"Tolerated regression per metric, in percent of the \
                 baseline value (direction-aware; default 0).")
  in
  Term.(const bench_diff_cmd $ old_path $ new_path $ max_regress)

let () =
  Cli_common.Subcommand.register ~name:"bench-diff"
    ~doc:
      "Compare two machine-readable bench baselines (BENCH_<label>.json, \
       from bench --json) direction-aware: each metric knows whether \
       higher or lower is better.  Exits 1 when any metric regressed \
       beyond --max-regress percent or a baseline metric is missing from \
       the candidate."
    bench_diff_term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "tracevm" ~version:"1.0.0"
      ~doc:
        "Dynamic profiling and trace cache generation for a bytecode VM \
         (CGO 2003 reproduction)."
  in
  exit (Cmd.eval (Cmd.group ~default info (Cli_common.Subcommand.commands ())))
