(* Shared plumbing for repro_cli's subcommands: workload lookup, layout
   construction, configuration validation, and the cmdliner argument
   definitions every engine-driving subcommand repeats. *)

open Cmdliner

let find_workload name =
  match Workloads.Registry.find name with
  | Some w -> w
  | None ->
      Printf.eprintf "unknown workload %s (try: %s)\n" name
        (String.concat ", " (Workloads.Registry.names ()));
      exit 2

(* Config.make validates; turn a bad --threshold/--delay/--snapshot-period
   into a clean CLI error rather than an uncaught exception. *)
let config_or_die f =
  try f () with
  | Invalid_argument msg ->
      Printf.eprintf "invalid configuration: %s\n" msg;
      exit 2

let program_of w ~size =
  match size with
  | Some s -> w.Workloads.Workload.build ~size:s
  | None -> Workloads.Workload.build_default w

let layout_of w ~size =
  let program = program_of w ~size in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

(* The standard engine configuration of the run/events/session commands:
   fault-spec parse errors and out-of-range parameters both die cleanly. *)
let engine_config ?snapshot_period ?obs_spans ?obs_attribution ?prune_guards
    ?(osr = false) ?(tier = false) ~threshold ~delay ~fault_spec ~fault_seed
    ~self_heal () =
  config_or_die (fun () ->
      (* the engine parses the spec at create; surface a bad one here *)
      ignore (Tracegen.Faults.create ~seed:fault_seed fault_spec);
      Tracegen.Config.make ~threshold ~start_state_delay:delay ~fault_spec
        ~fault_seed ~self_heal ~debug_checks:self_heal ~osr ~tier
        ?snapshot_period ?obs_spans ?obs_attribution ?prune_guards ())

(* shared argument definitions *)

let workload_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")

let size_arg =
  Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
         ~doc:"Workload size (default: the workload's test size).")

let threshold_arg =
  Arg.(value & opt float 0.97 & info [ "threshold" ] ~docv:"P"
         ~doc:"Trace completion threshold in (0,1].")

let delay_arg =
  Arg.(value & opt int 64 & info [ "delay" ] ~docv:"D"
         ~doc:"Start state delay (paper: 1, 64 or 4096).")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S"
         ~doc:"Scale factor on workload bench sizes (1.0 = paper-scale runs).")

let fault_spec_arg =
  Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC"
         ~doc:"Fault schedule DSL (kind@prob, kind!tick, budget=K; empty = \
               no injection).  See 'chaos --catalogue' for kinds.")

let fault_seed_arg =
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"PRNG seed for the fault schedule.")

let prune_guards_arg =
  Arg.(value & flag & info [ "prune-guards" ]
         ~doc:"Derive guard-implication proofs at trace installation and \
               elide the proven positions from guard accounting (see \
               'prove').")

let self_heal_arg =
  Arg.(value & flag & info [ "self-heal" ]
         ~doc:"Enable quarantine, node repair and the degradation ladder \
               (also turns on the invariant sweeps that drive them).")

let osr_arg =
  Arg.(value & flag & info [ "osr" ]
         ~doc:"Arm on-stack replacement: guard failures deoptimize \
               mid-trace back to block dispatch, and hot loops are \
               promoted into self-chaining traces mid-iteration.")

let tier_arg =
  Arg.(value & flag & info [ "tier" ]
         ~doc:"Arm the compiled micro-IR tier: hot traces are lowered to \
               a register micro-IR with fused superinstructions and \
               dispatched from the compiled tier (results stay \
               bit-identical; see 'backends --tier').")

(* Declarative subcommand table.  Each subcommand registers its name,
   one-line doc and term in one place; the main entry point builds the
   cmdliner group from the table.  Adding a subcommand is one [register]
   call — no edits to the group construction. *)
module Subcommand = struct
  type t = { name : string; doc : string; term : unit Term.t }

  let registry : t list ref = ref []

  let register ~name ~doc term =
    if List.exists (fun s -> s.name = name) !registry then
      invalid_arg ("duplicate subcommand " ^ name);
    registry := { name; doc; term } :: !registry

  (* in registration order — the order the file declares them *)
  let commands () =
    List.rev_map
      (fun s -> Cmd.v (Cmd.info s.name ~doc:s.doc) s.term)
      !registry
end
