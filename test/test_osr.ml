(* On-stack replacement (ROADMAP item 4):

   - deoptimization is transparent: a guard flipped at any trace
     position abandons the residue and resumes block dispatch at the
     failing block, with VM results bit-identical to pure interpretation
     and the materialized interpreter state agreeing at every deopt
     (TL219 never fires on a healthy engine);
   - mid-loop promotion builds a hot loop's trace mid-iteration and
     enters it on the next back-edge, still bit-identical;
   - a currently executing trace is pinned: capacity/pressure eviction
     picks other victims and quarantine is refused outright;
   - a Health/Trace_prover sweep condemning the executing trace cuts
     over mid-flight under OSR (and defers, pin-refused, without). *)

module Config = Tracegen.Config
module Engine = Tracegen.Engine
module Events = Tracegen.Events
module Stats = Tracegen.Stats
module Trace = Tracegen.Trace
module Trace_cache = Tracegen.Trace_cache
module Interp = Vm.Interp

let tc = Alcotest.test_case
let check = Alcotest.check
let fp = Alcotest.(triple string int int)
let fingerprint = Harness.Chaos.fingerprint

let layout_for ?(size = 300) w = Harness.Experiment.layout_for w ~size

let compress = Workloads.Compress.workload

(* --------------------------------------------------------------- *)
(* deoptimization transparency                                       *)
(* --------------------------------------------------------------- *)

(* Arm a guard flip at one fixed position before every dispatched block:
   every trace entered during the run deopts at (the clamp of) that
   position.  Sweeping positions covers deopt-at-every-position; each
   run must stay bit-identical to pure interpretation, and every deopt
   must pass the TL219 state-materialization check. *)
let test_deopt_every_position () =
  let layout = layout_for compress in
  let baseline = Interp.run_plain layout in
  let total_deopts = ref 0 in
  for pos = 1 to 6 do
    let config = Config.make ~debug_checks:true ~osr:true () in
    let eng = Engine.create ~config layout in
    let handle =
      Interp.start layout ~on_block:(fun g -> Engine.on_block eng g)
    in
    Engine.attach eng handle;
    while Interp.running handle do
      Engine.arm_guard_flip eng ~pos;
      ignore (Interp.step_blocks handle 1)
    done;
    let r = Interp.result_of handle in
    check fp
      (Printf.sprintf "bit-identical with flips at position %d" pos)
      (fingerprint baseline) (fingerprint r);
    check Alcotest.int
      (Printf.sprintf "every deopt at position %d materialized state" pos)
      (Engine.deopts eng)
      (Engine.osr_state_checks eng);
    check Alcotest.int
      (Printf.sprintf "no TL219 mismatch at position %d" pos)
      0
      (Engine.osr_state_mismatches eng);
    total_deopts := !total_deopts + Engine.deopts eng
  done;
  check Alcotest.bool "the position sweep actually deopted" true
    (!total_deopts > 0)

(* The probabilistic FT008 schedule (pseudo-random positions) across
   every registered workload, with promotion armed too. *)
let test_flip_schedule_all_workloads () =
  let total_deopts = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let layout = layout_for ~size:w.Workloads.Workload.default_size w in
      let baseline = Interp.run_plain ~max_instructions:120_000 layout in
      let config =
        Config.make ~debug_checks:true ~self_heal:true ~osr:true
          ~osr_promote_after:48 ~fault_spec:"guard-flip@1.0,budget=500"
          ~fault_seed:11 ()
      in
      let result = Engine.run ~config ~max_instructions:120_000 layout in
      check fp
        (w.Workloads.Workload.name ^ " bit-identical under flip schedule")
        (fingerprint baseline)
        (fingerprint result.Engine.vm_result);
      let eng = result.Engine.engine in
      check Alcotest.int
        (w.Workloads.Workload.name ^ " no TL219 mismatches")
        0
        (Engine.osr_state_mismatches eng);
      (* the stats overlay carries the same counters *)
      check Alcotest.int
        (w.Workloads.Workload.name ^ " stats carry the deopt count")
        (Engine.deopts eng) result.Engine.run_stats.Stats.deopts;
      total_deopts := !total_deopts + Engine.deopts eng)
    Workloads.Registry.all;
  check Alcotest.bool "the schedule deopted somewhere" true (!total_deopts > 0)

(* The Deopt_entered payload: positions and residues must describe a
   real trace suffix, and the resume block is known when a handle is
   attached. *)
let test_deopt_event_payload () =
  let layout = layout_for compress in
  let events = Events.create () in
  let payloads = ref [] in
  let _s =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Deopt_entered { at_block; resume_block; residue_blocks; reason; _ }
          ->
            payloads := (at_block, resume_block, residue_blocks, reason) :: !payloads
        | _ -> ())
  in
  let config = Config.make ~debug_checks:true ~osr:true () in
  let eng = Engine.create ~config ~events layout in
  let handle =
    Interp.start layout ~on_block:(fun g -> Engine.on_block eng g)
  in
  Engine.attach eng handle;
  while Interp.running handle do
    Engine.arm_guard_flip eng ~pos:2;
    ignore (Interp.step_blocks handle 1)
  done;
  check Alcotest.bool "events fired" true (!payloads <> []);
  List.iter
    (fun (at, resume, residue, reason) ->
      check Alcotest.bool "position past the entry" true (at >= 1);
      check Alcotest.bool "abandoned a non-empty residue" true (residue >= 1);
      check Alcotest.bool "resume block known (handle attached)" true
        (resume >= 0);
      (* organic mispredictions deopt alongside the armed flips *)
      check Alcotest.bool "reason catalogued" true
        (List.mem reason [ "guard-flip"; "guard-failure" ]))
    !payloads;
  check Alcotest.bool "the armed flips actually forced some deopts" true
    (List.exists (fun (_, _, _, r) -> r = "guard-flip") !payloads)

(* --------------------------------------------------------------- *)
(* state materialization                                             *)
(* --------------------------------------------------------------- *)

(* The TL219 foundation, checked directly: an engine-driven run (OSR on,
   traces dispatching) materializes the same interpreter continuation as
   a plain run stepped the same number of blocks, at every checkpoint. *)
let test_materialize_lockstep () =
  let layout = layout_for ~size:200 compress in
  let plain = Interp.start layout ~on_block:(fun _ -> ()) in
  let config = Config.make ~osr:true () in
  let eng = Engine.create ~config layout in
  let engined =
    Interp.start layout ~on_block:(fun g -> Engine.on_block eng g)
  in
  Engine.attach eng engined;
  let continue_ = ref true in
  while !continue_ do
    let a = Interp.step_blocks plain 64 in
    let b = Interp.step_blocks engined 64 in
    check Alcotest.int "same dispatch progress" a b;
    check Alcotest.bool "materialized states equal" true
      (Interp.materialized_equal (Interp.materialize plain)
         (Interp.materialize engined));
    if a = 0 then continue_ := false
  done

(* --------------------------------------------------------------- *)
(* mid-loop promotion                                                *)
(* --------------------------------------------------------------- *)

let test_promotion_mid_loop () =
  let layout = layout_for ~size:400 compress in
  let baseline = Interp.run_plain layout in
  let events = Events.create () in
  let promoted = ref [] in
  let _s =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Osr_promoted { trace_id; header; latch; hotness } ->
            promoted := (trace_id, header, latch, hotness) :: !promoted
        | _ -> ())
  in
  let config =
    Config.make ~debug_checks:true ~osr:true ~osr_promote_after:6 ()
  in
  let result = Engine.run ~config ~events layout in
  check fp "bit-identical with promotion armed" (fingerprint baseline)
    (fingerprint result.Engine.vm_result);
  let eng = result.Engine.engine in
  check Alcotest.bool "promotions fired" true (Engine.osr_promotions eng > 0);
  check Alcotest.bool "a promoted trace was entered on its back-edge" true
    (Engine.osr_entries eng > 0);
  check Alcotest.int "every promotion was published" (Engine.osr_promotions eng)
    (List.length !promoted);
  (* each promoted trace self-chains: bound at (latch, header) with the
     latch being its own last block, and hot enough to cross the bar *)
  List.iter
    (fun (trace_id, header, latch, hotness) ->
      check Alcotest.bool "hotness crossed the threshold" true (hotness >= 6);
      match Trace_cache.peek (Engine.cache eng) ~first:latch ~head:header with
      | Some tr when tr.Trace.id = trace_id ->
          check Alcotest.int "latch is the trace's own last block" latch
            (Trace.last_block tr)
      | _ ->
          (* the binding may have been replaced later in the run; the
             event payload still had to be self-consistent *)
          ())
    !promoted;
  check Alcotest.int "stats carry the promotion counters"
    (Engine.osr_promotions eng)
    result.Engine.run_stats.Stats.osr_promotions

(* --------------------------------------------------------------- *)
(* execution pinning                                                 *)
(* --------------------------------------------------------------- *)

let test_pinned_trace_protected () =
  let layout = layout_for ~size:200 compress in
  let cache = Trace_cache.create ~max_traces:2 layout in
  let t0 = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  let _t1 = Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0 in
  Trace_cache.pin cache t0;
  check Alcotest.bool "pinned" true (Trace_cache.is_pinned cache t0);
  (* capacity eviction must pick the unpinned victim even though the
     pinned trace is least recently dispatched *)
  ignore (Trace_cache.install cache ~first:6 ~blocks:[| 7; 8 |] ~prob:1.0);
  check Alcotest.bool "pinned trace survives capacity eviction" true
    (Trace_cache.lookup cache ~prev:0 ~cur:1 <> None);
  (* pressure eviction skips it too, even when asked to empty the cache *)
  ignore (Trace_cache.pressure_evict cache ~down_to:0);
  check Alcotest.bool "pinned trace survives pressure eviction" true
    (Trace_cache.lookup cache ~prev:0 ~cur:1 <> None);
  check Alcotest.int "only the pinned trace is left" 1
    (Trace_cache.n_live cache);
  (* quarantine is refused wholly: no unbind, no blacklist record *)
  check Alcotest.bool "quarantine refused" true
    (Trace_cache.quarantine cache ~first:0 ~head:1 ~code:"TL210" = None);
  check Alcotest.int "refusal counted" 1 (Trace_cache.n_pin_refusals cache);
  check Alcotest.bool "entry not blacklisted by the refusal" false
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  check Alcotest.bool "still live" true
    (Trace_cache.lookup cache ~prev:0 ~cur:1 <> None);
  (* pins are refcounted (shared session caches pin per member) *)
  Trace_cache.pin cache t0;
  Trace_cache.unpin cache t0;
  check Alcotest.bool "still pinned after one of two unpins" true
    (Trace_cache.is_pinned cache t0);
  Trace_cache.unpin cache t0;
  check Alcotest.bool "unpinned" false (Trace_cache.is_pinned cache t0);
  check Alcotest.bool "quarantine succeeds once unpinned" true
    (Trace_cache.quarantine cache ~first:0 ~head:1 ~code:"TL210" <> None)

(* The PR-9 extension of the same promise: a pin also protects the
   trace's compiled-tier body.  Demoting a lowered body out from under
   the dispatch loop following it would leave the loop's micro-IR
   accounting pointing at freed state, so demote_lowered refuses exactly
   like quarantine does — and succeeds once the trace exits. *)
let test_pinned_trace_keeps_compiled_body () =
  let layout = layout_for ~size:200 compress in
  let cache = Trace_cache.create layout in
  let tr = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  tr.Trace.lowered <- Some (Tracegen.Tier.lower_trace layout tr);
  check Alcotest.int "one compiled trace" 1 (Trace_cache.n_compiled cache);
  Trace_cache.pin cache tr;
  check Alcotest.bool "demotion refused while executing" false
    (Trace_cache.demote_lowered cache tr);
  check Alcotest.bool "lowered body retained" true (tr.Trace.lowered <> None);
  check Alcotest.int "refusal counted" 1
    (Trace_cache.n_demote_refusals cache);
  (* refcounted like every pin: one of two unpins still protects *)
  Trace_cache.pin cache tr;
  Trace_cache.unpin cache tr;
  check Alcotest.bool "still protected after one of two unpins" false
    (Trace_cache.demote_lowered cache tr);
  Trace_cache.unpin cache tr;
  check Alcotest.bool "demotion succeeds once unpinned" true
    (Trace_cache.demote_lowered cache tr);
  check Alcotest.bool "body dropped" true (tr.Trace.lowered = None);
  check Alcotest.int "no compiled traces left" 0 (Trace_cache.n_compiled cache)

(* --------------------------------------------------------------- *)
(* mid-flight condemnation                                           *)
(* --------------------------------------------------------------- *)

(* Step an engine until it is inside a multi-block trace, corrupt that
   trace's tail (an out-of-range block id: TL210), then run a sweep. *)
let drive_into_corrupted_trace ~osr =
  let layout = layout_for compress in
  let baseline = Interp.run_plain layout in
  let events = Events.create () in
  let reasons = ref [] in
  let _s =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Deopt_entered { reason; _ } -> reasons := reason :: !reasons
        | _ -> ())
  in
  let config = Config.make ~debug_checks:true ~self_heal:true ~osr () in
  let eng = Engine.create ~config ~events layout in
  let handle =
    Interp.start layout ~on_block:(fun g -> Engine.on_block eng g)
  in
  Engine.attach eng handle;
  let corrupted = ref false in
  while (not !corrupted) && Interp.running handle do
    ignore (Interp.step_blocks handle 1);
    match Engine.active_trace eng with
    | Some tr when Trace.n_blocks tr >= 2 ->
        tr.Trace.blocks.(Trace.n_blocks tr - 1) <- -1;
        corrupted := true
    | _ -> ()
  done;
  check Alcotest.bool "found an executing trace to condemn" true !corrupted;
  Engine.debug_sweep eng;
  (baseline, eng, handle, reasons)

let test_condemned_cutover () =
  let baseline, eng, handle, reasons = drive_into_corrupted_trace ~osr:true in
  (* the sweep cut the executing trace over mid-flight *)
  check Alcotest.bool "deopted with the condemned reason" true
    (List.mem "condemned" !reasons);
  check Alcotest.bool "no trace active after the cut-over" true
    (Engine.active_trace eng = None);
  check Alcotest.bool "deopt counted" true (Engine.deopts eng > 0);
  (* the cut-over unpinned the trace, so the quarantine went through *)
  check Alcotest.int "quarantine not refused" 0 (Engine.pin_refusals eng);
  let r = Interp.finish handle in
  check fp "bit-identical after the mid-flight cut-over"
    (fingerprint baseline) (fingerprint r)

let test_condemned_deferred_without_osr () =
  let baseline, eng, handle, reasons = drive_into_corrupted_trace ~osr:false in
  (* no OSR: the executing trace cannot be cut over, and the execution
     pin refuses the quarantine instead of condemning it mid-flight *)
  check Alcotest.(list string) "no deopt without OSR" [] !reasons;
  check Alcotest.bool "trace still executing" true
    (Engine.active_trace eng <> None);
  check Alcotest.bool "quarantine was pin-refused" true
    (Engine.pin_refusals eng > 0);
  let r = Interp.finish handle in
  check fp "still bit-identical (pure overlay)" (fingerprint baseline)
    (fingerprint r)

(* --------------------------------------------------------------- *)
(* health ladder under flips                                         *)
(* --------------------------------------------------------------- *)

(* Flips are transparent to the ladder: forcing deopts all run long must
   not demote a fault-free engine (a flip is not a detection), and the
   run ends at full tracing. *)
let test_flips_do_not_degrade () =
  let layout = layout_for compress in
  let config =
    Config.make ~debug_checks:true ~self_heal:true ~osr:true
      ~fault_spec:"guard-flip@1.0,budget=200" ~fault_seed:5 ()
  in
  let result = Engine.run ~config layout in
  let s = result.Engine.run_stats in
  check Alcotest.int "ended at full tracing" 0 s.Stats.final_health;
  check Alcotest.int "no invariant violations" 0 s.Stats.invariant_violations;
  check Alcotest.bool "deopt rate is populated" true
    (s.Stats.deopts = 0 || Stats.deopt_rate s > 0.0)

let () =
  Alcotest.run "osr"
    [
      ( "deopt",
        [
          tc "every position is transparent" `Quick test_deopt_every_position;
          tc "FT008 schedule across workloads" `Quick
            test_flip_schedule_all_workloads;
          tc "event payload is self-consistent" `Quick test_deopt_event_payload;
          tc "ladder unmoved by flips" `Quick test_flips_do_not_degrade;
        ] );
      ( "materialize",
        [ tc "engine and plain runs agree" `Quick test_materialize_lockstep ] );
      ( "promotion",
        [ tc "mid-loop promotion is transparent" `Quick test_promotion_mid_loop ]
      );
      ( "pinning",
        [
          tc "eviction and quarantine respect pins" `Quick
            test_pinned_trace_protected;
          tc "tier demotion respects pins" `Quick
            test_pinned_trace_keeps_compiled_body;
        ] );
      ( "cut-over",
        [
          tc "condemned mid-flight deopts under OSR" `Quick
            test_condemned_cutover;
          tc "deferred without OSR" `Quick test_condemned_deferred_without_osr;
        ] );
    ]
