(* Translation validation: the symbolic equivalence checker must accept
   every body the optimizer actually produces and reject each seeded
   miscompilation with its specific TL code — one test per broken
   promise, plus the TL217 re-derivation check owned by Trace_prover. *)

module Instr = Bytecode.Instr
module Diag = Analysis.Diag
module Equiv = Analysis.Equiv
module Sx = Analysis.Symexec

let tc = Alcotest.test_case
let check = Alcotest.check

let codes_of diags = List.map (fun d -> d.Diag.code) diags

let run_equiv ?dead_out original optimized =
  Equiv.check ?dead_out ~trace_id:1 ~original ~optimized ()

let check_codes name expected diags =
  check Alcotest.(list string) name expected (codes_of diags)

(* ------------------------------------------------------------------ *)
(* seeded miscompilations, one per code                                 *)
(* ------------------------------------------------------------------ *)

let test_stack_divergence () =
  (* wrong constant left on the stack *)
  let diags = run_equiv [| Instr.Iconst 1 |] [| Instr.Iconst 2 |] in
  check_codes "TL212" [ "TL212" ] diags;
  check Alcotest.bool "error severity" true
    (List.for_all (fun d -> d.Diag.severity = Diag.Error) diags)

let test_dropped_store () =
  let original = [| Instr.Iconst 5; Instr.Istore 0 |] in
  let optimized = [| Instr.Iconst 5; Instr.Pop |] in
  check_codes "TL213 without license" [ "TL213" ]
    (run_equiv original optimized);
  (* the same drop under a liveness license is a legal trailing
     dead-store elimination *)
  check_codes "licensed drop accepted" []
    (run_equiv ~dead_out:(fun _ -> true) original optimized)

let test_dropped_effect () =
  (* a putfield on a fresh allocation silently deleted; the allocation
     is provably non-null, so no trap noise distracts from the effect *)
  let original =
    [| Instr.New 3; Instr.Iconst 1; Instr.Putfield (3, 0) |]
  in
  let optimized = [| Instr.New 3; Instr.Pop |] in
  check_codes "TL213" [ "TL213" ] (run_equiv original optimized)

let test_reordered_effects () =
  (* two putfields on the same object swapped: identical effect multiset
     and identical trap journal, only the order differs *)
  let original =
    [| Instr.Aload 0; Instr.Iconst 1; Instr.Putfield (0, 0);
       Instr.Aload 0; Instr.Iconst 2; Instr.Putfield (0, 1) |]
  in
  let optimized =
    [| Instr.Aload 0; Instr.Iconst 2; Instr.Putfield (0, 1);
       Instr.Aload 0; Instr.Iconst 1; Instr.Putfield (0, 0) |]
  in
  check_codes "TL214" [ "TL214" ] (run_equiv original optimized)

let test_weakened_trap () =
  (* a possibly-trapping division deleted: its value is dead but its
     div_zero condition is not *)
  let original =
    [| Instr.Iload 0; Instr.Iload 1; Instr.Idiv; Instr.Pop |]
  in
  check_codes "TL215" [ "TL215" ] (run_equiv original [||])

let test_weakened_guard () =
  (* a conditional branch deleted wholesale *)
  let original = [| Instr.Iload 0; Instr.Ifz (Instr.Eq, 5) |] in
  check_codes "TL216" [ "TL216" ] (run_equiv original [||])

let test_incomparable_epochs () =
  (* a call barrier deleted: the effect journal diverges and the epoch
     structure becomes incomparable, which is reported as a warning and
     cuts the store/stack comparison short *)
  let diags = run_equiv [| Instr.Invokestatic 0 |] [||] in
  check Alcotest.bool "TL213 reported" true
    (List.mem "TL213" (codes_of diags));
  check Alcotest.bool "TL218 reported" true
    (List.mem "TL218" (codes_of diags));
  let tl218 = List.find (fun d -> d.Diag.code = "TL218") diags in
  check Alcotest.bool "TL218 is a warning" true
    (tl218.Diag.severity = Diag.Warning)

let test_changed_store_value () =
  (* same slot written, wrong value *)
  let original = [| Instr.Iconst 5; Instr.Istore 0 |] in
  let optimized = [| Instr.Iconst 6; Instr.Istore 0 |] in
  check_codes "TL213" [ "TL213" ] (run_equiv original optimized)

(* ------------------------------------------------------------------ *)
(* real traces: everything the engine installs proves clean            *)
(* ------------------------------------------------------------------ *)

let warm_engine () =
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:2_000) in
  let config = Tracegen.Config.make ~prune_guards:true () in
  let r = Tracegen.Engine.run ~config layout in
  (layout, Tracegen.Engine.cache r.Tracegen.Engine.engine)

let test_real_traces_validate () =
  let layout, cache = warm_engine () in
  let n = ref 0 in
  Tracegen.Trace_cache.iter_all cache (fun _ -> incr n);
  check Alcotest.bool "traces installed" true (!n > 0);
  check_codes "every installed trace proves clean" []
    (Tracegen.Trace_prover.check_cache layout cache)

let test_forged_pruning_rejected () =
  (* flip a non-derived pruning verdict to true: the re-derivation must
     reject exactly that claim as TL217 *)
  let layout, cache = warm_engine () in
  let victim = ref None in
  Tracegen.Trace_cache.iter_all cache (fun tr ->
      if !victim = None && Tracegen.Trace.n_blocks tr >= 2 then begin
        let p = tr.Tracegen.Trace.pruned in
        let p =
          if Array.length p > 0 then p
          else Array.make (Tracegen.Trace.n_blocks tr) false
        in
        (* find a position the prover did NOT prune *)
        let pos = ref (-1) in
        Array.iteri (fun i v -> if !pos < 0 && i > 0 && not v then pos := i) p;
        if !pos >= 0 then begin
          p.(!pos) <- true;
          tr.Tracegen.Trace.pruned <- p;
          victim := Some tr
        end
      end);
  match !victim with
  | None -> Alcotest.fail "no trace with an unpruned position found"
  | Some tr ->
      let diags = Tracegen.Trace_prover.check_pruned layout tr in
      check Alcotest.bool "TL217 reported" true
        (List.mem "TL217" (codes_of diags));
      check Alcotest.bool "error severity" true
        (List.for_all (fun d -> d.Diag.severity = Diag.Error) diags);
      (* and the full validator surfaces the same claim *)
      check Alcotest.bool "validate includes the forged claim" true
        (List.mem "TL217" (codes_of (Tracegen.Trace_prover.validate layout tr)))

let test_derived_pruning_rederives () =
  (* every verdict the prover itself derived must re-derive cleanly *)
  let layout, cache = warm_engine () in
  let checked = ref 0 in
  Tracegen.Trace_cache.iter_all cache (fun tr ->
      if Array.length tr.Tracegen.Trace.pruned > 0 then begin
        incr checked;
        check_codes "claims re-derive" []
          (Tracegen.Trace_prover.check_pruned layout tr)
      end);
  check Alcotest.bool "pruned traces exist" true (!checked > 0)

let () =
  Alcotest.run "equiv"
    [
      ( "seeded miscompilations",
        [
          tc "stack divergence is TL212" `Quick test_stack_divergence;
          tc "dropped store is TL213" `Quick test_dropped_store;
          tc "dropped effect is TL213" `Quick test_dropped_effect;
          tc "reordered effects are TL214" `Quick test_reordered_effects;
          tc "weakened trap is TL215" `Quick test_weakened_trap;
          tc "weakened guard is TL216" `Quick test_weakened_guard;
          tc "incomparable epochs are TL218" `Quick test_incomparable_epochs;
          tc "changed store value is TL213" `Quick test_changed_store_value;
        ] );
      ( "proof-carrying traces",
        [
          tc "real traces validate" `Quick test_real_traces_validate;
          tc "forged pruning claim is TL217" `Quick
            test_forged_pruning_rejected;
          tc "derived claims re-derive" `Quick test_derived_pruning_rederives;
        ] );
    ]
