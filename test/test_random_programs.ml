(* The big hammer: generate random structured programs — loops, branches,
   calls, arrays, switches, try/catch — and check system-level properties
   on every one of them:

   - the front end's output verifies;
   - the engine is transparent (same result and instruction count as the
     plain interpreter);
   - statistics stay within their bounds;
   - NET and rePLay overlays never disturb execution either. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Interp = Vm.Interp
module Stats = Tracegen.Stats
module Sx = Analysis.Symexec

(* --------------------------------------------------------------- *)
(* program generator                                                 *)
(* --------------------------------------------------------------- *)

(* Locals: ints x, acc; array a (8 cells).  Helper methods f (int->int,
   possibly throwing) and g (int->int) are always defined.  All generated
   loops are bounded. *)

let gen_expr_leaf =
  QCheck.Gen.oneofl
    [
      i 1; i 7; i (-3); v "x"; v "acc"; v "a" @. (v "x" &! i 7);
      call "g" [ v "x" ];
    ]

let rec gen_expr depth st =
  let open QCheck.Gen in
  if depth = 0 then gen_expr_leaf st
  else
    (frequency
       [
         (3, gen_expr_leaf);
         ( 2,
           map2 (fun a b -> a +! b) (gen_expr (depth - 1)) (gen_expr (depth - 1)) );
         ( 1,
           map2 (fun a b -> (a *! b) &! i 0xFFFF) (gen_expr (depth - 1))
             (gen_expr (depth - 1)) );
         (1, map (fun a -> a ^! i 0x55) (gen_expr (depth - 1)));
         (1, map (fun a -> call "f" [ a &! i 0xFF ]) (gen_expr (depth - 1)));
       ])
      st

let rec gen_stmts depth st =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (3, map (fun e -> [ set "acc" ((v "acc" +! e) &! i 0xFFFFF) ]) (gen_expr 2));
        (2, map (fun e -> [ set "x" (e &! i 0xFFF) ]) (gen_expr 1));
        (1, map (fun e -> [ seti (v "a") (v "x" &! i 7) (e &! i 0xFFFF) ]) (gen_expr 1));
      ]
  in
  if depth = 0 then leaf st
  else
    (frequency
       [
         (3, leaf);
         ( 2,
           map3
             (fun c a b -> [ if_ (c &! i 1 =! i 0) a b ])
             (gen_expr 1) (gen_stmts (depth - 1)) (gen_stmts (depth - 1)) );
         ( 2,
           map (fun body -> [ for_ "k" (i 0) (i 40) (body @ [ incr_ "x" ]) ])
             (gen_stmts (depth - 1)) );
         ( 1,
           map
             (fun body ->
               [
                 switch (v "x" &! i 3)
                   [ (0, body); (2, [ set "x" (v "x" +! i 1) ]) ]
                   [ set "acc" (v "acc" ^! i 9) ];
               ])
             (gen_stmts (depth - 1)) );
         ( 1,
           map
             (fun body ->
               [
                 try_
                   (body @ [ set "x" (call "f" [ v "x" &! i 0xFF ]) ])
                   ~catch:("Boom", "ex")
                   [ set "acc" (v "acc" +! getf "Boom" "payload" (v "ex")) ];
               ])
             (gen_stmts (depth - 1)) );
         (1, map2 (fun a b -> a @ b) (gen_stmts (depth - 1)) (gen_stmts (depth - 1)));
       ])
      st

let build_program stmts =
  let p = S.create () in
  S.def_class p ~name:"Boom" ~fields:[ ("payload", S.I) ] ~methods:[] ();
  (* f throws for one rare argument value *)
  S.def_method p ~name:"f" ~args:[ ("n", S.I) ] ~ret:S.I
    ~body:
      [
        when_ (v "n" =! i 137)
          [
            decl "b" S.R (new_obj "Boom");
            setf "Boom" "payload" (v "b") (i 5);
            throw (v "b");
          ];
        ret ((v "n" *! i 17) &! i 0xFFF);
      ]
    ();
  S.def_method p ~name:"g" ~args:[ ("n", S.I) ] ~ret:S.I
    ~body:[ ret ((v "n" +! i 11) &! i 0xFFF) ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      ([
         decl_i "x" (i 3);
         decl_i "acc" (i 0);
         decl "a" (S.Arr S.I) (new_arr S.I (i 8));
       ]
      @ stmts
      @ [ ret (v "acc") ])
    ();
  S.link p ~entry:"main"

let arb_program =
  QCheck.make
    ~print:(fun _ -> "<random program>")
    QCheck.Gen.(map build_program (gen_stmts 3))

let run_outcomes layout =
  let plain = Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ()) in
  let traced = Tracegen.Engine.run ~max_instructions:2_000_000 layout in
  (plain, traced)

let prop_verifies =
  QCheck.Test.make ~name:"random programs verify" ~count:60 arb_program
    (fun program ->
      Bytecode.Verify.verify_program program;
      true)

let same_outcome (a : Interp.outcome) (b : Interp.outcome) =
  match (a, b) with
  | Interp.Finished x, Interp.Finished y -> x = y
  | Interp.Trapped (k1, _), Interp.Trapped (k2, _) -> k1 = k2
  | (Interp.Finished _ | Interp.Trapped _), _ -> false

let prop_engine_transparent =
  QCheck.Test.make ~name:"engine is transparent on random programs" ~count:60
    arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let plain, traced = run_outcomes layout in
      same_outcome plain.Interp.outcome
        traced.Tracegen.Engine.vm_result.Interp.outcome
      && plain.Interp.instructions
         = traced.Tracegen.Engine.vm_result.Interp.instructions)

let prop_stats_bounded =
  QCheck.Test.make ~name:"stats stay in bounds on random programs" ~count:40
    arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let _, traced = run_outcomes layout in
      let s = traced.Tracegen.Engine.run_stats in
      Stats.coverage_total s >= 0.0
      && Stats.coverage_total s <= 1.0
      && Stats.coverage_completed s <= Stats.coverage_total s +. 1e-9
      && s.Stats.traces_completed <= s.Stats.traces_entered
      && s.Stats.chained_entries <= s.Stats.traces_entered)

(* Liveness cross-validation: at every block dispatch, overwrite every
   local the analysis claims dead at that block's entry with a sentinel.
   If the claim is sound, execution cannot observe the difference — same
   outcome, same instruction count as an undisturbed run. *)
let prop_liveness_cross_validated =
  QCheck.Test.make ~name:"liveness claims survive execution scrambling"
    ~count:40 arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let live = Array.map Analysis.Liveness.compute layout.Cfg.Layout.cfgs in
      let plain =
        Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ())
      in
      let sentinel = Vm.Value.Vint 987654321 in
      let scramble gid (locals : Vm.Value.t array) =
        let mid = (Cfg.Layout.method_of_gid layout gid).Bytecode.Mthd.id in
        let bi = gid - layout.Cfg.Layout.offsets.(mid) in
        let lv = live.(mid) in
        for slot = 0 to Array.length locals - 1 do
          if
            not
              (Analysis.Liveness.Slot_set.mem slot
                 lv.Analysis.Liveness.live_in.(bi))
          then locals.(slot) <- sentinel
        done
      in
      let scrambled =
        Interp.run ~max_instructions:2_000_000 layout
          ~on_block_state:scramble ~on_block:(fun _ -> ())
      in
      same_outcome plain.Interp.outcome scrambled.Interp.outcome
      && plain.Interp.instructions = scrambled.Interp.instructions)

(* Constprop cross-validation: every abstract claim at a block's entry
   must bound the value actually observed there — a singleton matches
   exactly, an interval contains the observed int, and a block the
   analysis calls unreachable is never dispatched. *)
let prop_constprop_cross_validated =
  QCheck.Test.make ~name:"constprop claims match observed locals" ~count:40
    arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let cps =
        Array.map (Analysis.Constprop.compute program) layout.Cfg.Layout.cfgs
      in
      let failure = ref None in
      let observe gid (locals : Vm.Value.t array) =
        let mid = (Cfg.Layout.method_of_gid layout gid).Bytecode.Mthd.id in
        let bi = gid - layout.Cfg.Layout.offsets.(mid) in
        match cps.(mid).Analysis.Constprop.entry.(bi) with
        | Analysis.Constprop.Unreached ->
            failure := Some (Printf.sprintf "dispatched unreached block %d" gid)
        | Analysis.Constprop.Reached { locals = claims; _ } ->
            Array.iteri
              (fun slot claim ->
                if slot < Array.length locals then
                  match (claim, locals.(slot)) with
                  | Analysis.Constprop.Int { lo; hi }, Vm.Value.Vint v ->
                      if v < lo || v > hi then
                        failure :=
                          Some
                            (Printf.sprintf
                               "slot %d: claimed [%d,%d], observed %d" slot lo
                               hi v)
                  | Analysis.Constprop.Int { lo; hi }, other ->
                      failure :=
                        Some
                          (Printf.sprintf "slot %d: claimed [%d,%d], observed %s"
                             slot lo hi (Vm.Value.to_string other))
                  | Analysis.Constprop.Float_const c, Vm.Value.Vfloat f ->
                      if c <> f then
                        failure :=
                          Some
                            (Printf.sprintf "slot %d: claimed %f, observed %f"
                               slot c f)
                  | Analysis.Constprop.Null, v
                    when v <> Vm.Value.Vnull ->
                      failure := Some (Printf.sprintf "slot %d: claimed null" slot)
                  | _ -> ())
              claims
      in
      ignore
        (Interp.run ~max_instructions:2_000_000 layout ~on_block_state:observe
           ~on_block:(fun _ -> ()));
      match !failure with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* Symexec cross-validation: symbolically evaluate every dispatched
   block's body; wherever the resulting state makes a fully concrete
   claim — epoch 0, no heap effects, no recorded trap conditions — its
   final writes (and its frame of untouched slots) must match the
   locals the interpreter actually presents at the next dispatch.  The
   trap direction is checked too: a run trapping on a modeled condition
   must end in a block whose state recorded such a condition. *)
let sym_of_value = function
  | Vm.Value.Vint v -> Some (Sx.Sint v)
  | Vm.Value.Vfloat f -> Some (Sx.Sfloat f)
  | Vm.Value.Vnull -> Some Sx.Snull
  | Vm.Value.Vobj _ | Vm.Value.Varr _ -> None

let value_matches_sym sym value =
  match sym with
  | Sx.Sint c -> value = Vm.Value.Vint c
  | Sx.Sfloat c -> (
      match value with Vm.Value.Vfloat f -> c = f | _ -> false)
  | Sx.Snull -> value = Vm.Value.Vnull
  | _ -> true (* non-literal residue makes no claim *)

let prop_symexec_cross_validated =
  QCheck.Test.make ~name:"symexec agrees with the interpreter block-by-block"
    ~count:40 arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let failure = ref None in
      let fail fmt =
        Printf.ksprintf
          (fun m -> if !failure = None then failure := Some m)
          fmt
      in
      let last_traps = ref [] in
      let prev = ref None in
      let observe gid (locals : Vm.Value.t array) =
        (match !prev with
        | Some (pgid, (entry : Vm.Value.t array), st)
          when st.Sx.epoch = 0 && st.Sx.effects = [] && st.Sx.traps = [] ->
            (* the previous block stayed in its frame and completed, so
               its symbolic state fully determines these locals *)
            let writes = Sx.final_writes st in
            let lookup slot =
              if slot < Array.length entry then sym_of_value entry.(slot)
              else None
            in
            Array.iteri
              (fun slot value ->
                match Sx.Smap.find_opt (0, slot) writes with
                | Some sym -> (
                    match Sx.concretize ~local:lookup sym with
                    | Some lit when not (value_matches_sym lit value) ->
                        fail "block %d slot %d: symexec %s, interpreter %s"
                          pgid slot (Sx.sym_to_string lit)
                          (Vm.Value.to_string value)
                    | _ -> ())
                | None ->
                    if slot < Array.length entry then
                      match sym_of_value entry.(slot) with
                      | Some lit when not (value_matches_sym lit value) ->
                          fail
                            "block %d slot %d: untouched slot changed %s -> %s"
                            pgid slot
                            (Vm.Value.to_string entry.(slot))
                            (Vm.Value.to_string value)
                      | _ -> ())
              locals
        | _ -> ());
        let b = Cfg.Layout.block layout gid in
        let code = (Cfg.Layout.method_of_gid layout gid).Bytecode.Mthd.code in
        let st = Sx.run (Array.sub code b.Cfg.Block.start_pc b.Cfg.Block.len) in
        last_traps := Sx.traps st;
        prev := Some (gid, Array.copy locals, st)
      in
      let r =
        Interp.run ~max_instructions:2_000_000 layout ~on_block_state:observe
          ~on_block:(fun _ -> ())
      in
      (match r.Interp.outcome with
      | Interp.Trapped
          ( (Interp.Null_pointer | Interp.Array_bounds | Interp.Division_by_zero),
            _ )
        when !last_traps = [] ->
          fail "trapped on a modeled condition the last block never recorded"
      | _ -> ());
      match !failure with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* Chaos transparency: under ANY fault schedule — corrupted traces,
   flipped counters, failed installations, allocation pressure — the
   self-healing engine must still be a pure observational overlay: same
   outcome, same instruction count as fault-free pure interpretation. *)
let chaos_specs =
  [|
    Harness.Chaos.default_spec;
    (* hot: every dispatch is a coin flip, small budget *)
    "corrupt-trace@0.05,corrupt-instrs@0.05,zero-counter@0.03,budget=40";
    (* bursty one-shots early in the run *)
    "corrupt-trace!50,corrupt-trace!60,fail-install!70,alloc-pressure!80,\
     drop-best!90,saturate-counter!100";
  |]

let prop_chaos_transparent =
  QCheck.Test.make ~name:"faulted engine is transparent on random programs"
    ~count:45
    QCheck.(
      pair arb_program (pair (int_bound 1_000_000) (int_bound 2)))
    (fun (program, (seed, spec_i)) ->
      let layout = Cfg.Layout.build program in
      let plain =
        Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ())
      in
      let config =
        Harness.Chaos.config ~spec:chaos_specs.(spec_i) ~seed ()
      in
      let chaotic =
        Tracegen.Engine.run ~config ~max_instructions:2_000_000 layout
      in
      same_outcome plain.Interp.outcome
        chaotic.Tracegen.Engine.vm_result.Interp.outcome
      && plain.Interp.instructions
         = chaotic.Tracegen.Engine.vm_result.Interp.instructions)

(* On-stack replacement under random guard-flip schedules: every deopt
   must resume at the failing block with no observable effect, and every
   materialized-state check (TL219) must agree. *)
let prop_osr_transparent =
  QCheck.Test.make
    ~name:"OSR deopt/promotion is transparent on random programs" ~count:40
    QCheck.(pair arb_program (int_bound 1_000_000))
    (fun (program, seed) ->
      let layout = Cfg.Layout.build program in
      let plain =
        Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ())
      in
      let config =
        Tracegen.Config.make ~debug_checks:true ~self_heal:true
          ~fault_spec:"guard-flip@0.02,budget=64" ~fault_seed:seed ~osr:true
          ~osr_promote_after:32 ()
      in
      let r =
        Tracegen.Engine.run ~config ~max_instructions:2_000_000 layout
      in
      same_outcome plain.Interp.outcome
        r.Tracegen.Engine.vm_result.Interp.outcome
      && plain.Interp.instructions
         = r.Tracegen.Engine.vm_result.Interp.instructions
      && Tracegen.Engine.osr_state_mismatches r.Tracegen.Engine.engine = 0)

(* The compiled micro-IR tier is a pure overlay: with a low promotion
   bar (so random programs actually reach the compiled tier) and OSR
   armed on top, outcome and instruction counts must match pure
   interpretation, and every lowered body must survive TL220
   re-derivation. *)
let prop_microir_transparent =
  QCheck.Test.make
    ~name:"compiled tier is transparent on random programs" ~count:40
    arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let plain =
        Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ())
      in
      let config =
        Tracegen.Config.make ~debug_checks:true ~tier:true
          ~tier_compile_after:4 ~osr:true ~osr_promote_after:32 ()
      in
      let r =
        Tracegen.Engine.run ~config ~max_instructions:2_000_000 layout
      in
      let engine = r.Tracegen.Engine.engine in
      let tl220 = ref 0 in
      Tracegen.Trace_cache.iter (Tracegen.Engine.cache engine) (fun tr ->
          if Tracegen.Tier.check_lowered layout tr <> [] then incr tl220);
      same_outcome plain.Interp.outcome
        r.Tracegen.Engine.vm_result.Interp.outcome
      && plain.Interp.instructions
         = r.Tracegen.Engine.vm_result.Interp.instructions
      && !tl220 = 0)

let prop_baselines_transparent =
  QCheck.Test.make ~name:"baseline overlays do not disturb execution"
    ~count:30 arb_program (fun program ->
      let layout = Cfg.Layout.build program in
      let plain = Interp.run ~max_instructions:2_000_000 layout ~on_block:(fun _ -> ()) in
      let net = Baselines.Net.create layout in
      let under_net =
        Interp.run ~max_instructions:2_000_000 layout
          ~on_block:(fun g -> Baselines.Net.on_block net g)
      in
      let rp = Baselines.Replay_frames.create layout in
      let under_rp =
        Interp.run ~max_instructions:2_000_000 layout
          ~on_block:(fun g -> Baselines.Replay_frames.on_block rp g)
      in
      same_outcome plain.Interp.outcome under_net.Interp.outcome
      && same_outcome plain.Interp.outcome under_rp.Interp.outcome)

let () =
  Alcotest.run "random_programs"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_verifies;
          QCheck_alcotest.to_alcotest prop_engine_transparent;
          QCheck_alcotest.to_alcotest prop_stats_bounded;
          QCheck_alcotest.to_alcotest prop_liveness_cross_validated;
          QCheck_alcotest.to_alcotest prop_constprop_cross_validated;
          QCheck_alcotest.to_alcotest prop_symexec_cross_validated;
          QCheck_alcotest.to_alcotest prop_chaos_transparent;
          QCheck_alcotest.to_alcotest prop_osr_transparent;
          QCheck_alcotest.to_alcotest prop_microir_transparent;
          QCheck_alcotest.to_alcotest prop_baselines_transparent;
        ] );
    ]
