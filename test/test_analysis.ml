(* The dataflow framework and the analyses built on it: the worklist
   solver on hand-built graphs (loops, unreachable nodes, both
   directions), liveness and its dead-store report, constant/interval
   propagation and its findings, loop nesting, and the program linter's
   diagnostic codes. *)

module B = Bytecode.Builder
module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Method_cfg = Cfg.Method_cfg
module Dataflow = Analysis.Dataflow
module Liveness = Analysis.Liveness
module Constprop = Analysis.Constprop
module Loops = Analysis.Loops
module Lint = Analysis.Lint
module Diag = Analysis.Diag

let tc = Alcotest.test_case
let check = Alcotest.check

(* --------------------------------------------------------------- *)
(* helpers                                                           *)
(* --------------------------------------------------------------- *)

let main_program ?(returns = Mthd.Rint) ?(n_locals = 4) build =
  let b = B.create () in
  let m = B.begin_method b ~name:"main" ~returns ~n_args:0 ~n_locals () in
  build m;
  B.finish_method m;
  B.link b ~entry:"main"

let main_cfg ?returns ?n_locals build =
  let p = main_program ?returns ?n_locals build in
  (p, Method_cfg.build (Bytecode.Program.entry_method p))

let codes diags = List.map (fun d -> d.Diag.code) diags

let has_code c diags = List.mem c (codes diags)

(* --------------------------------------------------------------- *)
(* the worklist solver on hand-built graphs                          *)
(* --------------------------------------------------------------- *)

module Bool_lat = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
  let pp ppf b = Format.fprintf ppf "%b" b
end

module Bool_flow = Dataflow.Make (Bool_lat)

(* 0 -> 1 -> 2 -> 1 (loop), 3 isolated: propagation from the entry must
   saturate the loop and leave the isolated node at bottom.  The identity
   transfer is strict, so "unreached" is observable as [false]. *)
let test_solver_forward_loop () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [] in
  let preds = function 1 -> [ 0; 2 ] | 2 -> [ 1 ] | _ -> [] in
  let r =
    Bool_flow.solve ~direction:Dataflow.Forward ~n_blocks:4 ~succs ~preds
      ~entries:[ (0, true) ]
      ~transfer:(fun _ x -> x)
  in
  check Alcotest.(list bool) "reached" [ true; true; true; false ]
    (Array.to_list r.Bool_flow.output);
  check Alcotest.bool "did some work" true (r.Bool_flow.iterations >= 4)

let test_solver_backward () =
  (* 0 -> 1 -> 2; backwards from the exit everything is reached, but a
     node with no path to the exit (3 -> 3) stays at bottom *)
  let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 3 -> [ 3 ] | _ -> [] in
  let preds = function 1 -> [ 0 ] | 2 -> [ 1 ] | 3 -> [ 3 ] | _ -> [] in
  let r =
    Bool_flow.solve ~direction:Dataflow.Backward ~n_blocks:4 ~succs ~preds
      ~entries:[ (2, true) ]
      ~transfer:(fun _ x -> x)
  in
  check Alcotest.(list bool) "exit-reaching" [ true; true; true; false ]
    (Array.to_list r.Bool_flow.output)

module Count_lat = struct
  type t = int

  let bottom = 0
  let equal = Int.equal
  let join = max
  let pp ppf n = Format.fprintf ppf "%d" n
end

module Count_flow = Dataflow.Make (Count_lat)

(* A capped counting transfer around a 2-cycle: the fixpoint must reach
   the cap (monotone ascent terminates at the lattice's finite height)
   and input/output must stay consistent at the fixpoint. *)
let test_solver_terminates_on_cycle () =
  let succs = function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [] in
  let preds = succs in
  let transfer _ x = min 10 (x + 1) in
  let r =
    Count_flow.solve ~direction:Dataflow.Forward ~n_blocks:2 ~succs ~preds
      ~entries:[ (0, 0) ] ~transfer
  in
  check Alcotest.int "cap reached (0)" 10 r.Count_flow.output.(0);
  check Alcotest.int "cap reached (1)" 10 r.Count_flow.output.(1);
  Array.iteri
    (fun b input ->
      check Alcotest.int "output = transfer input" (transfer b input)
        r.Count_flow.output.(b))
    r.Count_flow.input

(* --------------------------------------------------------------- *)
(* liveness                                                          *)
(* --------------------------------------------------------------- *)

let test_liveness_dead_store () =
  let _, cfg =
    main_cfg (fun m ->
        B.iconst m 1;
        B.i m (Instr.Istore 0);
        (* dead: overwritten below, never read *)
        B.iconst m 2;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let live = Liveness.compute cfg in
  match Liveness.dead_stores live with
  | [ d ] ->
      check Alcotest.int "dead store pc" 1 d.Liveness.pc;
      check Alcotest.int "dead store slot" 0 d.Liveness.slot
  | ds -> Alcotest.failf "expected exactly one dead store, got %d" (List.length ds)

(* a loop-carried accumulator is live around the back edge and nothing in
   the loop is a dead store *)
let test_liveness_loop_carried () =
  let _, cfg =
    main_cfg (fun m ->
        let loop = B.new_label m in
        let exit = B.new_label m in
        B.iconst m 0;
        B.i m (Instr.Istore 0);
        (* acc *)
        B.iconst m 10;
        B.i m (Instr.Istore 1);
        (* n *)
        B.place m loop;
        B.iload m 1;
        B.ifz m Instr.Le exit;
        B.iload m 0;
        B.iconst m 1;
        B.i m Instr.Iadd;
        B.i m (Instr.Istore 0);
        B.i m (Instr.Iinc (1, -1));
        B.goto m loop;
        B.place m exit;
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let live = Liveness.compute cfg in
  check Alcotest.(list Alcotest.reject) "no dead stores" []
    (List.map (fun _ -> ()) (Liveness.dead_stores live));
  (* the latch block (the one ending in the goto) carries both slots *)
  let header = Method_cfg.block_index_at_pc cfg 4 in
  check Alcotest.bool "acc live into the header" true
    (Liveness.Slot_set.mem 0 live.Liveness.live_in.(header));
  check Alcotest.bool "n live into the header" true
    (Liveness.Slot_set.mem 1 live.Liveness.live_in.(header))

(* uses/defs agree with the instruction set on the slot-touching forms *)
let test_uses_defs () =
  check Alcotest.(list int) "iload uses" [ 3 ] (Liveness.uses (Instr.Iload 3));
  check Alcotest.(list int) "istore defs" [ 2 ] (Liveness.defs (Instr.Istore 2));
  check Alcotest.(list int) "iinc uses" [ 1 ] (Liveness.uses (Instr.Iinc (1, 5)));
  check Alcotest.(list int) "iinc defs" [ 1 ] (Liveness.defs (Instr.Iinc (1, 5)));
  check Alcotest.(list int) "iconst touches nothing" []
    (Liveness.uses (Instr.Iconst 7) @ Liveness.defs (Instr.Iconst 7))

(* inside a handler-covered range stores are not reported dead: the
   handler could observe the pre-store value after any throw *)
let test_liveness_covered_blocks () =
  let open Workloads.Dsl in
  let module S = Bytecode.Structured in
  let p = S.create () in
  S.def_class p ~name:"Boom" ~fields:[ ("payload", S.I) ] ~methods:[] ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "d" (i 1);
        try_
          [ set "d" (i 2); set "d" (i 3) ]
          ~catch:("Boom", "ex")
          [ set "d" (v "d" +! getf "Boom" "payload" (v "ex")) ];
        (* the handler reads [d], so the exceptional edge keeps every
           store to it live: neither d=1 nor the overwritten d=2 may be
           reported dead *)
        ret (v "d");
      ]
    ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let cfg = Method_cfg.build (Bytecode.Program.entry_method program) in
  let live = Liveness.compute cfg in
  check Alcotest.bool "some block is covered" true
    (Array.exists (fun c -> c) live.Liveness.covered);
  check Alcotest.int "no dead stores reported under cover" 0
    (List.length (Liveness.dead_stores live))

(* --------------------------------------------------------------- *)
(* constant propagation                                              *)
(* --------------------------------------------------------------- *)

let test_constprop_folds_arithmetic () =
  let p, cfg =
    main_cfg (fun m ->
        B.iconst m 6;
        B.iconst m 7;
        B.i m Instr.Imul;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let cp = Constprop.compute p cfg in
  match cp.Constprop.exit.(0) with
  | Constprop.Reached { locals; _ } ->
      check Alcotest.(option int) "6*7 is a singleton 42" (Some 42)
        (Constprop.singleton locals.(0))
  | Constprop.Unreached -> Alcotest.fail "entry block unreached"

let test_constprop_always_taken () =
  let p, cfg =
    main_cfg (fun m ->
        let taken = B.new_label m in
        B.iconst m 5;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.ifz m Instr.Gt taken;
        B.iconst m 0;
        B.i m Instr.Ireturn;
        B.place m taken;
        B.iconst m 1;
        B.i m Instr.Ireturn)
  in
  let cp = Constprop.compute p cfg in
  let branchy =
    List.filter_map
      (function
        | Constprop.Branch_always { taken; _ } -> Some taken
        | Constprop.Div_by_zero _ -> None)
      (Constprop.findings cp)
  in
  check Alcotest.(list bool) "ifz gt on 5 always taken" [ true ] branchy

let test_constprop_div_by_zero () =
  let p, cfg =
    main_cfg (fun m ->
        B.iconst m 1;
        B.iconst m 0;
        B.i m Instr.Idiv;
        B.i m Instr.Ireturn)
  in
  let cp = Constprop.compute p cfg in
  let divs =
    List.filter
      (function Constprop.Div_by_zero _ -> true | _ -> false)
      (Constprop.findings cp)
  in
  check Alcotest.int "one certain division by zero" 1 (List.length divs)

(* interval join: two constants merge into a widened interval that still
   bounds both, never a wrong singleton *)
let test_constprop_join_not_singleton () =
  let p, cfg =
    main_cfg (fun m ->
        let other = B.new_label m in
        let join = B.new_label m in
        B.iconst m 0;
        B.i m (Instr.Istore 1);
        B.iload m 1;
        B.ifz m Instr.Eq other;
        B.iconst m 3;
        B.i m (Instr.Istore 0);
        B.goto m join;
        B.place m other;
        B.iconst m 9;
        B.i m (Instr.Istore 0);
        B.place m join;
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let cp = Constprop.compute p cfg in
  let join_block = Method_cfg.block_index_at_pc cfg (Array.length cfg.Method_cfg.method_.Mthd.code - 2) in
  match cp.Constprop.entry.(join_block) with
  | Constprop.Reached { locals; _ } ->
      check Alcotest.(option int) "merge of 3 and 9 is not a singleton" None
        (Constprop.singleton locals.(0))
  | Constprop.Unreached ->
      (* constprop may prove the branch one-sided here; that is fine as
         long as it did not invent a wrong singleton, which the lint
         cross-validation properties check on random programs *)
      ()

(* --------------------------------------------------------------- *)
(* loop nesting                                                      *)
(* --------------------------------------------------------------- *)

let test_loops_nesting () =
  let open Workloads.Dsl in
  let module S = Bytecode.Structured in
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "s" (i 0);
        for_ "a" (i 0) (i 3)
          [ for_ "b" (i 0) (i 3) [ set "s" (v "s" +! (v "a" *! v "b")) ] ];
        ret (v "s");
      ]
    ();
  let program = S.link p ~entry:"main" in
  let cfg = Method_cfg.build (Bytecode.Program.entry_method program) in
  let l = Loops.compute cfg in
  check Alcotest.int "two natural loops" 2 (Array.length l.Loops.loops);
  check Alcotest.int "two back edges" 2 (List.length l.Loops.back_edges);
  check Alcotest.bool "maximum nesting depth is 2" true
    (Array.exists (fun d -> d = 2) l.Loops.depth);
  check Alcotest.(list Alcotest.reject) "reducible control flow" []
    (List.map (fun _ -> ()) l.Loops.irreducible);
  let inner =
    Array.to_list l.Loops.loops
    |> List.find (fun (lp : Loops.loop) -> lp.Loops.depth = 2)
  in
  check Alcotest.bool "inner loop has a parent" true
    (Option.is_some inner.Loops.parent)

(* --------------------------------------------------------------- *)
(* the linter                                                        *)
(* --------------------------------------------------------------- *)

let test_lint_clean_program () =
  let p =
    main_program (fun m ->
        B.iconst m 0;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program p in
  check Alcotest.bool "no error findings" false (Diag.has_errors diags)

let test_lint_seeded_dead_store () =
  let p =
    main_program (fun m ->
        B.iconst m 1;
        B.i m (Instr.Istore 0);
        B.iconst m 2;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program ~context:"seeded" p in
  check Alcotest.bool "TL101 reported" true (has_code "TL101" diags);
  check Alcotest.bool "and it is an error" true (Diag.has_errors diags);
  (* the rendering carries the context, code and location *)
  let d = List.find (fun d -> d.Diag.code = "TL101") diags in
  let s = Diag.to_string d in
  check Alcotest.bool "rendering mentions context" true
    (String.length s > 0 && String.sub s 0 6 = "seeded")

let test_lint_unreachable_block () =
  let p =
    main_program (fun m ->
        let l = B.new_label m in
        B.goto m l;
        B.iconst m 5;
        B.i m Instr.Pop;
        B.place m l;
        B.iconst m 0;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program p in
  check Alcotest.bool "TL002 reported" true (has_code "TL002" diags);
  check Alcotest.bool "unreachable code is not an error" false
    (Diag.has_errors diags)

let test_lint_always_taken_branch () =
  let p =
    main_program (fun m ->
        let taken = B.new_label m in
        B.iconst m 5;
        B.i m (Instr.Istore 0);
        B.iload m 0;
        B.ifz m Instr.Gt taken;
        B.iconst m 0;
        B.i m Instr.Ireturn;
        B.place m taken;
        B.iconst m 1;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program p in
  check Alcotest.bool "TL102 reported" true (has_code "TL102" diags)

let test_lint_div_by_zero () =
  let p =
    main_program (fun m ->
        B.iconst m 1;
        B.iconst m 0;
        B.i m Instr.Idiv;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program p in
  check Alcotest.bool "TL105 reported" true (has_code "TL105" diags)

let test_lint_verify_failure_is_tl001 () =
  (* an operand-stack underflow: verification fails, so the lint reports
     TL001 alone and runs no dataflow pass *)
  let p =
    main_program (fun m ->
        B.iconst m 1;
        B.i m Instr.Iadd;
        B.i m Instr.Ireturn)
  in
  let diags = Lint.lint_program p in
  check Alcotest.bool "some diagnostics" true (diags <> []);
  check Alcotest.bool "all TL001" true
    (List.for_all (fun d -> d.Diag.code = "TL001") diags);
  check Alcotest.bool "verification failure is an error" true
    (Diag.has_errors diags)

(* every registered workload lints without error-severity findings — the
   static half of `repro_cli lint`'s acceptance bar *)
let test_lint_workloads_clean () =
  List.iter
    (fun w ->
      let program = Workloads.Workload.build_default w in
      let diags =
        Lint.lint_program ~context:w.Workloads.Workload.name program
      in
      List.iter
        (fun d ->
          if d.Diag.severity = Diag.Error then
            Alcotest.failf "workload %s: %s" w.Workloads.Workload.name
              (Diag.to_string d))
        diags)
    Workloads.Registry.all

(* --------------------------------------------------------------- *)
(* verifier error collection (verify_program_all)                    *)
(* --------------------------------------------------------------- *)

let test_verify_all_collects () =
  let b = B.create () in
  let m1 =
    B.begin_method b ~name:"bad1" ~returns:Mthd.Rint ~n_args:0 ~n_locals:1 ()
  in
  B.i m1 Instr.Iadd;
  B.i m1 Instr.Ireturn;
  B.finish_method m1;
  let m2 =
    B.begin_method b ~name:"main" ~returns:Mthd.Rint ~n_args:0 ~n_locals:1 ()
  in
  B.i m2 (Instr.Fconst 1.0);
  B.i m2 Instr.Ireturn;
  B.finish_method m2;
  let p = B.link b ~entry:"main" in
  let errors = Bytecode.Verify.verify_program_all p in
  check Alcotest.bool "at least two errors across methods" true
    (List.length errors >= 2);
  (* the raising API still reports the first of them *)
  (try
     Bytecode.Verify.verify_program p;
     Alcotest.fail "expected Invalid"
   with Bytecode.Verify.Invalid _ -> ())

let () =
  Alcotest.run "analysis"
    [
      ( "solver",
        [
          tc "forward loop + unreachable" `Quick test_solver_forward_loop;
          tc "backward" `Quick test_solver_backward;
          tc "terminates on cycle" `Quick test_solver_terminates_on_cycle;
        ] );
      ( "liveness",
        [
          tc "dead store" `Quick test_liveness_dead_store;
          tc "loop-carried" `Quick test_liveness_loop_carried;
          tc "uses/defs" `Quick test_uses_defs;
          tc "covered blocks" `Quick test_liveness_covered_blocks;
        ] );
      ( "constprop",
        [
          tc "folds arithmetic" `Quick test_constprop_folds_arithmetic;
          tc "always-taken branch" `Quick test_constprop_always_taken;
          tc "certain div by zero" `Quick test_constprop_div_by_zero;
          tc "join widens" `Quick test_constprop_join_not_singleton;
        ] );
      ("loops", [ tc "nesting" `Quick test_loops_nesting ]);
      ( "lint",
        [
          tc "clean program" `Quick test_lint_clean_program;
          tc "seeded dead store" `Quick test_lint_seeded_dead_store;
          tc "unreachable block" `Quick test_lint_unreachable_block;
          tc "always-taken branch" `Quick test_lint_always_taken_branch;
          tc "div by zero" `Quick test_lint_div_by_zero;
          tc "verify failure" `Quick test_lint_verify_failure_is_tl001;
          tc "workloads lint clean" `Slow test_lint_workloads_clean;
        ] );
      ("verify_all", [ tc "collects errors" `Quick test_verify_all_collects ])
    ]
