(* The derived metrics, pinned with hand-built records. *)

module Stats = Tracegen.Stats

let tc = Alcotest.test_case
let check = Alcotest.check
let approx = Alcotest.float 1e-9

let sample =
  {
    Stats.zero with
    Stats.instructions = 1000;
    block_dispatches = 100;
    trace_dispatches = 50;
    traces_entered = 50;
    traces_completed = 40;
    completed_blocks = 200;
    partial_blocks = 30;
    completed_instrs = 600;
    partial_instrs = 100;
    signals = 5;
    traces_constructed = 10;
    static_traces = 8;
    static_blocks = 40;
    chained_entries = 20;
  }

let test_totals () =
  check Alcotest.int "total dispatches" 150 (Stats.total_dispatches sample);
  check Alcotest.int "trace events" 15 (Stats.trace_events sample)

let test_lengths () =
  check approx "static avg length" 5.0 (Stats.avg_trace_length sample);
  check approx "dynamic avg length" 5.0 (Stats.dynamic_trace_length sample)

let test_coverage () =
  check approx "completed coverage" 0.6 (Stats.coverage_completed sample);
  check approx "total coverage" 0.7 (Stats.coverage_total sample)

let test_rates () =
  check approx "completion rate" 0.8 (Stats.completion_rate sample);
  check approx "dispatches per signal" 30.0 (Stats.dispatches_per_signal sample);
  check approx "trace event interval" 10.0 (Stats.trace_event_interval sample);
  check approx "linking rate" 0.4 (Stats.linking_rate sample)

let test_dispatch_reduction () =
  (* block model: 100 outside + 200 completed + 30 partial = 330 over 150 *)
  check approx "reduction" (330.0 /. 150.0) (Stats.dispatch_reduction sample)

let test_resilience_rates () =
  let s =
    {
      sample with
      Stats.traces_quarantined = 4;
      traces_evicted = 2;
      faults_injected = 6;
    }
  in
  check approx "quarantine rate" 0.4 (Stats.quarantine_rate s);
  check approx "eviction rate" 0.2 (Stats.eviction_rate s);
  (* a healthy record rates at zero, and so does one with quarantines but
     no constructions (no division by zero) *)
  check approx "healthy quarantine rate" 0.0 (Stats.quarantine_rate sample);
  check approx "no constructions" 0.0
    (Stats.quarantine_rate { Stats.zero with Stats.traces_quarantined = 3 })

let test_resilience_pp () =
  (* healthy record: no resilience block *)
  let healthy = Format.asprintf "%a" Stats.pp sample in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "healthy pp omits violations" false
    (contains healthy "violations");
  let chaotic =
    Format.asprintf "%a" Stats.pp
      { sample with Stats.faults_injected = 5; traces_quarantined = 2 }
  in
  check Alcotest.bool "chaotic pp shows violations line" true
    (contains chaotic "violations");
  check Alcotest.bool "chaotic pp shows quarantine count" true
    (contains chaotic "quarantined")

let test_zero_division_safety () =
  let z = Stats.zero in
  check approx "length" 0.0 (Stats.avg_trace_length z);
  check approx "coverage" 0.0 (Stats.coverage_completed z);
  check approx "completion" 0.0 (Stats.completion_rate z);
  check approx "per signal" 0.0 (Stats.dispatches_per_signal z);
  check approx "interval" 0.0 (Stats.trace_event_interval z);
  check approx "linking" 0.0 (Stats.linking_rate z);
  check approx "reduction" 1.0 (Stats.dispatch_reduction z)

let test_pp () =
  let s = Format.asprintf "%a" Stats.pp sample in
  check Alcotest.bool "pp mentions coverage" true
    (String.length s > 50)

let test_invariants_from_run () =
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:2_000) in
  let s = (Tracegen.Engine.run layout).Tracegen.Engine.run_stats in
  check Alcotest.bool "entered >= completed" true
    (s.Stats.traces_entered >= s.Stats.traces_completed);
  check Alcotest.bool "chained <= entered" true
    (s.Stats.chained_entries <= s.Stats.traces_entered);
  check Alcotest.bool "static traces <= constructed" true
    (s.Stats.static_traces <= s.Stats.traces_constructed);
  check Alcotest.bool "coverage total <= 1" true (Stats.coverage_total s <= 1.0);
  check Alcotest.bool "reduction >= 1 on a traced run" true
    (Stats.dispatch_reduction s >= 1.0);
  (* chaining must actually occur on a loopy workload *)
  check Alcotest.bool "linking rate meaningful" true
    (Stats.linking_rate s > 0.5)

let () =
  Alcotest.run "stats"
    [
      ( "derived",
        [
          tc "totals" `Quick test_totals;
          tc "lengths" `Quick test_lengths;
          tc "coverage" `Quick test_coverage;
          tc "rates" `Quick test_rates;
          tc "dispatch reduction" `Quick test_dispatch_reduction;
          tc "resilience rates" `Quick test_resilience_rates;
          tc "resilience pp" `Quick test_resilience_pp;
          tc "zero safety" `Quick test_zero_division_safety;
          tc "pp" `Quick test_pp;
        ] );
      ("integration", [ tc "run invariants" `Quick test_invariants_from_run ]);
    ]
