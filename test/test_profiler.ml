(* The profiler: branch-context maintenance over a dispatch stream,
   inline-cache accounting, and resynchronization after unprofiled
   stretches. *)

module Profiler = Tracegen.Profiler
module Bcg = Tracegen.Bcg
module Config = Tracegen.Config

let tc = Alcotest.test_case
let check = Alcotest.check

let mk ?(delay = 1) () =
  let config = Config.make ~start_state_delay:delay () in
  Profiler.create config ~n_blocks:100 ~on_signal:(fun _ -> ())

let test_first_dispatch_creates_nothing () =
  let p = mk () in
  Profiler.dispatch p 5;
  check Alcotest.int "no node from a single dispatch" 0
    (Bcg.n_nodes (Profiler.bcg p));
  check Alcotest.int "dispatch counted" 1 (Profiler.dispatches p)

let test_nodes_from_stream () =
  let p = mk () in
  List.iter (Profiler.dispatch p) [ 1; 2; 3; 1; 2; 3 ];
  let bcg = Profiler.bcg p in
  (* transitions: (1,2) (2,3) (3,1) (1,2) (2,3) *)
  check Alcotest.bool "node (1,2)" true (Bcg.find_node bcg ~x:1 ~y:2 <> None);
  check Alcotest.bool "node (2,3)" true (Bcg.find_node bcg ~x:2 ~y:3 <> None);
  check Alcotest.bool "node (3,1)" true (Bcg.find_node bcg ~x:3 ~y:1 <> None);
  let n12 = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  check Alcotest.int "node (1,2) executed twice" 2 n12.Bcg.exec_total;
  (* edge (1,2)->(2,3) recorded twice *)
  let e = Option.get (Bcg.find_edge n12 3) in
  check Alcotest.int "edge weight is two events" (2 * Bcg.event_weight)
    e.Bcg.weight

let test_inline_cache_predictions () =
  let p = mk () in
  (* a repeating cycle becomes fully predicted after warm-up *)
  for _ = 1 to 50 do
    List.iter (Profiler.dispatch p) [ 1; 2; 3 ]
  done;
  let predicted = Profiler.predictions p in
  let total = Profiler.dispatches p in
  check Alcotest.bool
    (Printf.sprintf "most dispatches predicted (%d/%d)" predicted total)
    true
    (float_of_int predicted > 0.8 *. float_of_int total)

let test_resync () =
  let p = mk () in
  List.iter (Profiler.dispatch p) [ 1; 2; 3; 1; 2; 3; 1; 2 ];
  let bcg = Profiler.bcg p in
  let n23 = Option.get (Bcg.find_node bcg ~x:2 ~y:3) in
  let execs_before = n23.Bcg.exec_total in
  (* pretend blocks 3 then 1 executed inside a trace, unprofiled *)
  Profiler.resync p ~x:3 ~y:1;
  check Alcotest.int "resync does not count executions" execs_before
    n23.Bcg.exec_total;
  (* next dispatch records the edge from the resynced context (3,1) *)
  Profiler.dispatch p 2;
  let n31 = Option.get (Bcg.find_node bcg ~x:3 ~y:1) in
  check Alcotest.bool "edge from resynced context" true
    (Bcg.find_edge n31 2 <> None)

let test_resync_unknown_context () =
  let p = mk () in
  List.iter (Profiler.dispatch p) [ 1; 2; 3 ];
  (* resync to a pair never observed: context must be dropped, and the
     following dispatch must not invent an edge from it *)
  Profiler.resync p ~x:50 ~y:60;
  Profiler.dispatch p 61;
  let bcg = Profiler.bcg p in
  check Alcotest.bool "no node fabricated for (50,60)" true
    (Bcg.find_node bcg ~x:50 ~y:60 = None);
  (* but the visit of (60,61) is recorded: the transition did happen *)
  check Alcotest.bool "transition (60,61) recorded" true
    (Bcg.find_node bcg ~x:60 ~y:61 <> None)

let test_signals_counted () =
  let signals = ref 0 in
  let config = Config.make ~start_state_delay:4 () in
  let p =
    Profiler.create config ~n_blocks:100 ~on_signal:(fun _ -> incr signals)
  in
  for _ = 1 to 50 do
    List.iter (Profiler.dispatch p) [ 1; 2; 3 ]
  done;
  check Alcotest.int "profiler signal count matches callback count" !signals
    (Profiler.signals p);
  check Alcotest.bool "promotions produced signals" true (!signals > 0)

let test_reset () =
  let p = mk () in
  List.iter (Profiler.dispatch p) [ 1; 2; 3 ];
  Profiler.reset p;
  Profiler.dispatch p 7;
  let bcg = Profiler.bcg p in
  check Alcotest.bool "no transition across a reset" true
    (Bcg.find_node bcg ~x:3 ~y:7 = None)

let () =
  Alcotest.run "profiler"
    [
      ( "stream",
        [
          tc "first dispatch" `Quick test_first_dispatch_creates_nothing;
          tc "nodes from stream" `Quick test_nodes_from_stream;
          tc "inline cache" `Quick test_inline_cache_predictions;
          tc "signals counted" `Quick test_signals_counted;
        ] );
      ( "resync",
        [
          tc "resync context" `Quick test_resync;
          tc "resync unknown pair" `Quick test_resync_unknown_context;
          tc "reset" `Quick test_reset;
        ] );
    ]
