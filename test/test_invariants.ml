(* The runtime invariant checks (Tracegen.Invariants) and the engine's
   debug_checks wiring:

   - a healthy run over every registered workload reports zero
     violations;
   - the sweeps are transparent (same result, same instruction count);
   - each seeded corruption of the BCG or the trace cache fires its
     TL-coded check. *)

module Engine = Tracegen.Engine
module Bcg = Tracegen.Bcg
module Trace_cache = Tracegen.Trace_cache
module Invariants = Tracegen.Invariants
module Config = Tracegen.Config
module Events = Tracegen.Events
module Diag = Analysis.Diag

let tc = Alcotest.test_case
let check = Alcotest.check

let codes diags = List.map (fun d -> d.Diag.code) diags

let has_code c diags = List.mem c (codes diags)

let debug_config = Config.make ~debug_checks:true ()

(* --------------------------------------------------------------- *)
(* healthy runs                                                      *)
(* --------------------------------------------------------------- *)

(* The acceptance property: the engine with debug_checks on reports zero
   violations across the whole workload registry, and a final end-of-run
   sweep agrees. *)
let test_workloads_zero_violations () =
  List.iter
    (fun w ->
      let name = w.Workloads.Workload.name in
      let layout =
        Cfg.Layout.build (Workloads.Workload.build_default w)
      in
      let r = Engine.run ~config:debug_config layout in
      let engine = r.Engine.engine in
      check Alcotest.int
        (Printf.sprintf "%s: zero violations during the run" name)
        0
        (Engine.invariant_violations engine);
      let final =
        Invariants.check_all ~context:name debug_config
          ~bcg:(Tracegen.Profiler.bcg (Engine.profiler engine))
          ~cache:(Engine.cache engine)
      in
      List.iter
        (fun d ->
          Alcotest.failf "%s: unexpected finding %s" name (Diag.to_string d))
        final)
    Workloads.Registry.all

let test_debug_checks_transparent () =
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:2_000) in
  let plain = Engine.run layout in
  let checked = Engine.run ~config:debug_config layout in
  check Alcotest.bool "same outcome" true
    (plain.Engine.vm_result.Vm.Interp.outcome
    = checked.Engine.vm_result.Vm.Interp.outcome);
  check Alcotest.int "same instruction count"
    plain.Engine.vm_result.Vm.Interp.instructions
    checked.Engine.vm_result.Vm.Interp.instructions

(* a healthy run with the event stream live publishes no
   invariant_violation events *)
let test_no_violation_events () =
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:2_000) in
  let events = Events.create () in
  let violations = ref 0 in
  let _sub =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Invariant_violation _ -> incr violations
        | _ -> ())
  in
  ignore (Engine.run ~config:debug_config ~events layout);
  check Alcotest.int "no invariant_violation events" 0 !violations

(* --------------------------------------------------------------- *)
(* seeded corruptions                                                *)
(* --------------------------------------------------------------- *)

(* a warmed engine whose BCG has nodes with edges to corrupt *)
let warm_engine () =
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:1_000) in
  let r = Engine.run layout in
  let engine = r.Engine.engine in
  (layout, engine, Tracegen.Profiler.bcg (Engine.profiler engine))

let find_node_with_edge bcg =
  let found = ref None in
  Bcg.iter_nodes bcg (fun n ->
      if !found = None && n.Bcg.edges <> [] then found := Some n);
  match !found with
  | Some n -> n
  | None -> Alcotest.fail "warm BCG has no node with edges"

let test_corrupt_edge_weight_fires_tl204 () =
  let _, _, bcg = warm_engine () in
  check Alcotest.bool "healthy first" false
    (Diag.has_errors (Invariants.check_bcg bcg));
  let n = find_node_with_edge bcg in
  let e = List.hd n.Bcg.edges in
  let saved = e.Bcg.weight in
  e.Bcg.weight <- -5;
  check Alcotest.bool "negative weight fires TL204" true
    (has_code "TL204" (Invariants.check_bcg bcg));
  e.Bcg.weight <- Tracegen.(Config.counter_max Config.default) + 1;
  check Alcotest.bool "oversized weight fires TL204" true
    (has_code "TL204" (Invariants.check_bcg bcg));
  e.Bcg.weight <- saved

let test_corrupt_best_fires_tl205 () =
  let _, _, bcg = warm_engine () in
  let n = find_node_with_edge bcg in
  let saved = n.Bcg.best in
  n.Bcg.best <- None;
  check Alcotest.bool "edges without a best fires TL205" true
    (has_code "TL205" (Invariants.check_node bcg n));
  n.Bcg.best <- saved

let test_corrupt_decay_bookkeeping_fires_tl206 () =
  let _, _, bcg = warm_engine () in
  let n = find_node_with_edge bcg in
  let saved = n.Bcg.since_decay in
  n.Bcg.since_decay <- (Tracegen.Config.decay_period Tracegen.Config.default) + 7;
  check Alcotest.bool "since_decay out of range fires TL206" true
    (has_code "TL206" (Invariants.check_node bcg n));
  n.Bcg.since_decay <- saved

(* trace cache corruptions: install traces whose recorded completion
   probability or length violates the construction guarantees *)
let tiny_layout () =
  let w = Workloads.Compress.workload in
  Cfg.Layout.build (w.Workloads.Workload.build ~size:500)

let test_bad_trace_prob_fires_tl201 () =
  let layout = tiny_layout () in
  let cache = Trace_cache.create layout in
  ignore (Trace_cache.install cache ~first:0 ~blocks:[| 1; 2; 3 |] ~prob:1.5);
  let diags = Invariants.check_cache Config.default cache in
  check Alcotest.bool "prob > 1 fires TL201" true (has_code "TL201" diags);
  let cache2 = Trace_cache.create layout in
  ignore (Trace_cache.install cache2 ~first:0 ~blocks:[| 1; 2; 3 |] ~prob:0.5);
  let diags2 = Invariants.check_cache Config.default cache2 in
  check Alcotest.bool "prob below threshold fires TL201" true
    (has_code "TL201" diags2)

let test_bad_trace_length_fires_tl209 () =
  let layout = tiny_layout () in
  let cache = Trace_cache.create layout in
  let too_long =
    Array.init
      ((Tracegen.Config.max_trace_blocks Tracegen.Config.default) + 1)
      (fun k -> (k + 1) mod layout.Cfg.Layout.n_blocks)
  in
  ignore (Trace_cache.install cache ~first:0 ~blocks:too_long ~prob:1.0);
  let diags = Invariants.check_cache Config.default cache in
  check Alcotest.bool "overlong trace fires TL209" true
    (has_code "TL209" diags);
  (* a single-block trace violates the minimum *)
  let cache2 = Trace_cache.create layout in
  ignore (Trace_cache.install cache2 ~first:0 ~blocks:[| 1 |] ~prob:1.0);
  check Alcotest.bool "short trace fires TL209" true
    (has_code "TL209" (Invariants.check_cache Config.default cache2))

let test_unrolled_transitions_fire_tl203 () =
  let layout = tiny_layout () in
  let cache = Trace_cache.create layout in
  (* the transition 1->2 appears three times: a loop unrolled twice *)
  ignore
    (Trace_cache.install cache ~first:0
       ~blocks:[| 1; 2; 1; 2; 1; 2 |] ~prob:1.0);
  check Alcotest.bool "thrice-repeated transition fires TL203" true
    (has_code "TL203" (Invariants.check_cache Config.default cache))

(* every corruption finding is error severity and renders with its code *)
let test_findings_render () =
  let layout = tiny_layout () in
  let cache = Trace_cache.create layout in
  ignore (Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:2.0);
  let diags = Invariants.check_cache ~context:"seeded" Config.default cache in
  check Alcotest.bool "errors" true (Diag.has_errors diags);
  List.iter
    (fun d ->
      let s = Diag.to_string d in
      check Alcotest.bool "rendering carries the code" true
        (String.length s >= 5
        && String.sub s 0 6 = "seeded"
        &&
        let rec contains i =
          i + 5 <= String.length s
          && (String.sub s i 5 = d.Diag.code || contains (i + 1))
        in
        contains 0))
    diags

let () =
  Alcotest.run "invariants"
    [
      ( "healthy",
        [
          tc "workload registry, zero violations" `Slow
            test_workloads_zero_violations;
          tc "debug checks transparent" `Quick test_debug_checks_transparent;
          tc "no violation events" `Quick test_no_violation_events;
        ] );
      ( "seeded",
        [
          tc "edge weight -> TL204" `Quick test_corrupt_edge_weight_fires_tl204;
          tc "best cache -> TL205" `Quick test_corrupt_best_fires_tl205;
          tc "decay bookkeeping -> TL206" `Quick
            test_corrupt_decay_bookkeeping_fires_tl206;
          tc "trace prob -> TL201" `Quick test_bad_trace_prob_fires_tl201;
          tc "trace length -> TL209" `Quick test_bad_trace_length_fires_tl209;
          tc "loop unrolling -> TL203" `Quick
            test_unrolled_transitions_fire_tl203;
          tc "findings render" `Quick test_findings_render;
        ] );
    ]
