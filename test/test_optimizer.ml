(* The trace optimizer: folding, forwarding, dead stores, and — most
   importantly — semantic equivalence of optimized straight-line code,
   checked against a reference evaluator on random sequences. *)

module Instr = Bytecode.Instr
module Opt = Tracegen.Trace_optimizer

let tc = Alcotest.test_case
let check = Alcotest.check

let code_t =
  Alcotest.testable
    (fun ppf a ->
      Format.pp_print_string ppf
        (String.concat "; " (Array.to_list (Array.map Instr.to_string a))))
    ( = )

let test_constant_folding () =
  let r =
    Opt.optimize_code [| Instr.Iconst 2; Instr.Iconst 3; Instr.Iadd;
                         Instr.Istore 0 |]
  in
  check code_t "2+3 folds" [| Instr.Iconst 5; Instr.Istore 0 |] r.Opt.optimized;
  check Alcotest.bool "folds counted" true (r.Opt.folded > 0)

let test_folding_cascades () =
  (* ((2+3)*4) folds all the way down *)
  let r =
    Opt.optimize_code
      [| Instr.Iconst 2; Instr.Iconst 3; Instr.Iadd; Instr.Iconst 4;
         Instr.Imul; Instr.Istore 0 |]
  in
  check code_t "cascade" [| Instr.Iconst 20; Instr.Istore 0 |] r.Opt.optimized

let test_div_by_zero_not_folded () =
  let r = Opt.optimize_code [| Instr.Iconst 1; Instr.Iconst 0; Instr.Idiv |] in
  check code_t "1/0 kept"
    [| Instr.Iconst 1; Instr.Iconst 0; Instr.Idiv |]
    r.Opt.optimized

let test_store_load_forwarding () =
  let r =
    Opt.optimize_code
      [| Instr.Iconst 7; Instr.Istore 0; Instr.Iload 0; Instr.Iconst 1;
         Instr.Iadd; Instr.Istore 1 |]
  in
  (* the load becomes the constant, which then folds with the add *)
  check Alcotest.bool "forwarded" true (r.Opt.forwarded > 0);
  check code_t "result"
    [| Instr.Iconst 7; Instr.Istore 0; Instr.Iconst 8; Instr.Istore 1 |]
    r.Opt.optimized

let test_dead_store () =
  let r =
    Opt.optimize_code
      [| Instr.Iconst 1; Instr.Istore 0; Instr.Iconst 2; Instr.Istore 0;
         Instr.Iload 0; Instr.Istore 1 |]
  in
  check Alcotest.int "one dead store" 1 r.Opt.dead_stores;
  (* istore 0 of the 1 disappears along with... the iconst 1 push must be
     compensated; our conservative scheme keeps the push and drops only
     the store?  No: dropping just the store would corrupt the stack.  The
     optimizer must keep stack balance; verify by reference execution
     below.  Here we only check the *final* store of 2 survives. *)
  check Alcotest.bool "final value stored" true
    (Array.exists (fun i -> i = Instr.Istore 1) r.Opt.optimized)

let test_last_store_never_dead () =
  let r = Opt.optimize_code [| Instr.Iconst 1; Instr.Istore 0 |] in
  check Alcotest.int "live-out store kept" 0 r.Opt.dead_stores;
  check code_t "unchanged" [| Instr.Iconst 1; Instr.Istore 0 |] r.Opt.optimized

let test_push_pop_cancel () =
  let r = Opt.optimize_code [| Instr.Iconst 9; Instr.Pop; Instr.Iconst 1 |] in
  check code_t "cancelled" [| Instr.Iconst 1 |] r.Opt.optimized

let test_nop_and_goto_dropped () =
  let r = Opt.optimize_code [| Instr.Nop; Instr.Iconst 1; Instr.Goto 0 |] in
  check code_t "glue dropped" [| Instr.Iconst 1 |] r.Opt.optimized

let test_call_barrier () =
  (* knowledge about locals must not cross a call *)
  let r =
    Opt.optimize_code
      [| Instr.Iconst 7; Instr.Istore 0; Instr.Invokestatic 0; Instr.Iload 0 |]
  in
  check Alcotest.bool "load after call not forwarded" true
    (Array.exists (fun i -> i = Instr.Iload 0) r.Opt.optimized)

let test_float_folding () =
  let r =
    Opt.optimize_code [| Instr.Fconst 1.5; Instr.Fconst 2.5; Instr.Fadd |]
  in
  check code_t "floats fold" [| Instr.Fconst 4.0 |] r.Opt.optimized

let test_covered_suffix_blocks_trailing_dse () =
  (* regression: a trailing store followed by a potentially trapping
     instruction inside a handler-covered region is observable on the
     exceptional edge (the same-frame handler sees the slot), so the
     dead-at-normal-exit license alone must not rewrite it *)
  let code =
    [| Instr.Iconst 1; Instr.Istore 0; Instr.Iload 1; Instr.Iload 2;
       Instr.Idiv; Instr.Istore 1 |]
  in
  let dead _ = false in
  let r_plain = Opt.optimize_code ~live_out:dead code in
  check Alcotest.int "uncovered suffix: stores rewritten" 2
    r_plain.Opt.trailing_dead_stores;
  let r_cov =
    Opt.optimize_code ~live_out:dead ~covered_from:(fun _ -> true) code
  in
  check Alcotest.int "covered suffix: stores kept" 0
    r_cov.Opt.trailing_dead_stores;
  check Alcotest.bool "store 0 survives" true
    (Array.exists (fun i -> i = Instr.Istore 0) r_cov.Opt.optimized)

(* ------------------------------------------------------------------ *)
(* Reference evaluator for straight-line code: stacks and locals only. *)
(* ------------------------------------------------------------------ *)

type rv = Ri of int | Rf of float

let reference_eval (code : Instr.t array) ~n_locals =
  let stack = ref [] in
  let locals = Array.make n_locals (Ri 0) in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> failwith "underflow"
  in
  let popi () = match pop () with Ri n -> n | Rf _ -> failwith "type" in
  let popf () = match pop () with Rf f -> f | Ri _ -> failwith "type" in
  Array.iter
    (fun ins ->
      match ins with
      | Instr.Iconst n -> push (Ri n)
      | Instr.Fconst f -> push (Rf f)
      | Instr.Iload s -> push locals.(s)
      | Instr.Fload s -> push locals.(s)
      | Instr.Istore s | Instr.Fstore s -> locals.(s) <- pop ()
      | Instr.Iinc (s, d) -> (
          match locals.(s) with
          | Ri n -> locals.(s) <- Ri (n + d)
          | Rf _ -> failwith "type")
      | Instr.Dup ->
          let v = pop () in
          push v;
          push v
      | Instr.Pop -> ignore (pop ())
      | Instr.Swap ->
          let a = pop () in
          let b = pop () in
          push a;
          push b
      | Instr.Iadd ->
          let b = popi () in
          push (Ri (popi () + b))
      | Instr.Isub ->
          let b = popi () in
          push (Ri (popi () - b))
      | Instr.Imul ->
          let b = popi () in
          push (Ri (popi () * b))
      | Instr.Iand ->
          let b = popi () in
          push (Ri (popi () land b))
      | Instr.Ior ->
          let b = popi () in
          push (Ri (popi () lor b))
      | Instr.Ixor ->
          let b = popi () in
          push (Ri (popi () lxor b))
      | Instr.Ineg -> push (Ri (-popi ()))
      | Instr.Fadd ->
          let b = popf () in
          push (Rf (popf () +. b))
      | Instr.Fmul ->
          let b = popf () in
          push (Rf (popf () *. b))
      | Instr.Nop -> ()
      | _ -> failwith "unsupported in reference evaluator")
    code;
  (!stack, Array.to_list locals)

(* random straight-line programs over ints, locals 0..3 *)
let arb_straightline =
  let open QCheck.Gen in
  let instr =
    frequency
      [
        (4, map (fun n -> `Push (Instr.Iconst n)) (int_range (-50) 50));
        (2, map (fun s -> `Push (Instr.Iload s)) (int_range 0 3));
        (* stores need a value on the stack: generator pairs them with a
           preceding const to keep sequences well-formed *)
        (3,
         map2
           (fun n s -> `Pair (Instr.Iconst n, Instr.Istore s))
           (int_range (-50) 50) (int_range 0 3));
        (2, return (`Op Instr.Iadd));
        (1, return (`Op Instr.Isub));
        (1, return (`Op Instr.Imul));
        (1, return (`Op Instr.Iand));
        (1, return (`Op Instr.Ixor));
        (1, return `Dup_unit);
        (1, return `Pop_unit);
        (1, map2 (fun s d -> `One (Instr.Iinc (s, d))) (int_range 0 3) (int_range (-3) 3));
      ]
  in
  (* assemble maintaining a conservative stack depth so the sequence never
     underflows *)
  let assemble items =
    let depth = ref 0 in
    let out = ref [] in
    List.iter
      (fun it ->
        match it with
        | `Push i ->
            out := i :: !out;
            incr depth
        | `Pair (a, b) -> out := b :: a :: !out
        | `One i -> out := i :: !out
        | `Op op ->
            if !depth >= 2 then begin
              out := op :: !out;
              decr depth
            end
        | `Dup_unit ->
            if !depth >= 1 then begin
              out := Instr.Dup :: !out;
              incr depth
            end
        | `Pop_unit ->
            if !depth >= 1 then begin
              out := Instr.Pop :: !out;
              decr depth
            end)
      items;
    Array.of_list (List.rev !out)
  in
  QCheck.make
    ~print:(fun a ->
      String.concat "; " (Array.to_list (Array.map Instr.to_string a)))
    QCheck.Gen.(map assemble (list_size (int_range 0 60) instr))

let prop_equivalence =
  QCheck.Test.make ~name:"optimized code is observationally equivalent"
    ~count:300 arb_straightline (fun code ->
      let r = Opt.optimize_code code in
      let s1, l1 = reference_eval code ~n_locals:4 in
      let s2, l2 = reference_eval r.Opt.optimized ~n_locals:4 in
      (* dead-store elimination may leave *different* dead local values
         only for slots that are provably overwritten... our scheme only
         drops stores overwritten before any load with no barrier, so the
         final locals must agree; the stack must agree exactly *)
      s1 = s2 && l1 = l2)

let prop_symbolic_equiv =
  QCheck.Test.make
    ~name:"optimizer output passes the symbolic translation validator"
    ~count:300 arb_straightline (fun code ->
      let r = Opt.optimize_code code in
      Analysis.Equiv.check ~trace_id:0 ~original:code
        ~optimized:r.Opt.optimized ()
      = [])

let prop_never_longer =
  QCheck.Test.make ~name:"optimization never grows code" ~count:300
    arb_straightline (fun code ->
      let r = Opt.optimize_code code in
      Array.length r.Opt.optimized <= Array.length code)

let prop_idempotent =
  QCheck.Test.make ~name:"optimization is idempotent-ish (second pass finds no folds)"
    ~count:200 arb_straightline (fun code ->
      let r1 = Opt.optimize_code code in
      let r2 = Opt.optimize_code r1.Opt.optimized in
      Array.length r2.Opt.optimized <= Array.length r1.Opt.optimized)

(* generator sanity: random sequences never make the reference evaluator
   fail *)
let prop_generator_well_formed =
  QCheck.Test.make ~name:"generator emits well-formed sequences" ~count:200
    arb_straightline (fun code ->
      ignore (reference_eval code ~n_locals:4);
      true)

let test_on_real_traces () =
  (* optimize every completed trace of a real run; results must parse and
     never grow *)
  let w = Workloads.Compress.workload in
  let layout = Cfg.Layout.build (w.Workloads.Workload.build ~size:2_000) in
  let r = Tracegen.Engine.run layout in
  let checked = ref 0 in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache r.Tracegen.Engine.engine)
    (fun tr ->
      let res = Opt.optimize layout tr in
      incr checked;
      check Alcotest.bool "never longer" true
        (Array.length res.Opt.optimized <= Array.length res.Opt.original);
      check Alcotest.bool "ratio in [0,1]" true
        (Opt.savings_ratio res >= 0.0 && Opt.savings_ratio res <= 1.0));
  check Alcotest.bool "traces were optimized" true (!checked > 0)

let () =
  Alcotest.run "trace_optimizer"
    [
      ( "rewrites",
        [
          tc "constant folding" `Quick test_constant_folding;
          tc "folding cascades" `Quick test_folding_cascades;
          tc "div by zero kept" `Quick test_div_by_zero_not_folded;
          tc "store/load forwarding" `Quick test_store_load_forwarding;
          tc "dead store" `Quick test_dead_store;
          tc "live-out store kept" `Quick test_last_store_never_dead;
          tc "push/pop cancel" `Quick test_push_pop_cancel;
          tc "glue dropped" `Quick test_nop_and_goto_dropped;
          tc "call barrier" `Quick test_call_barrier;
          tc "float folding" `Quick test_float_folding;
          tc "covered suffix blocks trailing DSE" `Quick
            test_covered_suffix_blocks_trailing_dse;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_generator_well_formed;
          QCheck_alcotest.to_alcotest prop_equivalence;
          QCheck_alcotest.to_alcotest prop_symbolic_equiv;
          QCheck_alcotest.to_alcotest prop_never_longer;
          QCheck_alcotest.to_alcotest prop_idempotent;
        ] );
      ("integration", [ tc "real traces" `Quick test_on_real_traces ]);
    ]
