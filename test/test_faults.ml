(* The fault-injection and self-healing machinery:

   - the fault-schedule DSL (parse errors, determinism, the FT catalogue);
   - the bounded trace cache (remove, LRU eviction, pressure eviction);
   - quarantine (backoff, blacklisting, try_install refusals);
   - the degradation ladder (Health) and BCG node repair (heal_node). *)

module Config = Tracegen.Config
module Bcg = Tracegen.Bcg
module Trace_cache = Tracegen.Trace_cache
module Faults = Tracegen.Faults
module Health = Tracegen.Health
module Events = Tracegen.Events

let tc = Alcotest.test_case
let check = Alcotest.check

let layout =
  lazy
    (let w = Workloads.Compress.workload in
     Cfg.Layout.build (w.Workloads.Workload.build ~size:500))

(* --------------------------------------------------------------- *)
(* DSL                                                               *)
(* --------------------------------------------------------------- *)

let test_parse_good () =
  let f = Faults.create ~seed:1 "corrupt-trace@0.5,fail-install!10,budget=3" in
  check Alcotest.bool "active" true (Faults.is_active f);
  check Alcotest.int "budget" 3 (Faults.budget_left f);
  (* whitespace-separated arms and an empty spec also parse *)
  ignore (Faults.create ~seed:1 "zero-counter@0.1 drop-best!5");
  let idle = Faults.create ~seed:1 "" in
  check Alcotest.bool "empty spec is inactive" false (Faults.is_active idle);
  (* a zero budget disarms the schedule *)
  let spent = Faults.create ~seed:1 "corrupt-trace@1.0,budget=0" in
  check Alcotest.bool "budget=0 is inactive" false (Faults.is_active spent)

let test_parse_bad () =
  let raises spec =
    match Faults.create ~seed:1 spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "spec %S should not parse" spec
  in
  raises "bogus@0.1";
  raises "corrupt-trace@1.5";
  raises "corrupt-trace@x";
  raises "corrupt-trace!-1";
  raises "corrupt-trace";
  raises "budget=-1";
  raises "quota=3"

let test_catalogue () =
  let codes = List.map fst Faults.catalogue in
  List.iter
    (fun c ->
      check Alcotest.bool (c ^ " catalogued") true (List.mem c codes))
    [ "FT001"; "FT002"; "FT003"; "FT004"; "FT005"; "FT006"; "FT007";
      "FT008"; "FT901"; "FT902" ];
  (* kind_name / kind_of_name round-trip, and codes line up *)
  List.iter
    (fun name ->
      match Faults.kind_of_name name with
      | Some k ->
          check Alcotest.string "name round-trips" name (Faults.kind_name k);
          check Alcotest.bool "code catalogued" true
            (List.mem (Faults.code k) codes)
      | None -> Alcotest.failf "kind %S unknown" name)
    [ "corrupt-trace"; "corrupt-instrs"; "zero-counter"; "saturate-counter";
      "drop-best"; "fail-install"; "alloc-pressure"; "guard-flip" ];
  check Alcotest.(option reject) "unknown kind" None
    (Faults.kind_of_name "bogus")

(* a warm BCG + populated cache for the injector to corrupt *)
let warm_targets () =
  let layout = Lazy.force layout in
  let bcg = Bcg.create Config.default ~n_blocks:64 ~on_signal:(fun _ -> ()) in
  for k = 0 to 200 do
    let x = k land 7 and y = (k + 1) land 7 and z = (k + 2) land 7 in
    let ctx = Bcg.visit_node bcg ~x ~y in
    let target = Bcg.visit_node bcg ~x:y ~y:z in
    Bcg.record_successor bcg ~ctx ~target
  done;
  let cache = Trace_cache.create layout in
  for g = 0 to 9 do
    ignore
      (Trace_cache.install cache ~first:g ~blocks:[| g + 1; g + 2 |] ~prob:1.0)
  done;
  (bcg, cache)

let run_schedule ~seed ~ticks spec =
  let bcg, cache = warm_targets () in
  let f = Faults.create ~seed spec in
  let log = ref [] in
  for now = 0 to ticks - 1 do
    let fired = Faults.tick f ~now ~bcg ~cache ~active:None in
    log := List.rev_append fired !log
  done;
  (f, List.rev !log)

let test_determinism () =
  let spec = "corrupt-trace@0.1,zero-counter@0.2,drop-best@0.1,budget=16" in
  let f1, log1 = run_schedule ~seed:7 ~ticks:400 spec in
  let f2, log2 = run_schedule ~seed:7 ~ticks:400 spec in
  check Alcotest.bool "some faults fired" true (Faults.injected f1 > 0);
  check Alcotest.int "same injection count" (Faults.injected f1)
    (Faults.injected f2);
  check
    Alcotest.(list (pair string string))
    "same (code, detail) sequence" log1 log2;
  (* seed 0 is legal (remapped internally, xorshift has no zero state) *)
  let f0, log0 = run_schedule ~seed:0 ~ticks:400 spec in
  let f0', log0' = run_schedule ~seed:0 ~ticks:400 spec in
  check Alcotest.int "seed 0 deterministic too" (Faults.injected f0)
    (Faults.injected f0');
  check Alcotest.(list (pair string string)) "seed 0 same log" log0 log0'

let test_budget_and_one_shot () =
  let _, log = run_schedule ~seed:3 ~ticks:400 "corrupt-trace@1.0,budget=5" in
  check Alcotest.int "budget caps injections" 5 (List.length log);
  (* a one-shot arm fires exactly once, at the first tick >= N *)
  let _, log1 = run_schedule ~seed:3 ~ticks:400 "fail-install!50" in
  check Alcotest.int "one-shot fires once" 1 (List.length log1);
  check Alcotest.string "with its FT code" "FT006" (fst (List.hd log1))

(* --------------------------------------------------------------- *)
(* bounded cache: remove / LRU / pressure                            *)
(* --------------------------------------------------------------- *)

let test_remove_consistency () =
  let layout = Lazy.force layout in
  let cache = Trace_cache.create layout in
  let t0 = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  let _t1 = Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0 in
  let _t2 = Trace_cache.install cache ~first:6 ~blocks:[| 7; 8 |] ~prob:1.0 in
  check Alcotest.int "three live" 3 (Trace_cache.n_live cache);
  check Alcotest.int "six live blocks" 6 (Trace_cache.live_blocks cache);
  (match Trace_cache.remove cache ~first:0 ~head:1 with
  | Some tr -> check Alcotest.bool "the bound trace" true (tr == t0)
  | None -> Alcotest.fail "remove returned None for a bound entry");
  check Alcotest.int "two live after remove" 2 (Trace_cache.n_live cache);
  check Alcotest.int "four live blocks" 4 (Trace_cache.live_blocks cache);
  check Alcotest.(option reject) "entry unbound" None
    (Trace_cache.lookup cache ~prev:0 ~cur:1);
  check Alcotest.(option reject) "idempotent" None
    (Trace_cache.remove cache ~first:0 ~head:1);
  (* the removed trace left the hash-cons table: an identical
     reconstruction builds a fresh trace, not the condemned one *)
  let t0' = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  check Alcotest.bool "reinstall is a fresh trace" true (not (t0' == t0));
  check Alcotest.int "three live again" 3 (Trace_cache.n_live cache)

let test_lru_eviction () =
  let layout = Lazy.force layout in
  let events = Events.create () in
  let evicted = ref [] in
  let _sub =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Trace_evicted { first; head; _ } ->
            evicted := (first, head) :: !evicted
        | _ -> ())
  in
  let cache = Trace_cache.create ~events ~max_traces:2 layout in
  ignore (Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0);
  ignore (Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0);
  (* touch (0,1) so (3,4) is the least recently dispatched *)
  ignore (Trace_cache.lookup cache ~prev:0 ~cur:1);
  ignore (Trace_cache.install cache ~first:6 ~blocks:[| 7; 8 |] ~prob:1.0);
  check Alcotest.int "cap holds" 2 (Trace_cache.n_live cache);
  check Alcotest.int "one eviction" 1 (Trace_cache.n_evicted cache);
  check Alcotest.(list (pair int int)) "LRU victim" [ (3, 4) ] !evicted;
  check Alcotest.bool "touched entry survives" true
    (Trace_cache.lookup cache ~prev:0 ~cur:1 <> None);
  check Alcotest.bool "new entry live" true
    (Trace_cache.lookup cache ~prev:6 ~cur:7 <> None)

let test_block_cap_and_pressure () =
  let layout = Lazy.force layout in
  let cache = Trace_cache.create ~max_blocks:5 layout in
  ignore (Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0);
  ignore (Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0);
  (* a third 2-block trace pushes live_blocks to 6 > 5: one eviction *)
  ignore (Trace_cache.install cache ~first:6 ~blocks:[| 7; 8 |] ~prob:1.0);
  check Alcotest.bool "block cap holds" true
    (Trace_cache.live_blocks cache <= 5);
  check Alcotest.int "one eviction" 1 (Trace_cache.n_evicted cache);
  (* pressure eviction: down to one live trace *)
  let n = Trace_cache.pressure_evict cache ~down_to:1 in
  check Alcotest.int "evicted down to one" 1 (Trace_cache.n_live cache);
  check Alcotest.int "reported count" n
    (Trace_cache.n_evicted cache - 1);
  (* invalid caps are rejected at construction *)
  (match Trace_cache.create ~max_traces:(-1) layout with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative max_traces should be rejected")

(* --------------------------------------------------------------- *)
(* quarantine                                                        *)
(* --------------------------------------------------------------- *)

let test_quarantine_backoff () =
  let layout = Lazy.force layout in
  let cache =
    Trace_cache.create ~heal_max_rebuilds:2 ~heal_backoff:100 layout
  in
  let t0 = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  (match Trace_cache.quarantine cache ~first:0 ~head:1 ~code:"TL210" with
  | Some tr -> check Alcotest.bool "condemned trace removed" true (tr == t0)
  | None -> Alcotest.fail "quarantine returned None for a bound entry");
  check Alcotest.int "unbound" 0 (Trace_cache.n_live cache);
  check Alcotest.bool "quarantined now" true
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  check Alcotest.int "one attempt" 1
    (Trace_cache.quarantine_attempts cache ~first:0 ~head:1);
  (* try_install refuses while the backoff holds *)
  check Alcotest.bool "try_install refused" true
    (Trace_cache.try_install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0
    = None);
  check Alcotest.int "refusal counted" 1
    (Trace_cache.n_quarantine_rejects cache);
  (* first backoff window: heal_backoff * 2^0 = 100 clock units *)
  Trace_cache.set_clock cache 99;
  check Alcotest.bool "still quarantined at 99" true
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  Trace_cache.set_clock cache 101;
  check Alcotest.bool "released at 101" false
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  check Alcotest.bool "rebuild allowed" true
    (Trace_cache.try_install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0
    <> None);
  (* second condemnation doubles the backoff (until 101 + 200) *)
  ignore (Trace_cache.quarantine cache ~first:0 ~head:1 ~code:"TL210");
  Trace_cache.set_clock cache 300;
  check Alcotest.bool "still quarantined at 300" true
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  Trace_cache.set_clock cache 302;
  check Alcotest.bool "released at 302" false
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  (* third condemnation exceeds heal_max_rebuilds = 2: permanent *)
  ignore (Trace_cache.quarantine cache ~first:0 ~head:1 ~code:"TL210");
  check Alcotest.int "blacklisted" 1 (Trace_cache.n_blacklisted cache);
  Trace_cache.set_clock cache 1_000_000_000;
  check Alcotest.bool "blacklist never expires" true
    (Trace_cache.is_quarantined cache ~first:0 ~head:1);
  check Alcotest.int "three condemnations" 3 (Trace_cache.n_quarantines cache)

let test_inject_install_failure () =
  let layout = Lazy.force layout in
  let cache = Trace_cache.create layout in
  Trace_cache.inject_install_failure cache;
  check Alcotest.bool "armed failure consumed" true
    (Trace_cache.try_install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0
    = None);
  check Alcotest.int "counted" 1 (Trace_cache.n_failed_installs cache);
  check Alcotest.bool "next install succeeds" true
    (Trace_cache.try_install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0
    <> None)

(* --------------------------------------------------------------- *)
(* the degradation ladder                                            *)
(* --------------------------------------------------------------- *)

let level =
  Alcotest.testable
    (fun ppf l -> Format.pp_print_string ppf (Health.level_to_string l))
    ( = )

let test_health_ladder () =
  let h = Health.create ~demote_after:2 ~recover_after:3 in
  check level "starts at full tracing" Health.Full_tracing (Health.level h);
  check Alcotest.bool "first strike stays" true (Health.strike h = Health.Stay);
  check Alcotest.bool "second strike demotes" true
    (Health.strike h
    = Health.Changed (Health.Full_tracing, Health.Profiling_only));
  check Alcotest.bool "degraded" true (Health.is_degraded h);
  (* two more strikes reach the floor *)
  ignore (Health.strike h);
  ignore (Health.strike h);
  check level "at interp-only" Health.Interp_only (Health.level h);
  (* strikes at the floor do not demote further *)
  ignore (Health.strike h);
  ignore (Health.strike h);
  check level "still interp-only" Health.Interp_only (Health.level h);
  check Alcotest.int "two demotions" 2 (Health.demotions h);
  (* recover_after clean dispatches climb one level at a time *)
  ignore (Health.clean_dispatch h);
  ignore (Health.clean_dispatch h);
  check level "not yet" Health.Interp_only (Health.level h);
  check Alcotest.bool "third clean promotes" true
    (Health.clean_dispatch h
    = Health.Changed (Health.Interp_only, Health.Profiling_only));
  for _ = 1 to 3 do
    ignore (Health.clean_dispatch h)
  done;
  check level "back to full tracing" Health.Full_tracing (Health.level h);
  check Alcotest.int "two promotions" 2 (Health.promotions h)

let test_health_forgiveness () =
  let h = Health.create ~demote_after:2 ~recover_after:3 in
  (* one strike, then a clean window: the stale strike is forgiven, so
     isolated faults never accumulate into a demotion *)
  check Alcotest.bool "stay" true (Health.strike h = Health.Stay);
  check Alcotest.int "one strike" 1 (Health.strikes h);
  for _ = 1 to 3 do
    ignore (Health.clean_dispatch h)
  done;
  check Alcotest.int "forgiven" 0 (Health.strikes h);
  check Alcotest.bool "a much later strike stays again" true
    (Health.strike h = Health.Stay);
  check level "never left full tracing" Health.Full_tracing (Health.level h);
  (* constructor rejects nonsense windows *)
  match Health.create ~demote_after:0 ~recover_after:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "demote_after 0 should be rejected"

(* --------------------------------------------------------------- *)
(* BCG node repair                                                   *)
(* --------------------------------------------------------------- *)

let test_heal_node () =
  let bcg, _ = warm_targets () in
  let node =
    let found = ref None in
    Bcg.iter_nodes bcg (fun n ->
        if !found = None && n.Bcg.edges <> [] then found := Some n);
    match !found with
    | Some n -> n
    | None -> Alcotest.fail "warm BCG has no node with edges"
  in
  let e = List.hd node.Bcg.edges in
  e.Bcg.weight <- -5;
  check Alcotest.bool "heal repairs" true (Bcg.heal_node bcg node);
  check Alcotest.bool "weight back in range" true
    (e.Bcg.weight >= 1 && e.Bcg.weight <= (Config.counter_max Config.default));
  check Alcotest.bool "clean node untouched" false (Bcg.heal_node bcg node);
  e.Bcg.weight <- (2 * (Config.counter_max Config.default)) + 1;
  check Alcotest.bool "saturation repaired too" true (Bcg.heal_node bcg node);
  check Alcotest.bool "clamped to counter_max" true
    (e.Bcg.weight <= (Config.counter_max Config.default))

let () =
  Alcotest.run "faults"
    [
      ( "dsl",
        [
          tc "good specs parse" `Quick test_parse_good;
          tc "bad specs raise" `Quick test_parse_bad;
          tc "FT catalogue" `Quick test_catalogue;
          tc "deterministic per seed" `Quick test_determinism;
          tc "budget and one-shot arms" `Quick test_budget_and_one_shot;
        ] );
      ( "bounded cache",
        [
          tc "remove keeps n_live consistent" `Quick test_remove_consistency;
          tc "LRU eviction under max_traces" `Quick test_lru_eviction;
          tc "block cap and pressure eviction" `Quick
            test_block_cap_and_pressure;
        ] );
      ( "quarantine",
        [
          tc "backoff and blacklist" `Quick test_quarantine_backoff;
          tc "injected install failure" `Quick test_inject_install_failure;
        ] );
      ( "health",
        [
          tc "ladder transitions" `Quick test_health_ladder;
          tc "forgiveness window" `Quick test_health_forgiveness;
        ] );
      ("healing", [ tc "heal_node clamps and rechecks" `Quick test_heal_node ]);
    ]
