(* The warm-start snapshot format (Persist) and footprint-aware eviction:

   - encode/decode round trips bit-identically on every workload;
   - a freshly restored engine re-snapshots to the same bytes;
   - truncated / bit-flipped / version-bumped / wrong-layout snapshots
     are rejected with the right typed error, and rejection never
     half-loads;
   - a warm-started run is bit-identical to a cold one (the pure-overlay
     promise across process boundaries);
   - the footprint-aware policy keeps a hot-but-large trace over a
     cold-but-small one where LRU does the opposite, and the eviction
     reason variant is threaded through to the event stream. *)

module Config = Tracegen.Config
module Engine = Tracegen.Engine
module Events = Tracegen.Events
module Persist = Tracegen.Persist
module Trace_cache = Tracegen.Trace_cache
module Stats = Tracegen.Stats

let tc = Alcotest.test_case
let check = Alcotest.check

let layout_of (w : Workloads.Workload.t) =
  Cfg.Layout.build (Workloads.Workload.build_default w)

let compress_layout =
  lazy (Cfg.Layout.build (Workloads.Compress.workload.Workloads.Workload.build ~size:500))

(* run a workload cold and return (its engine's snapshot, the layout) *)
let snapshot_of w =
  let layout = layout_of w in
  let r = Engine.run layout in
  (Engine.snapshot r.Engine.engine, layout)

(* --------------------------------------------------------------- *)
(* round trips                                                       *)
(* --------------------------------------------------------------- *)

let test_round_trip_all_workloads () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.name in
      let data, layout = snapshot_of w in
      match Persist.decode ~layout data with
      | Error e ->
          Alcotest.failf "%s: own snapshot rejected: %s" name
            (Persist.error_to_string e)
      | Ok snap ->
          check Alcotest.string (name ^ ": encode(decode(x)) = x") data
            (Persist.encode ~layout snap))
    Workloads.Registry.all

let test_restore_resnapshot_identity () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.name in
      let data, layout = snapshot_of w in
      let engine = Engine.create layout in
      (match Engine.restore engine data with
      | Error e ->
          Alcotest.failf "%s: restore failed: %s" name
            (Persist.error_to_string e)
      | Ok _ -> ());
      check Alcotest.string
        (name ^ ": restored engine re-snapshots identically") data
        (Engine.snapshot engine))
    Workloads.Registry.all

let test_restore_info_counts () =
  let data, layout = snapshot_of Workloads.Compress.workload in
  let engine = Engine.create layout in
  match Engine.restore engine data with
  | Error e -> Alcotest.failf "restore failed: %s" (Persist.error_to_string e)
  | Ok info ->
      check Alcotest.int "restored traces = live traces"
        info.Engine.restored_traces
        (Trace_cache.n_live (Engine.cache engine));
      check Alcotest.int "restored count on the cache"
        info.Engine.restored_traces
        (Trace_cache.n_restored (Engine.cache engine));
      check Alcotest.bool "some traces restored" true
        (info.Engine.restored_traces > 0);
      check Alcotest.bool "some BCG nodes restored" true
        (info.Engine.restored_bcg_nodes > 0)

(* --------------------------------------------------------------- *)
(* rejection                                                         *)
(* --------------------------------------------------------------- *)

let flip data i =
  let b = Bytes.of_string data in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x42));
  Bytes.to_string b

let expect name layout data pred =
  match Persist.decode ~layout data with
  | Ok _ -> Alcotest.failf "%s: decode accepted a bad snapshot" name
  | Error e ->
      check Alcotest.bool
        (name ^ ": rejected as " ^ Persist.error_to_string e)
        true (pred e)

let test_rejections () =
  let data, layout = snapshot_of Workloads.Compress.workload in
  (* shorter than the header *)
  expect "short" layout (String.sub data 0 30) (function
    | Persist.Truncated { expected = 52; got = 30 } -> true
    | _ -> false);
  (* header intact, payload cut *)
  expect "cut payload" layout (String.sub data 0 (String.length data - 7))
    (function Persist.Truncated _ -> true | _ -> false);
  (* magic damaged *)
  expect "bad magic" layout (flip data 0) (function
    | Persist.Bad_magic -> true
    | _ -> false);
  (* version bumped *)
  expect "version bump" layout (flip data 8) (function
    | Persist.Version_mismatch { expected; got } ->
        expected = Persist.snapshot_version && got <> expected
    | _ -> false);
  (* payload bit flip: checksum catches it *)
  expect "payload flip" layout (flip data 60) (function
    | Persist.Checksum_mismatch -> true
    | _ -> false);
  (* trailing garbage after the declared payload *)
  expect "trailing bytes" layout (data ^ "x") (function
    | Persist.Malformed _ -> true
    | _ -> false);
  (* a snapshot of one program cannot load over another *)
  let other = layout_of Workloads.Raytrace.workload in
  expect "wrong layout" other data (function
    | Persist.Layout_mismatch _ -> true
    | _ -> false)

let test_rejection_never_half_loads () =
  let data, layout = snapshot_of Workloads.Compress.workload in
  let engine = Engine.create layout in
  (match Engine.restore engine (flip data 60) with
  | Ok _ -> Alcotest.fail "corrupted snapshot accepted"
  | Error Persist.Checksum_mismatch -> ()
  | Error e ->
      Alcotest.failf "wrong error: %s" (Persist.error_to_string e));
  check Alcotest.int "nothing installed" 0
    (Trace_cache.n_live (Engine.cache engine));
  check Alcotest.int "rejection counted" 1 (Engine.snapshots_rejected engine);
  (* the engine is still fresh, so a good snapshot loads afterwards *)
  match Engine.restore engine data with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "good snapshot rejected after a bad one: %s"
        (Persist.error_to_string e)

let test_restore_events () =
  let data, layout = snapshot_of Workloads.Compress.workload in
  let events = Events.create () in
  let restored = ref [] in
  let rejected = ref [] in
  let _sub =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Cache_restored { traces; _ } -> restored := traces :: !restored
        | Events.Snapshot_rejected { reason } -> rejected := reason :: !rejected
        | _ -> ())
  in
  let engine = Engine.create ~events layout in
  (match Engine.restore engine (String.sub data 0 10) with
  | Ok _ -> Alcotest.fail "truncated snapshot accepted"
  | Error _ -> ());
  (match Engine.restore engine data with
  | Ok info ->
      check (Alcotest.list Alcotest.int) "cache_restored event"
        [ info.Engine.restored_traces ] !restored
  | Error e -> Alcotest.failf "restore failed: %s" (Persist.error_to_string e));
  check Alcotest.int "snapshot_rejected event" 1 (List.length !rejected)

(* --------------------------------------------------------------- *)
(* warm = cold                                                       *)
(* --------------------------------------------------------------- *)

let test_warm_equals_cold () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.name in
      let layout = layout_of w in
      let cold = Engine.run layout in
      let data = Engine.snapshot cold.Engine.engine in
      let engine = Engine.create layout in
      (match Engine.restore engine data with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "%s: restore failed: %s" name
            (Persist.error_to_string e));
      let warm = Engine.drive engine in
      check Alcotest.bool (name ^ ": warm result = cold result") true
        (Harness.Chaos.fingerprint warm.Engine.vm_result
        = Harness.Chaos.fingerprint cold.Engine.vm_result);
      check Alcotest.int (name ^ ": same instruction count")
        cold.Engine.run_stats.Stats.instructions
        warm.Engine.run_stats.Stats.instructions)
    [ Workloads.Compress.workload; Workloads.Raytrace.workload ]

(* --------------------------------------------------------------- *)
(* footprint-aware eviction                                          *)
(* --------------------------------------------------------------- *)

(* Build the discriminating population: entry 0 holds a six-block trace
   made hot by [touches] lookups; entry 10 holds a one-block trace that
   was never dispatched.  LRU sees only recency (the small trace was
   bound last, so the big one is oldest); the footprint policy sees
   bytes per use. *)
let hot_large_cold_small cache touches =
  let hot = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2; 3; 4; 5; 6 |]
      ~prob:1.0 in
  for _ = 1 to touches do
    ignore (Trace_cache.lookup cache ~prev:0 ~cur:1)
  done;
  let cold = Trace_cache.install cache ~first:10 ~blocks:[| 11 |] ~prob:1.0 in
  (hot, cold)

let survivors cache =
  let firsts = ref [] in
  Trace_cache.iter cache (fun tr -> firsts := tr.Tracegen.Trace.first :: !firsts);
  List.sort compare !firsts

let test_footprint_keeps_hot_large () =
  let layout = Lazy.force compress_layout in
  let cache =
    Trace_cache.create ~eviction_policy:Config.Cache.Footprint_aware layout
  in
  let hot, cold = hot_large_cold_small cache 100 in
  (* the premise the policy decides on: the cold trace costs more bytes
     per use even though it is smaller *)
  let bytes tr = Tracegen.Footprint_model.trace_bytes tr in
  check Alcotest.bool "cold trace scores worse" true
    (float_of_int (bytes cold) /. 2.0
    > float_of_int (bytes hot) /. float_of_int (100 + 2));
  check Alcotest.int "one eviction" 1 (Trace_cache.pressure_evict cache ~down_to:1);
  check (Alcotest.list Alcotest.int) "hot-but-large survives" [ 0 ]
    (survivors cache)

let test_lru_keeps_recent () =
  let layout = Lazy.force compress_layout in
  let cache = Trace_cache.create ~eviction_policy:Config.Cache.Lru layout in
  let _ = hot_large_cold_small cache 100 in
  check Alcotest.int "one eviction" 1 (Trace_cache.pressure_evict cache ~down_to:1);
  (* same population, opposite verdict: the cold-but-small trace was
     bound most recently, so LRU condemns the hot one *)
  check (Alcotest.list Alcotest.int) "most-recent survives" [ 10 ]
    (survivors cache)

let test_eviction_reasons () =
  let layout = Lazy.force compress_layout in
  let reasons policy pressure =
    let events = Events.create () in
    let seen = ref [] in
    let _sub =
      Events.subscribe events (fun e ->
          match e.Events.payload with
          | Events.Trace_evicted { reason; _ } -> seen := reason :: !seen
          | _ -> ())
    in
    let cache =
      Trace_cache.create ~events ~eviction_policy:policy
        ~max_traces:(if pressure then 0 else 2)
        layout
    in
    let _ = hot_large_cold_small cache 3 in
    if pressure then ignore (Trace_cache.pressure_evict cache ~down_to:1)
    else
      (* a third install overflows max_traces = 2 *)
      ignore (Trace_cache.install cache ~first:20 ~blocks:[| 21 |] ~prob:1.0);
    List.rev !seen
  in
  let pp = Events.evict_reason_to_string in
  let reason = Alcotest.testable (Fmt.of_to_string pp) ( = ) in
  check (Alcotest.list reason) "pressure under LRU is Pressure"
    [ Events.Pressure ]
    (reasons Config.Cache.Lru true);
  check (Alcotest.list reason) "pressure under footprint is Footprint"
    [ Events.Footprint ]
    (reasons Config.Cache.Footprint_aware true);
  check (Alcotest.list reason) "cap overflow is Capacity either way"
    [ Events.Capacity ]
    (reasons Config.Cache.Footprint_aware false)

let test_restored_heat_counts () =
  let layout = Lazy.force compress_layout in
  let cache =
    Trace_cache.create ~eviction_policy:Config.Cache.Footprint_aware layout
  in
  let _ = hot_large_cold_small cache 100 in
  let snaps = Trace_cache.snapshot cache in
  (* restore into a fresh footprint-aware cache: the preserved heat must
     still protect the hot trace from pressure eviction *)
  let fresh =
    Trace_cache.create ~eviction_policy:Config.Cache.Footprint_aware layout
  in
  check Alcotest.int "both entries restored" 2 (Trace_cache.restore fresh snaps);
  ignore (Trace_cache.pressure_evict fresh ~down_to:1);
  check (Alcotest.list Alcotest.int) "hot trace survives after restore" [ 0 ]
    (survivors fresh)

(* The compiled tier is derived state: snapshots never store a lowered
   body, yet a restored cache must converge on the same compiled set —
   promotion keys on the persisted heat (snap_heat), so restore-time
   recompilation re-derives exactly the traces the original run held
   compiled. *)
let test_restored_tier_rederived () =
  let layout = Lazy.force compress_layout in
  let config =
    Tracegen.Config.make ~tier:true ~tier_compile_after:4 ()
  in
  let r = Engine.run ~config layout in
  let engine = r.Engine.engine in
  let compiled_set eng =
    let acc = ref [] in
    Trace_cache.iter (Engine.cache eng) (fun tr ->
        if tr.Tracegen.Trace.lowered <> None then
          acc := Tracegen.Trace.entry_key tr :: !acc);
    List.sort compare !acc
  in
  let original = compiled_set engine in
  check Alcotest.bool "the tiered run compiled some traces" true
    (original <> []);
  let data = Engine.snapshot engine in
  let fresh = Engine.create ~config layout in
  (match Engine.restore fresh data with
  | Error e -> Alcotest.failf "restore failed: %s" (Persist.error_to_string e)
  | Ok info ->
      check Alcotest.int "every compiled trace was re-derived"
        (List.length original) info.Engine.recompiled_traces);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "restored cache re-compiles the same tier set" original
    (compiled_set fresh);
  (* and the bodies are the same lowered code: TL220 holds over the
     restored cache *)
  Trace_cache.iter (Engine.cache fresh) (fun tr ->
      match Tracegen.Tier.check_lowered layout tr with
      | [] -> ()
      | d :: _ ->
          Alcotest.failf "restored trace %d failed TL220: %s"
            tr.Tracegen.Trace.id
            (Analysis.Diag.to_string d));
  (* a tier-off restore of the same snapshot stays fully interpreted *)
  let cold = Engine.create layout in
  (match Engine.restore cold data with
  | Error e -> Alcotest.failf "restore failed: %s" (Persist.error_to_string e)
  | Ok info ->
      check Alcotest.int "tier off: nothing recompiled" 0
        info.Engine.recompiled_traces);
  check Alcotest.int "tier off: cache fully interpreted" 0
    (Trace_cache.n_compiled (Engine.cache cold))

let () =
  Alcotest.run "persist"
    [
      ( "round-trip",
        [
          tc "bit-identical on every workload" `Quick
            test_round_trip_all_workloads;
          tc "restore re-snapshots identically" `Quick
            test_restore_resnapshot_identity;
          tc "restore info counts" `Quick test_restore_info_counts;
        ] );
      ( "rejection",
        [
          tc "typed errors" `Quick test_rejections;
          tc "never half-loads" `Quick test_rejection_never_half_loads;
          tc "events" `Quick test_restore_events;
        ] );
      ("warm-start", [ tc "warm = cold" `Quick test_warm_equals_cold ]);
      ( "tier",
        [
          tc "restored cache re-derives the compiled set" `Quick
            test_restored_tier_rederived;
        ] );
      ( "eviction",
        [
          tc "footprint keeps hot-but-large" `Quick
            test_footprint_keeps_hot_large;
          tc "lru keeps most-recent" `Quick test_lru_keeps_recent;
          tc "reason variant reaches the timeline" `Quick
            test_eviction_reasons;
          tc "restored heat still counts" `Quick test_restored_heat_counts;
        ] );
    ]
