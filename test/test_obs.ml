(* Deep observability: causal spans (ring buffer, parent links,
   wraparound), per-block attribution reconciliation, and the timeline
   exports (span JSONL, Chrome trace_event, the JSON round trip). *)

open Workloads.Dsl
module S = Bytecode.Structured
module Engine = Tracegen.Engine
module Spans = Tracegen.Spans
module Config = Tracegen.Config
module Metrics = Tracegen.Metrics
module Stats = Tracegen.Stats
module Export = Harness.Export
module Report = Harness.Report

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* the recorder in isolation                                            *)
(* ------------------------------------------------------------------ *)

let parent_of t id =
  match Spans.find t id with
  | Some s -> s.Spans.parent
  | None -> Alcotest.failf "span %d not in the ring" id

let test_nesting_and_parents () =
  let t = Spans.create () in
  let a = Spans.begin_span t ~kind:Spans.Trace_build ~label:"a" ~now:1 in
  let b = Spans.begin_span t ~kind:Spans.Heal_sweep ~label:"b" ~now:2 in
  check Alcotest.int "a is a root" (-1) (parent_of t a);
  check Alcotest.int "b nests under a" a (parent_of t b);
  (* an emitted span parents under the innermost open span too *)
  let q =
    Spans.emit t ~kind:Spans.Quarantine ~label:"q" ~start_time:2 ~end_time:9
  in
  check Alcotest.int "emit parents under b" b (parent_of t q);
  check Alcotest.int "emit never joins the open stack" 2 (Spans.n_open t);
  Spans.end_span t b ~now:3;
  Spans.end_span t a ~now:4;
  let c = Spans.begin_span t ~kind:Spans.Member_turn ~label:"c" ~now:5 in
  check Alcotest.int "after unwinding, c is a root" (-1) (parent_of t c);
  Spans.end_span t c ~now:6;
  check Alcotest.int "all closed" 0 (Spans.n_open t);
  check Alcotest.(list int) "listed in begin order" [ a; b; q; c ]
    (List.map (fun s -> s.Spans.id) (Spans.to_list t));
  List.iter
    (fun s ->
      check Alcotest.bool "every span closed with a valid extent" true
        (s.Spans.end_time >= s.Spans.start_time
        && s.Spans.end_seq > s.Spans.start_seq))
    (Spans.to_list t)

let test_wraparound_keeps_links_consistent () =
  let t = Spans.create ~capacity:4 () in
  let root = Spans.begin_span t ~kind:Spans.Trace_build ~label:"root" ~now:0 in
  for i = 1 to 10 do
    let s =
      Spans.begin_span t ~kind:Spans.Heal_sweep
        ~label:(Printf.sprintf "child%d" i)
        ~now:i
    in
    Spans.end_span t s ~now:i
  done;
  check Alcotest.int "ids kept flowing" 11 (Spans.recorded t);
  check Alcotest.int "overwrites counted" 7 (Spans.dropped t);
  check Alcotest.bool "the root was evicted" true (Spans.find t root = None);
  (* surviving children still name the root as parent, and resolving
     that link answers None — never whichever span reused the slot *)
  List.iter
    (fun s ->
      if s.Spans.id <> root then begin
        check Alcotest.int "parent link survives eviction" root
          s.Spans.parent;
        check Alcotest.bool "evicted parent resolves to None" true
          (Spans.find t s.Spans.parent = None)
      end)
    (Spans.to_list t);
  (* closing the evicted root is a harmless no-op beyond unstacking *)
  Spans.end_span t root ~now:99;
  check Alcotest.int "stack unwound" 0 (Spans.n_open t);
  check Alcotest.int "ring holds the last capacity spans" 4
    (List.length (Spans.to_list t))

let test_end_all_closes_innermost_first () =
  let t = Spans.create () in
  let a = Spans.begin_span t ~kind:Spans.Trace_build ~label:"a" ~now:1 in
  let b = Spans.begin_span t ~kind:Spans.Member_turn ~label:"b" ~now:2 in
  Spans.end_all t ~now:9;
  check Alcotest.int "nothing left open" 0 (Spans.n_open t);
  let get id = Option.get (Spans.find t id) in
  check Alcotest.bool "both closed at now" true
    ((get a).Spans.end_time = 9 && (get b).Spans.end_time = 9);
  check Alcotest.bool "inner closed before outer on the event clock" true
    ((get b).Spans.end_seq < (get a).Spans.end_seq)

(* ------------------------------------------------------------------ *)
(* wired through the engine                                             *)
(* ------------------------------------------------------------------ *)

let layout_of body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

let hot_loop =
  layout_of
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 20_000)
        [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ];
      ret (v "s");
    ]

let run_obs ?(config = Config.make ~obs_spans:true ~obs_attribution:true ())
    () =
  let r = Engine.run ~config hot_loop in
  let engine = r.Engine.engine in
  let spans =
    match Engine.spans engine with
    | Some s -> s
    | None -> Alcotest.fail "obs_spans on but no recorder"
  in
  Spans.end_all spans ~now:(Engine.total_dispatches engine);
  (r, engine, spans)

let test_disabled_by_default () =
  let r = Engine.run hot_loop in
  let engine = r.Engine.engine in
  check Alcotest.bool "no recorder unless asked" true
    (Engine.spans engine = None);
  check Alcotest.int "no attribution arrays unless asked" 0
    (Array.length (Engine.attr_self engine));
  (* histograms are always on: O(1), off the dispatch fast path *)
  let s = r.Engine.run_stats in
  check Alcotest.int "one length observation per completion"
    s.Stats.traces_completed
    (Metrics.hist_count (Engine.trace_len_hist engine))

let test_engine_spans_and_attribution () =
  let r, engine, spans = run_obs () in
  let s = r.Engine.run_stats in
  check Alcotest.bool "builds were spanned" true (Spans.recorded spans > 0);
  List.iter
    (fun sp ->
      check Alcotest.bool "closed with a valid extent" true
        (sp.Spans.end_time >= sp.Spans.start_time))
    (Spans.to_list spans);
  (* the hot-report reconciles exactly against Stats *)
  let report = Report.of_engine engine in
  check Alcotest.bool "report has trace rows" true (report.Report.traces <> []);
  check Alcotest.bool "report has block rows" true (report.Report.blocks <> []);
  check
    Alcotest.(list (triple string int int))
    "every identity reconciles" []
    (Report.failed_checks report engine s);
  (* the side-exit distance histogram counts exactly the side exits *)
  let in_flight =
    match Engine.active_trace engine with Some _ -> 1 | None -> 0
  in
  check Alcotest.int "one distance observation per side exit"
    (s.Stats.traces_entered - s.Stats.traces_completed - in_flight)
    (Metrics.hist_count (Engine.exit_distance_hist engine))

let test_session_member_turns () =
  let session = Tracegen.Session.create () in
  let config = Config.make ~obs_spans:true () in
  ignore (Tracegen.Session.add ~name:"a" ~config session hot_loop);
  ignore (Tracegen.Session.add ~name:"b" ~config session hot_loop);
  Tracegen.Session.run session;
  List.iter
    (fun m ->
      let engine = Tracegen.Session.engine m in
      match Engine.spans engine with
      | None -> Alcotest.fail "obs_spans on but no recorder"
      | Some spans ->
          Spans.end_all spans ~now:(Engine.total_dispatches engine);
          let turns =
            List.filter
              (fun s -> s.Spans.kind = Spans.Member_turn)
              (Spans.to_list spans)
          in
          check Alcotest.bool "member turns spanned" true (turns <> []);
          check Alcotest.string "labelled with the member name"
            (Tracegen.Session.member_name m)
            (List.hd turns).Spans.label;
          check Alcotest.(list string) "chrome-exportable" []
            (Report.check_chrome (Export.chrome_trace (Spans.to_list spans))))
    (Tracegen.Session.members session)

let test_chrome_export_valid () =
  let _, _, spans = run_obs () in
  let j = Export.chrome_trace (Spans.to_list spans) in
  check Alcotest.(list string) "structurally valid" [] (Report.check_chrome j);
  (* the printed form re-parses to an equally valid value *)
  match Export.parse (Export.to_string j) with
  | Error e -> Alcotest.failf "round trip failed to parse: %s" e
  | Ok parsed ->
      check Alcotest.(list string) "valid after the round trip" []
        (Report.check_chrome parsed);
      check Alcotest.string "printer/parser fixpoint" (Export.to_string j)
        (Export.to_string parsed)

let test_chrome_export_under_faults () =
  (* quarantine episodes overlap freely; they must export as X events
     and leave the B/E stack discipline intact *)
  let config =
    Config.make ~obs_spans:true ~self_heal:true ~debug_checks:true
      ~fault_spec:"corrupt-trace@0.02,budget=10" ~fault_seed:7 ()
  in
  let _, _, spans = run_obs ~config () in
  let spans = Spans.to_list spans in
  let quarantines =
    List.filter (fun s -> s.Spans.kind = Spans.Quarantine) spans
  in
  check Alcotest.bool "faults produced quarantine spans" true
    (quarantines <> []);
  check Alcotest.(list string) "still structurally valid" []
    (Report.check_chrome (Export.chrome_trace spans))

(* ------------------------------------------------------------------ *)
(* the JSON parser                                                      *)
(* ------------------------------------------------------------------ *)

let test_parser_values () =
  let roundtrip j =
    match Export.parse (Export.to_string j) with
    | Ok j' -> check Alcotest.string "fixpoint" (Export.to_string j)
        (Export.to_string j')
    | Error e -> Alcotest.failf "parse: %s" e
  in
  roundtrip (Export.J_int 42);
  roundtrip (Export.J_int (-7));
  roundtrip (Export.J_float 2.5);
  roundtrip (Export.J_bool true);
  roundtrip Export.J_null;
  roundtrip (Export.J_string "a\"b\\c\nd");
  roundtrip (Export.J_list []);
  roundtrip
    (Export.J_obj
       [
         ("xs", Export.J_list [ Export.J_int 1; Export.J_null ]);
         ("nested", Export.J_obj [ ("k", Export.J_string "v") ]);
       ]);
  let bad s =
    match Export.parse s with
    | Ok _ -> Alcotest.failf "expected a parse error on %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "1 trailing";
  bad "\"unterminated"

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          tc "nesting and parent links" `Quick test_nesting_and_parents;
          tc "wraparound keeps links consistent" `Quick
            test_wraparound_keeps_links_consistent;
          tc "end_all closes innermost first" `Quick
            test_end_all_closes_innermost_first;
        ] );
      ( "engine",
        [
          tc "disabled by default" `Quick test_disabled_by_default;
          tc "spans + attribution reconcile" `Quick
            test_engine_spans_and_attribution;
          tc "session member turns spanned" `Quick
            test_session_member_turns;
        ] );
      ( "export",
        [
          tc "chrome trace valid" `Quick test_chrome_export_valid;
          tc "chrome trace valid under faults" `Quick
            test_chrome_export_under_faults;
          tc "parser round trips" `Quick test_parser_values;
        ] );
    ]
