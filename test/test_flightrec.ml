(* The flight recorder: ring wrap-around at capacity, dump triggers, the
   postmortem JSONL round trip through the codec, and the ledger/event
   reconciliation oracle over a live engine run. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Engine = Tracegen.Engine
module Events = Tracegen.Events
module Flightrec = Tracegen.Flightrec
module Ledger = Tracegen.Ledger
module Config = Tracegen.Config
module Codec = Harness.Codec
module Oracle = Harness.Oracle
module Postmortem = Harness.Postmortem

let tc = Alcotest.test_case
let check = Alcotest.check

let ev time n = { Events.time; payload = Events.Decay_pass { decays = n } }

(* ------------------------------------------------------------------ *)
(* the ring in isolation                                                *)
(* ------------------------------------------------------------------ *)

let test_wraparound () =
  let fr = Flightrec.create ~capacity:4 in
  check Alcotest.int "capacity as asked" 4 (Flightrec.capacity fr);
  for i = 0 to 9 do
    Flightrec.record_event fr (ev (100 + i) i)
  done;
  check Alcotest.int "every record counted" 10 (Flightrec.recorded fr);
  check Alcotest.int "overflow counted as dropped" 6 (Flightrec.dropped fr);
  let window = Flightrec.to_list fr in
  check Alcotest.int "window bounded by capacity" 4 (List.length window);
  check Alcotest.(list int) "newest survive, oldest first" [ 6; 7; 8; 9 ]
    (List.map Flightrec.seq_of window);
  check Alcotest.(list int) "times ride along" [ 106; 107; 108; 109 ]
    (List.map Flightrec.time_of window)

let test_capacity_clamped () =
  let fr = Flightrec.create ~capacity:0 in
  check Alcotest.int "capacity clamps to 2" 2 (Flightrec.capacity fr);
  Flightrec.record_event fr (ev 1 1);
  check Alcotest.int "no drops below capacity" 0 (Flightrec.dropped fr)

let test_mixed_entries_survive_wrap () =
  let fr = Flightrec.create ~capacity:3 in
  for i = 0 to 7 do
    Flightrec.record_event fr (ev i i)
  done;
  Flightrec.record_span_closed fr ~time:50 ~id:7 ~parent:(-1)
    ~kind:"trace_build" ~label:"b" ~start_time:40;
  Flightrec.record_metric_delta fr ~time:60 ~name:"traces_constructed"
    ~delta:2 ~total:5;
  let window = Flightrec.to_list fr in
  check Alcotest.int "window still bounded" 3 (List.length window);
  (match window with
  | [ Flightrec.Event e; Flightrec.Span_closed s; Flightrec.Metric_delta m ]
    ->
      check Alcotest.int "event seq" 7 e.seq;
      check Alcotest.int "span id" 7 s.id;
      check Alcotest.string "span kind" "trace_build" s.kind;
      check Alcotest.int "span start" 40 s.start_time;
      check Alcotest.string "metric name" "traces_constructed" m.name;
      check Alcotest.int "metric delta" 2 m.delta;
      check Alcotest.int "metric total" 5 m.total
  | _ -> Alcotest.fail "expected [event; span; metric] oldest first");
  check Alcotest.(list int) "seqs stay dense across kinds" [ 7; 8; 9 ]
    (List.map Flightrec.seq_of window)

let test_triggers () =
  let fr = Flightrec.create ~capacity:4 in
  (* a trigger with no hook installed still counts the dump *)
  Flightrec.trigger fr Flightrec.Invariant;
  check Alcotest.int "hookless trigger counted" 1 (Flightrec.dumps fr);
  let seen = ref [] in
  Flightrec.set_on_dump fr (fun r -> seen := r :: !seen);
  Flightrec.trigger fr Flightrec.Divergence;
  Flightrec.trigger fr Flightrec.Degraded;
  check Alcotest.int "hooked triggers counted" 3 (Flightrec.dumps fr);
  check Alcotest.(list string) "hook saw each reason, in order"
    [ "chaos_divergence"; "degraded_interp_only" ]
    (List.rev_map Flightrec.reason_to_string !seen);
  (* reasons round-trip through their wire tags *)
  List.iter
    (fun r ->
      check Alcotest.bool "reason tag round trips" true
        (Flightrec.reason_of_string (Flightrec.reason_to_string r) = Some r))
    [
      Flightrec.Invariant;
      Flightrec.Divergence;
      Flightrec.Snapshot_rejected;
      Flightrec.Degraded;
      Flightrec.Manual;
    ]

(* ------------------------------------------------------------------ *)
(* postmortem round trip through the codec                              *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Codec.J_obj fields -> List.assoc_opt name fields
  | _ -> None

let test_postmortem_round_trip () =
  let fr = Flightrec.create ~capacity:8 in
  for i = 0 to 11 do
    Flightrec.record_event fr (ev i i)
  done;
  Flightrec.record_span_closed fr ~time:90 ~id:3 ~parent:1 ~kind:"quarantine"
    ~label:"q \"esc\"" ~start_time:80;
  Flightrec.record_metric_delta fr ~time:95 ~name:"deopts" ~delta:1 ~total:4;
  let lines =
    String.split_on_char '\n'
      (String.trim
         (Codec.postmortem_jsonl
            ~reason:(Flightrec.reason_to_string Flightrec.Manual)
            fr))
  in
  check Alcotest.int "header + one line per surviving entry" 9
    (List.length lines);
  List.iteri
    (fun i line ->
      match Codec.parse line with
      | Error e -> Alcotest.failf "line %d unparseable: %s" i e
      | Ok json -> (
          check Alcotest.bool "every record schema-versioned" true
            (field "schema_version" json = Some (Codec.J_int Codec.schema_version));
          match field "rec" json with
          | Some (Codec.J_string kind) ->
              if i = 0 then begin
                check Alcotest.string "header first" "postmortem" kind;
                check Alcotest.bool "header carries the reason" true
                  (field "reason" json = Some (Codec.J_string "manual"));
                check Alcotest.bool "header counts the overflow" true
                  (field "dropped" json = Some (Codec.J_int 6))
              end
              else
                check Alcotest.bool "body records tagged" true
                  (List.mem kind [ "event"; "span"; "metric" ])
          | _ -> Alcotest.failf "line %d has no rec tag" i))
    lines;
  (* the harness-side pretty printer accepts the same artifact *)
  let path = Filename.temp_file "flightrec" ".jsonl" in
  Postmortem.write ~reason:Flightrec.Manual ~path fr;
  let contents =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  (match Postmortem.describe_dump contents with
  | Error e -> Alcotest.failf "describe_dump rejected its own dump: %s" e
  | Ok described ->
      check Alcotest.int "one description per line" 9 (List.length described));
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* wired through the engine                                             *)
(* ------------------------------------------------------------------ *)

let layout_of body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

let hot_loop =
  layout_of
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 20_000)
        [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ];
      ret (v "s");
    ]

let test_engine_arms_recorder_by_default () =
  let r = Engine.run hot_loop in
  (match Engine.flightrec r.Engine.engine with
  | None -> Alcotest.fail "default config must arm the black box"
  | Some fr ->
      check Alcotest.bool "the quiet run still recorded events" true
        (Flightrec.recorded fr > 0);
      check Alcotest.bool "retention stays bounded" true
        (List.length (Flightrec.to_list fr) <= Flightrec.capacity fr));
  let off = Config.make ~flightrec_capacity:0 () in
  let r2 = Engine.run ~config:off hot_loop in
  check Alcotest.bool "capacity 0 disarms it" true
    (Engine.flightrec r2.Engine.engine = None)

let test_engine_run_reconciles () =
  let events = Events.create () in
  let tally = Oracle.attach events in
  let engine = Engine.create ~events hot_loop in
  let result = Engine.drive engine in
  let checks =
    Oracle.run_checks tally ~engine result.Engine.run_stats
  in
  List.iter
    (fun (c : Oracle.check) ->
      check Alcotest.int
        (Printf.sprintf "oracle: %s" c.Oracle.name)
        c.Oracle.want c.Oracle.got)
    checks;
  match Engine.ledger engine with
  | None -> Alcotest.fail "default config must keep the ledger"
  | Some l ->
      check Alcotest.bool "ledger recorded the run's decisions" true
        (Ledger.length l > 0)

let () =
  Alcotest.run "flightrec"
    [
      ( "ring",
        [
          tc "wrap-around at capacity" `Quick test_wraparound;
          tc "capacity clamped" `Quick test_capacity_clamped;
          tc "mixed entries survive wrap" `Quick
            test_mixed_entries_survive_wrap;
          tc "dump triggers" `Quick test_triggers;
        ] );
      ( "postmortem",
        [ tc "codec round trip" `Quick test_postmortem_round_trip ] );
      ( "engine",
        [
          tc "recorder armed by default" `Quick
            test_engine_arms_recorder_by_default;
          tc "events + ledger reconcile with stats" `Quick
            test_engine_run_reconciles;
        ] );
    ]
