(* The compiled micro-IR tier (Tracegen.Microir / Tier / Backend_microir):

   - lowering round-trips on every workload: each compiled body passes
     the structural check against its trace's block sequence and
     re-derivation (TL220 clean), and the tiered run stays bit-identical
     to pure interpretation;
   - per-position accounting is internally consistent (segment starts
     monotone, per-position columns sum to the body totals) and fusion
     actually fires (superinstructions present, counted exactly);
   - a seeded miscompilation is caught by TL220;
   - deopt from the compiled tier is transparent (tier + OSR under a
     guard-flip schedule);
   - the cost model promotes exactly at the compile_after edge, demotes
     the strictly colder trace when the budget is full, refuses to
     thrash between equally hot traces, and never demotes a pinned
     (executing) trace out from under its dispatch loop. *)

module Config = Tracegen.Config
module Engine = Tracegen.Engine
module Events = Tracegen.Events
module Microir = Tracegen.Microir
module Stats = Tracegen.Stats
module Tier = Tracegen.Tier
module Trace = Tracegen.Trace
module Trace_cache = Tracegen.Trace_cache
module Interp = Vm.Interp

let tc = Alcotest.test_case
let check = Alcotest.check
let fp = Alcotest.(triple string int int)
let fingerprint = Harness.Chaos.fingerprint

let compress = Workloads.Compress.workload

let layout_for ?(size = 300) w = Harness.Experiment.layout_for w ~size

(* a tiered engine run with a low promotion bar, so small test layouts
   still reach the compiled tier *)
let run_tiered ?(compile_after = 4) ?events layout =
  let config = Config.make ~tier:true ~tier_compile_after:compile_after () in
  Engine.run ~config ?events layout

(* events, stats and the decision ledger must agree even when dispatch
   ran through the compiled tier — the tier is where attribution is
   easiest to lose *)
let assert_reconciled tally (r : Engine.run_result) =
  List.iter
    (fun (c : Harness.Oracle.check) ->
      check Alcotest.int
        (Printf.sprintf "oracle: %s" c.Harness.Oracle.name)
        c.Harness.Oracle.want c.Harness.Oracle.got)
    (Harness.Oracle.run_checks tally ~engine:r.Engine.engine
       r.Engine.run_stats)

let compiled_traces engine =
  let acc = ref [] in
  Trace_cache.iter (Engine.cache engine) (fun tr ->
      if tr.Trace.lowered <> None then acc := tr :: !acc);
  !acc

(* --------------------------------------------------------------- *)
(* lowering round trip                                               *)
(* --------------------------------------------------------------- *)

let test_roundtrip_all_workloads () =
  let total_compiled = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let name = w.Workloads.Workload.name in
      let layout =
        layout_for ~size:w.Workloads.Workload.default_size w
      in
      let baseline = Interp.run_plain ~max_instructions:200_000 layout in
      let config = Config.make ~tier:true ~tier_compile_after:4 () in
      let r = Engine.run ~config ~max_instructions:200_000 layout in
      check fp (name ^ " bit-identical with the tier armed")
        (fingerprint baseline)
        (fingerprint r.Engine.vm_result);
      let engine = r.Engine.engine in
      List.iter
        (fun tr ->
          incr total_compiled;
          (match Tier.check_lowered ~context:name layout tr with
          | [] -> ()
          | diags ->
              Alcotest.failf "%s: trace %d failed TL220: %s" name tr.Trace.id
                (Analysis.Diag.to_string (List.hd diags)));
          match tr.Trace.lowered with
          | None -> assert false
          | Some body ->
              check
                Alcotest.(list string)
                (Printf.sprintf "%s: trace %d structurally sound" name
                   tr.Trace.id)
                []
                (Microir.check ~expect:tr.Trace.blocks body))
        (compiled_traces engine);
      check Alcotest.int (name ^ " stats agree with the cache")
        (Trace_cache.n_compiled (Engine.cache engine))
        (List.length (compiled_traces engine)))
    Workloads.Registry.all;
  check Alcotest.bool "the sweep compiled somewhere" true (!total_compiled > 0)

(* Per-position accounting: segment starts monotone, one segment per
   trace position, and the per-position columns sum to the body totals. *)
let test_accounting_identities () =
  let layout = layout_for compress in
  let r = run_tiered layout in
  let bodies = compiled_traces r.Engine.engine in
  check Alcotest.bool "compress compiled some traces" true (bodies <> []);
  List.iter
    (fun tr ->
      match tr.Trace.lowered with
      | None -> assert false
      | Some body ->
          let sum a = Array.fold_left ( + ) 0 a in
          check Alcotest.int "one segment per trace position"
            (Trace.n_blocks tr)
            (Microir.n_positions body);
          check Alcotest.int "pos_ops sums to the op count"
            (Microir.n_ops body) (sum body.Microir.pos_ops);
          check Alcotest.int "pos_src sums to the source instrs"
            body.Microir.src_instrs (sum body.Microir.pos_src);
          check Alcotest.int "pos_fused sums to the fusion count"
            body.Microir.fused (sum body.Microir.pos_fused);
          Array.iteri
            (fun i s ->
              if i > 0 then
                check Alcotest.bool "segment starts monotone" true
                  (s >= body.Microir.block_start.(i - 1)))
            body.Microir.block_start)
    bodies

(* --------------------------------------------------------------- *)
(* fusion                                                            *)
(* --------------------------------------------------------------- *)

let test_fusion_fires () =
  let layout = layout_for compress in
  let r = run_tiered layout in
  let bodies = compiled_traces r.Engine.engine in
  let fused_ops body =
    Array.fold_left
      (fun n op -> if Microir.is_fused op then n + 1 else n)
      0 body.Microir.ops
  in
  (* the fused counter counts exactly the superinstructions present *)
  List.iter
    (fun tr ->
      match tr.Trace.lowered with
      | None -> assert false
      | Some body ->
          check Alcotest.int "fused counter matches the op stream"
            (fused_ops body) body.Microir.fused)
    bodies;
  (* and fusion actually fires on a compare-heavy workload: some body
     ends a position in a fused compare+guard *)
  let any_cmp_guard =
    List.exists
      (fun tr ->
        match tr.Trace.lowered with
        | None -> false
        | Some body ->
            Array.exists
              (function
                | Microir.Cmp_guard _ | Microir.Cmpz_guard _ -> true
                | _ -> false)
              body.Microir.ops)
      bodies
  in
  check Alcotest.bool "a compare+guard superinstruction formed" true
    any_cmp_guard;
  (* a compiled body is cheaper to dispatch than the bytecode it
     replaces: micro-ops strictly below source instructions somewhere *)
  check Alcotest.bool "lowering shrank some body" true
    (List.exists
       (fun tr ->
         match tr.Trace.lowered with
         | None -> false
         | Some body -> Microir.n_ops body < body.Microir.src_instrs)
       bodies)

(* --------------------------------------------------------------- *)
(* TL220 on a seeded miscompilation                                  *)
(* --------------------------------------------------------------- *)

let test_tl220_catches_miscompilation () =
  let layout = layout_for compress in
  let r = run_tiered layout in
  match compiled_traces r.Engine.engine with
  | [] -> Alcotest.fail "no compiled trace to corrupt"
  | tr :: _ ->
      check Alcotest.(list string) "clean before corruption" []
        (List.map Analysis.Diag.to_string (Tier.check_lowered layout tr));
      (* drop the last op: the re-derivation can no longer match *)
      (match tr.Trace.lowered with
      | None -> assert false
      | Some body ->
          tr.Trace.lowered <-
            Some
              {
                body with
                Microir.ops =
                  Array.sub body.Microir.ops 0
                    (Array.length body.Microir.ops - 1);
              });
      let diags = Tier.check_lowered layout tr in
      check Alcotest.bool "TL220 fired" true
        (List.exists (fun d -> d.Analysis.Diag.code = "TL220") diags)

(* --------------------------------------------------------------- *)
(* deopt from the compiled tier                                      *)
(* --------------------------------------------------------------- *)

let test_deopt_from_compiled_tier () =
  let layout = layout_for compress in
  let baseline = Interp.run_plain layout in
  let config =
    Config.make ~debug_checks:true ~self_heal:true ~tier:true
      ~tier_compile_after:4 ~osr:true ~fault_spec:"guard-flip@0.5,budget=400"
      ~fault_seed:7 ()
  in
  let events = Events.create () in
  let tally = Harness.Oracle.attach events in
  let r = Engine.run ~config ~events layout in
  check fp "bit-identical under flips from the compiled tier"
    (fingerprint baseline)
    (fingerprint r.Engine.vm_result);
  let s = r.Engine.run_stats in
  check Alcotest.bool "traces were dispatched compiled" true
    (s.Stats.compiled_entries > 0);
  check Alcotest.bool "the schedule actually deopted" true (s.Stats.deopts > 0);
  check Alcotest.int "every deopt materialized state (no TL219)" 0
    (Engine.osr_state_mismatches r.Engine.engine);
  (* the fault schedule must not desynchronize the three views *)
  assert_reconciled tally r

(* tier off vs on: same dispatch stream, and the stats overlay accounts
   micro-ops strictly below the source instructions they replaced *)
let test_tier_is_pure_overlay () =
  let layout = layout_for ~size:400 compress in
  let off = Engine.run layout in
  let events = Events.create () in
  let tally = Harness.Oracle.attach events in
  let on = run_tiered ~events layout in
  check fp "tier on/off fingerprints equal"
    (fingerprint off.Engine.vm_result)
    (fingerprint on.Engine.vm_result);
  let s_off = off.Engine.run_stats and s_on = on.Engine.run_stats in
  check Alcotest.int "identical dispatch totals"
    (Stats.total_dispatches s_off)
    (Stats.total_dispatches s_on);
  check Alcotest.bool "compiled positions accounted" true
    (s_on.Stats.mi_positions > 0);
  check Alcotest.bool "micro-ops below replaced source instrs" true
    (s_on.Stats.mi_ops < s_on.Stats.mi_src_instrs);
  check Alcotest.bool "fusion accounted" true (s_on.Stats.mi_fused > 0);
  check Alcotest.int "tier off never compiles" 0 s_off.Stats.traces_compiled;
  assert_reconciled tally on

(* --------------------------------------------------------------- *)
(* cost model                                                        *)
(* --------------------------------------------------------------- *)

let heat cache (tr : Trace.t) n =
  for _ = 1 to n do
    ignore
      (Trace_cache.lookup cache ~prev:tr.Trace.first ~cur:tr.Trace.blocks.(0))
  done

let test_promotion_edge () =
  let layout = layout_for ~size:200 compress in
  let cache = Trace_cache.create layout in
  let config = Config.make ~tier:true ~tier_compile_after:4 () in
  let events = Events.create () in
  let tr = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  (* install stamps one use; stay strictly below the bar *)
  heat cache tr 2;
  check Alcotest.(pair int int) "below the bar: no compile" (0, 0)
    (Tier.maybe_compile config layout cache ~events tr);
  check Alcotest.bool "still interpreted" true (tr.Trace.lowered = None);
  heat cache tr 1;
  check Alcotest.(pair int int) "at the bar: compiled" (1, 0)
    (Tier.maybe_compile config layout cache ~events tr);
  check Alcotest.bool "holds a lowered body" true (tr.Trace.lowered <> None);
  check Alcotest.(pair int int) "already compiled: idempotent" (0, 0)
    (Tier.maybe_compile config layout cache ~events tr);
  (* the tier off is a hard gate regardless of heat *)
  let cold_config = Config.make () in
  let tr2 = Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0 in
  heat cache tr2 100;
  check Alcotest.(pair int int) "tier off: no compile" (0, 0)
    (Tier.maybe_compile cold_config layout cache ~events tr2)

let test_budget_demotion () =
  let layout = layout_for ~size:200 compress in
  let cache = Trace_cache.create layout in
  let config =
    Config.make ~tier:true ~tier_compile_after:4 ~tier_compile_budget:1 ()
  in
  let events = Events.create () in
  let a = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  heat cache a 9;
  check Alcotest.(pair int int) "A compiled into the only slot" (1, 0)
    (Tier.maybe_compile config layout cache ~events a);
  (* an equally hot candidate must not thrash the slot *)
  let b = Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0 in
  heat cache b (Trace_cache.trace_uses cache a - 1);
  check Alcotest.(pair int int) "equal heat: no thrash" (0, 0)
    (Tier.maybe_compile config layout cache ~events b);
  check Alcotest.bool "A keeps its body" true (a.Trace.lowered <> None);
  (* strictly hotter: A is demoted, B takes the slot *)
  heat cache b 20;
  check Alcotest.(pair int int) "hotter candidate demotes the coldest" (1, 1)
    (Tier.maybe_compile config layout cache ~events b);
  check Alcotest.bool "B compiled" true (b.Trace.lowered <> None);
  check Alcotest.bool "A demoted" true (a.Trace.lowered = None);
  check Alcotest.int "one compiled slot in use" 1 (Trace_cache.n_compiled cache)

let test_pin_blocks_demotion () =
  let layout = layout_for ~size:200 compress in
  let cache = Trace_cache.create layout in
  let config =
    Config.make ~tier:true ~tier_compile_after:4 ~tier_compile_budget:1 ()
  in
  let events = Events.create () in
  let a = Trace_cache.install cache ~first:0 ~blocks:[| 1; 2 |] ~prob:1.0 in
  heat cache a 9;
  ignore (Tier.maybe_compile config layout cache ~events a);
  check Alcotest.bool "A compiled" true (a.Trace.lowered <> None);
  (* the dispatch loop is following A's micro-IR: demotion must refuse *)
  Trace_cache.pin cache a;
  check Alcotest.bool "direct demotion refused while pinned" false
    (Trace_cache.demote_lowered cache a);
  check Alcotest.bool "body retained" true (a.Trace.lowered <> None);
  check Alcotest.int "refusal counted" 1 (Trace_cache.n_demote_refusals cache);
  (* a hotter candidate cannot claim the slot either: the pinned trace
     is not a victim, so the budget stays full and B stays interpreted *)
  let b = Trace_cache.install cache ~first:3 ~blocks:[| 4; 5 |] ~prob:1.0 in
  heat cache b 50;
  check Alcotest.(pair int int) "budget full behind a pin: no compile" (0, 0)
    (Tier.maybe_compile config layout cache ~events b);
  check Alcotest.bool "B interpreted" true (b.Trace.lowered = None);
  (* once A exits, the same entry decision goes through *)
  Trace_cache.unpin cache a;
  check Alcotest.(pair int int) "after unpin the promotion lands" (1, 1)
    (Tier.maybe_compile config layout cache ~events b);
  check Alcotest.bool "A demoted after unpin" true (a.Trace.lowered = None);
  check Alcotest.bool "B compiled after unpin" true (b.Trace.lowered <> None)

let () =
  Alcotest.run "microir"
    [
      ( "lowering",
        [
          tc "round trip on every workload" `Quick test_roundtrip_all_workloads;
          tc "per-position accounting is consistent" `Quick
            test_accounting_identities;
        ] );
      ( "fusion",
        [ tc "superinstructions form and are counted" `Quick test_fusion_fires ]
      );
      ( "validation",
        [
          tc "TL220 catches a seeded miscompilation" `Quick
            test_tl220_catches_miscompilation;
        ] );
      ( "transparency",
        [
          tc "deopt from the compiled tier" `Quick test_deopt_from_compiled_tier;
          tc "tier on/off is a pure overlay" `Quick test_tier_is_pure_overlay;
        ] );
      ( "cost model",
        [
          tc "promotion at the compile_after edge" `Quick test_promotion_edge;
          tc "budget demotion prefers the coldest" `Quick test_budget_demotion;
          tc "pins block demotion" `Quick test_pin_blocks_demotion;
        ] );
    ]
