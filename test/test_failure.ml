(* Failure injection: runtime errors taken mid-trace must leave the engine
   and its statistics consistent, and trace linking must behave. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Engine = Tracegen.Engine
module Stats = Tracegen.Stats
module Interp = Vm.Interp

let tc = Alcotest.test_case
let check = Alcotest.check

let layout_of body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

(* a hot loop that indexes out of bounds after 20k clean iterations: by
   then the loop body is cached as a trace, so the trap fires while a
   trace is active *)
let trapping_body =
  [
    decl "a" (S.Arr S.I) (new_arr S.I (i 10));
    decl_i "s" (i 0);
    for_ "k" (i 0) (i 30_000)
      [
        decl_i "idx" (i 0);
        when_ (v "k" =! i 20_000) [ set "idx" (i 999) ];
        set "s" ((v "s" +! (v "a" @. v "idx") +! v "k") &! i 0xFFFFF);
      ];
    ret (v "s");
  ]

let test_trap_mid_trace () =
  let layout = layout_of trapping_body in
  let r = Engine.run layout in
  (match r.Engine.vm_result.Interp.outcome with
  | Interp.Trapped (Interp.Array_bounds, _) -> ()
  | Interp.Trapped (k, m) ->
      Alcotest.failf "wrong trap %s (%s)" (Interp.error_kind_to_string k) m
  | Interp.Finished _ -> Alcotest.fail "expected a trap");
  let s = r.Engine.run_stats in
  (* the system was in full flight when the program died *)
  check Alcotest.bool "traces were running before the trap" true
    (s.Stats.traces_completed > 1000);
  (* accounting still balances: completed + partial + (possibly one
     in-flight trace) = entered *)
  let partials = ref 0 in
  Tracegen.Trace_cache.iter_all (Engine.cache r.Engine.engine) (fun tr ->
      partials := !partials + tr.Tracegen.Trace.partial_exits);
  let in_flight =
    match Engine.active_trace r.Engine.engine with Some _ -> 1 | None -> 0
  in
  check Alcotest.int "entered = completed + partial + in-flight"
    s.Stats.traces_entered
    (s.Stats.traces_completed + !partials + in_flight);
  check Alcotest.bool "coverage still bounded" true
    (Stats.coverage_total s <= 1.0)

let test_trap_instructions_counted () =
  (* instruction counts with and without the engine agree even for a
     trapping program *)
  let layout = layout_of trapping_body in
  let plain = Interp.run_plain layout in
  let traced = (Engine.run layout).Engine.vm_result in
  check Alcotest.int "same instruction count at the trap"
    plain.Interp.instructions traced.Interp.instructions

let test_budget_mid_trace () =
  let layout =
    layout_of
      [
        decl_i "s" (i 0);
        while_ (i 1 =! i 1) [ set "s" ((v "s" +! i 1) &! i 0xFFFF) ];
        ret (v "s");
      ]
  in
  let r = Engine.run ~max_instructions:100_000 layout in
  (match r.Engine.vm_result.Interp.outcome with
  | Interp.Trapped (Interp.Instruction_budget, _) -> ()
  | _ -> Alcotest.fail "expected budget trap");
  check Alcotest.bool "the loop was being traced when the budget hit" true
    (r.Engine.run_stats.Stats.traces_completed > 0)

let test_linking_rate () =
  (* nested loops: inner-loop traces chain into each other and into the
     outer loop's traces *)
  let layout =
    layout_of
      [
        decl_i "s" (i 0);
        for_ "a" (i 0) (i 300)
          [ for_ "b" (i 0) (i 50) [ set "s" ((v "s" +! v "b") &! i 0xFFFF) ] ];
        ret (v "s");
      ]
  in
  let s = (Engine.run layout).Engine.run_stats in
  check Alcotest.bool
    (Printf.sprintf "high linking rate on nested loops (%.2f)"
       (Stats.linking_rate s))
    true
    (Stats.linking_rate s > 0.8);
  check Alcotest.bool "chained subset of entered" true
    (s.Stats.chained_entries <= s.Stats.traces_entered)

let test_no_traces_no_linking () =
  let layout =
    layout_of
      [
        decl_i "s" (i 0);
        for_ "k" (i 0) (i 1000) [ set "s" (v "s" +! v "k") ];
        ret (v "s");
      ]
  in
  let config = Tracegen.Config.make ~build_traces:false () in
  let s = (Engine.run ~config layout).Engine.run_stats in
  check Alcotest.int "no chaining without traces" 0 s.Stats.chained_entries

let () =
  Alcotest.run "failure_injection"
    [
      ( "traps",
        [
          tc "trap mid-trace" `Quick test_trap_mid_trace;
          tc "instruction counts agree" `Quick test_trap_instructions_counted;
          tc "budget mid-trace" `Quick test_budget_mid_trace;
        ] );
      ( "linking",
        [
          tc "linking rate" `Quick test_linking_rate;
          tc "no traces, no links" `Quick test_no_traces_no_linking;
        ] );
    ]
