(* The full system: semantic transparency, dispatch accounting, trace
   entry/completion bookkeeping, adaptation to phase changes. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Engine = Tracegen.Engine
module Config = Tracegen.Config
module Stats = Tracegen.Stats
module Layout = Cfg.Layout

let tc = Alcotest.test_case
let check = Alcotest.check

let layout_of ?(defs = fun (_ : S.t) -> ()) body =
  let p = S.create () in
  defs p;
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Layout.build program

let hot_loop_body =
  [
    decl_i "s" (i 0);
    for_ "k" (i 0) (i 20_000)
      [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ];
    ret (v "s");
  ]

let test_transparency () =
  (* the engine must not change program results *)
  let layout = layout_of hot_loop_body in
  let plain = Vm.Interp.result_value (Vm.Interp.run_plain layout) in
  let traced = Engine.run layout in
  let traced_value =
    Vm.Interp.result_value traced.Engine.vm_result
  in
  check Alcotest.bool "same result with and without the engine" true
    (plain = traced_value);
  (* and the instruction count is identical: traces are an overlay *)
  let plain_r = Vm.Interp.run_plain layout in
  check Alcotest.int "same instruction count"
    plain_r.Vm.Interp.instructions
    traced.Engine.vm_result.Vm.Interp.instructions

let test_hot_loop_gets_traced () =
  let layout = layout_of hot_loop_body in
  let r = Engine.run layout in
  let s = r.Engine.run_stats in
  check Alcotest.bool "traces were constructed" true
    (s.Stats.traces_constructed > 0);
  check Alcotest.bool "traces were entered" true (s.Stats.traces_entered > 0);
  check Alcotest.bool "high completion rate" true
    (Stats.completion_rate s > 0.95);
  check Alcotest.bool "good coverage on a hot loop" true
    (Stats.coverage_completed s > 0.5);
  (* under trace dispatch, total dispatches shrink well below the
     block-dispatch count of an untraced run *)
  let plain = Vm.Interp.run_plain layout in
  check Alcotest.bool "dispatch reduction" true
    (Stats.total_dispatches s < plain.Vm.Interp.block_dispatches)

let test_profile_only_mode () =
  let layout = layout_of hot_loop_body in
  let config = Config.make ~build_traces:false () in
  let r = Engine.run ~config layout in
  let s = r.Engine.run_stats in
  check Alcotest.int "no traces in profile-only mode" 0
    s.Stats.traces_constructed;
  check Alcotest.int "no trace dispatches" 0 s.Stats.trace_dispatches;
  check Alcotest.bool "profiling still happened" true (s.Stats.bcg_nodes > 0);
  (* every block dispatch executed the hook *)
  let plain = Vm.Interp.run_plain layout in
  check Alcotest.int "hook on every dispatch"
    plain.Vm.Interp.block_dispatches s.Stats.block_dispatches

let test_coverage_bounds () =
  let layout = layout_of hot_loop_body in
  let s = (Engine.run layout).Engine.run_stats in
  check Alcotest.bool "completed coverage within [0,1]" true
    (Stats.coverage_completed s >= 0.0 && Stats.coverage_completed s <= 1.0);
  check Alcotest.bool "total coverage within [0,1]" true
    (Stats.coverage_total s >= 0.0 && Stats.coverage_total s <= 1.0);
  check Alcotest.bool "total >= completed" true
    (Stats.coverage_total s >= Stats.coverage_completed s)

let test_accounting_identity () =
  (* every executed instruction is either outside traces, or attributed to
     a completed or partial trace: block dispatches carry their block's
     instructions, traces carry theirs *)
  let layout = layout_of hot_loop_body in
  let r = Engine.run layout in
  let s = r.Engine.run_stats in
  let engine = r.Engine.engine in
  ignore engine;
  let traced = s.Stats.completed_instrs + s.Stats.partial_instrs in
  check Alcotest.bool "traced instructions do not exceed the total" true
    (traced <= s.Stats.instructions);
  check Alcotest.int "entered = completed + partial exits + in flight"
    s.Stats.traces_entered
    (s.Stats.traces_completed
    + (let p = ref 0 in
       Tracegen.Trace_cache.iter_all (Engine.cache engine) (fun tr ->
           p := !p + tr.Tracegen.Trace.partial_exits);
       !p)
    + (match Engine.active_trace engine with Some _ -> 1 | None -> 0))

let test_phase_change_adapts () =
  (* two phases: the same loop skeleton branches differently in each half;
     the cache must follow (replacements or new traces in phase 2) *)
  let body =
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 40_000)
        [
          if_
            (v "k" <! i 20_000)
            [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ]
            [ set "s" ((v "s" *! i 3 +! i 1) &! i 0xFFFFF) ];
        ];
      ret (v "s");
    ]
  in
  let layout = layout_of body in
  let r = Engine.run layout in
  let s = r.Engine.run_stats in
  check Alcotest.bool "phase change produced signals" true (s.Stats.signals > 1);
  check Alcotest.bool "still good total coverage across phases" true
    (Stats.coverage_total s > 0.5);
  check Alcotest.bool "completion stays high after adaptation" true
    (Stats.completion_rate s > 0.8)

let test_partial_exits_on_noise () =
  (* an unpredictable branch inside the hot loop forces side exits *)
  let defs p = Workloads.Dsl.define_prelude p in
  let body =
    [
      decl "st" (S.Arr S.I) (new_arr S.I (i 1));
      seti (v "st") (i 0) (i 42);
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 8_000)
        [
          if_
            (call "rng_range" [ v "st"; i 2 ] =! i 0)
            [ set "s" (v "s" +! i 1) ]
            [ set "s" (v "s" +! i 2) ];
        ];
      ret (v "s");
    ]
  in
  let layout = layout_of ~defs body in
  let r = Engine.run layout in
  let s = r.Engine.run_stats in
  (* with a 50/50 branch the engine either avoids traces there (fine) or
     pays partial exits; either way transparency and bounds must hold *)
  check Alcotest.bool "bounded coverage" true (Stats.coverage_total s <= 1.0);
  check Alcotest.bool "completion rate sane" true
    (Stats.completion_rate s >= 0.0 && Stats.completion_rate s <= 1.0)

let test_dispatch_per_signal_metric () =
  let layout = layout_of hot_loop_body in
  let s = (Engine.run layout).Engine.run_stats in
  if s.Stats.signals > 0 then
    check Alcotest.bool "dispatches per signal positive" true
      (Stats.dispatches_per_signal s > 0.0);
  check Alcotest.bool "trace event interval positive" true
    (Stats.trace_event_interval s > 0.0)

let test_deterministic_stats () =
  let layout = layout_of hot_loop_body in
  let a = (Engine.run layout).Engine.run_stats in
  let b = (Engine.run layout).Engine.run_stats in
  check Alcotest.int "same signals" a.Stats.signals b.Stats.signals;
  check Alcotest.int "same traces" a.Stats.traces_constructed
    b.Stats.traces_constructed;
  check Alcotest.int "same completions" a.Stats.traces_completed
    b.Stats.traces_completed

let () =
  Alcotest.run "engine"
    [
      ( "transparency",
        [
          tc "results unchanged" `Quick test_transparency;
          tc "profile-only mode" `Quick test_profile_only_mode;
          tc "deterministic" `Quick test_deterministic_stats;
        ] );
      ( "tracing",
        [
          tc "hot loop traced" `Quick test_hot_loop_gets_traced;
          tc "coverage bounds" `Quick test_coverage_bounds;
          tc "accounting identity" `Quick test_accounting_identity;
          tc "phase change" `Quick test_phase_change_adapts;
          tc "noisy branch" `Quick test_partial_exits_on_noise;
          tc "signal metrics" `Quick test_dispatch_per_signal_metric;
        ] );
    ]
