(* The branch correlation graph: lazy construction, start-state delay,
   decay, pruning, state evaluation and signalling. *)

module Bcg = Tracegen.Bcg
module State = Tracegen.State
module Config = Tracegen.Config

let tc = Alcotest.test_case
let check = Alcotest.check

let state_t =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (State.to_string s))
    ( = )

let mk ?(delay = 2) ?(threshold = 0.97) ?(decay = 256) () =
  let signals = ref [] in
  let config =
    Config.make ~start_state_delay:delay ~threshold ~decay_period:decay ()
  in
  let bcg =
    Bcg.create config ~n_blocks:1000 ~on_signal:(fun s -> signals := s :: !signals)
  in
  (bcg, signals)

(* feed the triple (x, y, z): branch (x,y) executed, then z followed *)
let feed bcg ~x ~y ~z =
  let ctx = Bcg.visit_node bcg ~x ~y in
  let target = Bcg.visit_node bcg ~x:y ~y:z in
  Bcg.record_successor bcg ~ctx ~target;
  (ctx, target)

let test_lazy_creation () =
  let bcg, _ = mk () in
  check Alcotest.int "empty at start" 0 (Bcg.n_nodes bcg);
  let _ = Bcg.visit_node bcg ~x:1 ~y:2 in
  check Alcotest.int "one node" 1 (Bcg.n_nodes bcg);
  let _ = Bcg.visit_node bcg ~x:1 ~y:2 in
  check Alcotest.int "revisit does not duplicate" 1 (Bcg.n_nodes bcg);
  check Alcotest.bool "lookup finds it" true
    (Bcg.find_node bcg ~x:1 ~y:2 <> None);
  check Alcotest.bool "lookup misses others" true
    (Bcg.find_node bcg ~x:2 ~y:1 = None)

let test_start_state_delay () =
  let bcg, _ = mk ~delay:3 () in
  let n = Bcg.visit_node bcg ~x:1 ~y:2 in
  check state_t "newly created" State.Newly_created n.Bcg.state;
  let _ = Bcg.visit_node bcg ~x:1 ~y:2 in
  check state_t "still new after 2 visits" State.Newly_created n.Bcg.state;
  let _ = Bcg.visit_node bcg ~x:1 ~y:2 in
  check Alcotest.bool "hot after delay visits" true (State.is_hot n.Bcg.state)

let test_promotion_signal () =
  let bcg, signals = mk ~delay:2 () in
  let _ = feed bcg ~x:1 ~y:2 ~z:3 in
  (* second visit of (1,2) promotes it *)
  let _ = Bcg.visit_node bcg ~x:1 ~y:2 in
  check Alcotest.bool "promotion raised a signal" true (List.length !signals >= 1);
  let s = List.hd !signals in
  check state_t "old state was new" State.Newly_created s.Bcg.s_old_state

let test_unique_vs_strong_vs_weak () =
  let bcg, _ = mk ~delay:1 ~threshold:0.9 () in
  (* node (1,2) with single successor 3 -> unique *)
  for _ = 1 to 10 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  let n12 = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  (* state is evaluated at promotion and decay; force a recheck *)
  Bcg.recheck bcg n12;
  check state_t "single successor is unique" State.Unique n12.Bcg.state;
  (* node (5,6): 19 of 20 to 7, 1 to 8 -> strong at 0.9 *)
  for _ = 1 to 19 do
    ignore (feed bcg ~x:5 ~y:6 ~z:7)
  done;
  ignore (feed bcg ~x:5 ~y:6 ~z:8);
  let n56 = Option.get (Bcg.find_node bcg ~x:5 ~y:6) in
  Bcg.recheck bcg n56;
  check state_t "biased successor is strong" State.Strongly_correlated
    n56.Bcg.state;
  (* node (9,10): 50/50 -> weak *)
  for _ = 1 to 5 do
    ignore (feed bcg ~x:9 ~y:10 ~z:11);
    ignore (feed bcg ~x:9 ~y:10 ~z:12)
  done;
  let n910 = Option.get (Bcg.find_node bcg ~x:9 ~y:10) in
  Bcg.recheck bcg n910;
  check state_t "balanced successors are weak" State.Weakly_correlated
    n910.Bcg.state

let test_correlation_values () =
  let bcg, _ = mk ~delay:1 () in
  for _ = 1 to 3 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  ignore (feed bcg ~x:1 ~y:2 ~z:4);
  let n = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  let best = Option.get (Bcg.best_edge n) in
  check Alcotest.int "best edge is the 3-successor" 3 best.Bcg.e_z;
  check (Alcotest.float 1e-9) "correlation 3/4" 0.75 (Bcg.correlation n best)

let test_decay_halves_and_prunes () =
  let bcg, _ = mk ~delay:1 ~decay:8 () in
  (* one rare successor (weight 256 units), then decay passes *)
  ignore (feed bcg ~x:1 ~y:2 ~z:9);
  for _ = 1 to 20 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  let n = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  check Alcotest.int "two successors before pruning" 2
    (List.length n.Bcg.edges);
  (* the rare edge's 256 units need 8 halvings to clear — the paper's
     2048-execution history clearing, scaled to this decay period *)
  for _ = 1 to 600 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  check Alcotest.int "rare edge pruned after decays" 1
    (List.length n.Bcg.edges);
  Bcg.recheck bcg n;
  check state_t "node becomes unique again" State.Unique n.Bcg.state

let test_decay_preserves_ordering () =
  let bcg, _ = mk ~delay:1 ~decay:1_000_000 () in
  for _ = 1 to 7 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  for _ = 1 to 3 do
    ignore (feed bcg ~x:1 ~y:2 ~z:4)
  done;
  let n = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  let weight_of z =
    match Bcg.find_edge n z with Some e -> e.Bcg.weight | None -> 0
  in
  let w3 = weight_of 3 and w4 = weight_of 4 in
  check Alcotest.bool "3 heavier than 4 before decay" true (w3 > w4);
  Bcg.decay bcg n;
  let w3' = weight_of 3 and w4' = weight_of 4 in
  check Alcotest.bool "ordering preserved" true (w3' > w4');
  check Alcotest.int "halved" (w3 / 2) w3';
  check Alcotest.int "halved too" (w4 / 2) w4'

let test_signal_on_best_change () =
  let bcg, signals = mk ~delay:1 ~decay:1_000_000 () in
  for _ = 1 to 10 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  let n = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  Bcg.recheck bcg n;
  let before = List.length !signals in
  (* successor flips to 4 *)
  for _ = 1 to 20 do
    ignore (feed bcg ~x:1 ~y:2 ~z:4)
  done;
  Bcg.recheck bcg n;
  check Alcotest.bool "best change raised a signal" true
    (List.length !signals > before);
  let s = List.hd !signals in
  check Alcotest.bool "flagged as best change" true s.Bcg.s_best_changed

let test_counter_saturation () =
  let bcg, _ = mk ~delay:1 ~decay:1_000_000 () in
  for _ = 1 to 100_000 do
    ignore (feed bcg ~x:1 ~y:2 ~z:3)
  done;
  let n = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  let e = Option.get (Bcg.best_edge n) in
  check Alcotest.bool "weight saturates at counter_max" true
    (e.Bcg.weight <= (Config.counter_max Config.default))

let test_preds_maintained () =
  let bcg, _ = mk ~delay:1 () in
  ignore (feed bcg ~x:1 ~y:2 ~z:3);
  let n23 = Option.get (Bcg.find_node bcg ~x:2 ~y:3) in
  let n12 = Option.get (Bcg.find_node bcg ~x:1 ~y:2) in
  check Alcotest.bool "pred registered" true (List.memq n12 n23.Bcg.preds)

(* qcheck: correlations form a probability distribution *)
let prop_distribution =
  QCheck.Test.make ~name:"edge correlations sum to 1" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 4))
    (fun successors ->
      let bcg, _ = mk ~delay:1 ~decay:64 () in
      List.iter (fun z -> ignore (feed bcg ~x:1 ~y:2 ~z:(10 + z))) successors;
      match Bcg.find_node bcg ~x:1 ~y:2 with
      | None -> false
      | Some n ->
          let total =
            List.fold_left (fun acc e -> acc +. Bcg.correlation n e) 0.0 n.Bcg.edges
          in
          n.Bcg.edges = [] || abs_float (total -. 1.0) < 1e-9)

let prop_correlation_bounds =
  QCheck.Test.make ~name:"correlations stay in [0,1] under decay" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (int_range 0 3))
    (fun successors ->
      let bcg, _ = mk ~delay:1 ~decay:16 () in
      List.iter (fun z -> ignore (feed bcg ~x:1 ~y:2 ~z:(10 + z))) successors;
      match Bcg.find_node bcg ~x:1 ~y:2 with
      | None -> false
      | Some n ->
          List.for_all
            (fun e ->
              let c = Bcg.correlation n e in
              c >= 0.0 && c <= 1.0)
            n.Bcg.edges)

let () =
  Alcotest.run "bcg"
    [
      ( "construction",
        [
          tc "lazy creation" `Quick test_lazy_creation;
          tc "start state delay" `Quick test_start_state_delay;
          tc "preds maintained" `Quick test_preds_maintained;
        ] );
      ( "states",
        [
          tc "promotion signal" `Quick test_promotion_signal;
          tc "unique/strong/weak" `Quick test_unique_vs_strong_vs_weak;
          tc "correlation values" `Quick test_correlation_values;
          tc "signal on best change" `Quick test_signal_on_best_change;
        ] );
      ( "decay",
        [
          tc "halves and prunes" `Quick test_decay_halves_and_prunes;
          tc "preserves ordering" `Quick test_decay_preserves_ordering;
          tc "counter saturation" `Quick test_counter_saturation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_distribution;
          QCheck_alcotest.to_alcotest prop_correlation_bounds;
        ] );
    ]
