(* The pluggable dispatch backends and the multi-workload session layer:

   - each pinned backend (interp / profile / trace) yields a VM result
     bit-identical to the plain interpreter on every registered workload;
   - backend selection follows the health ladder, counting only genuine
     strategy changes, and promotion out of interp-only resets the
     profiler context;
   - the resumable interpreter handle replays exactly the same stream as
     a one-shot run, whatever the batch size;
   - sessions share a trace cache per layout with observable
     cross-session reuse, preserving bit-identical results (also under a
     chaos fault schedule);
   - the Health edge cases: forgiveness exactly at the clean-window
     boundary, and strike budgets resetting across a demote + recover
     cycle. *)

module Config = Tracegen.Config
module Engine = Tracegen.Engine
module Session = Tracegen.Session
module Health = Tracegen.Health
module Bcg = Tracegen.Bcg
module Profiler = Tracegen.Profiler
module Stats = Tracegen.Stats
module Interp = Vm.Interp

let tc = Alcotest.test_case
let check = Alcotest.check

let fingerprint = Harness.Chaos.fingerprint

let compress_layout =
  lazy
    (let w = Workloads.Compress.workload in
     Cfg.Layout.build (w.Workloads.Workload.build ~size:500))

(* --------------------------------------------------------------- *)
(* pinned-backend equivalence                                        *)
(* --------------------------------------------------------------- *)

(* every registered workload, every backend: the overlay promise *)
let test_pinned_equivalence () =
  let max_instructions = 120_000 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let layout =
        Cfg.Layout.build (Workloads.Workload.build_default w)
      in
      let baseline = Interp.run_plain ~max_instructions layout in
      List.iter
        (fun k ->
          let r = Engine.run ~max_instructions ~backend:k layout in
          check Alcotest.bool
            (Printf.sprintf "%s/%s identical" w.Workloads.Workload.name
               (Engine.backend_kind_name k))
            true
            (fingerprint baseline = fingerprint r.Engine.vm_result);
          let s = r.Engine.run_stats in
          (match k with
          | Engine.Interp ->
              check Alcotest.int "interp: no signals" 0 s.Stats.signals;
              check Alcotest.int "interp: no trace dispatches" 0
                s.Stats.trace_dispatches;
              check Alcotest.int "interp: every dispatch is a block dispatch"
                baseline.Interp.block_dispatches s.Stats.block_dispatches
          | Engine.Profile ->
              check Alcotest.int "profile: no trace dispatches" 0
                s.Stats.trace_dispatches
          | Engine.Trace | Engine.Microir -> ());
          check Alcotest.int "pinned engines never switch" 0
            (Engine.backend_switches r.Engine.engine))
        Engine.backends)
    Workloads.Registry.all

let test_backend_kind_names () =
  List.iter
    (fun k ->
      let name = Engine.backend_kind_name k in
      check
        (Alcotest.option Alcotest.bool)
        ("roundtrip " ^ name) (Some true)
        (Option.map (fun k' -> k' = k) (Engine.backend_kind_of_string name));
      let (module B : Tracegen.Backend.S) = Engine.implementation k in
      check Alcotest.string "module name matches kind" name B.name;
      check Alcotest.bool "describe is not empty" true
        (String.length B.describe > 0))
    Engine.backends;
  check
    (Alcotest.option Alcotest.bool)
    "unknown name rejected" None
    (Option.map (fun _ -> true) (Engine.backend_kind_of_string "jit"))

(* an unpinned engine starts on the backend the config implies *)
let test_unpinned_selection () =
  let layout = Lazy.force compress_layout in
  let e = Engine.create layout in
  check Alcotest.string "default: trace backend" "trace"
    (Engine.backend_name e);
  check Alcotest.bool "not pinned" false (Engine.backend_pinned e);
  let e2 =
    Engine.create ~config:(Config.make ~build_traces:false ()) layout
  in
  check Alcotest.string "build_traces off: profile backend" "profile"
    (Engine.backend_name e2);
  let e3 = Engine.create ~backend:Engine.Interp layout in
  check Alcotest.bool "pinned" true (Engine.backend_pinned e3)

(* --------------------------------------------------------------- *)
(* resumable interpreter                                             *)
(* --------------------------------------------------------------- *)

let test_stepped_equivalence () =
  let layout = Lazy.force compress_layout in
  let stream_once = ref [] in
  let once =
    Interp.run layout ~on_block:(fun g -> stream_once := g :: !stream_once)
  in
  (* odd batch size, so batches straddle calls and returns *)
  let stream_stepped = ref [] in
  let h =
    Interp.start layout ~on_block:(fun g ->
        stream_stepped := g :: !stream_stepped)
  in
  let batches = ref 0 in
  while Interp.running h do
    ignore (Interp.step_blocks h 7);
    incr batches
  done;
  let stepped = Interp.finish h in
  check Alcotest.bool "many batches" true (!batches > 1);
  check Alcotest.bool "identical result" true
    (fingerprint once = fingerprint stepped);
  check (Alcotest.list Alcotest.int) "identical dispatch stream"
    !stream_once !stream_stepped;
  (* finish is idempotent; step_blocks on a stopped handle is a no-op *)
  check Alcotest.int "no more blocks" 0 (Interp.step_blocks h 10);
  check Alcotest.bool "finish idempotent" true
    (fingerprint (Interp.finish h) = fingerprint stepped)

let test_stepped_trap () =
  (* a division by zero traps mid-step and is absorbed by the handle *)
  let open Workloads.Dsl in
  let module S = Bytecode.Structured in
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:[ ret (i 1 /! i 0) ] ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  let layout = Cfg.Layout.build program in
  let h = Interp.start layout ~on_block:(fun _ -> ()) in
  ignore (Interp.step_blocks h max_int);
  check Alcotest.bool "stopped" false (Interp.running h);
  match (Interp.result_of h).Interp.outcome with
  | Interp.Trapped (Interp.Division_by_zero, _) -> ()
  | _ -> Alcotest.fail "expected a division-by-zero trap"

(* --------------------------------------------------------------- *)
(* ladder-driven backend switching                                   *)
(* --------------------------------------------------------------- *)

(* demote to interp-only by striking the ladder directly, recover by
   clean dispatches, and observe: the switch count, and the profiler
   context forgotten on promotion out of interp-only *)
let test_promotion_resets_profiler () =
  let layout = Lazy.force compress_layout in
  let config =
    Config.make ~build_traces:false ~self_heal:true ~heal_demote_after:1
      ~heal_recover_after:3 ()
  in
  let e = Engine.create ~config layout in
  check Alcotest.string "starts on profile" "profile" (Engine.backend_name e);
  (* profile a short stream: context is (1,2) afterwards *)
  List.iter (Engine.on_block e) [ 0; 1; 2 ];
  let bcg = Profiler.bcg (Engine.profiler e) in
  check Alcotest.bool "node (1,2) profiled" true
    (Bcg.find_node bcg ~x:1 ~y:2 <> None);
  (* two direct strikes with demote_after=1: full -> profiling -> interp *)
  ignore (Health.strike (Engine.health e));
  ignore (Health.strike (Engine.health e));
  check Alcotest.bool "ladder at interp-only" true
    (Health.level (Engine.health e) = Health.Interp_only);
  (* three unprofiled dispatches fill the recovery window; the promotion
     out of interp-only resets the profiler context *)
  List.iter (Engine.on_block e) [ 3; 4; 5 ];
  (* the promotion lands mid-dispatch, so block 5 itself still ran on
     the interp backend; re-selection happens at the NEXT observed
     block *)
  check Alcotest.string "still on interp right after promoting" "interp"
    (Engine.backend_name e);
  List.iter (Engine.on_block e) [ 6; 7 ];
  check Alcotest.int "two genuine switches (profile->interp->profile)" 2
    (Engine.backend_switches e);
  check Alcotest.bool "stale context not linked across the reset" true
    (Bcg.find_node bcg ~x:5 ~y:6 = None);
  check Alcotest.bool "profiling resumed with a fresh context" true
    (Bcg.find_node bcg ~x:6 ~y:7 <> None);
  check Alcotest.bool "pre-demotion history kept" true
    (Bcg.find_node bcg ~x:1 ~y:2 <> None);
  check Alcotest.int "skipped dispatches counted" 3
    (Profiler.skipped (Engine.profiler e))

(* --------------------------------------------------------------- *)
(* health edge cases                                                 *)
(* --------------------------------------------------------------- *)

let test_forgiveness_boundary () =
  (* strikes are forgiven at exactly recover_after clean dispatches, not
     one earlier *)
  let h = Health.create ~demote_after:3 ~recover_after:5 in
  ignore (Health.strike h);
  ignore (Health.strike h);
  check Alcotest.int "two strikes pending" 2 (Health.strikes h);
  for _ = 1 to 4 do
    ignore (Health.clean_dispatch h)
  done;
  (* one dispatch short of the window: a third strike still demotes *)
  check Alcotest.int "still pending at window-1" 2 (Health.strikes h);
  (match Health.clean_dispatch h with
  | Health.Stay -> ()
  | Health.Changed _ -> Alcotest.fail "forgiveness must not change level");
  check Alcotest.int "forgiven at exactly the window" 0 (Health.strikes h);
  check Alcotest.bool "still at full tracing" false (Health.is_degraded h);
  (* the same sequence, one clean dispatch shorter, demotes instead *)
  let h2 = Health.create ~demote_after:3 ~recover_after:5 in
  ignore (Health.strike h2);
  ignore (Health.strike h2);
  for _ = 1 to 4 do
    ignore (Health.clean_dispatch h2)
  done;
  (match Health.strike h2 with
  | Health.Changed (Health.Full_tracing, Health.Profiling_only) -> ()
  | _ -> Alcotest.fail "third strike inside the window must demote")

let test_strikes_across_demote_recover () =
  (* each demotion and each promotion grants the new level a fresh
     strike budget *)
  let h = Health.create ~demote_after:2 ~recover_after:3 in
  ignore (Health.strike h);
  (match Health.strike h with
  | Health.Changed (Health.Full_tracing, Health.Profiling_only) -> ()
  | _ -> Alcotest.fail "second strike demotes");
  check Alcotest.int "budget reset after demotion" 0 (Health.strikes h);
  ignore (Health.strike h);
  check Alcotest.int "one strike at profiling-only" 1 (Health.strikes h);
  (* recover: the strike from the degraded level must not survive *)
  ignore (Health.clean_dispatch h);
  ignore (Health.clean_dispatch h);
  (match Health.clean_dispatch h with
  | Health.Changed (Health.Profiling_only, Health.Full_tracing) -> ()
  | _ -> Alcotest.fail "third clean dispatch promotes");
  check Alcotest.int "budget reset after promotion" 0 (Health.strikes h);
  ignore (Health.strike h);
  (match Health.strike h with
  | Health.Changed (Health.Full_tracing, Health.Profiling_only) -> ()
  | _ -> Alcotest.fail "fresh budget demotes on the second strike again");
  check Alcotest.int "demotions counted" 2 (Health.demotions h);
  check Alcotest.int "promotions counted" 1 (Health.promotions h)

(* --------------------------------------------------------------- *)
(* sessions                                                          *)
(* --------------------------------------------------------------- *)

let test_session_sharing () =
  let layout = Lazy.force compress_layout in
  let baseline = Interp.run_plain layout in
  let session = Session.create ~batch:512 () in
  let a = Session.add ~name:"a" session layout in
  let b = Session.add ~name:"b" session layout in
  check Alcotest.int "one shared cache" 1
    (List.length (Session.caches session));
  Session.run session;
  check Alcotest.bool "both finished" true
    (Session.finished a && Session.finished b);
  List.iter
    (fun m ->
      check Alcotest.bool
        (Session.member_name m ^ " identical to solo interpreter")
        true
        (fingerprint baseline = fingerprint (Session.vm_result m)))
    (Session.members session);
  check Alcotest.bool "cross-session trace entries observed" true
    (Session.cross_entries session > 0);
  (* the members really share: the engines report the same totals *)
  check Alcotest.bool "engines share the cache" true
    (Engine.cache (Session.engine a) == Engine.cache (Session.engine b));
  (* distinct layouts get distinct caches *)
  let other =
    Cfg.Layout.build
      (Workloads.Compress.workload.Workloads.Workload.build ~size:300)
  in
  ignore (Session.add ~name:"c" session other);
  check Alcotest.int "second layout, second cache" 2
    (List.length (Session.caches session));
  Session.run session

let test_session_solo_counts_nothing () =
  (* a single-member session never counts cross reuse *)
  let layout = Lazy.force compress_layout in
  let session = Session.create () in
  let m = Session.add session layout in
  Session.run session;
  check Alcotest.bool "finished" true (Session.finished m);
  check Alcotest.int "no cross installs" 0 (Session.cross_installs session);
  check Alcotest.int "no cross entries" 0 (Session.cross_entries session)

let test_session_chaos_equivalence () =
  (* interleaving under an armed fault schedule keeps every member's
     result identical to the solo interpreter *)
  let layout = Lazy.force compress_layout in
  let baseline = Interp.run_plain layout in
  let config = Harness.Chaos.config ~seed:5 () in
  let session = Session.create ~batch:256 () in
  for u = 1 to 2 do
    ignore (Session.add ~name:(Printf.sprintf "u%d" u) ~config session layout)
  done;
  Session.run session;
  List.iter
    (fun m ->
      check Alcotest.bool
        (Session.member_name m ^ " identical under chaos")
        true
        (fingerprint baseline = fingerprint (Session.vm_result m)))
    (Session.members session)

let test_session_validation () =
  (match Session.create ~batch:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "batch=0 must be rejected");
  (* a cache from one layout cannot serve an engine over another *)
  let layout = Lazy.force compress_layout in
  let other =
    Cfg.Layout.build
      (Workloads.Compress.workload.Workloads.Workload.build ~size:300)
  in
  let cache = Tracegen.Trace_cache.create layout in
  match Engine.create ~cache other with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign-layout cache must be rejected"

let () =
  Alcotest.run "backends"
    [
      ( "equivalence",
        [
          tc "pinned backends vs interpreter" `Quick test_pinned_equivalence;
          tc "kind names and implementations" `Quick test_backend_kind_names;
          tc "unpinned selection" `Quick test_unpinned_selection;
        ] );
      ( "stepping",
        [
          tc "batched stepping replays the stream" `Quick
            test_stepped_equivalence;
          tc "trap mid-step" `Quick test_stepped_trap;
        ] );
      ( "ladder",
        [
          tc "promotion resets the profiler" `Quick
            test_promotion_resets_profiler;
          tc "forgiveness at the window boundary" `Quick
            test_forgiveness_boundary;
          tc "strike budgets across demote+recover" `Quick
            test_strikes_across_demote_recover;
        ] );
      ( "sessions",
        [
          tc "shared cache, identical results" `Quick test_session_sharing;
          tc "solo counts no cross reuse" `Quick
            test_session_solo_counts_nothing;
          tc "chaos equivalence" `Quick test_session_chaos_equivalence;
          tc "validation" `Quick test_session_validation;
        ] );
    ]
