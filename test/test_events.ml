(* The observability layer: the typed event stream and the metrics
   registry, both in isolation and wired through a full engine run. *)

open Workloads.Dsl
module S = Bytecode.Structured
module Engine = Tracegen.Engine
module Events = Tracegen.Events
module Metrics = Tracegen.Metrics
module Config = Tracegen.Config
module Stats = Tracegen.Stats

let tc = Alcotest.test_case
let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* the stream in isolation                                              *)
(* ------------------------------------------------------------------ *)

let some_payload = Events.Decay_pass { decays = 1 }

let test_disabled_is_noop () =
  let t = Events.create () in
  check Alcotest.bool "fresh stream is disabled" false (Events.enabled t);
  Events.emit t some_payload;
  Events.emit t some_payload;
  check Alcotest.int "nothing delivered" 0 (Events.emitted t);
  (* subscribing then unsubscribing returns to the disabled state *)
  let s = Events.subscribe t (fun _ -> ()) in
  check Alcotest.bool "enabled with a subscriber" true (Events.enabled t);
  Events.emit t some_payload;
  Events.unsubscribe t s;
  check Alcotest.bool "disabled again" false (Events.enabled t);
  Events.emit t some_payload;
  check Alcotest.int "still nothing counted after unsubscribe" 1
    (Events.emitted t)

let test_subscriber_ordering () =
  let t = Events.create () in
  let order = ref [] in
  let _a = Events.subscribe t (fun _ -> order := "a" :: !order) in
  let _b = Events.subscribe t (fun _ -> order := "b" :: !order) in
  let _c = Events.subscribe t (fun _ -> order := "c" :: !order) in
  Events.emit t some_payload;
  check
    Alcotest.(list string)
    "delivered in subscription order" [ "a"; "b"; "c" ] (List.rev !order);
  Events.emit t some_payload;
  check Alcotest.int "every subscriber sees every event" 6 (List.length !order)

let test_unsubscribe_middle () =
  let t = Events.create () in
  let seen = ref [] in
  let _a = Events.subscribe t (fun _ -> seen := "a" :: !seen) in
  let b = Events.subscribe t (fun _ -> seen := "b" :: !seen) in
  let _c = Events.subscribe t (fun _ -> seen := "c" :: !seen) in
  Events.unsubscribe t b;
  (* unknown/duplicate unsubscribes are ignored *)
  Events.unsubscribe t b;
  Events.emit t some_payload;
  check
    Alcotest.(list string)
    "remaining subscribers keep their order" [ "a"; "c" ] (List.rev !seen)

let test_time_stamping () =
  let t = Events.create () in
  let times = ref [] in
  let _s = Events.subscribe t (fun e -> times := e.Events.time :: !times) in
  Events.set_now t 7;
  Events.emit t some_payload;
  Events.set_now t 42;
  Events.emit t some_payload;
  check Alcotest.(list int) "events carry the clock" [ 7; 42 ] (List.rev !times);
  check Alcotest.int "now readable" 42 (Events.now t)

let test_kind_tags () =
  let tags =
    List.map Events.kind
      [
        Events.Signal_raised
          {
            x = 0;
            y = 1;
            old_state = Tracegen.State.Newly_created;
            new_state = Tracegen.State.Unique;
            best_changed = true;
          };
        Events.Trace_constructed
          {
            trace_id = 0;
            first = 0;
            n_blocks = 1;
            n_instrs = 1;
            prob = 1.0;
            reused = false;
          };
        Events.Trace_replaced { first = 0; head = 1; trace_id = 0 };
        Events.Trace_entered { trace_id = 0; chained = false };
        Events.Side_exit
          { trace_id = 0; at_block = 0; matched_blocks = 1; matched_instrs = 1 };
        Events.Trace_completed { trace_id = 0; n_blocks = 1; n_instrs = 1 };
        Events.Decay_pass { decays = 1 };
        Events.Phase_snapshot { Metrics.at = 0; values = [||] };
      ]
  in
  check
    Alcotest.(list string)
    "stable JSONL tags"
    [
      "signal_raised";
      "trace_constructed";
      "trace_replaced";
      "trace_entered";
      "side_exit";
      "trace_completed";
      "decay_pass";
      "phase_snapshot";
    ]
    tags

(* ------------------------------------------------------------------ *)
(* the registry in isolation                                            *)
(* ------------------------------------------------------------------ *)

let test_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counter accumulates" 5 (Metrics.counter_value c);
  check Alcotest.string "counter keeps its name" "hits" (Metrics.counter_name c);
  (* find-or-register returns the same cell *)
  let c' = Metrics.counter m "hits" in
  Metrics.incr c';
  check Alcotest.int "same cell" 6 (Metrics.counter_value c);
  let g = ref 10 in
  Metrics.gauge m "depth" (fun () -> !g);
  check Alcotest.(option int) "gauge polls" (Some 10) (Metrics.read m "depth");
  g := 11;
  check Alcotest.(option int) "gauge re-polls" (Some 11) (Metrics.read m "depth");
  check Alcotest.(option int) "counter readable by name" (Some 6)
    (Metrics.read m "hits");
  check Alcotest.(option int) "unknown name" None (Metrics.read m "nope");
  check
    Alcotest.(list string)
    "registration order" [ "hits"; "depth" ] (Metrics.names m);
  (* name clashes are rejected *)
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics.gauge: hits already registered") (fun () ->
      Metrics.gauge m "hits" (fun () -> 0));
  Alcotest.check_raises "counter over gauge"
    (Invalid_argument "Metrics.counter: depth is a gauge") (fun () ->
      ignore (Metrics.counter m "depth"))

let test_periodic_snapshots () =
  let m = Metrics.create ~period:3 () in
  let c = Metrics.counter m "ticks_seen" in
  let reported = ref 0 in
  Metrics.on_snapshot m (fun _ -> incr reported);
  for _ = 1 to 10 do
    Metrics.incr c;
    Metrics.tick m
  done;
  (* snapshots at ticks 3, 6, 9 *)
  let snaps = Metrics.snapshots m in
  check Alcotest.int "three periodic snapshots" 3 (List.length snaps);
  check Alcotest.(list int) "taken at the period boundaries" [ 3; 6; 9 ]
    (List.map (fun s -> s.Metrics.at) snaps);
  check Alcotest.int "callback saw each" 3 !reported;
  List.iter
    (fun s ->
      match s.Metrics.values with
      | [| ("ticks_seen", v) |] ->
          check Alcotest.int "value captured at the boundary" s.Metrics.at v
      | _ -> Alcotest.fail "unexpected snapshot shape")
    snaps;
  check Alcotest.int "clock ran to 10" 10 (Metrics.ticks m)

let test_disabled_period_no_snapshots () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "c");
  for _ = 1 to 1000 do
    Metrics.tick m
  done;
  check Alcotest.int "period 0 never snapshots" 0
    (List.length (Metrics.snapshots m));
  let s = Metrics.force_snapshot m in
  check Alcotest.int "forced snapshot at the current tick" 1000 s.Metrics.at;
  check Alcotest.int "forced snapshot joins the series" 1
    (List.length (Metrics.snapshots m))

let test_set_period_midrun () =
  let m = Metrics.create ~period:10 () in
  let c = Metrics.counter m "ticks_seen" in
  for _ = 1 to 7 do
    Metrics.incr c;
    Metrics.tick m
  done;
  (* 7 ticks accumulated toward the snapshot at 10; changing the period
     must flush them at the change point rather than drop them *)
  Metrics.set_period m 5;
  (match Metrics.snapshots m with
  | [ s ] -> check Alcotest.int "flushed at the change point" 7 s.Metrics.at
  | l -> Alcotest.failf "expected one snapshot, got %d" (List.length l));
  for _ = 1 to 5 do
    Metrics.incr c;
    Metrics.tick m
  done;
  (* the new period counts from the change point: next boundary at 12 *)
  check Alcotest.(list int) "new period counts from the change" [ 7; 12 ]
    (List.map (fun s -> s.Metrics.at) (Metrics.snapshots m));
  (* immediately after a snapshot nothing has accumulated: no flush *)
  Metrics.set_period m 3;
  check Alcotest.int "no pending ticks, no flush" 2
    (List.length (Metrics.snapshots m))

(* ------------------------------------------------------------------ *)
(* histograms                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_empty () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  check Alcotest.int "no observations" 0 (Metrics.hist_count h);
  check Alcotest.int "zero sum" 0 (Metrics.hist_sum h);
  check (Alcotest.float 1e-9) "zero mean" 0.0 (Metrics.hist_mean h);
  check Alcotest.int "p0 of empty" 0 (Metrics.percentile h 0.0);
  check Alcotest.int "p50 of empty" 0 (Metrics.percentile h 50.0);
  check Alcotest.int "p100 of empty" 0 (Metrics.percentile h 100.0);
  check Alcotest.(option int) "reads as its count" (Some 0)
    (Metrics.read m "lat")

let test_histogram_single_value () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for _ = 1 to 9 do
    Metrics.record h 7
  done;
  check Alcotest.int "count" 9 (Metrics.hist_count h);
  check Alcotest.int "sum" 63 (Metrics.hist_sum h);
  check Alcotest.int "min" 7 (Metrics.hist_min h);
  check Alcotest.int "max" 7 (Metrics.hist_max h);
  (* a single-valued histogram answers every percentile exactly: the
     bucket edge is clamped to the observed min/max *)
  check Alcotest.int "p0 exact" 7 (Metrics.percentile h 0.0);
  check Alcotest.int "p50 exact" 7 (Metrics.percentile h 50.0);
  check Alcotest.int "p100 exact" 7 (Metrics.percentile h 100.0)

let test_histogram_buckets_and_overflow () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:4 "small" in
  (* 4 buckets: [<=0], [1,1], [2,3] and the overflow [4, inf) *)
  check Alcotest.int "bucket count fixed at registration" 4
    (Metrics.n_buckets h);
  List.iter (Metrics.record h) [ -5; 0; 1; 2; 3; 4; 1000 ];
  check Alcotest.int "negatives clamp into bucket 0" 2
    (Metrics.bucket_count h 0);
  check Alcotest.int "bucket [1,1]" 1 (Metrics.bucket_count h 1);
  check Alcotest.int "bucket [2,3]" 2 (Metrics.bucket_count h 2);
  check Alcotest.int "overflow bucket catches the rest" 2
    (Metrics.bucket_count h 3);
  check
    Alcotest.(pair int int)
    "overflow bounds" (4, max_int)
    (Metrics.bucket_bounds h 3);
  check Alcotest.int "min saw the clamp" 0 (Metrics.hist_min h);
  check Alcotest.int "max tracked through overflow" 1000 (Metrics.hist_max h);
  check Alcotest.int "p0 = min" 0 (Metrics.percentile h 0.0);
  (* rank ceil(0.5 * 7) = 4 lands in bucket [2,3]: upper edge 3 *)
  check Alcotest.int "p50 upper bound" 3 (Metrics.percentile h 50.0);
  check Alcotest.int "p100 = max, not the bucket edge" 1000
    (Metrics.percentile h 100.0);
  (* find-or-register returns the same cell *)
  let h' = Metrics.histogram m "small" in
  Metrics.record h' 2;
  check Alcotest.int "same cell" 8 (Metrics.hist_count h)

let test_histogram_in_snapshot () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "len" in
  List.iter (Metrics.record h) [ 1; 2; 3; 4; 100 ];
  let s = Metrics.force_snapshot m in
  let fields = Array.to_list (Array.map fst s.Metrics.values) in
  check
    Alcotest.(list string)
    "six flattened fields"
    [ "len.count"; "len.sum"; "len.p50"; "len.p90"; "len.p99"; "len.max" ]
    fields;
  let get name =
    match Array.find_opt (fun (n, _) -> n = name) s.Metrics.values with
    | Some (_, v) -> v
    | None -> Alcotest.failf "missing %s" name
  in
  check Alcotest.int "count field" 5 (get "len.count");
  check Alcotest.int "sum field" 110 (get "len.sum");
  check Alcotest.int "p50 field" 3 (get "len.p50");
  check Alcotest.int "max field" 100 (get "len.max");
  (* a histogram cannot be re-registered as a counter *)
  Alcotest.check_raises "counter over histogram"
    (Invalid_argument "Metrics.counter: len is a histogram") (fun () ->
      ignore (Metrics.counter m "len"))

(* ------------------------------------------------------------------ *)
(* wired through the engine                                             *)
(* ------------------------------------------------------------------ *)

let layout_of body =
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I ~body ();
  let program = S.link p ~entry:"main" in
  Bytecode.Verify.verify_program program;
  Cfg.Layout.build program

let hot_loop =
  layout_of
    [
      decl_i "s" (i 0);
      for_ "k" (i 0) (i 20_000)
        [ set "s" ((v "s" +! v "k") &! i 0xFFFFF) ];
      ret (v "s");
    ]

let count_kinds layout config =
  let events = Events.create () in
  let tally = Hashtbl.create 8 in
  let timeline = ref [] in
  let _s =
    Events.subscribe events (fun e ->
        let k = Events.kind e.Events.payload in
        Hashtbl.replace tally k
          (1 + (try Hashtbl.find tally k with Not_found -> 0));
        timeline := e :: !timeline)
  in
  let r = Engine.run ~config ~events layout in
  (r, tally, List.rev !timeline)

let test_timeline_matches_stats () =
  let r, tally, timeline = count_kinds hot_loop Config.default in
  let s = r.Engine.run_stats in
  let count k = try Hashtbl.find tally k with Not_found -> 0 in
  check Alcotest.bool "events happened" true (timeline <> []);
  check Alcotest.int "signal events = signals counter" s.Stats.signals
    (count "signal_raised");
  check Alcotest.int "entered events = entered counter" s.Stats.traces_entered
    (count "trace_entered");
  check Alcotest.int "completed events = completed counter"
    s.Stats.traces_completed (count "trace_completed");
  check Alcotest.int "replaced events = replaced counter"
    s.Stats.traces_replaced (count "trace_replaced");
  let new_constructions =
    List.length
      (List.filter
         (fun e ->
           match e.Events.payload with
           | Events.Trace_constructed { reused = false; _ } -> true
           | _ -> false)
         timeline)
  in
  check Alcotest.int "new construction events = constructed counter"
    s.Stats.traces_constructed new_constructions;
  let in_flight =
    match Engine.active_trace r.Engine.engine with Some _ -> 1 | None -> 0
  in
  check Alcotest.int "side exits account for the rest"
    (s.Stats.traces_entered - s.Stats.traces_completed - in_flight)
    (count "side_exit");
  (* timestamps are monotone in dispatch time *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Events.time <= b.Events.time && monotone rest
    | _ -> true
  in
  check Alcotest.bool "timeline is monotone" true (monotone timeline)

let test_run_without_subscribers_unchanged () =
  (* an engine run with a never-subscribed stream must behave identically
     to one with no stream passed at all *)
  let a = (Engine.run hot_loop).Engine.run_stats in
  let events = Events.create () in
  let b = (Engine.run ~events hot_loop).Engine.run_stats in
  check Alcotest.int "same dispatches" (Stats.total_dispatches a)
    (Stats.total_dispatches b);
  check Alcotest.int "same completions" a.Stats.traces_completed
    b.Stats.traces_completed;
  check Alcotest.int "no events delivered" 0 (Events.emitted events)

let snapshot_series config =
  let events = Events.create () in
  let series = ref [] in
  let _s =
    Events.subscribe events (fun e ->
        match e.Events.payload with
        | Events.Phase_snapshot s -> series := s :: !series
        | _ -> ())
  in
  let r = Engine.run ~config ~events hot_loop in
  (r, List.rev !series)

let test_deterministic_snapshot_series () =
  let config = Config.make ~snapshot_period:5_000 () in
  let _, a = snapshot_series config in
  let _, b = snapshot_series config in
  check Alcotest.bool "snapshots were taken" true (a <> []);
  check Alcotest.int "same series length" (List.length a) (List.length b);
  List.iter2
    (fun (x : Metrics.snapshot) (y : Metrics.snapshot) ->
      check Alcotest.int "same tick" x.Metrics.at y.Metrics.at;
      check Alcotest.bool "same values" true (x.Metrics.values = y.Metrics.values))
    a b

let test_snapshot_series_on_engine () =
  (* the engine registry's own series matches what the stream delivered *)
  let config = Config.make ~snapshot_period:5_000 () in
  let r, streamed = snapshot_series config in
  let own = Metrics.snapshots (Engine.metrics r.Engine.engine) in
  check Alcotest.int "registry series = streamed series"
    (List.length own) (List.length streamed);
  List.iter2
    (fun (x : Metrics.snapshot) (y : Metrics.snapshot) ->
      check Alcotest.int "same tick" x.Metrics.at y.Metrics.at)
    own streamed;
  (* snapshots poll the final counters consistently: the last snapshot's
     gauge values never exceed the end-of-run stats *)
  match List.rev own with
  | [] -> Alcotest.fail "expected snapshots"
  | last :: _ ->
      let final = r.Engine.run_stats in
      let get name =
        match
          Array.find_opt (fun (n, _) -> n = name) last.Metrics.values
        with
        | Some (_, v) -> v
        | None -> Alcotest.failf "missing gauge %s" name
      in
      check Alcotest.bool "completed monotone" true
        (get "traces_completed" <= final.Stats.traces_completed);
      check Alcotest.bool "dispatch gauges monotone" true
        (get "block_dispatches" + get "trace_dispatches"
        <= Stats.total_dispatches final)

let () =
  Alcotest.run "events"
    [
      ( "stream",
        [
          tc "disabled stream is a no-op" `Quick test_disabled_is_noop;
          tc "subscription order" `Quick test_subscriber_ordering;
          tc "unsubscribe keeps order" `Quick test_unsubscribe_middle;
          tc "time stamping" `Quick test_time_stamping;
          tc "kind tags" `Quick test_kind_tags;
        ] );
      ( "metrics",
        [
          tc "counters and gauges" `Quick test_counters_and_gauges;
          tc "periodic snapshots" `Quick test_periodic_snapshots;
          tc "period 0 disables" `Quick test_disabled_period_no_snapshots;
          tc "mid-run period change flushes" `Quick test_set_period_midrun;
        ] );
      ( "histograms",
        [
          tc "empty histogram" `Quick test_histogram_empty;
          tc "single value answers exactly" `Quick
            test_histogram_single_value;
          tc "buckets and overflow" `Quick test_histogram_buckets_and_overflow;
          tc "snapshot flattening" `Quick test_histogram_in_snapshot;
        ] );
      ( "engine",
        [
          tc "timeline matches stats" `Quick test_timeline_matches_stats;
          tc "no subscribers, no change" `Quick
            test_run_without_subscribers_unchanged;
          tc "deterministic snapshot series" `Quick
            test_deterministic_snapshot_series;
          tc "registry series matches stream" `Quick
            test_snapshot_series_on_engine;
        ] );
    ]
