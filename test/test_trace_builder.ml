(* Trace construction: entry-point backtracking, maximum-likelihood walks,
   probability cutting and loop unrolling, on hand-built correlation
   graphs. *)

module Bcg = Tracegen.Bcg
module State = Tracegen.State
module Config = Tracegen.Config
module Trace = Tracegen.Trace
module Trace_cache = Tracegen.Trace_cache
module Trace_builder = Tracegen.Trace_builder
module Layout = Cfg.Layout

let tc = Alcotest.test_case
let check = Alcotest.check

(* a real layout with plenty of blocks so arbitrary small gids are valid *)
let layout =
  lazy
    (let w = Workloads.Compress.workload in
     Layout.build (w.Workloads.Workload.build ~size:16))

let mk_config ?(threshold = 0.97) () =
  Config.make ~start_state_delay:1 ~threshold
    ~decay_period:1_000_000 (* no decay during these tests *) ()

let mk_bcg config =
  Bcg.create config ~n_blocks:(Lazy.force layout).Layout.n_blocks
    ~on_signal:(fun _ -> ())

let feed bcg ~x ~y ~z =
  let ctx = Bcg.visit_node bcg ~x ~y in
  let target = Bcg.visit_node bcg ~x:y ~y:z in
  Bcg.record_successor bcg ~ctx ~target

(* feed a chain of transitions n times: stream b0 b1 b2 ... bk *)
let feed_path bcg path ~times =
  for _ = 1 to times do
    let rec go = function
      | x :: (y :: z :: _ as rest) ->
          feed bcg ~x ~y ~z;
          go rest
      | _ -> ()
    in
    go path
  done

let recheck_all bcg = Bcg.iter_nodes bcg (fun n -> Bcg.recheck bcg n)

let signal_for bcg ~x ~y =
  let n = Option.get (Bcg.find_node bcg ~x ~y) in
  {
    Bcg.s_node = n;
    s_old_state = State.Newly_created;
    s_new_state = n.Bcg.state;
    s_best_changed = true;
  }

let blocks_t = Alcotest.(array int)

let test_straight_chain () =
  let config = mk_config () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  feed_path bcg [ 1; 2; 3; 4; 5; 6 ] ~times:20;
  recheck_all bcg;
  let outcome = Trace_builder.on_signal config cache (signal_for bcg ~x:3 ~y:4) in
  check Alcotest.bool "built at least one trace" true
    (outcome.Trace_builder.new_traces >= 1);
  (* backtracking reaches (1,2); the walk then covers the whole chain *)
  match Trace_cache.lookup cache ~prev:1 ~cur:2 with
  | Some tr -> check blocks_t "full chain" [| 2; 3; 4; 5; 6 |] tr.Trace.blocks
  | None -> Alcotest.fail "expected trace entered at (1,2)"

let test_stops_at_weak_branch () =
  let config = mk_config () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  (* chain 1..4 strong, then (4,5) splits 50/50 to 6 and 7 *)
  feed_path bcg [ 1; 2; 3; 4; 5 ] ~times:20;
  for _ = 1 to 10 do
    feed bcg ~x:4 ~y:5 ~z:6;
    feed bcg ~x:4 ~y:5 ~z:7
  done;
  recheck_all bcg;
  ignore (Trace_builder.on_signal config cache (signal_for bcg ~x:2 ~y:3));
  match Trace_cache.lookup cache ~prev:1 ~cur:2 with
  | Some tr ->
      check blocks_t "trace stops at the weak branch" [| 2; 3; 4; 5 |]
        tr.Trace.blocks
  | None -> Alcotest.fail "expected trace entered at (1,2)"

let test_newly_created_not_followed () =
  let config = Config.with_delay (mk_config ()) 1000 in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  feed_path bcg [ 1; 2; 3; 4 ] ~times:20;
  (* all nodes are still inside the start-state delay: no trace possible *)
  let outcome = Trace_builder.on_signal config cache (signal_for bcg ~x:1 ~y:2) in
  check Alcotest.int "no traces from cold nodes" 0
    outcome.Trace_builder.new_traces

let test_loop_unrolled_once () =
  let config = mk_config () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  (* pure loop 1 -> 2 -> 3 -> 1 ... *)
  let stream = List.concat (List.init 20 (fun _ -> [ 1; 2; 3 ])) in
  feed_path bcg stream ~times:1;
  recheck_all bcg;
  ignore (Trace_builder.on_signal config cache (signal_for bcg ~x:1 ~y:2));
  (* some loop-aligned trace must exist and be exactly two iterations *)
  let found = ref None in
  Trace_cache.iter_all cache (fun tr ->
      if Trace.n_blocks tr = 6 then found := Some tr);
  match !found with
  | Some tr ->
      check Alcotest.int "covers two iterations" 6 (Trace.n_blocks tr);
      (* tail equals the entry context: the trace chains into itself *)
      check Alcotest.int "self-chaining" tr.Trace.first (Trace.last_block tr)
  | None -> Alcotest.fail "expected an unrolled loop trace"

let test_probability_cut () =
  (* correlations of ~0.98 per step with threshold 0.97 allow only one
     multiplication: traces get cut to two blocks *)
  let config = mk_config ~threshold:0.97 () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  (* chain where each node has a 49:1 main successor (corr = 0.98) *)
  feed_path bcg [ 1; 2; 3; 4; 5; 6 ] ~times:49;
  ignore (feed bcg ~x:1 ~y:2 ~z:9);
  ignore (feed bcg ~x:2 ~y:3 ~z:9);
  ignore (feed bcg ~x:3 ~y:4 ~z:9);
  ignore (feed bcg ~x:4 ~y:5 ~z:9);
  recheck_all bcg;
  ignore (Trace_builder.on_signal config cache (signal_for bcg ~x:1 ~y:2));
  Trace_cache.iter_all cache (fun tr ->
      check Alcotest.bool
        (Printf.sprintf "trace %s short enough"
           (Trace.describe (Lazy.force layout) tr))
        true
        (Trace.n_blocks tr <= 2);
      check Alcotest.bool "probability above threshold" true
        (tr.Trace.prob >= 0.97))

let test_max_length_cap () =
  let config =
    Config.make ~start_state_delay:1 ~threshold:0.97 ~decay_period:1_000_000
      ~max_trace_blocks:4 ()
  in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  feed_path bcg [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] ~times:20;
  recheck_all bcg;
  ignore (Trace_builder.on_signal config cache (signal_for bcg ~x:5 ~y:6));
  let checked = ref 0 in
  Trace_cache.iter_all cache (fun tr ->
      incr checked;
      check Alcotest.bool "respects max_trace_blocks" true
        (Trace.n_blocks tr <= 4));
  check Alcotest.bool "some traces built" true (!checked > 0)

let test_single_transition_suppressed () =
  let config = mk_config () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  (* (1,2) strong to 3 but (2,3) is weak: only one followable transition *)
  feed_path bcg [ 1; 2; 3 ] ~times:20;
  for _ = 1 to 10 do
    feed bcg ~x:2 ~y:3 ~z:4;
    feed bcg ~x:2 ~y:3 ~z:5
  done;
  recheck_all bcg;
  let outcome = Trace_builder.on_signal config cache (signal_for bcg ~x:1 ~y:2) in
  ignore outcome;
  (* a 1-block trace would be meaningless; none may exist *)
  Trace_cache.iter_all cache (fun tr ->
      check Alcotest.bool "no single-block traces" true (Trace.n_blocks tr >= 2))

let test_entry_points_multiple_preds () =
  let config = mk_config () in
  let bcg = mk_bcg config in
  let cache = Trace_cache.create (Lazy.force layout) in
  (* two strong producers converge on (5,6): 1->2->5->6->7 and 3->4->5->6->7 *)
  feed_path bcg [ 1; 2; 5; 6; 7 ] ~times:20;
  feed_path bcg [ 3; 4; 5; 6; 7 ] ~times:20;
  recheck_all bcg;
  ignore (Trace_builder.on_signal config cache (signal_for bcg ~x:5 ~y:6));
  (* node (2,5) and (4,5) both feed (5,6), but (5,6) itself is reached
     50/50 from the two of them... each predecessor's best edge still
     points at (5,6), so both give entry points *)
  check Alcotest.bool "entry via (1,2)" true
    (Trace_cache.lookup cache ~prev:1 ~cur:2 <> None
    || Trace_cache.lookup cache ~prev:2 ~cur:5 <> None);
  check Alcotest.bool "entry via (3,4)" true
    (Trace_cache.lookup cache ~prev:3 ~cur:4 <> None
    || Trace_cache.lookup cache ~prev:4 ~cur:5 <> None)

let () =
  Alcotest.run "trace_builder"
    [
      ( "walks",
        [
          tc "straight chain" `Quick test_straight_chain;
          tc "stops at weak branch" `Quick test_stops_at_weak_branch;
          tc "cold nodes not followed" `Quick test_newly_created_not_followed;
          tc "entry points from multiple preds" `Quick
            test_entry_points_multiple_preds;
        ] );
      ( "cutting",
        [
          tc "loop unrolled once" `Quick test_loop_unrolled_once;
          tc "probability cut" `Quick test_probability_cut;
          tc "max length cap" `Quick test_max_length_cap;
          tc "single transitions suppressed" `Quick
            test_single_transition_suppressed;
        ] );
    ]
