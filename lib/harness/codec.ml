(* The one encode/decode module: every serialized artifact the system
   produces — JSONL records, the Chrome trace_event timeline, and (by
   re-export) the binary warm-start snapshot — goes through here, so
   versioning, checksumming and the round-trip oracle live in one place
   instead of being scattered per call site.  No JSON dependency is
   installed in this environment, so a minimal escaper-and-printer and
   its inverse parser live here too. *)

module Events = Tracegen.Events
module Metrics = Tracegen.Metrics
module Spans = Tracegen.Spans
module Flightrec = Tracegen.Flightrec
module Ledger = Tracegen.Ledger

(* The binary snapshot codec is Tracegen.Persist (the engine must be
   able to decode without the harness); re-exported so Codec is the
   single front door to every format. *)
module Snapshot = Tracegen.Persist

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_list of json list

let rec render_json buf = function
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_null -> Buffer.add_string buf "null"
  | J_float f ->
      (* JSON has no NaN/inf; clamp to null-ish zero *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "0"
  | J_string s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, v) ->
          if k > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape name);
          Buffer.add_string buf "\":";
          render_json buf v)
        fields;
      Buffer.add_char buf '}'
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k v ->
          if k > 0 then Buffer.add_char buf ',';
          render_json buf v)
        items;
      Buffer.add_char buf ']'

let to_string j =
  let buf = Buffer.create 256 in
  render_json buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The version registry: one bump site per format                       *)
(* ------------------------------------------------------------------ *)

(* Every top-level JSONL record (event, snapshot, lint diagnostic, sweep
   run) leads with this so downstream consumers can detect format
   drift.  Bump on any breaking change to the field sets below.
   Version 2: added it, plus the eviction [reason] field.
   Version 3: snapshots carry flattened histogram fields
   ([name.count] / [name.sum] / [name.p50] / [name.p90] / [name.p99] /
   [name.max]); span records added.
   Version 4: [cache_restored] / [snapshot_rejected] event kinds and the
   ["footprint"] eviction reason (warm-start snapshots, footprint-aware
   eviction).
   Version 5: [guards_pruned] event kind (guard-implication pruning).
   Version 6: [deopt_entered] / [osr_promoted] event kinds (on-stack
   replacement).
   Version 7: [trace_compiled] / [tier_demoted] event kinds (the
   compiled micro-IR tier).
   Version 8: flight-recorder postmortem records ([rec] = "postmortem"
   header / "event" / "span" / "metric"), decision-ledger records
   ([action] + attribution fields), and the bench baseline JSON
   ([Perf]). *)
let schema_version = 8

type format = Jsonl | Chrome_trace | Binary_snapshot

let format_name = function
  | Jsonl -> "jsonl"
  | Chrome_trace -> "chrome-trace"
  | Binary_snapshot -> "snapshot"

(* The Chrome trace_event emission below tracks the externally defined
   format, not a schema of ours; its version only moves if we change
   which fields we fill in. *)
let chrome_trace_version = 1

let version = function
  | Jsonl -> schema_version
  | Chrome_trace -> chrome_trace_version
  | Binary_snapshot -> Snapshot.snapshot_version

let versioned fields = ("schema_version", J_int schema_version) :: fields

(* ------------------------------------------------------------------ *)
(* Event timelines and metric snapshots                                 *)
(* ------------------------------------------------------------------ *)

(* One metrics snapshot: the logical time it was taken at plus every
   registered source, flattened into the object. *)
let snapshot_fields (s : Metrics.snapshot) =
  ("at", J_int s.Metrics.at)
  :: Array.to_list
       (Array.map (fun (name, v) -> (name, J_int v)) s.Metrics.values)

let snapshot_json (s : Metrics.snapshot) : json =
  J_obj (versioned (snapshot_fields s))

let snapshots_jsonl (snaps : Metrics.snapshot list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (to_string (snapshot_json s));
      Buffer.add_char buf '\n')
    snaps;
  Buffer.contents buf

(* One event as a flat object: {"event": <kind>, "time": <dispatch>, ...}
   with the payload's fields spliced in.  This is the JSONL schema
   documented in DESIGN.md — field names are stable. *)
let event_payload_fields (payload : Events.payload) : (string * json) list =
  match payload with
    | Events.Signal_raised { x; y; old_state; new_state; best_changed } ->
        [
          ("x", J_int x);
          ("y", J_int y);
          ("old_state", J_string (Tracegen.State.to_string old_state));
          ("new_state", J_string (Tracegen.State.to_string new_state));
          ("best_changed", J_bool best_changed);
        ]
    | Events.Trace_constructed { trace_id; first; n_blocks; n_instrs; prob; reused }
      ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("n_blocks", J_int n_blocks);
          ("n_instrs", J_int n_instrs);
          ("prob", J_float prob);
          ("reused", J_bool reused);
        ]
    | Events.Trace_replaced { first; head; trace_id } ->
        [ ("first", J_int first); ("head", J_int head); ("trace_id", J_int trace_id) ]
    | Events.Trace_entered { trace_id; chained } ->
        [ ("trace_id", J_int trace_id); ("chained", J_bool chained) ]
    | Events.Side_exit { trace_id; at_block; matched_blocks; matched_instrs } ->
        [
          ("trace_id", J_int trace_id);
          ("at_block", J_int at_block);
          ("matched_blocks", J_int matched_blocks);
          ("matched_instrs", J_int matched_instrs);
        ]
    | Events.Trace_completed { trace_id; n_blocks; n_instrs } ->
        [
          ("trace_id", J_int trace_id);
          ("n_blocks", J_int n_blocks);
          ("n_instrs", J_int n_instrs);
        ]
    | Events.Decay_pass { decays } -> [ ("decays", J_int decays) ]
    | Events.Phase_snapshot s ->
        (* nested object: the enclosing event record carries the version *)
        [ ("snapshot", J_obj (snapshot_fields s)) ]
    | Events.Invariant_violation { code; severity; message } ->
        [
          ("code", J_string code);
          ("severity", J_string severity);
          ("message", J_string message);
        ]
    | Events.Fault_injected { code; detail } ->
        [ ("code", J_string code); ("detail", J_string detail) ]
    | Events.Trace_quarantined { trace_id; first; head; code; attempts; until }
      ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("head", J_int head);
          ("code", J_string code);
          ("attempts", J_int attempts);
          (* max_int = permanently blacklisted; JSON-friendly sentinel *)
          ("until", J_int (if until = max_int then -1 else until));
        ]
    | Events.Trace_evicted { trace_id; first; head; n_live; reason } ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("head", J_int head);
          ("n_live", J_int n_live);
          ("reason", J_string (Events.evict_reason_to_string reason));
        ]
    | Events.Mode_degraded { from_level; to_level } ->
        [
          ("from", J_string (Tracegen.Health.level_to_string from_level));
          ("to", J_string (Tracegen.Health.level_to_string to_level));
        ]
    | Events.Mode_recovered { from_level; to_level } ->
        [
          ("from", J_string (Tracegen.Health.level_to_string from_level));
          ("to", J_string (Tracegen.Health.level_to_string to_level));
        ]
    | Events.Cache_restored { traces; cache_blocks; bcg_nodes; bcg_edges } ->
        [
          ("traces", J_int traces);
          ("cache_blocks", J_int cache_blocks);
          ("bcg_nodes", J_int bcg_nodes);
          ("bcg_edges", J_int bcg_edges);
        ]
    | Events.Snapshot_rejected { reason } -> [ ("reason", J_string reason) ]
    | Events.Guards_pruned { trace_id; pruned; guards } ->
        [
          ("trace_id", J_int trace_id);
          ("pruned", J_int pruned);
          ("guards", J_int guards);
        ]
    | Events.Deopt_entered
        { trace_id; at_block; resume_block; residue_blocks; reason } ->
        [
          ("trace_id", J_int trace_id);
          ("at_block", J_int at_block);
          ("resume_block", J_int resume_block);
          ("residue_blocks", J_int residue_blocks);
          ("reason", J_string reason);
        ]
    | Events.Osr_promoted { trace_id; header; latch; hotness } ->
        [
          ("trace_id", J_int trace_id);
          ("header", J_int header);
          ("latch", J_int latch);
          ("hotness", J_int hotness);
        ]
    | Events.Trace_compiled { trace_id; ops; fused; src_instrs } ->
        [
          ("trace_id", J_int trace_id);
          ("ops", J_int ops);
          ("fused", J_int fused);
          ("src_instrs", J_int src_instrs);
        ]
    | Events.Tier_demoted { trace_id; uses } ->
        [ ("trace_id", J_int trace_id); ("uses", J_int uses) ]

let event_json (e : Events.event) : json =
  J_obj
    (versioned
       (("event", J_string (Events.kind e.Events.payload))
       :: ("time", J_int e.Events.time)
       :: event_payload_fields e.Events.payload))

let events_jsonl (events : Events.event list) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (to_string (event_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* One lint diagnostic as a flat object — the `repro_cli lint --json`
   line schema. *)
let diag_json (d : Analysis.Diag.t) : json =
  let base =
    [
      ("code", J_string d.Analysis.Diag.code);
      ( "severity",
        J_string (Analysis.Diag.severity_to_string d.Analysis.Diag.severity) );
      ( "location",
        J_string (Analysis.Diag.location_to_string d.Analysis.Diag.loc) );
      ("message", J_string d.Analysis.Diag.message);
    ]
  in
  match d.Analysis.Diag.context with
  | Some c -> J_obj (versioned (("context", J_string c) :: base))
  | None -> J_obj (versioned base)

let diags_jsonl (diags : Analysis.Diag.t list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_string (diag_json d));
      Buffer.add_char buf '\n')
    diags;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Histograms, spans, and the Chrome trace_event timeline               *)
(* ------------------------------------------------------------------ *)

(* One histogram with its percentile summary and the non-empty buckets —
   the [repro_cli timeline] JSONL line for a distribution. *)
let hist_json (h : Metrics.histogram) : json =
  let buckets = ref [] in
  for i = Metrics.n_buckets h - 1 downto 0 do
    let count = Metrics.bucket_count h i in
    if count > 0 then begin
      let lo, hi = Metrics.bucket_bounds h i in
      buckets :=
        J_obj
          [
            ("lo", J_int lo);
            (* the unbounded overflow bucket renders as -1 *)
            ("hi", J_int (if hi = max_int then -1 else hi));
            ("count", J_int count);
          ]
        :: !buckets
    end
  done;
  J_obj
    (versioned
       [
         ("hist", J_string (Metrics.hist_name h));
         ("count", J_int (Metrics.hist_count h));
         ("sum", J_int (Metrics.hist_sum h));
         ("mean", J_float (Metrics.hist_mean h));
         ("min", J_int (Metrics.hist_min h));
         ("p50", J_int (Metrics.percentile h 50.0));
         ("p90", J_int (Metrics.percentile h 90.0));
         ("p99", J_int (Metrics.percentile h 99.0));
         ("max", J_int (Metrics.hist_max h));
         ("buckets", J_list !buckets);
       ])

let span_json (s : Spans.span) : json =
  J_obj
    (versioned
       [
         ("span", J_int s.Spans.id);
         ("parent", J_int s.Spans.parent);
         ("kind", J_string (Spans.kind_to_string s.Spans.kind));
         ("label", J_string s.Spans.label);
         ("start", J_int s.Spans.start_time);
         (* -1 = still open at export time *)
         ("end", J_int s.Spans.end_time);
       ])

let spans_jsonl (spans : Spans.span list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (to_string (span_json s));
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Flight recorder (post-mortem) and decision ledger                    *)
(* ------------------------------------------------------------------ *)

(* One flight-recorder ring entry as a flat object.  The [rec] field
   discriminates the three entry shapes; [Event] entries reuse the
   live-stream payload schema verbatim, so a post-mortem line for an
   event is the events_jsonl line plus [rec]/[seq]. *)
let flightrec_entry_json (e : Flightrec.entry) : json =
  match e with
  | Flightrec.Event { seq; time; payload } ->
      J_obj
        (versioned
           (("rec", J_string "event")
           :: ("seq", J_int seq)
           :: ("event", J_string (Events.kind payload))
           :: ("time", J_int time)
           :: event_payload_fields payload))
  | Flightrec.Span_closed { seq; time; id; parent; kind; label; start_time } ->
      J_obj
        (versioned
           [
             ("rec", J_string "span");
             ("seq", J_int seq);
             ("time", J_int time);
             ("span", J_int id);
             ("parent", J_int parent);
             ("kind", J_string kind);
             ("label", J_string label);
             ("start", J_int start_time);
           ])
  | Flightrec.Metric_delta { seq; time; name; delta; total } ->
      J_obj
        (versioned
           [
             ("rec", J_string "metric");
             ("seq", J_int seq);
             ("time", J_int time);
             ("name", J_string name);
             ("delta", J_int delta);
             ("total", J_int total);
           ])

(* The post-mortem dump header — first line of a flightrec JSONL file. *)
let postmortem_header_json ~(reason : string) (fr : Flightrec.t) : json =
  J_obj
    (versioned
       [
         ("rec", J_string "postmortem");
         ("reason", J_string reason);
         ("capacity", J_int (Flightrec.capacity fr));
         ("recorded", J_int (Flightrec.recorded fr));
         ("dropped", J_int (Flightrec.dropped fr));
       ])

(* The whole dump: header line, then the surviving window oldest-first. *)
let postmortem_jsonl ~(reason : string) (fr : Flightrec.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (to_string (postmortem_header_json ~reason fr));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (to_string (flightrec_entry_json e));
      Buffer.add_char buf '\n')
    (Flightrec.to_list fr);
  Buffer.contents buf

(* One decision-ledger record as a flat object.  The [action] field is
   the stable kind tag; the attribution triple ([tick]/[span]/[seq]) and
   trace linkage ([trace_id]/[first]/[head]) render -1 when absent. *)
let ledger_record_json (r : Ledger.record) : json =
  let action_fields =
    match r.Ledger.action with
    | Ledger.Build { new_traces; reused; pruned } ->
        [
          ("new_traces", J_int new_traces);
          ("reused", J_int reused);
          ("pruned", J_int pruned);
        ]
    | Ledger.Install { replaced; n_blocks } ->
        [ ("replaced", J_bool replaced); ("n_blocks", J_int n_blocks) ]
    | Ledger.Guard_prune { pruned } -> [ ("pruned", J_int pruned) ]
    | Ledger.Quarantine { code; attempts; until; permanent } ->
        [
          ("code", J_string code);
          ("attempts", J_int attempts);
          (* permanent quarantine renders until as -1, like the event *)
          ("until", J_int (if until = max_int then -1 else until));
          ("permanent", J_bool permanent);
        ]
    | Ledger.Evict { reason; footprint; heat; stamp } ->
        [
          ("reason", J_string reason);
          ("footprint", J_int footprint);
          ("heat", J_int heat);
          ("stamp", J_int stamp);
        ]
    | Ledger.Compile { heat; compile_after; budget; n_compiled } ->
        [
          ("heat", J_int heat);
          ("compile_after", J_int compile_after);
          ("budget", J_int budget);
          ("n_compiled", J_int n_compiled);
        ]
    | Ledger.Demote { heat; winner_heat } ->
        [ ("heat", J_int heat); ("winner_heat", J_int winner_heat) ]
    | Ledger.Osr_promote { header; latch; hotness } ->
        [
          ("header", J_int header);
          ("latch", J_int latch);
          ("hotness", J_int hotness);
        ]
    | Ledger.Deopt { at_pos; resume; residue; reason } ->
        [
          ("at_pos", J_int at_pos);
          ("resume", J_int resume);
          ("residue", J_int residue);
          ("reason", J_string reason);
        ]
  in
  J_obj
    (versioned
       (("action", J_string (Ledger.action_kind r.Ledger.action))
       :: ("seq", J_int r.Ledger.seq)
       :: ("tick", J_int r.Ledger.tick)
       :: ("span", J_int r.Ledger.span)
       :: ("trace_id", J_int r.Ledger.trace_id)
       :: ("first", J_int r.Ledger.first)
       :: ("head", J_int r.Ledger.head)
       :: action_fields))

let ledger_jsonl (l : Ledger.t) : string =
  let buf = Buffer.create 4096 in
  Ledger.iter
    (fun r ->
      Buffer.add_string buf (to_string (ledger_record_json r));
      Buffer.add_char buf '\n')
    l;
  Buffer.contents buf

(* Chrome trace_event JSON (the Perfetto / about://tracing format):
   timestamps are dispatch ticks reported as microseconds.  Spans with
   stack discipline (trace builds, heal sweeps, member turns — they
   share the engine's one open-span stack) become B/E duration events on
   one thread track; quarantine episodes overlap each other freely, so
   they become ph:"X" complete events on a second track.  Events are
   sorted by timestamp (ties broken by the recorder's begin/end
   sequence), so the output is monotone and every E closes the B it
   follows.  Open spans are skipped — close them (Spans.end_all)
   first. *)
let chrome_trace_events (spans : Spans.span list) : json =
  let stack_tid = 1 and episode_tid = 2 in
  let args (s : Spans.span) =
    ( "args",
      J_obj [ ("span", J_int s.Spans.id); ("parent", J_int s.Spans.parent) ]
    )
  in
  let events = ref [] in
  List.iter
    (fun (s : Spans.span) ->
      if s.Spans.end_time >= 0 then
        let common =
          [
            ("name", J_string s.Spans.label);
            ("cat", J_string (Spans.kind_to_string s.Spans.kind));
            ("pid", J_int 1);
          ]
        in
        match s.Spans.kind with
        | Spans.Quarantine ->
            events :=
              ( s.Spans.start_time,
                s.Spans.start_seq,
                J_obj
                  (common
                  @ [
                      ("tid", J_int episode_tid);
                      ("ph", J_string "X");
                      ("ts", J_int s.Spans.start_time);
                      ("dur", J_int (s.Spans.end_time - s.Spans.start_time));
                      args s;
                    ]) )
              :: !events
        | Spans.Trace_build | Spans.Heal_sweep | Spans.Member_turn ->
            events :=
              ( s.Spans.start_time,
                s.Spans.start_seq,
                J_obj
                  (common
                  @ [
                      ("tid", J_int stack_tid);
                      ("ph", J_string "B");
                      ("ts", J_int s.Spans.start_time);
                      args s;
                    ]) )
              :: ( s.Spans.end_time,
                   s.Spans.end_seq,
                   J_obj
                     (common
                     @ [
                         ("tid", J_int stack_tid);
                         ("ph", J_string "E");
                         ("ts", J_int s.Spans.end_time);
                       ]) )
              :: !events)
    spans;
  let sorted =
    List.sort
      (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
      !events
  in
  J_list (List.map (fun (_, _, e) -> e) sorted)

let chrome_trace (spans : Spans.span list) : json =
  J_obj
    [
      ("traceEvents", chrome_trace_events spans);
      ("displayTimeUnit", J_string "ms");
    ]

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser — just enough to round-trip what we emit       *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (input : string) : (json, string) result =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = pos := !pos + 1 in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
          advance ();
          closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c -> (
              advance ();
              match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub input !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* ASCII passes through; anything above is replaced —
                     the emitter never produces non-ASCII escapes *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?'
              | _ -> fail "bad escape"))
      | Some c ->
          advance ();
          Buffer.add_char buf c
    done;
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char input.[!pos] do
      advance ()
    done;
    let s = String.sub input start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> J_int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> J_float f
        | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let fields = ref [] in
          let more = ref true in
          while !more do
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (name, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                more := false
            | _ -> fail "expected ',' or '}'"
          done;
          J_obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let items = ref [] in
          let more = ref true in
          while !more do
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                more := false
            | _ -> fail "expected ',' or ']'"
          done;
          J_list (List.rev !items)
        end
    | Some '"' -> J_string (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* The round-trip oracle shared by the timeline command, check.sh and
   the tests: rendering then parsing must reach a fixpoint.  Integral
   floats legitimately re-parse as ints (the printer emits "3" for 3.0),
   so the comparison normalises that one case instead of failing on
   it. *)
let rec json_equal a b =
  match (a, b) with
  | J_int x, J_int y -> x = y
  | J_float x, J_float y -> x = y || to_string a = to_string b
  | J_float x, J_int y | J_int y, J_float x -> x = float_of_int y
  | J_string x, J_string y -> x = y
  | J_bool x, J_bool y -> x = y
  | J_null, J_null -> true
  | J_obj xs, J_obj ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (nx, vx) (ny, vy) -> nx = ny && json_equal vx vy)
           xs ys
  | J_list xs, J_list ys ->
      List.length xs = List.length ys && List.for_all2 json_equal xs ys
  | _ -> false

let round_trip (j : json) : (json, string) result =
  match parse (to_string j) with
  | Error e -> Error e
  | Ok parsed ->
      if json_equal j parsed then Ok parsed
      else Error "round trip did not reach a fixpoint"
