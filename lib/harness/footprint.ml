module Stats = Tracegen.Stats

(* Memory footprint of the profiling and trace structures (paper §3.5: "we
   carefully represent blocks, nodes, and edges to minimize memory
   overhead", and §3.3's concern that the cache hold as little rarely
   executed code as possible).

   The per-structure byte sizes are NOT defined here: they come from
   [Tracegen.Footprint_model], the same definition the footprint-aware
   eviction policy scores victims with, so this report and the eviction
   ablation table cannot drift apart.  The duplication factor relates
   cache code size to the distinct blocks covered. *)

type row = {
  name : string;
  bcg_nodes : int;
  bcg_edges : int;
  bcg_bytes : int;
  live_traces : int;
  trace_instrs : int; (* instructions stored in the live cache *)
  distinct_block_instrs : int; (* instructions of the distinct blocks *)
  cache_bytes : int;
  duplication : float; (* stored instrs / distinct block instrs *)
  program_instrs : int; (* static program size *)
}

let measure ?(scale = 1.0) (w : Workloads.Workload.t) : row =
  let size = Experiment.size_for ~scale w in
  let layout = Experiment.layout_for w ~size in
  let r = Tracegen.Engine.run layout in
  let engine = r.Tracegen.Engine.engine in
  let s = r.Tracegen.Engine.run_stats in
  let live_traces = ref 0 in
  let trace_instrs = ref 0 in
  let blocks : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Tracegen.Trace_cache.iter (Tracegen.Engine.cache engine) (fun tr ->
      incr live_traces;
      trace_instrs := !trace_instrs + tr.Tracegen.Trace.total_instrs;
      Array.iter
        (fun g -> Hashtbl.replace blocks g ())
        tr.Tracegen.Trace.blocks);
  let distinct_block_instrs =
    Hashtbl.fold (fun g () acc -> acc + Cfg.Layout.block_len layout g) blocks 0
  in
  {
    name = w.Workloads.Workload.name;
    bcg_nodes = s.Stats.bcg_nodes;
    bcg_edges = s.Stats.bcg_edges;
    bcg_bytes =
      Tracegen.Footprint_model.bcg_bytes ~nodes:s.Stats.bcg_nodes
        ~edges:s.Stats.bcg_edges;
    live_traces = !live_traces;
    trace_instrs = !trace_instrs;
    distinct_block_instrs;
    cache_bytes = Tracegen.Footprint_model.cache_bytes ~trace_instrs:!trace_instrs;
    duplication =
      (if distinct_block_instrs = 0 then 1.0
       else float_of_int !trace_instrs /. float_of_int distinct_block_instrs);
    program_instrs = Bytecode.Program.total_instructions layout.Cfg.Layout.program;
  }

let report ?(scale = 1.0) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Memory footprint of the profiling and trace structures\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %7s %7s %9s %7s %9s %11s %8s\n" "benchmark"
       "nodes" "edges" "bcg(KiB)" "traces" "cache-KiB" "duplication"
       "prog-ins");
  List.iter
    (fun w ->
      let r = measure ~scale w in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %7d %7d %9.1f %7d %9.1f %10.2fx %8d\n" r.name
           r.bcg_nodes r.bcg_edges
           (float_of_int r.bcg_bytes /. 1024.0)
           r.live_traces
           (float_of_int r.cache_bytes /. 1024.0)
           r.duplication r.program_instrs))
    (Experiment.bench_workloads ());
  Buffer.contents buf
