module Stats = Tracegen.Stats
module Engine = Tracegen.Engine

(* Warm-start benchmarks.

   [cold_vs_warm] measures time-to-peak-throughput: how many dispatches
   a run spends below its best trace-dispatch mix before the cache has
   learned the program.  A cold engine pays the whole learning curve; a
   warm one restores the previous run's snapshot and should sit at peak
   from the first window.  Peak detection is deterministic: the metrics
   registry snapshots every [window] dispatches, each window's
   trace-dispatch share is computed by differencing consecutive
   snapshots, and the run is "at peak" from the first window reaching
   90% of its steady-state share.  Because some workloads ramp or shift
   phases intrinsically (so cold and warm cross that line together),
   the table also reports the warm-up deficit — the area between the
   throughput curve and steady state, in dispatches — which aggregates
   the whole learning curve and is what the snapshot actually buys
   back. *)

(* [eviction_ablation] starves the cache (small [max_cache_traces]) and
   runs the same workloads under plain LRU and under the footprint-aware
   policy, comparing completed coverage, trace-dispatch share and the
   i-cache footprint of what survived. *)

let window = 2_000

let value (s : Tracegen.Metrics.snapshot) name =
  match Array.find_opt (fun (n, _) -> n = name) s.Tracegen.Metrics.values with
  | Some (_, v) -> v
  | None -> 0

type measured = {
  run : Engine.run_result;
  wall_seconds : float;
  peak_share : float;  (* steady-state windowed trace-dispatch share *)
  to_peak : int;  (* dispatch index of the first window at >= 90% of it *)
  deficit : int;  (* dispatches below steady state, summed over windows *)
}

(* Drive a fresh engine (optionally warm-started from [snapshot]) with
   periodic metrics snapshots and locate its throughput peak. *)
let measure ?snapshot layout =
  let config = Tracegen.Config.make ~snapshot_period:window () in
  let engine = Engine.create ~config layout in
  (match snapshot with
  | None -> ()
  | Some data -> (
      match Engine.restore engine data with
      | Ok _ -> ()
      | Error e -> invalid_arg (Tracegen.Persist.error_to_string e)));
  let t0 = Unix.gettimeofday () in
  let run = Engine.drive engine in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let snaps = Tracegen.Metrics.snapshots (Engine.metrics run.Engine.engine) in
  (* windowed trace-dispatch share between consecutive snapshots *)
  let shares =
    let rec windows prev acc = function
      | [] -> List.rev acc
      | s :: rest ->
          let d name = value s name - value prev name in
          let traces = d "trace_dispatches" in
          let blocks = d "block_dispatches" in
          let share =
            if traces + blocks <= 0 then 0.0
            else float_of_int traces /. float_of_int (traces + blocks)
          in
          windows s ((s.Tracegen.Metrics.at, share) :: acc) rest
    in
    match snaps with
    | [] -> []
    | first :: rest ->
        (* the first snapshot's window starts at dispatch 0 *)
        let zero = { first with Tracegen.Metrics.values = [||] } in
        windows zero [] (first :: rest)
  in
  (* steady state = mean share over the last quarter of windows, robust
     to a single fully-traced outlier window mid-run *)
  let peak_share =
    let n = List.length shares in
    if n = 0 then 0.0
    else begin
      let tail = max 1 (n / 4) in
      let last = List.filteri (fun i _ -> i >= n - tail) shares in
      List.fold_left (fun acc (_, s) -> acc +. s) 0.0 last
      /. float_of_int (List.length last)
    end
  in
  let to_peak =
    match
      List.find_opt (fun (_, s) -> s >= 0.9 *. peak_share) shares
    with
    | Some (at, _) -> at
    | None -> (
        match snaps with [] -> 0 | s :: _ -> s.Tracegen.Metrics.at)
  in
  let deficit =
    int_of_float
      (List.fold_left
         (fun acc (_, s) ->
           acc +. (max 0.0 (peak_share -. s) *. float_of_int window))
         0.0 shares)
  in
  { run; wall_seconds; peak_share; to_peak; deficit }

let workloads () =
  (* two dissimilar learning curves: a slow-ramping DSP pipeline and a
     polymorphic ray tracer *)
  List.filter_map Workloads.Registry.find [ "mpegaudio"; "raytrace" ]

let cold_vs_warm ?(scale = 1.0) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Warm start: time to peak throughput (cold vs warm)\n";
  Buffer.add_string buf
    (Printf.sprintf "(windowed trace-dispatch share, window %d dispatches; \
                     peak = first window at 90%% of steady state;\n\
                     deficit = dispatches spent below steady state — the \
                     area above the throughput curve)\n" window);
  Buffer.add_string buf
    (Printf.sprintf "%-10s %6s %11s %11s %10s %10s %8s %8s %9s %9s\n"
       "workload" "steady" "cold-peak@" "warm-peak@" "deficit(c)"
       "deficit(w)" "cold-ms" "warm-ms" "built(c)" "built(w)");
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      let layout = Experiment.layout_for w ~size in
      let cold = measure layout in
      let snap = Engine.snapshot cold.run.Engine.engine in
      let warm = measure ~snapshot:snap layout in
      Buffer.add_string buf
        (Printf.sprintf
           "%-10s %5.1f%% %11d %11d %10d %10d %8.1f %8.1f %9d %9d\n"
           w.Workloads.Workload.name
           (100.0 *. cold.peak_share)
           cold.to_peak warm.to_peak cold.deficit warm.deficit
           (1000.0 *. cold.wall_seconds)
           (1000.0 *. warm.wall_seconds)
           cold.run.Engine.run_stats.Stats.traces_constructed
           warm.run.Engine.run_stats.Stats.traces_constructed))
    (workloads ());
  Buffer.contents buf

let policy_runs = [ Tracegen.Config.Cache.Lru; Tracegen.Config.Cache.Footprint_aware ]

let eviction_ablation ?(scale = 1.0) () =
  let max_traces = 12 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Eviction ablation: LRU vs footprint-aware (max %d traces)\n"
       max_traces);
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-9s %8s %8s %11s %10s %11s\n" "workload" "policy"
       "evicted" "built" "trace-disp%" "coverage" "cache-KiB");
  (* compress's hot loop is a few big traces (footprint-aware hurts);
     raytrace's is many small polymorphic ones (it helps) — both
     directions of the trade-off belong in the table *)
  let ablation_workloads =
    List.filter_map Workloads.Registry.find
      [ "compress"; "mpegaudio"; "raytrace" ]
  in
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      let layout = Experiment.layout_for w ~size in
      List.iter
        (fun policy ->
          let config =
            Tracegen.Config.make ~max_cache_traces:max_traces
              ~eviction_policy:policy ()
          in
          let r = Engine.run ~config layout in
          let s = r.Engine.run_stats in
          let share =
            let total = s.Stats.block_dispatches + s.Stats.trace_dispatches in
            if total = 0 then 0.0
            else float_of_int s.Stats.trace_dispatches /. float_of_int total
          in
          Buffer.add_string buf
            (Printf.sprintf "%-10s %-9s %8d %8d %10.1f%% %9.4f %11.1f\n"
               w.Workloads.Workload.name
               (Tracegen.Config.Cache.eviction_policy_to_string policy)
               s.Stats.traces_evicted s.Stats.traces_constructed
               (100.0 *. share)
               (Stats.coverage_completed s)
               (float_of_int
                  (Tracegen.Trace_cache.footprint_bytes
                     (Engine.cache r.Engine.engine))
               /. 1024.0)))
        policy_runs)
    ablation_workloads;
  Buffer.contents buf
