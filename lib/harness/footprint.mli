(** Memory footprint of the profiling and trace structures (paper §3.5's
    representation-cost concern and §3.3's cache-size concern).  Byte
    sizes come from [Tracegen.Footprint_model] — the same definition the
    footprint-aware eviction policy uses, so this report and the
    eviction ablation cannot drift. *)

type row = {
  name : string;
  bcg_nodes : int;
  bcg_edges : int;
  bcg_bytes : int;
  live_traces : int;
  trace_instrs : int;
  distinct_block_instrs : int;
  cache_bytes : int;
  duplication : float;
      (** instructions stored in the cache / distinct block instructions
          covered — tail-duplication cost of trace formation *)
  program_instrs : int;
}

val measure : ?scale:float -> Workloads.Workload.t -> row

val report : ?scale:float -> unit -> string
