(** Machine-readable results: JSON for single runs, JSON-lines and CSV
    for the parameter sweeps.

    The JSON value type, writer/parser pair, version registry and every
    per-record JSONL/Chrome serializer live in {!Codec} (the single
    encode/decode module); the aliases below are {e deprecated} — they
    are kept so callers that predate the split keep compiling, and new
    code should use [Codec] directly.  What genuinely lives here is the
    experiment-level export: {!stats_json}, {!run_json} and the sweep
    writers. *)

(** {2 Deprecated aliases — use {!Codec}} *)

type json = Codec.json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_list of json list
(** Deprecated alias of {!Codec.json}. *)

val to_string : json -> string
(** Deprecated alias of {!Codec.to_string}. *)

val json_escape : string -> string
(** Deprecated alias of {!Codec.json_escape}. *)

val parse : string -> (json, string) result
(** Deprecated alias of {!Codec.parse}. *)

val schema_version : int
(** Deprecated alias of {!Codec.schema_version}. *)

val snapshot_json : Tracegen.Metrics.snapshot -> json
(** Deprecated alias of {!Codec.snapshot_json}. *)

val snapshots_jsonl : Tracegen.Metrics.snapshot list -> string
(** Deprecated alias of {!Codec.snapshots_jsonl}. *)

val event_json : Tracegen.Events.event -> json
(** Deprecated alias of {!Codec.event_json}. *)

val events_jsonl : Tracegen.Events.event list -> string
(** Deprecated alias of {!Codec.events_jsonl}. *)

val hist_json : Tracegen.Metrics.histogram -> json
(** Deprecated alias of {!Codec.hist_json}. *)

val span_json : Tracegen.Spans.span -> json
(** Deprecated alias of {!Codec.span_json}. *)

val spans_jsonl : Tracegen.Spans.span list -> string
(** Deprecated alias of {!Codec.spans_jsonl}. *)

val chrome_trace : Tracegen.Spans.span list -> json
(** Deprecated alias of {!Codec.chrome_trace}. *)

val chrome_trace_events : Tracegen.Spans.span list -> json
(** Deprecated alias of {!Codec.chrome_trace_events}. *)

val diag_json : Analysis.Diag.t -> json
(** Deprecated alias of {!Codec.diag_json}. *)

val diags_jsonl : Analysis.Diag.t list -> string
(** Deprecated alias of {!Codec.diags_jsonl}. *)

(** {2 Experiment export} *)

val stats_json : ?extra:(string * json) list -> Tracegen.Stats.t -> json
(** Raw counts plus every derived value, as one flat object. *)

val run_json : Experiment.run -> json
(** {!stats_json} with the run's key (workload, size, parameters) and
    checksum prepended. *)

val sweep_jsonl : ?scale:float -> unit -> string
(** The threshold and delay grids, one JSON object per line. *)

val sweep_csv : ?scale:float -> unit -> string
(** The threshold sweep as CSV with a header row. *)
