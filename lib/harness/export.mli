(** Machine-readable results: JSON for single runs, JSON-lines and CSV for
    the parameter sweeps.  (No JSON library ships in this environment, so a
    minimal printer lives here.) *)

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_list of json list

val to_string : json -> string

val json_escape : string -> string

val parse : string -> (json, string) result
(** A minimal JSON parser — the inverse of {!to_string}, used by the
    timeline round-trip oracle.  Integral numbers parse as {!J_int},
    everything else numeric as {!J_float}; non-ASCII [\u] escapes are
    replaced (the emitter never produces them). *)

val schema_version : int
(** Every top-level JSONL record ({!event_json}, {!snapshot_json},
    {!diag_json}, {!run_json}) leads with a ["schema_version"] field
    carrying this value, so downstream consumers can detect format
    drift.  Bumped on any breaking change to the record field sets. *)

val stats_json : ?extra:(string * json) list -> Tracegen.Stats.t -> json
(** Raw counts plus every derived value, as one flat object. *)

val snapshot_json : Tracegen.Metrics.snapshot -> json
(** One metrics snapshot as a flat object: [{"at": <dispatch>,
    "<source>": <value>, …}]. *)

val snapshots_jsonl : Tracegen.Metrics.snapshot list -> string
(** A snapshot series, one object per line, chronological. *)

val event_json : Tracegen.Events.event -> json
(** One event as a flat object: [{"event": <kind>, "time": <dispatch>,
    …payload fields}].  The [event] tag is {!Tracegen.Events.kind}. *)

val events_jsonl : Tracegen.Events.event list -> string
(** An event timeline, one object per line, in list order. *)

val hist_json : Tracegen.Metrics.histogram -> json
(** One histogram: count/sum/mean/min/max, the p50/p90/p99 summary and
    the non-empty buckets (the overflow bucket's open upper bound
    renders as [-1]). *)

val span_json : Tracegen.Spans.span -> json
(** One span as a flat object ([end] is [-1] while open). *)

val spans_jsonl : Tracegen.Spans.span list -> string

val chrome_trace : Tracegen.Spans.span list -> json
(** The span list as Chrome [trace_event] JSON, loadable in Perfetto or
    [about://tracing].  Dispatch ticks are reported as microseconds.
    Stack-disciplined spans (trace builds, heal sweeps, member turns)
    become [B]/[E] duration events on one thread track; quarantine
    episodes, which overlap freely, become [ph:"X"] complete events on a
    second.  Events are emitted in monotone timestamp order and every
    [E] closes the [B] it follows.  Open spans are skipped — run
    [Spans.end_all] first. *)

val chrome_trace_events : Tracegen.Spans.span list -> json
(** Just the sorted [traceEvents] array of {!chrome_trace}. *)

val diag_json : Analysis.Diag.t -> json
(** One lint diagnostic as a flat object: [{"context": …, "code": …,
    "severity": …, "location": …, "message": …}] (context omitted when
    absent). *)

val diags_jsonl : Analysis.Diag.t list -> string
(** A diagnostic list, one object per line, in list order — the
    [repro_cli lint --json] schema. *)

val run_json : Experiment.run -> json
(** {!stats_json} with the run's key (workload, size, parameters) and
    checksum prepended. *)

val sweep_jsonl : ?scale:float -> unit -> string
(** The threshold and delay grids, one JSON object per line. *)

val sweep_csv : ?scale:float -> unit -> string
(** The threshold sweep as CSV with a header row. *)
