(** Machine-readable results: JSON for single runs, JSON-lines and CSV for
    the parameter sweeps.  (No JSON library ships in this environment, so a
    minimal printer lives here.) *)

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_obj of (string * json) list
  | J_list of json list

val to_string : json -> string

val json_escape : string -> string

val schema_version : int
(** Every top-level JSONL record ({!event_json}, {!snapshot_json},
    {!diag_json}, {!run_json}) leads with a ["schema_version"] field
    carrying this value, so downstream consumers can detect format
    drift.  Bumped on any breaking change to the record field sets. *)

val stats_json : ?extra:(string * json) list -> Tracegen.Stats.t -> json
(** Raw counts plus every derived value, as one flat object. *)

val snapshot_json : Tracegen.Metrics.snapshot -> json
(** One metrics snapshot as a flat object: [{"at": <dispatch>,
    "<source>": <value>, …}]. *)

val snapshots_jsonl : Tracegen.Metrics.snapshot list -> string
(** A snapshot series, one object per line, chronological. *)

val event_json : Tracegen.Events.event -> json
(** One event as a flat object: [{"event": <kind>, "time": <dispatch>,
    …payload fields}].  The [event] tag is {!Tracegen.Events.kind}. *)

val events_jsonl : Tracegen.Events.event list -> string
(** An event timeline, one object per line, in list order. *)

val diag_json : Analysis.Diag.t -> json
(** One lint diagnostic as a flat object: [{"context": …, "code": …,
    "severity": …, "location": …, "message": …}] (context omitted when
    absent). *)

val diags_jsonl : Analysis.Diag.t list -> string
(** A diagnostic list, one object per line, in list order — the
    [repro_cli lint --json] schema. *)

val run_json : Experiment.run -> json
(** {!stats_json} with the run's key (workload, size, parameters) and
    checksum prepended. *)

val sweep_jsonl : ?scale:float -> unit -> string
(** The threshold and delay grids, one JSON object per line. *)

val sweep_csv : ?scale:float -> unit -> string
(** The threshold sweep as CSV with a header row. *)
