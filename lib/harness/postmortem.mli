(** Post-mortem dump plumbing.

    [Tracegen.Flightrec] performs no I/O; this module is the harness
    half that serializes the surviving ring window through {!Codec}
    when a trigger fires, and pretty-prints a dump back for humans
    ([repro_cli postmortem <file>]). *)

val dump_filename : Tracegen.Flightrec.dump_reason -> string
(** [flightrec_<reason>.jsonl]. *)

val write :
  reason:Tracegen.Flightrec.dump_reason ->
  path:string ->
  Tracegen.Flightrec.t ->
  unit
(** Serialize the recorder's surviving window to [path] (header line
    plus entries, via {!Codec.postmortem_jsonl}). *)

val arm :
  ?dir:string ->
  ?on_dump:(Tracegen.Flightrec.dump_reason -> string -> unit) ->
  Tracegen.Engine.t ->
  unit
(** Install the file sink on the engine's flight recorder (no-op when
    the recorder is disabled).  Dumps land in [dir] (default ".") as
    one file per reason, latest dump winning; [on_dump] observes each
    written (reason, path). *)

val describe_json : Codec.json -> (string, string) result
(** One parsed dump line as a human-readable description. *)

val describe_dump : string -> (string list, string) result
(** Parse and describe a whole dump (JSONL contents).  Returns the
    rendered lines, or the first parse/shape error with its line
    number. *)
