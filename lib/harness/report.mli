(** The hot-report: where did a run's dispatches and instructions go?

    Per-trace rows come from each trace's own counters; per-block rows
    come from the engine's attribution arrays
    ([Config.Obs.attribution]).  Both are maintained by the same
    dispatch loop that maintains [Stats], so every column sums to the
    matching [Stats] total — {!checks} states those identities and
    [repro_cli top] enforces them. *)

type trace_row = {
  trace_id : int;
  entry : string;  (** human-readable entering transition *)
  n_blocks : int;
  prob : float;
  entered : int;  (** self dispatch count: one per trace dispatch *)
  completed : int;
  partial_exits : int;
  instrs : int;  (** instructions attributed to the trace body *)
  pruned : int;
      (** guard positions proven redundant by [Tracegen.Trace_prover]
          (0 unless the run had [Config.prune_guards] on) *)
  tier : string;
      (** ["compiled"] when the trace holds a micro-IR body
          ([Config.Tier]), ["interp"] otherwise *)
}

type block_row = {
  gid : Cfg.Layout.gid;
  block : string;
  self : int;  (** dispatches outside any trace *)
  inlined : int;  (** executions inlined inside traces *)
}

type t = {
  traces : trace_row list;  (** ranked by self dispatch count, descending *)
  blocks : block_row list;  (** ranked by self + inlined, descending *)
}

val of_engine : Tracegen.Engine.t -> t
(** Collect the report from a finished engine.  Block rows are empty
    unless the engine ran with [Config.Obs.attribution]. *)

val checks :
  t -> Tracegen.Engine.t -> Tracegen.Stats.t -> (string * int * int) list
(** The reconciliation identities as [(name, got, want)] triples; each
    must have [got = want].  Exact for a run over an unbounded,
    non-healing cache (eviction with hash-cons purging can lose
    condemned traces' counters). *)

val failed_checks :
  t -> Tracegen.Engine.t -> Tracegen.Stats.t -> (string * int * int) list
(** The subset of {!checks} that do not reconcile. *)

val render : ?top:int -> t -> string
(** Human-readable ranked tables ([top] rows each, default 10). *)

val json : t -> Codec.json
(** The whole report as one schema-versioned object ([repro_cli top
    --json]): the ranked trace and block rows with the same columns as
    the rendered tables. *)

val hist_summary : Tracegen.Metrics.histogram list -> string
(** One line per non-empty distribution: count, mean and the
    p50/p90/p99/max percentile summary ({!Tracegen.Metrics.percentile}).
    Shared by [repro_cli top] and [repro_cli events --stats-only]. *)

val folded : Tracegen.Spans.span list -> string
(** Folded-stack flamegraph export over the span tree: one line per
    distinct root-to-span path ([frame;frame;frame weight]), weighted
    by self time in dispatch ticks (duration minus nested children).
    Loads directly into flamegraph.pl / speedscope.  Open spans are
    skipped — run [Spans.end_all] first. *)

val check_chrome : Codec.json -> string list
(** Structural oracle over an exported Chrome trace: an object with a
    [traceEvents] array, monotonically non-decreasing timestamps, every
    [E] closing an open [B] on its thread track (none left open), and
    every [X] carrying [dur].  Returns the violations; [[]] = valid. *)
