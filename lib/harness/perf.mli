(** Machine-readable perf baselines.

    The bench harness emits one {!run} per invocation as a single JSON
    document ([BENCH_<label>.json]): an environment stamp plus the
    per-section metrics, each carrying its unit and direction-of-better.
    {!diff} compares two such documents direction-aware, which is what
    [repro_cli bench-diff OLD NEW --max-regress PCT] gates CI on. *)

type direction = Higher | Lower  (** Which way "better" points. *)

val direction_to_string : direction -> string
(** ["higher"] / ["lower"] — the wire tags. *)

val direction_of_string : string -> direction option

type metric = {
  name : string;
  value : float;
  unit_ : string;  (** e.g. ["ns/instr"], ["ratio"], ["count"] *)
  better : direction;
}

type section = { label : string; metrics : metric list }

type run = {
  bench : string;  (** the bench label, e.g. ["smoke"] *)
  env : (string * string) list;  (** the environment stamp *)
  sections : section list;
}

val metric :
  name:string -> value:float -> unit_:string -> better:direction -> metric

val env_stamp : scale:float -> (string * string) list
(** Toolchain + workload-scale stamp: OCaml version, word size, OS
    type, and the bench scale factor. *)

val run_json : run -> Codec.json
(** The whole run as one [schema_version]-stamped object. *)

val to_string : run -> string

val of_string : string -> (run, string) result
(** Parse a baseline document (the inverse of {!to_string}, via
    [Codec.parse]). *)

(** {2 Direction-aware diff} *)

type delta = {
  d_section : string;
  d_name : string;
  d_unit : string;
  d_better : direction;
  d_old : float;
  d_new : float;
  d_regress_pct : float;
      (** percent change in the {e worse} direction — positive means
          the candidate regressed, negative means it improved. *)
}

type diff = {
  deltas : delta list;  (** metrics present in both runs *)
  missing : (string * string) list;
      (** (section, metric) pairs present in the baseline but absent in
          the candidate — treated as failures by {!ok}, since a deleted
          metric can hide a regression. *)
  added : (string * string) list;
      (** present in the candidate only — informational. *)
}

val regress_pct :
  better:direction -> old_v:float -> new_v:float -> float
(** The signed regression percentage for one metric pair.  A zero
    baseline with a nonzero worse-direction movement reports 100%. *)

val diff : baseline:run -> candidate:run -> diff

val regressions : max_regress:float -> diff -> delta list
(** The deltas whose regression exceeds the tolerance (percent). *)

val ok : max_regress:float -> diff -> bool
(** True when nothing regressed past [max_regress] and no baseline
    metric is missing from the candidate. *)
