module Tr = Tracegen
module Layout = Cfg.Layout

(* The hot-report: where did the run's dispatches and instructions go?

   Per-trace rows come from the trace's own counters (Trace.entered /
   completed / partial_instrs ...), which the dispatch loop maintains
   anyway; per-block rows come from the engine's attribution arrays
   (Config.Obs.attribution).  Because both sides are maintained by the
   same loop that maintains Stats, every column must sum to the matching
   Stats total — [checks] states those identities and [repro_cli top]
   enforces them. *)

let count_pruned (tr : Tr.Trace.t) =
  Array.fold_left (fun n p -> if p then n + 1 else n) 0 tr.Tr.Trace.pruned

type trace_row = {
  trace_id : int;
  entry : string; (* human-readable entering transition *)
  n_blocks : int;
  prob : float; (* expected completion probability at construction *)
  entered : int; (* self dispatch count: one per trace dispatch *)
  completed : int;
  partial_exits : int;
  instrs : int; (* instructions attributed to the trace body *)
  pruned : int; (* guard positions proven redundant (Trace_prover) *)
  tier : string; (* "compiled" when holding a micro-IR body, else "interp" *)
}

type block_row = {
  gid : Layout.gid;
  block : string;
  self : int; (* dispatches outside any trace *)
  inlined : int; (* executions inlined inside traces *)
}

type t = {
  traces : trace_row list; (* ranked by self dispatch count, descending *)
  blocks : block_row list; (* ranked by self + inlined, descending *)
}

let trace_instrs (tr : Tr.Trace.t) =
  (tr.Tr.Trace.completed * tr.Tr.Trace.total_instrs)
  + tr.Tr.Trace.partial_instrs

let of_engine (engine : Tr.Engine.t) : t =
  let layout = Tr.Engine.layout engine in
  let traces = ref [] in
  Tr.Trace_cache.iter_all (Tr.Engine.cache engine) (fun tr ->
      if tr.Tr.Trace.entered > 0 then
        let first, head = Tr.Trace.entry_key tr in
        traces :=
          {
            trace_id = tr.Tr.Trace.id;
            entry =
              Printf.sprintf "%s -> %s" (Layout.describe layout first)
                (Layout.describe layout head);
            n_blocks = Tr.Trace.n_blocks tr;
            prob = tr.Tr.Trace.prob;
            entered = tr.Tr.Trace.entered;
            completed = tr.Tr.Trace.completed;
            partial_exits = tr.Tr.Trace.partial_exits;
            instrs = trace_instrs tr;
            pruned = count_pruned tr;
            tier =
              (match tr.Tr.Trace.lowered with
              | Some _ -> "compiled"
              | None -> "interp");
          }
          :: !traces);
  let self = Tr.Engine.attr_self engine in
  let inlined = Tr.Engine.attr_inlined engine in
  let blocks = ref [] in
  Array.iteri
    (fun gid s ->
      let i = if gid < Array.length inlined then inlined.(gid) else 0 in
      if s > 0 || i > 0 then
        blocks :=
          { gid; block = Layout.describe layout gid; self = s; inlined = i }
          :: !blocks)
    self;
  {
    traces =
      List.sort
        (fun a b ->
          compare (b.entered, b.instrs, a.trace_id)
            (a.entered, a.instrs, b.trace_id))
        !traces;
    blocks =
      List.sort
        (fun a b ->
          compare
            (b.self + b.inlined, a.gid)
            (a.self + a.inlined, b.gid))
        !blocks;
  }

(* The reconciliation identities: every (name, got, want) triple must
   have got = want.  They hold exactly for a run over an unbounded,
   non-healing cache (the [repro_cli top] configuration); eviction with
   hash-cons purging can lose condemned traces' counters. *)
let checks (r : t) (engine : Tr.Engine.t) (s : Tr.Stats.t) :
    (string * int * int) list =
  let sum f = List.fold_left (fun acc row -> acc + f row) 0 r.traces in
  let sum_blocks f = List.fold_left (fun acc row -> acc + f row) 0 r.blocks in
  let inflight = Tr.Engine.inflight_matched_blocks engine in
  [
    ("trace self dispatches = trace_dispatches", sum (fun x -> x.entered),
     s.Tr.Stats.trace_dispatches);
    ("trace self dispatches = traces_entered", sum (fun x -> x.entered),
     s.Tr.Stats.traces_entered);
    ("trace completions = traces_completed", sum (fun x -> x.completed),
     s.Tr.Stats.traces_completed);
    ("trace partial exits sum", sum (fun x -> x.partial_exits),
     s.Tr.Stats.traces_entered - s.Tr.Stats.traces_completed
     - (match Tr.Engine.active_trace engine with Some _ -> 1 | None -> 0));
    (* in-flight instrs appear on neither side: the per-trace counter and
       the engine counter are both bumped only at completion/side exit *)
    ("trace instrs = completed + partial instrs", sum (fun x -> x.instrs),
     s.Tr.Stats.completed_instrs + s.Tr.Stats.partial_instrs);
    ("block self dispatches = block_dispatches", sum_blocks (fun x -> x.self),
     s.Tr.Stats.block_dispatches);
    ("inlined execs = completed + partial blocks",
     sum_blocks (fun x -> x.inlined),
     s.Tr.Stats.completed_blocks + s.Tr.Stats.partial_blocks + inflight);
  ]

let failed_checks r engine s =
  List.filter (fun (_, got, want) -> got <> want) (checks r engine s)

(* Rendering *)

let truncate_label width s =
  if String.length s <= width then s else String.sub s 0 (width - 1) ^ "…"

let render ?(top = 10) (r : t) : string =
  let buf = Buffer.create 1024 in
  let take n l =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: go (k - 1) tl
    in
    go n l
  in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-32s %7s %9s %9s %8s %10s %6s %6s %-8s\n" "trace"
       "entry" "blocks" "entered" "completed" "partial" "instrs" "prob"
       "pruned" "tier");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %-32s %7d %9d %9d %8d %10d %6.3f %6d %-8s\n"
           row.trace_id
           (truncate_label 32 row.entry)
           row.n_blocks row.entered row.completed row.partial_exits row.instrs
           row.prob row.pruned row.tier))
    (take top r.traces);
  if List.length r.traces > top then
    Buffer.add_string buf
      (Printf.sprintf "… %d more traces\n" (List.length r.traces - top));
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-32s %10s %10s %10s\n" "block" "name" "self"
       "inlined" "total");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %-32s %10d %10d %10d\n" row.gid
           (truncate_label 32 row.block)
           row.self row.inlined (row.self + row.inlined)))
    (take top r.blocks);
  if List.length r.blocks > top then
    Buffer.add_string buf
      (Printf.sprintf "… %d more blocks\n" (List.length r.blocks - top));
  Buffer.contents buf

(* Machine-readable form: the whole report as one schema-versioned
   object — `repro_cli top --json`.  Rows carry the same columns as the
   rendered tables. *)
let json (r : t) : Codec.json =
  let trace_row (row : trace_row) =
    Codec.J_obj
      [
        ("trace_id", Codec.J_int row.trace_id);
        ("entry", Codec.J_string row.entry);
        ("blocks", Codec.J_int row.n_blocks);
        ("prob", Codec.J_float row.prob);
        ("entered", Codec.J_int row.entered);
        ("completed", Codec.J_int row.completed);
        ("partial_exits", Codec.J_int row.partial_exits);
        ("instrs", Codec.J_int row.instrs);
        ("pruned", Codec.J_int row.pruned);
        ("tier", Codec.J_string row.tier);
      ]
  in
  let block_row (row : block_row) =
    Codec.J_obj
      [
        ("gid", Codec.J_int row.gid);
        ("block", Codec.J_string row.block);
        ("self", Codec.J_int row.self);
        ("inlined", Codec.J_int row.inlined);
      ]
  in
  Codec.J_obj
    (Codec.versioned
       [
         ("traces", Codec.J_list (List.map trace_row r.traces));
         ("blocks", Codec.J_list (List.map block_row r.blocks));
       ])

(* Histogram percentile summary, one line per distribution — shared by
   `repro_cli top` and `repro_cli events --stats-only`. *)
let hist_summary (hists : Tr.Metrics.histogram list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %8s %8s %6s %6s %6s %6s\n" "hist" "count" "mean"
       "p50" "p90" "p99" "max");
  List.iter
    (fun h ->
      if Tr.Metrics.hist_count h > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%-24s %8d %8.2f %6d %6d %6d %6d\n"
             (Tr.Metrics.hist_name h) (Tr.Metrics.hist_count h)
             (Tr.Metrics.hist_mean h)
             (Tr.Metrics.percentile h 50.0)
             (Tr.Metrics.percentile h 90.0)
             (Tr.Metrics.percentile h 99.0)
             (Tr.Metrics.hist_max h)))
    hists;
  Buffer.contents buf

(* Folded-stack flamegraph export over the span tree: one line per
   distinct root-to-span path, `frame;frame;frame weight`, where the
   weight is the span's self time in dispatch ticks (duration minus the
   children's durations).  The output loads directly into
   flamegraph.pl / speedscope / inferno.  Open spans are skipped — run
   [Spans.end_all] first. *)
let folded (spans : Tr.Spans.span list) : string =
  let closed =
    List.filter (fun s -> s.Tr.Spans.end_time >= 0) spans
  in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Tr.Spans.id s) closed;
  let duration s = s.Tr.Spans.end_time - s.Tr.Spans.start_time in
  (* children's time nested under each parent, to subtract for self *)
  let child_time = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let p = s.Tr.Spans.parent in
      if p >= 0 && Hashtbl.mem by_id p then
        Hashtbl.replace child_time p
          (duration s
          + Option.value ~default:0 (Hashtbl.find_opt child_time p)))
    closed;
  (* frames must not contain the stack separator *)
  let frame s =
    let label =
      String.map
        (fun c -> if c = ';' || c = '\n' then '_' else c)
        s.Tr.Spans.label
    in
    Printf.sprintf "%s(%s)" (Tr.Spans.kind_to_string s.Tr.Spans.kind) label
  in
  let rec path s =
    let f = frame s in
    match Hashtbl.find_opt by_id s.Tr.Spans.parent with
    | Some p when s.Tr.Spans.parent <> s.Tr.Spans.id -> path p ^ ";" ^ f
    | _ -> f
  in
  let weights = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let self =
        duration s
        - Option.value ~default:0 (Hashtbl.find_opt child_time s.Tr.Spans.id)
      in
      if self > 0 then begin
        let p = path s in
        Hashtbl.replace weights p
          (self + Option.value ~default:0 (Hashtbl.find_opt weights p))
      end)
    closed;
  let lines =
    Hashtbl.fold (fun p w acc -> Printf.sprintf "%s %d" p w :: acc) weights []
  in
  String.concat "\n" (List.sort compare lines)
  ^ if lines = [] then "" else "\n"

(* Chrome trace oracle: structural validity of an exported timeline.
   Returns human-readable violations; [] = valid.  Checks that the value
   is an object with a traceEvents array, timestamps are monotonically
   non-decreasing in array order, and on each thread track every E event
   closes an open B (with none left open at the end). *)
let check_chrome (j : Codec.json) : string list =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (match j with
  | Codec.J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Codec.J_list events) ->
          let last_ts = ref min_int in
          let stacks : (int, string list) Hashtbl.t = Hashtbl.create 4 in
          List.iteri
            (fun i ev ->
              match ev with
              | Codec.J_obj f -> (
                  let field name =
                    match List.assoc_opt name f with
                    | Some (Codec.J_int v) -> Some v
                    | _ -> None
                  in
                  let str name =
                    match List.assoc_opt name f with
                    | Some (Codec.J_string v) -> Some v
                    | _ -> None
                  in
                  match (str "ph", field "ts", field "tid") with
                  | Some ph, Some ts, Some tid ->
                      if ts < !last_ts then
                        err "event %d: ts %d < previous %d" i ts !last_ts;
                      last_ts := ts;
                      let stack =
                        Option.value ~default:[] (Hashtbl.find_opt stacks tid)
                      in
                      let name = Option.value ~default:"?" (str "name") in
                      (match ph with
                      | "B" -> Hashtbl.replace stacks tid (name :: stack)
                      | "E" -> (
                          match stack with
                          | [] -> err "event %d: E with no open B on tid %d" i tid
                          | _ :: rest -> Hashtbl.replace stacks tid rest)
                      | "X" ->
                          if field "dur" = None then
                            err "event %d: X without dur" i
                      | other -> err "event %d: unknown ph %S" i other)
                  | _ -> err "event %d: missing ph/ts/tid" i)
              | _ -> err "event %d: not an object" i)
            events;
          Hashtbl.iter
            (fun tid stack ->
              if stack <> [] then
                err "tid %d: %d B events left open" tid (List.length stack))
            stacks
      | _ -> err "no traceEvents array")
  | _ -> err "top level is not an object");
  List.rev !errors
