module Config = Tracegen.Config
module Engine = Tracegen.Engine
module Health = Tracegen.Health
module Stats = Tracegen.Stats
module Faults = Tracegen.Faults
module Interp = Vm.Interp

(* Chaos testing: run workloads under randomized fault schedules and hold
   the engine to two promises.

   1. Transparency (FT901): tracing is a pure observational overlay, so
      the VM's results must be bit-identical to a no-tracing baseline
      under ANY fault schedule — corrupted traces may cost performance,
      never correctness.

   2. Recovery (FT902): the fault budget is sized to exhaust early in
      the run, after which the self-healing machinery must climb the
      degradation ladder back to full tracing before the run ends.

   Schedules are deterministic per (spec, seed), so a failing seed is a
   reproducible bug report. *)

(* Every fault kind armed, probabilities tuned so a default-size workload
   sees its entire budget in the first few thousand dispatches and then
   has the rest of the run to recover. *)
let default_spec =
  "corrupt-trace@0.004,corrupt-instrs@0.003,zero-counter@0.003,\
   saturate-counter@0.002,drop-best@0.002,fail-install@0.003,\
   alloc-pressure@0.001,budget=24"

(* debug_checks is on so sweep-based healing runs; the cache is bounded
   so eviction paths are exercised too.  [osr] arms on-stack replacement
   (mid-trace deopt + mid-loop promotion): the transparency promise must
   hold with the deopt paths live, which is what the check.sh
   deopt-transparency gate drives with a guard-flip schedule.  [tier]
   arms the compiled micro-IR tier, putting compiled-trace dispatch (and
   deopt from the compiled tier, with [osr]) under the same gate. *)
let config ?(spec = default_spec) ?(osr = false) ?(tier = false) ~seed () =
  Config.make ~debug_checks:true ~self_heal:true ~max_cache_traces:48
    ~fault_spec:spec ~fault_seed:seed ~osr ~tier ()

type verdict = {
  workload : string;
  seed : int;
  identical : bool; (* FT901: VM results match the baseline *)
  recovered : bool; (* FT902: ended the run at full tracing *)
  reconciled : bool; (* FT903: events/ledger/stats agree (Oracle) *)
  stats : Stats.t;
}

let passed v = v.identical && v.recovered && v.reconciled

(* A comparable fingerprint of a VM result: outcome rendered to a string
   (structural, covers traps) plus both dispatch-model counts. *)
let fingerprint (r : Interp.result) : string * int * int =
  let outcome =
    match r.Interp.outcome with
    | Interp.Finished None -> "finished:"
    | Interp.Finished (Some v) -> "finished:" ^ Vm.Value.to_string v
    | Interp.Trapped (kind, msg) ->
        "trapped:" ^ Interp.error_kind_to_string kind ^ ":" ^ msg
  in
  (outcome, r.Interp.instructions, r.Interp.block_dispatches)

let run_one ?spec ?osr ?tier ?max_instructions ?dump_dir
    (w : Workloads.Workload.t) ~size ~seed : verdict =
  let layout = Experiment.layout_for w ~size in
  let baseline = Interp.run_plain ?max_instructions layout in
  let chaos_config = config ?spec ?osr ?tier ~seed () in
  (* the event stream feeds both the reconciliation oracle and — via the
     engine's tap — the flight recorder's post-mortem window *)
  let events = Tracegen.Events.create () in
  let tally = Oracle.attach events in
  let engine = Engine.create ~config:chaos_config ~events layout in
  (match dump_dir with
  | Some dir -> Postmortem.arm ~dir engine
  | None -> ());
  let result = Engine.drive ?max_instructions engine in
  let stats = result.Engine.run_stats in
  let identical =
    fingerprint baseline = fingerprint result.Engine.vm_result
  in
  (* a transparency breach is exactly what the black box is for: dump
     the surviving window (a file only when a dump sink is armed) *)
  (if not identical then
     match Engine.flightrec engine with
     | Some fr ->
         Tracegen.Flightrec.trigger fr Tracegen.Flightrec.Divergence
     | None -> ());
  {
    workload = w.Workloads.Workload.name;
    seed;
    identical;
    recovered = stats.Stats.final_health = 0;
    reconciled = Oracle.all_ok (Oracle.run_checks tally ~engine stats);
    stats;
  }

(* The gate: every registered workload under [schedules] seeded fault
   schedules.  Returns all verdicts; the caller decides how to render
   failures (the CLI exits non-zero on any). *)
let gate ?spec ?osr ?tier ?max_instructions ?dump_dir ?(schedules = 50) ~seed
    ~size_of () : verdict list =
  List.concat_map
    (fun (w : Workloads.Workload.t) ->
      List.init schedules (fun i ->
          run_one ?spec ?osr ?tier ?max_instructions ?dump_dir w
            ~size:(size_of w) ~seed:(seed + (1000 * i))))
    Workloads.Registry.all

let describe v =
  Printf.sprintf
    "%-10s seed=%-6d %s %s %s faults=%d quarantined=%d evicted=%d healed=%d \
     demoted=%d promoted=%d violations=%d"
    v.workload v.seed
    (if v.identical then "identical" else "DIVERGED(FT901)")
    (if v.recovered then "recovered" else "DEGRADED(FT902)")
    (if v.reconciled then "reconciled" else "DRIFTED(FT903)")
    v.stats.Stats.faults_injected v.stats.Stats.traces_quarantined
    v.stats.Stats.traces_evicted v.stats.Stats.healed_nodes
    v.stats.Stats.health_demotions v.stats.Stats.health_promotions
    v.stats.Stats.invariant_violations
