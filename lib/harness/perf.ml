(* Machine-readable perf baselines.

   The bench harness emits one [run] per bench invocation as a single
   JSON document (BENCH_<label>.json): an environment stamp plus the
   per-section metrics, each carrying its unit and direction-of-better.
   [diff] compares two such documents direction-aware, so
   `repro_cli bench-diff OLD NEW --max-regress PCT` can gate CI without
   a human reading the tables.  All serialization goes through [Codec]
   (schema_version discipline, round-trip-able by [Codec.parse]). *)

type direction = Higher | Lower

let direction_to_string = function Higher -> "higher" | Lower -> "lower"

let direction_of_string = function
  | "higher" -> Some Higher
  | "lower" -> Some Lower
  | _ -> None

type metric = {
  name : string;
  value : float;
  unit_ : string;
  better : direction;
}

type section = { label : string; metrics : metric list }

type run = { bench : string; env : (string * string) list; sections : section list }

let metric ~name ~value ~unit_ ~better = { name; value; unit_; better }

(* The environment stamp: enough to tell two baselines were produced by
   comparable builds without recording anything machine-unique beyond
   the toolchain. *)
let env_stamp ~scale =
  [
    ("ocaml", Sys.ocaml_version);
    ("word_size", string_of_int Sys.word_size);
    ("os", Sys.os_type);
    ("scale", Printf.sprintf "%g" scale);
  ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let metric_json (m : metric) : Codec.json =
  Codec.J_obj
    [
      ("name", Codec.J_string m.name);
      ("value", Codec.J_float m.value);
      ("unit", Codec.J_string m.unit_);
      ("better", Codec.J_string (direction_to_string m.better));
    ]

let section_json (s : section) : Codec.json =
  Codec.J_obj
    [
      ("section", Codec.J_string s.label);
      ("metrics", Codec.J_list (List.map metric_json s.metrics));
    ]

let run_json (r : run) : Codec.json =
  Codec.J_obj
    (Codec.versioned
       [
         ("bench", Codec.J_string r.bench);
         ( "env",
           Codec.J_obj (List.map (fun (k, v) -> (k, Codec.J_string v)) r.env)
         );
         ("sections", Codec.J_list (List.map section_json r.sections));
       ])

let to_string (r : run) : string = Codec.to_string (run_json r)

(* ------------------------------------------------------------------ *)
(* Parsing (the inverse, over Codec.parse output)                      *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field obj name =
  match obj with
  | Codec.J_obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error "expected an object"

let as_string = function
  | Codec.J_string s -> Ok s
  | _ -> Error "expected a string"

let as_number = function
  | Codec.J_float f -> Ok f
  | Codec.J_int i -> Ok (float_of_int i)
  | _ -> Error "expected a number"

let as_list = function
  | Codec.J_list l -> Ok l
  | _ -> Error "expected a list"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let metric_of_json j =
  let* name = field j "name" in
  let* name = as_string name in
  let* value = field j "value" in
  let* value = as_number value in
  let* unit_ = field j "unit" in
  let* unit_ = as_string unit_ in
  let* better = field j "better" in
  let* better = as_string better in
  match direction_of_string better with
  | Some better -> Ok { name; value; unit_; better }
  | None -> Error (Printf.sprintf "metric %S: bad direction %S" name better)

let section_of_json j =
  let* label = field j "section" in
  let* label = as_string label in
  let* metrics = field j "metrics" in
  let* metrics = as_list metrics in
  let* metrics = map_result metric_of_json metrics in
  Ok { label; metrics }

let run_of_json (j : Codec.json) : (run, string) result =
  let* bench = field j "bench" in
  let* bench = as_string bench in
  let* env = field j "env" in
  let* env =
    match env with
    | Codec.J_obj kvs ->
        map_result
          (fun (k, v) ->
            let* v = as_string v in
            Ok (k, v))
          kvs
    | _ -> Error "expected env to be an object"
  in
  let* sections = field j "sections" in
  let* sections = as_list sections in
  let* sections = map_result section_of_json sections in
  Ok { bench; env; sections }

let of_string (s : string) : (run, string) result =
  let* j = Codec.parse s in
  run_of_json j

(* ------------------------------------------------------------------ *)
(* Direction-aware diff                                                *)
(* ------------------------------------------------------------------ *)

type delta = {
  d_section : string;
  d_name : string;
  d_unit : string;
  d_better : direction;
  d_old : float;
  d_new : float;
  d_regress_pct : float;
      (* percent change in the *worse* direction; <= 0 means no worse *)
}

type diff = {
  deltas : delta list;
  missing : (string * string) list;
      (* (section, metric) present in OLD but absent in NEW *)
  added : (string * string) list;  (* present in NEW only — informational *)
}

(* Positive = regressed by that percentage; negative = improved. *)
let regress_pct ~better ~old_v ~new_v =
  let worse =
    match better with Lower -> new_v -. old_v | Higher -> old_v -. new_v
  in
  if worse = 0.0 then 0.0
  else if old_v = 0.0 then if worse > 0.0 then 100.0 else -100.0
  else 100.0 *. worse /. Float.abs old_v

let diff ~(baseline : run) ~(candidate : run) : diff =
  let index r =
    List.concat_map
      (fun s -> List.map (fun m -> ((s.label, m.name), m)) s.metrics)
      r.sections
  in
  let old_idx = index baseline and new_idx = index candidate in
  let deltas =
    List.filter_map
      (fun ((sec, name), (om : metric)) ->
        match List.assoc_opt (sec, name) new_idx with
        | None -> None
        | Some nm ->
            Some
              {
                d_section = sec;
                d_name = name;
                d_unit = om.unit_;
                d_better = om.better;
                d_old = om.value;
                d_new = nm.value;
                d_regress_pct =
                  regress_pct ~better:om.better ~old_v:om.value
                    ~new_v:nm.value;
              })
      old_idx
  in
  let missing =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key new_idx then None else Some key)
      old_idx
  in
  let added =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key old_idx then None else Some key)
      new_idx
  in
  { deltas; missing; added }

let regressions ~(max_regress : float) (d : diff) : delta list =
  List.filter (fun dl -> dl.d_regress_pct > max_regress) d.deltas

(* A diff gates clean when nothing regressed past the tolerance and no
   baseline metric vanished (a deleted metric can hide a regression). *)
let ok ~max_regress (d : diff) =
  regressions ~max_regress d = [] && d.missing = []
