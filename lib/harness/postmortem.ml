(* Post-mortem dump plumbing: arm an engine's flight recorder with a
   file sink, and pretty-print a dump back for humans
   (`repro_cli postmortem <file>`).

   The recorder itself ([Tracegen.Flightrec]) performs no I/O; this
   module is the harness half that serializes the surviving ring window
   through [Codec] when a trigger fires.  One file per reason, latest
   dump wins — a crashing run's last dump is the interesting one. *)

module Flightrec = Tracegen.Flightrec
module Engine = Tracegen.Engine

let dump_filename reason =
  Printf.sprintf "flightrec_%s.jsonl" (Flightrec.reason_to_string reason)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let write ~(reason : Flightrec.dump_reason) ~path (fr : Flightrec.t) =
  write_file path
    (Codec.postmortem_jsonl ~reason:(Flightrec.reason_to_string reason) fr)

(* Install the file sink.  [on_dump] records the path of the last dump
   written, for callers that want to report it. *)
let arm ?(dir = ".") ?on_dump (engine : Engine.t) =
  match Engine.flightrec engine with
  | None -> ()
  | Some fr ->
      Flightrec.set_on_dump fr (fun reason ->
          let path = Filename.concat dir (dump_filename reason) in
          write ~reason ~path fr;
          match on_dump with Some f -> f reason path | None -> ())

(* ------------------------------------------------------------------ *)
(* Pretty-printing a dump                                              *)
(* ------------------------------------------------------------------ *)

let str_field kvs name =
  match List.assoc_opt name kvs with
  | Some (Codec.J_string s) -> Some s
  | _ -> None

let int_field kvs name =
  match List.assoc_opt name kvs with
  | Some (Codec.J_int i) -> Some i
  | _ -> None

let ifd kvs name = match int_field kvs name with Some i -> i | None -> -1

(* Render any remaining fields generically, so new payload fields show
   up in postmortem output without this printer learning about them. *)
let rest_fields kvs ~skip =
  List.filter_map
    (fun (k, v) ->
      if List.mem k skip then None
      else
        Some
          (match v with
          | Codec.J_int i -> Printf.sprintf "%s=%d" k i
          | Codec.J_float f -> Printf.sprintf "%s=%g" k f
          | Codec.J_string s -> Printf.sprintf "%s=%s" k s
          | Codec.J_bool b -> Printf.sprintf "%s=%b" k b
          | Codec.J_null -> Printf.sprintf "%s=null" k
          | Codec.J_obj _ | Codec.J_list _ -> Printf.sprintf "%s=..." k))
    kvs

(* One parsed dump line as a human-readable description.  Unknown [rec]
   shapes degrade to a generic field listing rather than failing. *)
let describe_json (j : Codec.json) : (string, string) result =
  match j with
  | Codec.J_obj kvs -> (
      match str_field kvs "rec" with
      | Some "postmortem" ->
          Ok
            (Printf.sprintf
               "post-mortem dump: reason=%s (ring capacity %d, %d recorded, \
                %d dropped by wrap-around)"
               (match str_field kvs "reason" with Some r -> r | None -> "?")
               (ifd kvs "capacity") (ifd kvs "recorded") (ifd kvs "dropped"))
      | Some "event" ->
          let kind =
            match str_field kvs "event" with Some k -> k | None -> "?"
          in
          Ok
            (Printf.sprintf "%6d  t=%-8d event  %-18s %s" (ifd kvs "seq")
               (ifd kvs "time") kind
               (String.concat " "
                  (rest_fields kvs
                     ~skip:
                       [ "schema_version"; "rec"; "seq"; "time"; "event" ])))
      | Some "span" ->
          Ok
            (Printf.sprintf "%6d  t=%-8d span   %s %S (span %d, parent %d, \
                             opened t=%d)"
               (ifd kvs "seq") (ifd kvs "time")
               (match str_field kvs "kind" with Some k -> k | None -> "?")
               (match str_field kvs "label" with Some l -> l | None -> "")
               (ifd kvs "span") (ifd kvs "parent") (ifd kvs "start"))
      | Some "metric" ->
          let delta = ifd kvs "delta" in
          Ok
            (Printf.sprintf "%6d  t=%-8d metric %s %+d -> %d" (ifd kvs "seq")
               (ifd kvs "time")
               (match str_field kvs "name" with Some n -> n | None -> "?")
               delta (ifd kvs "total"))
      | Some other -> Error (Printf.sprintf "unknown rec kind %S" other)
      | None -> Error "record has no \"rec\" field")
  | _ -> Error "dump line is not an object"

(* Parse and describe a whole dump.  Returns the rendered lines, or the
   first parse/shape error with its line number. *)
let describe_dump (contents : string) : (string list, string) result =
  let lines =
    String.split_on_char '\n' contents
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then Error "empty dump"
  else
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
          match Codec.parse line with
          | Error e -> Error (Printf.sprintf "line %d: parse error: %s" i e)
          | Ok j -> (
              match describe_json j with
              | Error e -> Error (Printf.sprintf "line %d: %s" i e)
              | Ok d -> go (i + 1) (d :: acc) rest))
    in
    go 1 [] lines
