(** The events-vs-stats-vs-ledger reconciliation oracle.

    The event stream, the end-of-run statistics and the decision ledger
    are three views of the same execution.  This module owns the exact
    agreements between them, so [repro_cli events], the chaos harness
    and the tests all check one list instead of private copies that can
    drift. *)

type check = { name : string; got : int; want : int }

val check_ok : check -> bool
val all_ok : check list -> bool
val failures : check list -> check list

(** {2 Event tally} *)

type tally
(** Per-kind event counts plus the refinements the checks need
    (new-vs-reused constructions, the eviction-reason split). *)

val create_tally : unit -> tally

val observe : tally -> Tracegen.Events.payload -> unit
(** Count one delivered payload (for callers with their own
    subscription). *)

val attach : Tracegen.Events.t -> tally
(** Subscribe a fresh tally to the stream — every subsequent event is
    counted.  Attach before the run starts. *)

val count : tally -> string -> int
(** Occurrences of one event kind (by {!Tracegen.Events.kind} tag). *)

val n_kinds : tally -> int

(** {2 The reconciliations} *)

val event_checks :
  tally -> engine:Tracegen.Engine.t -> Tracegen.Stats.t -> check list
(** The event-timeline agreements: every counted kind against its
    statistics counter, including the side-exit balance
    (entered − completed − in-flight) and the eviction-reason split. *)

val ledger_checks :
  Tracegen.Ledger.t ->
  engine:Tracegen.Engine.t ->
  Tracegen.Stats.t ->
  check list
(** The decision-ledger aggregates against the same counters: Build
    sums against constructions/reuses, Compile counts against
    [traces_compiled] (including restore-time recompilation), Evict
    against [traces_evicted], and so on. *)

val run_checks :
  tally -> engine:Tracegen.Engine.t -> Tracegen.Stats.t -> check list
(** {!event_checks} plus, when the engine kept a ledger,
    {!ledger_checks} — the full reconciliation for a finished
    solo-engine run. *)
