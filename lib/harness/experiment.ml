module Layout = Cfg.Layout
module Config = Tracegen.Config
module Stats = Tracegen.Stats

(* One experimental run: a workload at a size, under a configuration.
   Layouts are cached per (workload, size) and runs per full key, because
   one run feeds several tables. *)

type key = {
  workload : string;
  size : int;
  delay : int;
  threshold : float;
  build_traces : bool;
}

type run = {
  key : key;
  stats : Stats.t;
  result_value : int; (* the program's checksum, for cross-checking *)
}

let layout_cache : (string * int, Layout.t) Hashtbl.t = Hashtbl.create 16

let layout_for (w : Workloads.Workload.t) ~size =
  match Hashtbl.find_opt layout_cache (w.Workloads.Workload.name, size) with
  | Some l -> l
  | None ->
      let program = w.Workloads.Workload.build ~size in
      Bytecode.Verify.verify_program program;
      let l = Layout.build program in
      Hashtbl.add layout_cache (w.Workloads.Workload.name, size) l;
      l

let run_cache : (key, run) Hashtbl.t = Hashtbl.create 64

let int_of_outcome = function
  | Vm.Interp.Finished (Some (Vm.Value.Vint n)) -> n
  | Vm.Interp.Finished _ -> 0
  | Vm.Interp.Trapped (kind, msg) ->
      failwith
        (Printf.sprintf "workload trapped: %s (%s)"
           (Vm.Interp.error_kind_to_string kind)
           msg)

let execute (key : key) : run =
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let w =
        match Workloads.Registry.find key.workload with
        | Some w -> w
        | None -> invalid_arg ("unknown workload " ^ key.workload)
      in
      let layout = layout_for w ~size:key.size in
      let config =
        Config.make ~start_state_delay:key.delay ~threshold:key.threshold
          ~build_traces:key.build_traces ()
      in
      let result = Tracegen.Engine.run ~config layout in
      let r =
        {
          key;
          stats = result.Tracegen.Engine.run_stats;
          result_value =
            int_of_outcome result.Tracegen.Engine.vm_result.Vm.Interp.outcome;
        }
      in
      Hashtbl.add run_cache key r;
      r

let default_key ~workload ~size =
  { workload; size; delay = 64; threshold = 0.97; build_traces = true }

(* The paper's parameter grid. *)
let thresholds = [ 1.00; 0.99; 0.98; 0.97; 0.95 ]

let delays = [ 1; 64; 4096 ]

let bench_workloads () = Workloads.Registry.all

let size_for ?(scale = 1.0) (w : Workloads.Workload.t) =
  max 1 (int_of_float (float_of_int w.Workloads.Workload.bench_size *. scale))
