(** Chaos testing: workloads under randomized (but seeded, deterministic)
    fault schedules, holding the engine to two promises:

    - {b transparency} (gate code FT901) — tracing is a pure
      observational overlay, so VM results must be bit-identical to a
      no-tracing baseline under {e any} fault schedule;
    - {b recovery} (gate code FT902) — the fault budget exhausts early in
      the run, after which the self-healing machinery must climb the
      degradation ladder back to full tracing before the run ends.

    A schedule is a pure function of (spec, seed), so a failing seed is a
    reproducible bug report. *)

val default_spec : string
(** Every fault kind armed, with a budget sized so a default-size
    workload sees all of it early and then recovers. *)

val config :
  ?spec:string -> ?osr:bool -> ?tier:bool -> seed:int -> unit -> Tracegen.Config.t
(** The chaos operating point: self-healing and debug checks on, the
    cache bounded, the given fault schedule armed.  [osr] (default
    [false]) additionally arms on-stack replacement, putting the
    mid-trace deoptimization paths under the transparency gate — pair it
    with a [guard-flip] spec to actually exercise them.  [tier] (default
    [false]) arms the compiled micro-IR tier, so compiled-trace dispatch
    (and, with [osr], deopt from the compiled tier) runs under the same
    gate. *)

type verdict = {
  workload : string;
  seed : int;
  identical : bool;  (** FT901: VM results match the baseline *)
  recovered : bool;  (** FT902: ended the run at full tracing *)
  reconciled : bool;
      (** FT903: the event timeline and decision ledger reconcile with
          the end-of-run statistics ({!Oracle.run_checks}). *)
  stats : Tracegen.Stats.t;
}

val passed : verdict -> bool

val fingerprint : Vm.Interp.result -> string * int * int
(** A comparable fingerprint of a VM result: the outcome rendered to a
    string plus both dispatch-model counts.  Two runs with equal
    fingerprints are bit-identical for the FT901 gate's purposes — the
    [backends] and [session] equivalence checks reuse it. *)

val run_one :
  ?spec:string ->
  ?osr:bool ->
  ?tier:bool ->
  ?max_instructions:int ->
  ?dump_dir:string ->
  Workloads.Workload.t ->
  size:int ->
  seed:int ->
  verdict
(** One workload under one seeded schedule, compared against a fresh
    no-tracing baseline of the same layout.  The run's event stream
    feeds the reconciliation oracle (the [reconciled] verdict);
    [dump_dir], when given, arms the flight recorder's post-mortem file
    sink there — a divergence triggers a dump, as do the engine's own
    invariant/degradation triggers. *)

val gate :
  ?spec:string ->
  ?osr:bool ->
  ?tier:bool ->
  ?max_instructions:int ->
  ?dump_dir:string ->
  ?schedules:int ->
  seed:int ->
  size_of:(Workloads.Workload.t -> int) ->
  unit ->
  verdict list
(** Every registered workload under [schedules] (default 50) seeded
    schedules; seeds are [seed + 1000*i].  Returns every verdict — the
    caller renders failures and derives an exit status. *)

val describe : verdict -> string
(** One line: pass/fail flags plus the resilience counters. *)
