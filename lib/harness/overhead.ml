module Stats = Tracegen.Stats
module Config = Tracegen.Config

(* Wall-clock profiler overhead (paper Tables VI and VII).

   Table VI methodology: time the interpreter with no observer at all, then
   with the profiler hook attached to every block dispatch (trace building
   disabled), and report the overhead per million dispatches.

   Table VII methodology: under the trace-dispatch model the hook runs once
   per dispatch (block or trace); multiplying the measured per-dispatch
   cost by the trace-model dispatch count predicts the profiling overhead
   of the full system, as the paper does. *)

type row = {
  name : string;
  plain_sec : float;
  dispatches : int; (* block dispatches = hook executions in Table VI *)
  profiled_sec : float;
  per_million : float; (* overhead seconds per million dispatches *)
}

let time_best ~repeats f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (!best, Option.get !result)

let measure ?(scale = 1.0) ?(repeats = 3) (w : Workloads.Workload.t) : row =
  let size = Experiment.size_for ~scale w in
  let layout = Experiment.layout_for w ~size in
  let plain_sec, plain = time_best ~repeats (fun () -> Vm.Interp.run_plain layout) in
  (* pin the profile backend: the hook runs at every dispatch but traces
     are neither built (config) nor entered (backend) *)
  let config = Config.make ~build_traces:false () in
  let profiled_sec, run =
    time_best ~repeats (fun () ->
        Tracegen.Engine.run ~config ~backend:Tracegen.Engine.Profile layout)
  in
  let dispatches = plain.Vm.Interp.block_dispatches in
  ignore run;
  let per_million =
    if dispatches = 0 then 0.0
    else (profiled_sec -. plain_sec) /. (float_of_int dispatches /. 1e6)
  in
  { name = w.Workloads.Workload.name; plain_sec; dispatches; profiled_sec; per_million }

let table6 ?(scale = 1.0) ?(repeats = 3) () =
  let rows = List.map (measure ~scale ~repeats) (Experiment.bench_workloads ()) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Table VI: Profiler overhead per basic-block dispatch\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %12s %14s %12s %18s\n" "benchmark" "no-prof (s)"
       "dispatches (M)" "profiler (s)" "ovh per 10^6 disp");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-11s %12.3f %14.2f %12.3f %17.4fs\n" r.name
           r.plain_sec
           (float_of_int r.dispatches /. 1e6)
           r.profiled_sec r.per_million))
    rows;
  (Buffer.contents buf, rows)

let table7 ?(scale = 1.0) ?(repeats = 3) ?rows () =
  let rows6 =
    match rows with
    | Some rows -> rows
    | None -> snd (table6 ~scale ~repeats ())
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Table VII: Expected profiler overhead under trace dispatch\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %18s %18s %14s %10s\n" "benchmark"
       "trace disp (M)" "ovh/10^6 disp (s)" "expected (s)" "% ovh");
  List.iter
    (fun r6 ->
      let key =
        {
          Experiment.workload = r6.name;
          size =
            Experiment.size_for ~scale
              (Option.get (Workloads.Registry.find r6.name));
          delay = 64;
          threshold = 0.97;
          build_traces = true;
        }
      in
      let run = Experiment.execute key in
      let s = run.Experiment.stats in
      let trace_disp = Stats.total_dispatches s in
      let expected = float_of_int trace_disp /. 1e6 *. r6.per_million in
      let pct_ovh =
        if r6.plain_sec > 0.0 then 100.0 *. expected /. r6.plain_sec else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf "%-11s %18.2f %18.4f %14.4f %9.1f%%\n" r6.name
           (float_of_int trace_disp /. 1e6)
           r6.per_million expected pct_ovh))
    rows6;
  Buffer.contents buf
