(** Warm-start benchmarks: the payoff of persisting profile state
    ({!Tracegen.Persist}) and the cost model behind footprint-aware
    eviction. *)

val cold_vs_warm : ?scale:float -> unit -> string
(** Time-to-peak-throughput, cold vs warm, on two workloads.  Each run
    snapshots the metrics registry every 2000 dispatches; a window's
    throughput is its trace-dispatch share, and the run is "at peak"
    from the first window reaching 90% of its steady-state share (mean
    of the last quarter of windows).  The table also reports each run's
    warm-up deficit — dispatches spent below steady state, the area
    above the throughput curve — which aggregates the whole learning
    curve even when the workload ramps intrinsically.  The warm run
    restores the cold run's end-of-run snapshot and should show a
    smaller deficit while constructing far fewer traces. *)

val eviction_ablation : ?scale:float -> unit -> string
(** The same workloads under a starved cache (12 traces), once with
    plain LRU eviction and once with the footprint-aware policy
    (condemn the worst bytes-per-use trace), comparing evictions,
    trace-dispatch share, completed coverage and the i-cache footprint
    of the surviving cache. *)
