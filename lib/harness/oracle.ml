(* The events-vs-stats-vs-ledger reconciliation oracle.

   The event stream, the end-of-run statistics and the decision ledger
   are three views of the same execution; this module owns the exact
   agreements between them so every consumer (`repro_cli events`, the
   chaos harness, the tests) checks the same list rather than each
   keeping a private copy that can drift. *)

module Events = Tracegen.Events
module Stats = Tracegen.Stats
module Engine = Tracegen.Engine
module Ledger = Tracegen.Ledger

type check = { name : string; got : int; want : int }

let check_ok c = c.got = c.want

let all_ok checks = List.for_all check_ok checks

let failures checks = List.filter (fun c -> not (check_ok c)) checks

(* ------------------------------------------------------------------ *)
(* Event tally                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-kind counts plus the three refinements the checks need beyond
   raw kinds: new-vs-reused constructions and the eviction-reason
   split (quarantine removals count under traces_quarantined, the
   other reasons under traces_evicted). *)
type tally = {
  counts : (string, int) Hashtbl.t;
  mutable constructed_new : int;
  mutable evicted_counted : int;
  mutable evicted_quarantine : int;
}

let create_tally () =
  {
    counts = Hashtbl.create 16;
    constructed_new = 0;
    evicted_counted = 0;
    evicted_quarantine = 0;
  }

let count t k = try Hashtbl.find t.counts k with Not_found -> 0

let n_kinds t = Hashtbl.length t.counts

let observe t (payload : Events.payload) =
  let k = Events.kind payload in
  Hashtbl.replace t.counts k (1 + count t k);
  match payload with
  | Events.Trace_constructed { reused = false; _ } ->
      t.constructed_new <- t.constructed_new + 1
  (* exhaustive over the shared eviction-reason variant *)
  | Events.Trace_evicted { reason = Events.Quarantine; _ } ->
      t.evicted_quarantine <- t.evicted_quarantine + 1
  | Events.Trace_evicted
      { reason = Events.Capacity | Events.Pressure | Events.Footprint; _ } ->
      t.evicted_counted <- t.evicted_counted + 1
  | _ -> ()

let attach events =
  let t = create_tally () in
  let _sub =
    Events.subscribe events (fun e -> observe t e.Events.payload)
  in
  t

(* ------------------------------------------------------------------ *)
(* Events vs stats                                                     *)
(* ------------------------------------------------------------------ *)

let event_checks (t : tally) ~(engine : Engine.t) (s : Stats.t) : check list =
  let in_flight =
    match Engine.active_trace engine with Some _ -> 1 | None -> 0
  in
  [
    {
      name = "signal_raised = signals";
      got = count t "signal_raised";
      want = s.Stats.signals;
    };
    {
      name = "trace_constructed (new) = traces_constructed";
      got = t.constructed_new;
      want = s.Stats.traces_constructed;
    };
    {
      name = "trace_constructed (reused) = builder reuses";
      got = count t "trace_constructed" - t.constructed_new;
      want = Engine.builder_reuses engine;
    };
    {
      name = "trace_entered = traces_entered";
      got = count t "trace_entered";
      want = s.Stats.traces_entered;
    };
    {
      name = "trace_completed = traces_completed";
      got = count t "trace_completed";
      want = s.Stats.traces_completed;
    };
    {
      name = "side_exit = entered - completed - in-flight";
      got = count t "side_exit";
      want = s.Stats.traces_entered - s.Stats.traces_completed - in_flight;
    };
    {
      name = "trace_replaced = traces_replaced";
      got = count t "trace_replaced";
      want = s.Stats.traces_replaced;
    };
    {
      name = "fault_injected = faults_injected";
      got = count t "fault_injected";
      want = s.Stats.faults_injected;
    };
    {
      name = "trace_quarantined = traces_quarantined";
      got = count t "trace_quarantined";
      want = s.Stats.traces_quarantined;
    };
    (* quarantine removals also emit trace_evicted (reason "quarantine")
       but count under traces_quarantined, not traces_evicted *)
    {
      name = "trace_evicted (capacity+pressure) = traces_evicted";
      got = t.evicted_counted;
      want = s.Stats.traces_evicted;
    };
    {
      name = "trace_evicted (all reasons) = timeline total";
      got = t.evicted_counted + t.evicted_quarantine;
      want = count t "trace_evicted";
    };
    {
      name = "mode_degraded = health_demotions";
      got = count t "mode_degraded";
      want = s.Stats.health_demotions;
    };
    {
      name = "mode_recovered = health_promotions";
      got = count t "mode_recovered";
      want = s.Stats.health_promotions;
    };
    {
      name = "deopt_entered = deopts";
      got = count t "deopt_entered";
      want = s.Stats.deopts;
    };
    {
      name = "osr_promoted = osr_promotions";
      got = count t "osr_promoted";
      want = s.Stats.osr_promotions;
    };
    {
      name = "trace_compiled = traces_compiled";
      got = count t "trace_compiled";
      want = s.Stats.traces_compiled;
    };
    {
      name = "tier_demoted = tier_demotions";
      got = count t "tier_demoted";
      want = s.Stats.tier_demotions;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Ledger vs stats                                                     *)
(* ------------------------------------------------------------------ *)

(* The decision ledger's aggregates against the same counters.  The
   mapping mirrors where the engine records: every construction and
   reuse flows through a Build record, every tier compile (including
   restore-time recompilation) through Compile, every real eviction
   (capacity/pressure/footprint — not quarantine removal) through
   Evict, and so on. *)
let ledger_checks (l : Ledger.t) ~(engine : Engine.t) (s : Stats.t) :
    check list =
  let built = ref 0
  and reused = ref 0
  and guard_pruned = ref 0
  and quarantines = ref 0
  and evictions = ref 0
  and replacements = ref 0
  and compiles = ref 0
  and demotions = ref 0
  and osr_promotes = ref 0
  and deopts = ref 0 in
  Ledger.iter
    (fun r ->
      match r.Ledger.action with
      | Ledger.Build { new_traces; reused = re; pruned = _ } ->
          built := !built + new_traces;
          reused := !reused + re
      | Ledger.Guard_prune { pruned } -> guard_pruned := !guard_pruned + pruned
      | Ledger.Install { replaced; _ } ->
          if replaced then incr replacements
      | Ledger.Quarantine _ -> incr quarantines
      | Ledger.Evict _ -> incr evictions
      | Ledger.Compile _ -> incr compiles
      | Ledger.Demote _ -> incr demotions
      | Ledger.Osr_promote _ -> incr osr_promotes
      | Ledger.Deopt _ -> incr deopts)
    l;
  [
    {
      name = "ledger build.new = traces_constructed";
      got = !built;
      want = s.Stats.traces_constructed;
    };
    {
      name = "ledger build.reused = builder reuses";
      got = !reused;
      want = Engine.builder_reuses engine;
    };
    {
      name = "ledger guard_prune = guards_pruned";
      got = !guard_pruned;
      want = s.Stats.guards_pruned;
    };
    {
      name = "ledger install.replaced = traces_replaced";
      got = !replacements;
      want = s.Stats.traces_replaced;
    };
    {
      name = "ledger quarantine = traces_quarantined";
      got = !quarantines;
      want = s.Stats.traces_quarantined;
    };
    {
      name = "ledger evict = traces_evicted";
      got = !evictions;
      want = s.Stats.traces_evicted;
    };
    {
      name = "ledger compile = traces_compiled";
      got = !compiles;
      want = s.Stats.traces_compiled;
    };
    {
      name = "ledger demote = tier_demotions";
      got = !demotions;
      want = s.Stats.tier_demotions;
    };
    {
      name = "ledger osr_promote = osr_promotions";
      got = !osr_promotes;
      want = s.Stats.osr_promotions;
    };
    { name = "ledger deopt = deopts"; got = !deopts; want = s.Stats.deopts };
  ]

(* Both reconciliations for a finished solo-engine run.  Ledger checks
   apply only when the run actually kept a ledger. *)
let run_checks (t : tally) ~(engine : Engine.t) (s : Stats.t) : check list =
  event_checks t ~engine s
  @
  match Engine.ledger engine with
  | Some l -> ledger_checks l ~engine s
  | None -> []
