module Config = Tracegen.Config
module Stats = Tracegen.Stats

(* Ablations of the design choices DESIGN.md calls out:

   - decay: the paper argues periodic exponential decay is what lets the
     cache adapt to phase changes without flushing (§3.6, §4.1.1).

     Measured finding (see EXPERIMENTS.md): completion turns out to be
     surprisingly robust even with decay disabled, because transition-keyed
     dispatch tends to place trace *seams* exactly at the unstable branch —
     the branch's outcome block is dispatched normally and each phase's
     chain picks up from there, so no stale trace is entered.  What decay
     still governs is the signal dynamics (stale Strong states and
     never-pruned edges accumulate without it) and the BCG's memory; and an
     intermediate decay period can transiently *hurt*, by rebuilding traces
     mid-flip with seams inside the unstable region.

   - start-state delay: Table V, already covered by the main harness.

   - trace optimization headroom: how much straight-line optimization the
     completed traces admit (the paper's §6 next step). *)

(* The phase-change subject program.  The phase flip changes the *bias*
   of one branch between two targets that are both exercised in every
   phase (63/64 vs 1/64 — above the 0.97 threshold, so traces are built
   across it), with shared code after the merge.  No new BCG nodes appear
   at a flip, so start-state promotion cannot drive the adaptation: only
   the correlation dynamics can. *)
let phase_program ~iters_per_phase =
  let open Workloads.Dsl in
  let module S = Bytecode.Structured in
  let p = S.create () in
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        decl_i "acc" (i 0);
        for_ "phase" (i 0) (i 4)
          [
            decl_i "hot" (i 1);
            when_ ((v "phase" &! i 1) =! i 1) [ set "hot" (i 63) ];
            for_ "k" (i 0) (i iters_per_phase)
              [
                decl_i "x" (i 0);
                if_
                  ((v "k" &! i 63) <! v "hot")
                  [ set "x" (v "k" *! i 3 &! i 0xFFFF) ]
                  [ set "x" (v "k" ^! i 0x5555) ];
                (* shared tail after the merge *)
                set "acc" ((v "acc" +! v "x") &! i 0xFFFFF);
                set "acc" ((v "acc" *! i 5 +! i 1) &! i 0xFFFFF);
              ];
          ];
        ret (v "acc");
      ]
    ();
  S.link p ~entry:"main"

type decay_row = {
  label : string;
  signals : int;
  traces_replaced : int;
  completion : float;
  coverage_total : float;
  partial_exits : int;
}

let decay_run ~decay_period ~iters_per_phase : decay_row =
  let layout = Cfg.Layout.build (phase_program ~iters_per_phase) in
  let config = Config.make ~decay_period () in
  let r = Tracegen.Engine.run ~config layout in
  let s = r.Tracegen.Engine.run_stats in
  let partial_exits = ref 0 in
  Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache r.Tracegen.Engine.engine)
    (fun tr -> partial_exits := !partial_exits + tr.Tracegen.Trace.partial_exits);
  {
    label =
      (if decay_period > 1_000_000 then "no decay"
       else Printf.sprintf "decay %d" decay_period);
    signals = s.Stats.signals;
    traces_replaced = s.Stats.traces_replaced;
    completion = Stats.completion_rate s;
    coverage_total = Stats.coverage_total s;
    partial_exits = !partial_exits;
  }

let decay_ablation ?(iters_per_phase = 40_000) () =
  let rows =
    [
      decay_run ~decay_period:256 ~iters_per_phase;
      decay_run ~decay_period:4096 ~iters_per_phase;
      decay_run ~decay_period:100_000_000 ~iters_per_phase;
    ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Ablation: periodic decay across four bias-flip phases of one hot branch\n";
  Buffer.add_string buf
    (Printf.sprintf "%-12s %8s %9s %12s %11s %14s\n" "config" "signals"
       "replaced" "completion%" "coverage%" "partial exits");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %8d %9d %12.2f %11.1f %14d\n" r.label r.signals
           r.traces_replaced
           (100.0 *. r.completion)
           (100.0 *. r.coverage_total)
           r.partial_exits))
    rows;
  Buffer.contents buf

(* Optimization headroom: weight each trace's savings by the instructions
   it actually delivered. *)
let optimizer_report ?(scale = 1.0) () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Trace optimization headroom (completion-weighted; paper section 6)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-11s %10s %10s %10s %12s %12s\n" "benchmark" "traces"
       "instrs" "removed" "headroom%" "fold/fwd/dead/tail");
  List.iter
    (fun w ->
      let name = w.Workloads.Workload.name in
      let key =
        Experiment.default_key ~workload:name
          ~size:(Experiment.size_for ~scale w)
      in
      ignore (Experiment.execute key);
      (* re-run to get the engine with its cache (Experiment only keeps
         stats); cheap at small scale but wasteful at 1.0 — accept it,
         the run cache keyed identically cannot hand us the engine *)
      let layout =
        Experiment.layout_for
          (Option.get (Workloads.Registry.find name))
          ~size:key.Experiment.size
      in
      let r = Tracegen.Engine.run layout in
      let traces = ref 0 in
      let weighted_orig = ref 0 in
      let weighted_saved = ref 0 in
      let folded = ref 0 in
      let fwd = ref 0 in
      let dead = ref 0 in
      let tail = ref 0 in
      Tracegen.Trace_cache.iter_all (Tracegen.Engine.cache r.Tracegen.Engine.engine)
        (fun tr ->
          if tr.Tracegen.Trace.completed > 0 then begin
            incr traces;
            let res = Tracegen.Trace_optimizer.optimize layout tr in
            let c = tr.Tracegen.Trace.completed in
            weighted_orig :=
              !weighted_orig + (c * Array.length res.Tracegen.Trace_optimizer.original);
            weighted_saved :=
              !weighted_saved + (c * Tracegen.Trace_optimizer.saved res);
            folded := !folded + res.Tracegen.Trace_optimizer.folded;
            fwd := !fwd + res.Tracegen.Trace_optimizer.forwarded;
            dead := !dead + res.Tracegen.Trace_optimizer.dead_stores;
            tail := !tail + res.Tracegen.Trace_optimizer.trailing_dead_stores
          end);
      Buffer.add_string buf
        (Printf.sprintf "%-11s %10d %10d %10d %11.1f%% %4d/%d/%d/%d\n" name
           !traces !weighted_orig !weighted_saved
           (if !weighted_orig = 0 then 0.0
            else 100.0 *. float_of_int !weighted_saved /. float_of_int !weighted_orig)
           !folded !fwd !dead !tail))
    (Experiment.bench_workloads ());
  Buffer.contents buf
