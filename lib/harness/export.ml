module Stats = Tracegen.Stats

(* Machine-readable results for experiment runs and sweeps.  The JSON
   machinery and the per-record JSONL/Chrome writers moved to [Codec]
   (the single encode/decode module); what remains here is the
   experiment-level exporters plus thin deprecated aliases so callers
   that predate the split keep compiling. *)

(* Deprecated aliases: use [Codec]. *)

type json = Codec.json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_list of json list

let to_string = Codec.to_string

let json_escape = Codec.json_escape

let parse = Codec.parse

let schema_version = Codec.schema_version

let snapshot_json = Codec.snapshot_json

let snapshots_jsonl = Codec.snapshots_jsonl

let event_json = Codec.event_json

let events_jsonl = Codec.events_jsonl

let hist_json = Codec.hist_json

let span_json = Codec.span_json

let spans_jsonl = Codec.spans_jsonl

let diag_json = Codec.diag_json

let diags_jsonl = Codec.diags_jsonl

let chrome_trace = Codec.chrome_trace

let chrome_trace_events = Codec.chrome_trace_events

(* One run's statistics, raw counts plus the paper's derived values —
   the latter computed once through Stats.derived. *)
let stats_json ?(extra = []) (s : Stats.t) : json =
  let d = Stats.derived s in
  J_obj
    (extra
    @ [
        ("instructions", J_int s.Stats.instructions);
        ("block_dispatches", J_int s.Stats.block_dispatches);
        ("trace_dispatches", J_int s.Stats.trace_dispatches);
        ("traces_entered", J_int s.Stats.traces_entered);
        ("traces_completed", J_int s.Stats.traces_completed);
        ("signals", J_int s.Stats.signals);
        ("traces_constructed", J_int s.Stats.traces_constructed);
        ("traces_replaced", J_int s.Stats.traces_replaced);
        ("traces_live", J_int s.Stats.traces_live);
        ("bcg_nodes", J_int s.Stats.bcg_nodes);
        ("bcg_edges", J_int s.Stats.bcg_edges);
        ("chained_entries", J_int s.Stats.chained_entries);
        ("avg_trace_length", J_float d.Stats.avg_trace_length);
        ("dynamic_trace_length", J_float d.Stats.dynamic_trace_length);
        ("coverage_completed", J_float d.Stats.coverage_completed);
        ("coverage_total", J_float d.Stats.coverage_total);
        ("completion_rate", J_float d.Stats.completion_rate);
        ("dispatches_per_signal", J_float d.Stats.dispatches_per_signal);
        ("trace_event_interval", J_float d.Stats.trace_event_interval);
        ("linking_rate", J_float d.Stats.linking_rate);
        ("dispatch_reduction", J_float d.Stats.dispatch_reduction);
        ("invariant_violations", J_int s.Stats.invariant_violations);
        ("faults_injected", J_int s.Stats.faults_injected);
        ("traces_quarantined", J_int s.Stats.traces_quarantined);
        ("traces_evicted", J_int s.Stats.traces_evicted);
        ("traces_blacklisted", J_int s.Stats.traces_blacklisted);
        ("failed_installs", J_int s.Stats.failed_installs);
        ("healed_nodes", J_int s.Stats.healed_nodes);
        ("health_demotions", J_int s.Stats.health_demotions);
        ("health_promotions", J_int s.Stats.health_promotions);
        ("final_health", J_int s.Stats.final_health);
        ("quarantine_rate", J_float d.Stats.quarantine_rate);
        ("eviction_rate", J_float d.Stats.eviction_rate);
        ("wall_seconds", J_float s.Stats.wall_seconds);
      ])

let run_json (r : Experiment.run) : json =
  let k = r.Experiment.key in
  stats_json
    ~extra:
      [
        ("schema_version", J_int schema_version);
        ("workload", J_string k.Experiment.workload);
        ("size", J_int k.Experiment.size);
        ("delay", J_int k.Experiment.delay);
        ("threshold", J_float k.Experiment.threshold);
        ("checksum", J_int r.Experiment.result_value);
      ]
    r.Experiment.stats

(* The full threshold x delay grid as JSON lines (one run per line). *)
let sweep_jsonl ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.thresholds;
      List.iter
        (fun delay ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay;
                threshold = 0.97;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.delays)
    (Experiment.bench_workloads ());
  Buffer.contents buf

(* CSV of the threshold sweep: one row per (workload, threshold). *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let sweep_csv ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "workload,threshold,delay,instructions,avg_trace_length,\
     coverage_completed,coverage_total,completion_rate,\
     dispatches_per_signal,trace_event_interval,signals,traces_constructed\n";
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let r =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          let s = r.Experiment.stats in
          Buffer.add_string buf
            (Printf.sprintf "%s,%.2f,%d,%d,%.3f,%.4f,%.4f,%.5f,%.1f,%.1f,%d,%d\n"
               (csv_escape w.Workloads.Workload.name)
               threshold 64 s.Stats.instructions (Stats.avg_trace_length s)
               (Stats.coverage_completed s) (Stats.coverage_total s)
               (Stats.completion_rate s)
               (Stats.dispatches_per_signal s)
               (Stats.trace_event_interval s)
               s.Stats.signals s.Stats.traces_constructed))
        Experiment.thresholds)
    (Experiment.bench_workloads ());
  Buffer.contents buf
