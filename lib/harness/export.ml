module Stats = Tracegen.Stats

(* Machine-readable output: JSON for single runs, CSV for sweeps.  No JSON
   dependency is installed in this environment, so a minimal escaper-and-
   printer lives here; it only ever emits objects of numbers and strings. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_obj of (string * json) list
  | J_list of json list

let rec render_json buf = function
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_float f ->
      (* JSON has no NaN/inf; clamp to null-ish zero *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "0"
  | J_string s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (json_escape s);
      Buffer.add_char buf '"'
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (name, v) ->
          if k > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (json_escape name);
          Buffer.add_string buf "\":";
          render_json buf v)
        fields;
      Buffer.add_char buf '}'
  | J_list items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k v ->
          if k > 0 then Buffer.add_char buf ',';
          render_json buf v)
        items;
      Buffer.add_char buf ']'

let to_string j =
  let buf = Buffer.create 256 in
  render_json buf j;
  Buffer.contents buf

(* Every top-level JSONL record (event, snapshot, lint diagnostic, sweep
   run) leads with this so downstream consumers can detect format
   drift.  Bump on any breaking change to the field sets below.
   Version 2: added it, plus the eviction [reason] field. *)
let schema_version = 2

let versioned fields = ("schema_version", J_int schema_version) :: fields

(* One run's statistics, raw counts plus the paper's derived values —
   the latter computed once through Stats.derived. *)
let stats_json ?(extra = []) (s : Stats.t) : json =
  let d = Stats.derived s in
  J_obj
    (extra
    @ [
        ("instructions", J_int s.Stats.instructions);
        ("block_dispatches", J_int s.Stats.block_dispatches);
        ("trace_dispatches", J_int s.Stats.trace_dispatches);
        ("traces_entered", J_int s.Stats.traces_entered);
        ("traces_completed", J_int s.Stats.traces_completed);
        ("signals", J_int s.Stats.signals);
        ("traces_constructed", J_int s.Stats.traces_constructed);
        ("traces_replaced", J_int s.Stats.traces_replaced);
        ("traces_live", J_int s.Stats.traces_live);
        ("bcg_nodes", J_int s.Stats.bcg_nodes);
        ("bcg_edges", J_int s.Stats.bcg_edges);
        ("chained_entries", J_int s.Stats.chained_entries);
        ("avg_trace_length", J_float d.Stats.avg_trace_length);
        ("dynamic_trace_length", J_float d.Stats.dynamic_trace_length);
        ("coverage_completed", J_float d.Stats.coverage_completed);
        ("coverage_total", J_float d.Stats.coverage_total);
        ("completion_rate", J_float d.Stats.completion_rate);
        ("dispatches_per_signal", J_float d.Stats.dispatches_per_signal);
        ("trace_event_interval", J_float d.Stats.trace_event_interval);
        ("linking_rate", J_float d.Stats.linking_rate);
        ("dispatch_reduction", J_float d.Stats.dispatch_reduction);
        ("invariant_violations", J_int s.Stats.invariant_violations);
        ("faults_injected", J_int s.Stats.faults_injected);
        ("traces_quarantined", J_int s.Stats.traces_quarantined);
        ("traces_evicted", J_int s.Stats.traces_evicted);
        ("traces_blacklisted", J_int s.Stats.traces_blacklisted);
        ("failed_installs", J_int s.Stats.failed_installs);
        ("healed_nodes", J_int s.Stats.healed_nodes);
        ("health_demotions", J_int s.Stats.health_demotions);
        ("health_promotions", J_int s.Stats.health_promotions);
        ("final_health", J_int s.Stats.final_health);
        ("quarantine_rate", J_float d.Stats.quarantine_rate);
        ("eviction_rate", J_float d.Stats.eviction_rate);
        ("wall_seconds", J_float s.Stats.wall_seconds);
      ])

(* ------------------------------------------------------------------ *)
(* Event timelines and metric snapshots                                 *)
(* ------------------------------------------------------------------ *)

module Events = Tracegen.Events
module Metrics = Tracegen.Metrics

(* One metrics snapshot: the logical time it was taken at plus every
   registered source, flattened into the object. *)
let snapshot_fields (s : Metrics.snapshot) =
  ("at", J_int s.Metrics.at)
  :: Array.to_list
       (Array.map (fun (name, v) -> (name, J_int v)) s.Metrics.values)

let snapshot_json (s : Metrics.snapshot) : json =
  J_obj (versioned (snapshot_fields s))

let snapshots_jsonl (snaps : Metrics.snapshot list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (to_string (snapshot_json s));
      Buffer.add_char buf '\n')
    snaps;
  Buffer.contents buf

(* One event as a flat object: {"event": <kind>, "time": <dispatch>, ...}
   with the payload's fields spliced in.  This is the JSONL schema
   documented in DESIGN.md — field names are stable. *)
let event_json (e : Events.event) : json =
  let payload_fields =
    match e.Events.payload with
    | Events.Signal_raised { x; y; old_state; new_state; best_changed } ->
        [
          ("x", J_int x);
          ("y", J_int y);
          ("old_state", J_string (Tracegen.State.to_string old_state));
          ("new_state", J_string (Tracegen.State.to_string new_state));
          ("best_changed", J_bool best_changed);
        ]
    | Events.Trace_constructed { trace_id; first; n_blocks; n_instrs; prob; reused }
      ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("n_blocks", J_int n_blocks);
          ("n_instrs", J_int n_instrs);
          ("prob", J_float prob);
          ("reused", J_bool reused);
        ]
    | Events.Trace_replaced { first; head; trace_id } ->
        [ ("first", J_int first); ("head", J_int head); ("trace_id", J_int trace_id) ]
    | Events.Trace_entered { trace_id; chained } ->
        [ ("trace_id", J_int trace_id); ("chained", J_bool chained) ]
    | Events.Side_exit { trace_id; at_block; matched_blocks; matched_instrs } ->
        [
          ("trace_id", J_int trace_id);
          ("at_block", J_int at_block);
          ("matched_blocks", J_int matched_blocks);
          ("matched_instrs", J_int matched_instrs);
        ]
    | Events.Trace_completed { trace_id; n_blocks; n_instrs } ->
        [
          ("trace_id", J_int trace_id);
          ("n_blocks", J_int n_blocks);
          ("n_instrs", J_int n_instrs);
        ]
    | Events.Decay_pass { decays } -> [ ("decays", J_int decays) ]
    | Events.Phase_snapshot s ->
        (* nested object: the enclosing event record carries the version *)
        [ ("snapshot", J_obj (snapshot_fields s)) ]
    | Events.Invariant_violation { code; severity; message } ->
        [
          ("code", J_string code);
          ("severity", J_string severity);
          ("message", J_string message);
        ]
    | Events.Fault_injected { code; detail } ->
        [ ("code", J_string code); ("detail", J_string detail) ]
    | Events.Trace_quarantined { trace_id; first; head; code; attempts; until }
      ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("head", J_int head);
          ("code", J_string code);
          ("attempts", J_int attempts);
          (* max_int = permanently blacklisted; JSON-friendly sentinel *)
          ("until", J_int (if until = max_int then -1 else until));
        ]
    | Events.Trace_evicted { trace_id; first; head; n_live; reason } ->
        [
          ("trace_id", J_int trace_id);
          ("first", J_int first);
          ("head", J_int head);
          ("n_live", J_int n_live);
          ("reason", J_string (Events.evict_reason_to_string reason));
        ]
    | Events.Mode_degraded { from_level; to_level } ->
        [
          ("from", J_string (Tracegen.Health.level_to_string from_level));
          ("to", J_string (Tracegen.Health.level_to_string to_level));
        ]
    | Events.Mode_recovered { from_level; to_level } ->
        [
          ("from", J_string (Tracegen.Health.level_to_string from_level));
          ("to", J_string (Tracegen.Health.level_to_string to_level));
        ]
  in
  J_obj
    (versioned
       (("event", J_string (Events.kind e.Events.payload))
       :: ("time", J_int e.Events.time)
       :: payload_fields))

(* One lint diagnostic as a flat object — the `repro_cli lint --json`
   line schema. *)
let diag_json (d : Analysis.Diag.t) : json =
  let base =
    [
      ("code", J_string d.Analysis.Diag.code);
      ( "severity",
        J_string (Analysis.Diag.severity_to_string d.Analysis.Diag.severity) );
      ( "location",
        J_string (Analysis.Diag.location_to_string d.Analysis.Diag.loc) );
      ("message", J_string d.Analysis.Diag.message);
    ]
  in
  match d.Analysis.Diag.context with
  | Some c -> J_obj (versioned (("context", J_string c) :: base))
  | None -> J_obj (versioned base)

let diags_jsonl (diags : Analysis.Diag.t list) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_string (diag_json d));
      Buffer.add_char buf '\n')
    diags;
  Buffer.contents buf

let events_jsonl (events : Events.event list) : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (to_string (event_json e));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let run_json (r : Experiment.run) : json =
  let k = r.Experiment.key in
  stats_json
    ~extra:
      [
        ("schema_version", J_int schema_version);
        ("workload", J_string k.Experiment.workload);
        ("size", J_int k.Experiment.size);
        ("delay", J_int k.Experiment.delay);
        ("threshold", J_float k.Experiment.threshold);
        ("checksum", J_int r.Experiment.result_value);
      ]
    r.Experiment.stats

(* The full threshold x delay grid as JSON lines (one run per line). *)
let sweep_jsonl ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.thresholds;
      List.iter
        (fun delay ->
          let run =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay;
                threshold = 0.97;
                build_traces = true;
              }
          in
          Buffer.add_string buf (to_string (run_json run));
          Buffer.add_char buf '\n')
        Experiment.delays)
    (Experiment.bench_workloads ());
  Buffer.contents buf

(* CSV of the threshold sweep: one row per (workload, threshold). *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let sweep_csv ?(scale = 1.0) () : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "workload,threshold,delay,instructions,avg_trace_length,\
     coverage_completed,coverage_total,completion_rate,\
     dispatches_per_signal,trace_event_interval,signals,traces_constructed\n";
  List.iter
    (fun w ->
      let size = Experiment.size_for ~scale w in
      List.iter
        (fun threshold ->
          let r =
            Experiment.execute
              {
                Experiment.workload = w.Workloads.Workload.name;
                size;
                delay = 64;
                threshold;
                build_traces = true;
              }
          in
          let s = r.Experiment.stats in
          Buffer.add_string buf
            (Printf.sprintf "%s,%.2f,%d,%d,%.3f,%.4f,%.4f,%.5f,%.1f,%.1f,%d,%d\n"
               (csv_escape w.Workloads.Workload.name)
               threshold 64 s.Stats.instructions (Stats.avg_trace_length s)
               (Stats.coverage_completed s) (Stats.coverage_total s)
               (Stats.completion_rate s)
               (Stats.dispatches_per_signal s)
               (Stats.trace_event_interval s)
               s.Stats.signals s.Stats.traces_constructed))
        Experiment.thresholds)
    (Experiment.bench_workloads ());
  Buffer.contents buf
