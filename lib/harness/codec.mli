(** The one encode/decode module.

    Every serialized artifact the system produces goes through here:
    JSONL records (events, metric snapshots, histograms, spans, lint
    diagnostics), the Chrome [trace_event] timeline, and — via the
    {!Snapshot} re-export — the binary warm-start snapshot.  Keeping
    the writers, the parser and the version registry in one module
    gives all formats the same discipline: one version bump site per
    format ({!version}), checksums where the format is binary, and a
    {!round_trip} oracle where it is textual.

    [Export] retains thin aliases for callers that predate the split;
    new code should use [Codec] directly. *)

(** The binary warm-start snapshot codec ([Tracegen.Persist]),
    re-exported so [Codec] is the single front door to every format. *)
module Snapshot = Tracegen.Persist

(** {2 JSON values} *)

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_list of json list

val to_string : json -> string

val json_escape : string -> string

val parse : string -> (json, string) result
(** A minimal JSON parser — the inverse of {!to_string}, used by the
    timeline round-trip oracle.  Integral numbers parse as {!J_int},
    everything else numeric as {!J_float}; non-ASCII [\u] escapes are
    replaced (the emitter never produces them). *)

val round_trip : json -> (json, string) result
(** The round-trip oracle: render with {!to_string}, re-{!parse}, and
    check the result is the same value (an integral [J_float]
    legitimately re-parses as [J_int]; that one normalisation is
    allowed).  [Error] carries the parse error or a fixpoint-failure
    message. *)

(** {2 The version registry} *)

type format =
  | Jsonl  (** every top-level JSONL record below *)
  | Chrome_trace  (** {!chrome_trace} — an externally defined format *)
  | Binary_snapshot  (** the {!Snapshot} binary warm-start format *)

val format_name : format -> string
(** ["jsonl"] / ["chrome-trace"] / ["snapshot"]. *)

val version : format -> int
(** The version this build writes for each format — the registry's
    single lookup point.  [Jsonl] is {!schema_version};
    [Binary_snapshot] is [Snapshot.snapshot_version]. *)

val schema_version : int
(** Every top-level JSONL record ({!event_json}, {!snapshot_json},
    {!diag_json}, [Export.run_json]) leads with a ["schema_version"]
    field carrying this value, so downstream consumers can detect
    format drift.  Bumped on any breaking change to the record field
    sets — version 4 added the [cache_restored] / [snapshot_rejected]
    event kinds and the ["footprint"] eviction reason. *)

val versioned : (string * json) list -> (string * json) list
(** Prepend the [schema_version] field — how every JSONL writer here
    stamps its records. *)

(** {2 JSONL record writers} *)

val snapshot_json : Tracegen.Metrics.snapshot -> json
(** One metrics snapshot as a flat object: [{"at": <dispatch>,
    "<source>": <value>, …}]. *)

val snapshots_jsonl : Tracegen.Metrics.snapshot list -> string
(** A snapshot series, one object per line, chronological. *)

val event_json : Tracegen.Events.event -> json
(** One event as a flat object: [{"event": <kind>, "time": <dispatch>,
    …payload fields}].  The [event] tag is {!Tracegen.Events.kind}. *)

val events_jsonl : Tracegen.Events.event list -> string
(** An event timeline, one object per line, in list order. *)

val hist_json : Tracegen.Metrics.histogram -> json
(** One histogram: count/sum/mean/min/max, the p50/p90/p99 summary and
    the non-empty buckets (the overflow bucket's open upper bound
    renders as [-1]). *)

val span_json : Tracegen.Spans.span -> json
(** One span as a flat object ([end] is [-1] while open). *)

val spans_jsonl : Tracegen.Spans.span list -> string

val diag_json : Analysis.Diag.t -> json
(** One lint diagnostic as a flat object: [{"context": …, "code": …,
    "severity": …, "location": …, "message": …}] (context omitted when
    absent). *)

val diags_jsonl : Analysis.Diag.t list -> string
(** A diagnostic list, one object per line, in list order — the
    [repro_cli lint --json] schema. *)

(** {2 Flight recorder (post-mortem) and decision ledger} *)

val flightrec_entry_json : Tracegen.Flightrec.entry -> json
(** One ring entry as a flat object discriminated by [rec]: ["event"]
    entries carry the {!event_json} payload fields plus [seq];
    ["span"] and ["metric"] entries are flat records of their own. *)

val postmortem_header_json :
  reason:string -> Tracegen.Flightrec.t -> json
(** The dump header: [{"rec": "postmortem", "reason": …, "capacity": …,
    "recorded": …, "dropped": …}]. *)

val postmortem_jsonl : reason:string -> Tracegen.Flightrec.t -> string
(** A complete post-mortem dump: the header line followed by the
    surviving ring window oldest-first, one object per line. *)

val ledger_record_json : Tracegen.Ledger.record -> json
(** One decision record as a flat object: the [action] kind tag, the
    attribution triple ([seq]/[tick]/[span]), the trace linkage
    ([trace_id]/[first]/[head], [-1] when absent) and the
    action-specific justification fields. *)

val ledger_jsonl : Tracegen.Ledger.t -> string

(** {2 Chrome trace_event} *)

val chrome_trace : Tracegen.Spans.span list -> json
(** The span list as Chrome [trace_event] JSON, loadable in Perfetto or
    [about://tracing].  Dispatch ticks are reported as microseconds.
    Stack-disciplined spans (trace builds, heal sweeps, member turns)
    become [B]/[E] duration events on one thread track; quarantine
    episodes, which overlap freely, become [ph:"X"] complete events on a
    second.  Events are emitted in monotone timestamp order and every
    [E] closes the [B] it follows.  Open spans are skipped — run
    [Spans.end_all] first. *)

val chrome_trace_events : Tracegen.Spans.span list -> json
(** Just the sorted [traceEvents] array of {!chrome_trace}. *)
