(** A generic monotone dataflow framework: a worklist solver parameterized
    over a join-semilattice, a direction, and per-block transfer functions
    — the classic [Dataflow.Make] functor, instantiated in this library by
    {!Liveness} (backward, sets) and {!Constprop} (forward, abstract
    frames).

    The solver works on any finite graph given as successor/predecessor
    functions, so tests can feed it hand-built shapes; {!Make.solve_cfg}
    adapts a {!Cfg.Method_cfg.t}, optionally adding the exceptional edges
    (covered block → handler entry) that the CFG proper deliberately
    omits. *)

type direction =
  | Forward  (** facts flow along edges: in(b) = ⨆ out(preds) *)
  | Backward  (** facts flow against edges: out(b) = ⨆ in(succs) *)

(** A join-semilattice of dataflow facts.  [bottom] is the "no information
    yet" element (the initial value of every unvisited block); [join] must
    be monotone and, for the solver to terminate, the lattice must have no
    infinite ascending chains (use widening joins otherwise, as
    {!Constprop} does for intervals). *)
module type LATTICE = sig
  type t

  val bottom : t

  val equal : t -> t -> bool

  val join : t -> t -> t

  val pp : Format.formatter -> t -> unit
end

module Make (L : LATTICE) : sig
  type result = {
    input : L.t array;  (** fact at block entry (live-out for Backward) *)
    output : L.t array;  (** fact at block exit (live-in for Backward) *)
    iterations : int;  (** worklist pops until the fixpoint — for tests *)
  }
  (** For [Forward], [input.(b)] is the fact before the block and
      [output.(b) = transfer b input.(b)] the fact after it.  For
      [Backward] the roles mirror: [input.(b)] is the fact {e after} the
      block (its live-out) and [output.(b)] the fact before it.

      Every block is visited at least once, so [output] is always
      consistent with [input].  A transfer function that wants blocks
      unreached by propagation to stay at bottom must be strict — map
      [L.bottom] to [L.bottom] — as {!Constprop}'s is. *)

  val solve :
    direction:direction ->
    n_blocks:int ->
    succs:(int -> int list) ->
    preds:(int -> int list) ->
    entries:(int * L.t) list ->
    transfer:(int -> L.t -> L.t) ->
    result
  (** Run the worklist to a fixpoint.  [entries] seeds boundary facts:
      for [Forward] these join into the entry fact of the named blocks
      (typically [(entry_block, initial_state)] plus one per exception
      handler); for [Backward] they join into the exit fact (e.g. exit
      blocks with the empty live set — usually just [bottom], which every
      block starts from anyway). *)

  val solve_cfg :
    direction:direction ->
    ?exceptional:bool ->
    Cfg.Method_cfg.t ->
    entries:(int * L.t) list ->
    transfer:(int -> L.t -> L.t) ->
    result
  (** {!solve} over a method CFG's blocks.  With [exceptional] (default
      [false]), every block whose pc range intersects a handler's covered
      range gets an extra edge to the handler's entry block, so facts flow
      along possible unwind paths too. *)
end

val exceptional_successors : Cfg.Method_cfg.t -> int -> int list
(** The handler entry blocks reachable from block [b] by a throw inside
    it: handlers whose covered pc range intersects the block.  Sorted,
    deduplicated. *)

val reachable : ?exceptional:bool -> Cfg.Method_cfg.t -> bool array
(** Blocks reachable from the method entry, following normal edges and —
    with [exceptional] (default [true]) — handler edges from reachable
    covered blocks. *)
