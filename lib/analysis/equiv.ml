module S = Symexec

(* Translation validation for trace optimization: symbolically evaluate
   the original block sequence and the optimized body, then compare the
   canonical states component by component.  Each kind of divergence has
   its own TL code so seeded-miscompilation tests (and users) can tell
   exactly which promise broke:

     TL216  guard-set weakening: the conditionals or their operands differ
     TL215  trap weakening: the trap conditions differ
     TL214  effect reorder: same heap/call effects, different order
     TL213  store/effect divergence: a write or effect dropped or changed
     TL212  stack-shape divergence: different residual operand stack
     TL218  incomparable: epoch structure differs, comparison cut short

   The check is "modulo guards": equality of the recorded guard journals
   is itself one of the compared components, so an optimized trace is
   accepted exactly when it preserves the source's guards, traps,
   effects, final stores and residual stack. *)

let take n l =
  let rec go n = function
    | x :: tl when n > 0 -> x :: go (n - 1) tl
    | _ -> []
  in
  go n l

let first_diff to_string la lb =
  let rec go i la lb =
    match (la, lb) with
    | a :: ta, b :: tb ->
        if compare a b = 0 then go (i + 1) ta tb
        else
          Printf.sprintf "position %d: %s vs %s" i (to_string a) (to_string b)
    | a :: _, [] -> Printf.sprintf "position %d: %s vs (none)" i (to_string a)
    | [], b :: _ -> Printf.sprintf "position %d: (none) vs %s" i (to_string b)
    | [], [] -> "(identical)"
  in
  go 0 la lb

let check ?context ?(dead_out = fun _ -> false) ~trace_id ~original
    ~optimized () : Diag.t list =
  let o = S.run original and p = S.run optimized in
  let diags = ref [] in
  let report code severity fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          Diag.make ?context ~code ~severity
            ~loc:(Diag.Trace_loc { trace_id })
            msg
          :: !diags)
      fmt
  in
  (* TL216: guards *)
  let og = S.guards o and pg = S.guards p in
  if compare og pg <> 0 then
    report "TL216" Diag.Error
      "guard set weakened: original has %d guards, optimized %d (%s)"
      (List.length og) (List.length pg)
      (first_diff S.guard_to_string og pg);
  (* TL215: traps *)
  let ot = S.traps o and pt = S.traps p in
  if compare ot pt <> 0 then
    report "TL215" Diag.Error
      "trap conditions weakened: original has %d, optimized %d (%s)"
      (List.length ot) (List.length pt)
      (first_diff S.trap_to_string ot pt);
  (* TL213 / TL214: effects *)
  let oe = S.effects o and pe = S.effects p in
  if compare oe pe <> 0 then begin
    let sorted l = List.sort compare l in
    if compare (sorted oe) (sorted pe) = 0 then
      report "TL214" Diag.Error
        "effects reordered: same %d effects in a different order (%s)"
        (List.length oe)
        (first_diff S.effect_to_string oe pe)
    else
      report "TL213" Diag.Error
        "effect divergence: original has %d effects, optimized %d (%s)"
        (List.length oe) (List.length pe)
        (first_diff S.effect_to_string oe pe)
  end;
  if o.S.epoch <> p.S.epoch then
    (* barrier structure differs; per-epoch store and residual-stack
       comparison would compare unrelated frames *)
    report "TL218" Diag.Warning
      "epoch structure differs (%d vs %d barriers); store and stack \
       comparison skipped"
      o.S.epoch p.S.epoch
  else begin
    (* TL213: final stores per (epoch, slot).  Slots the optimizer may
       drop are exactly the final epoch's [dead_out] slots — the
       liveness license for trailing dead-store elimination. *)
    let ow = S.final_writes o and pw = S.final_writes p in
    let last = o.S.epoch in
    S.Smap.iter
      (fun (e, slot) v ->
        match S.Smap.find_opt (e, slot) pw with
        | Some v' when compare v v' = 0 -> ()
        | Some v' ->
            report "TL213" Diag.Error
              "store divergence at epoch %d slot %d: %s vs %s" e slot
              (S.sym_to_string v) (S.sym_to_string v')
        | None ->
            if not (e = last && dead_out slot) then
              report "TL213" Diag.Error
                "store to epoch %d slot %d dropped (wrote %s) without a \
                 liveness license"
                e slot (S.sym_to_string v))
      ow;
    S.Smap.iter
      (fun (e, slot) v ->
        if not (S.Smap.mem (e, slot) ow) then
          report "TL213" Diag.Error
            "spurious store at epoch %d slot %d (writes %s)" e slot
            (S.sym_to_string v))
      pw;
    (* TL212: residual stack *)
    let os, oc = S.normalized_stack o and ps, pc = S.normalized_stack p in
    if compare (os, oc) (ps, pc) <> 0 then
      report "TL212" Diag.Error
        "stack shape diverges: original [%s] consumed %d, optimized [%s] \
         consumed %d"
        (String.concat "; " (List.map S.sym_to_string (take 8 os)))
        oc
        (String.concat "; " (List.map S.sym_to_string (take 8 ps)))
        pc
  end;
  List.rev !diags
