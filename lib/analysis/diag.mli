(** Diagnostics: the common currency of every linter layer.

    A diagnostic carries a stable check code (the [TL...] catalogue in
    DESIGN.md §12), a severity, a location inside a program / trace /
    BCG, and a human message.  The program linter ({!Lint}) and the
    trace/BCG invariant checker ([Tracegen.Invariants]) both produce
    values of this type; the CLI renders them as text or JSON lines and
    derives its exit status from {!has_errors}. *)

type severity =
  | Error  (** a real violation: lint exits non-zero *)
  | Warning  (** suspicious but not proof of breakage *)
  | Info  (** structural observations (loop shape, merge notes) *)

type location =
  | Method_loc of {
      method_name : string;
      block : int option;  (** block index within the method *)
      pc : int option;
    }
  | Trace_loc of { trace_id : int }
  | Node_loc of { x : int; y : int }  (** a BCG node [N_XY], by gids *)
  | Program_loc  (** the program (or run) as a whole *)

type t = {
  code : string;  (** stable check code, e.g. ["TL101"] *)
  severity : severity;
  context : string option;  (** workload / program name, when known *)
  loc : location;
  message : string;
}

val make :
  ?context:string -> code:string -> severity:severity -> loc:location ->
  string -> t

val severity_to_string : severity -> string

val location_to_string : location -> string

val to_string : t -> string
(** ["context: location: severity TLnnn: message"] — one line. *)

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties by code and location. *)

val has_errors : t list -> bool

val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
