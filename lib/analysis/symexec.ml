module Instr = Bytecode.Instr

(* Symbolic evaluation of straight-line stack bytecode to a canonical
   state — the foundation of trace translation validation (Equiv) and
   guard-implication pruning (Tracegen.Trace_prover).

   The evaluator mirrors Vm.Interp's concrete semantics instruction by
   instruction, but over symbolic terms.  Everything the optimizer is
   allowed to restructure (the operand stack, local reads/writes, pure
   arithmetic) is kept in normal form; everything it must preserve
   verbatim (heap reads/writes, allocations, calls, trap conditions,
   guards) is recorded as an ordered journal.

   Epochs.  A trace's instruction stream crosses call and return
   boundaries, where the meaning of "local slot 3" changes frames.  Every
   call/return/throw instruction is a {e barrier}: it ends the current
   epoch — recording a barrier effect that snapshots the residual operand
   stack — and starts a fresh one with an empty symbolic stack and
   unknown locals.  [Slocal (e, s)] therefore denotes "the value local
   [s] held when epoch [e] began", an immutable denotation that makes
   term-keyed fact tables sound.  This matches Trace_optimizer, whose
   [barrier_stack]/[barrier_locals] forget everything at the same
   instructions. *)

type sym =
  | Sint of int
  | Sfloat of float
  | Snull
  | Slocal of int * int  (* (epoch, slot): the slot's value at epoch start *)
  | Sstack of int * int
      (* (epoch, k): the k-th value popped from below the epoch's initial
         stack top (k = 0 is the value on top when the epoch began) *)
  | Sunop of string * sym
  | Sbinop of string * sym * sym
  | Seffect of int * string  (* result of journal entry [i] (op tag) *)

type effect_ = {
  eff_op : string;  (* rendered instruction, e.g. "putfield #2.3" *)
  eff_args : sym list;
  eff_stack : sym list;
      (* barriers only: the normalized residual stack at the barrier *)
  eff_consumed : int;  (* barriers only: stack values consumed from below *)
}

type trap = { trap_kind : string; trap_args : sym list }
type guard = { guard_op : string; guard_args : sym list }

module Key = struct
  type t = int * int

  let compare = compare
end

module Smap = Map.Make (Key)

type state = {
  stack : sym list;  (* top first *)
  consumed : int;  (* values popped from below the current epoch's stack *)
  epoch : int;
  locals : sym Smap.t;  (* (epoch, slot) -> current value, reads included *)
  writes : sym Smap.t;  (* (epoch, slot) -> last value actually stored *)
  effects : effect_ list;  (* reverse program order *)
  n_effects : int;
  traps : trap list;  (* reverse program order *)
  guards : guard list;  (* reverse program order *)
}

let initial =
  {
    stack = [];
    consumed = 0;
    epoch = 0;
    locals = Smap.empty;
    writes = Smap.empty;
    effects = [];
    n_effects = 0;
    traps = [];
    guards = [];
  }

(* Constant folding, mirroring Vm.Interp exactly: native int ops, masked
   shifts, [compare] for fcmp, [int_of_float]/[float_of_int] for the
   conversions.  Division folds only when the divisor is provably
   non-zero.  Deterministic, so both sides of an equivalence check fold
   identical inputs to identical terms. *)
let fold_unop op a =
  match (op, a) with
  | "ineg", Sint x -> Sint (-x)
  | "fneg", Sfloat x -> Sfloat (-.x)
  | "f2i", Sfloat x -> Sint (int_of_float x)
  | "i2f", Sint x -> Sfloat (float_of_int x)
  | _ -> Sunop (op, a)

let fold_binop op a b =
  match (op, a, b) with
  | "iadd", Sint x, Sint y -> Sint (x + y)
  | "isub", Sint x, Sint y -> Sint (x - y)
  | "imul", Sint x, Sint y -> Sint (x * y)
  | "idiv", Sint x, Sint y when y <> 0 -> Sint (x / y)
  | "irem", Sint x, Sint y when y <> 0 -> Sint (x mod y)
  | "iand", Sint x, Sint y -> Sint (x land y)
  | "ior", Sint x, Sint y -> Sint (x lor y)
  | "ixor", Sint x, Sint y -> Sint (x lxor y)
  | "ishl", Sint x, Sint y -> Sint (x lsl (y land 63))
  | "ishr", Sint x, Sint y -> Sint (x asr (y land 63))
  | "iushr", Sint x, Sint y -> Sint (x lsr (y land 63))
  | "fadd", Sfloat x, Sfloat y -> Sfloat (x +. y)
  | "fsub", Sfloat x, Sfloat y -> Sfloat (x -. y)
  | "fmul", Sfloat x, Sfloat y -> Sfloat (x *. y)
  | "fdiv", Sfloat x, Sfloat y -> Sfloat (x /. y)
  | "fcmp", Sfloat x, Sfloat y -> Sint (compare x y)
  | _ -> Sbinop (op, a, b)

let push st v = { st with stack = v :: st.stack }

let pop st =
  match st.stack with
  | v :: rest -> (v, { st with stack = rest })
  | [] ->
      ( Sstack (st.epoch, st.consumed),
        { st with consumed = st.consumed + 1 } )

let local st slot =
  match Smap.find_opt (st.epoch, slot) st.locals with
  | Some v -> v
  | None -> Slocal (st.epoch, slot)

let store st slot v =
  let k = (st.epoch, slot) in
  { st with locals = Smap.add k v st.locals; writes = Smap.add k v st.writes }

let assume_local st ~slot v =
  { st with locals = Smap.add (st.epoch, slot) v st.locals }

let tracks_local st ~slot = Smap.mem (st.epoch, slot) st.locals

let add_trap st kind args =
  { st with traps = { trap_kind = kind; trap_args = args } :: st.traps }

let add_guard st op args =
  { st with guards = { guard_op = op; guard_args = args } :: st.guards }

(* "new #3" and "newarray int" results are the only terms known non-null
   by construction. *)
let definitely_nonnull = function
  | Seffect (_, op) -> String.length op >= 3 && String.sub op 0 3 = "new"
  | _ -> false

let null_check st o =
  if definitely_nonnull o then st else add_trap st "null" [ o ]

let add_effect st op args =
  let i = st.n_effects in
  let e = { eff_op = op; eff_args = args; eff_stack = []; eff_consumed = 0 } in
  ({ st with effects = e :: st.effects; n_effects = i + 1 }, Seffect (i, op))

(* Strip the untouched identity suffix from the bottom of the stack: a
   value that was materialized by popping below the epoch's entry stack
   and sits back in its original position is no net change.  This makes
   pop/push round trips (e.g. a cancelled Dup;Pop) compare equal. *)
let normalized_stack st =
  let rec strip rev consumed =
    match rev with
    | v :: rest
      when consumed > 0 && compare v (Sstack (st.epoch, consumed - 1)) = 0 ->
        strip rest (consumed - 1)
    | _ -> (rev, consumed)
  in
  let rev, consumed = strip (List.rev st.stack) st.consumed in
  (List.rev rev, consumed)

let barrier st op args =
  let stack, consumed = normalized_stack st in
  let e = { eff_op = op; eff_args = args; eff_stack = stack; eff_consumed = consumed } in
  {
    st with
    effects = e :: st.effects;
    n_effects = st.n_effects + 1;
    stack = [];
    consumed = 0;
    epoch = st.epoch + 1;
  }

let exec st (ins : Instr.t) =
  let name () = Instr.to_string ins in
  match ins with
  | Instr.Iconst n -> push st (Sint n)
  | Instr.Fconst f -> push st (Sfloat f)
  | Instr.Aconst_null -> push st Snull
  | Instr.Iload s | Instr.Fload s | Instr.Aload s -> push st (local st s)
  | Instr.Istore s | Instr.Fstore s | Instr.Astore s ->
      let v, st = pop st in
      store st s v
  | Instr.Iinc (s, d) -> store st s (fold_binop "iadd" (local st s) (Sint d))
  | Instr.Dup ->
      let v, st = pop st in
      push (push st v) v
  | Instr.Pop ->
      let _, st = pop st in
      st
  | Instr.Swap ->
      (* like the interpreter: pop a, pop b, push a, push b *)
      let a, st = pop st in
      let b, st = pop st in
      push (push st a) b
  | Instr.Iadd | Instr.Isub | Instr.Imul | Instr.Iand | Instr.Ior
  | Instr.Ixor | Instr.Ishl | Instr.Ishr | Instr.Iushr | Instr.Fadd
  | Instr.Fsub | Instr.Fmul | Instr.Fdiv | Instr.Fcmp ->
      let b, st = pop st in
      let a, st = pop st in
      push st (fold_binop (name ()) a b)
  | Instr.Idiv | Instr.Irem ->
      let b, st = pop st in
      let a, st = pop st in
      let st =
        match b with
        | Sint k when k <> 0 -> st
        | _ -> add_trap st "div_zero" [ b ]
      in
      push st (fold_binop (name ()) a b)
  | Instr.Ineg | Instr.Fneg | Instr.F2i | Instr.I2f ->
      let a, st = pop st in
      push st (fold_unop (name ()) a)
  | Instr.Instanceof _ ->
      let a, st = pop st in
      push st (match a with Snull -> Sint 0 | _ -> Sunop (name (), a))
  | Instr.New _ ->
      let st, r = add_effect st (name ()) [] in
      push st r
  | Instr.Getfield _ ->
      (* a heap read: order-sensitive against writes, hence journaled *)
      let o, st = pop st in
      let st = null_check st o in
      let st, r = add_effect st (name ()) [ o ] in
      push st r
  | Instr.Putfield _ ->
      let v, st = pop st in
      let o, st = pop st in
      let st = null_check st o in
      let st, _ = add_effect st (name ()) [ o; v ] in
      st
  | Instr.Newarray _ ->
      let n, st = pop st in
      let st =
        match n with
        | Sint k when k >= 0 -> st
        | _ -> add_trap st "negsize" [ n ]
      in
      let st, r = add_effect st (name ()) [ n ] in
      push st r
  | Instr.Iaload | Instr.Faload | Instr.Aaload ->
      let i, st = pop st in
      let a, st = pop st in
      let st = null_check st a in
      let st = add_trap st "bounds" [ a; i ] in
      let st, r = add_effect st (name ()) [ a; i ] in
      push st r
  | Instr.Iastore | Instr.Fastore | Instr.Aastore ->
      let v, st = pop st in
      let i, st = pop st in
      let a, st = pop st in
      let st = null_check st a in
      let st = add_trap st "bounds" [ a; i ] in
      let st, _ = add_effect st (name ()) [ a; i; v ] in
      st
  | Instr.Arraylength ->
      let a, st = pop st in
      let st = null_check st a in
      push st (Sunop ("arraylength", a))
  | Instr.If_icmp (_, _) ->
      let b, st = pop st in
      let a, st = pop st in
      add_guard st (name ()) [ a; b ]
  | Instr.Ifz (_, _) ->
      let a, st = pop st in
      add_guard st (name ()) [ a ]
  | Instr.Tableswitch _ ->
      let v, st = pop st in
      add_guard st (name ()) [ v ]
  | Instr.Goto _ | Instr.Nop -> st
  | Instr.Invokestatic _ | Instr.Invokevirtual _ -> barrier st (name ()) []
  | Instr.Return -> barrier st (name ()) []
  | Instr.Ireturn | Instr.Freturn | Instr.Areturn ->
      let v, st = pop st in
      barrier st (name ()) [ v ]
  | Instr.Athrow ->
      let e, st = pop st in
      let st = null_check st e in
      barrier st (name ()) [ e ]

let run ?(from = initial) code = Array.fold_left exec from code

(* Journal accessors, in program order. *)
let effects st = List.rev st.effects
let traps st = List.rev st.traps
let guards st = List.rev st.guards

(* The store abstraction: the last value written to each (epoch, slot),
   minus identity writes — storing back the value a slot already held at
   epoch start (e.g. a forwarded [Iload n; Istore n]) is no write at
   all.  Intermediate overwritten values are deliberately not modeled;
   within one epoch they are unobservable on the normal path (the
   documented dead-store license). *)
let final_writes st =
  Smap.filter (fun (e, s) v -> compare v (Slocal (e, s)) <> 0) st.writes

(* Pretty-printing for diagnostics. *)
let rec sym_to_string = function
  | Sint n -> string_of_int n
  | Sfloat f -> Printf.sprintf "%h" f
  | Snull -> "null"
  | Slocal (e, s) -> Printf.sprintf "l%d.%d" e s
  | Sstack (e, k) -> Printf.sprintf "s%d.%d" e k
  | Sunop (op, a) -> Printf.sprintf "(%s %s)" op (sym_to_string a)
  | Sbinop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" op (sym_to_string a) (sym_to_string b)
  | Seffect (i, op) -> Printf.sprintf "e%d<%s>" i op

let args_to_string args = String.concat " " (List.map sym_to_string args)

let effect_to_string e =
  if e.eff_stack = [] && e.eff_consumed = 0 then
    Printf.sprintf "[%s %s]" e.eff_op (args_to_string e.eff_args)
  else
    Printf.sprintf "[%s %s | stack %s consumed %d]" e.eff_op
      (args_to_string e.eff_args)
      (args_to_string e.eff_stack)
      e.eff_consumed

let trap_to_string t =
  Printf.sprintf "%s(%s)" t.trap_kind (args_to_string t.trap_args)

let guard_to_string g =
  Printf.sprintf "%s(%s)" g.guard_op (args_to_string g.guard_args)

(* Concrete re-evaluation: substitute epoch-0 locals and refold.  [local]
   answers a concrete [sym] for a slot (or [None] for slots it cannot
   name, e.g. references).  Returns the folded term; callers check
   whether it reached a ground constant. *)
let rec concretize ~local s =
  match s with
  | Sint _ | Sfloat _ | Snull -> Some s
  | Slocal (0, slot) -> local slot
  | Slocal _ | Sstack _ | Seffect _ -> None
  | Sunop (op, a) -> (
      match concretize ~local a with
      | Some a' -> Some (fold_unop op a')
      | None -> None)
  | Sbinop (op, a, b) -> (
      match (concretize ~local a, concretize ~local b) with
      | Some a', Some b' -> Some (fold_binop op a' b')
      | _ -> None)
