(** The program linter: runs the verifier and the dataflow analyses over
    every method and reports findings as {!Diag.t} values.

    Check codes (the full catalogue is DESIGN.md §12):

    - [TL001] {e error} — bytecode verification violation
    - [TL002] {e warning} — unreachable basic block
    - [TL003] {e warning} — irreducible control flow (retreating edge
      whose target does not dominate its source)
    - [TL004] {e info} — natural loop larger than [big_loop_blocks]
    - [TL101] {e error} — dead store: a local written but never read on
      any subsequent path
    - [TL102] {e warning} — conditional branch that always goes one way
    - [TL103] {e info} — non-empty operand stack at a multi-predecessor
      merge (a value crosses a block boundary; the trace optimizer treats
      that boundary as a barrier)
    - [TL104] {e info} — non-argument local slot never read anywhere
    - [TL105] {e warning} — division whose divisor is provably zero

    If verification fails, only [TL001] diagnostics are produced: the
    dataflow analyses assume verified code. *)

val lint_program :
  ?context:string -> ?big_loop_blocks:int -> Bytecode.Program.t -> Diag.t list
(** Findings in method order, per-method roughly by pc; callers wanting
    severity order sort with {!Diag.compare}.  [big_loop_blocks] defaults
    to 64. *)
