(** Symbolic evaluation of straight-line stack bytecode.

    Evaluates an instruction sequence to a canonical symbolic state:
    a normalized symbolic operand stack, the final store write per
    (epoch, slot), and ordered journals of heap/allocation effects,
    trap conditions and guard predicates.  {!Equiv} compares two such
    states to decide observational equivalence of an optimized trace
    and its source blocks; [Tracegen.Trace_prover] walks states
    block-by-block to prove guards implied.

    The evaluator mirrors {!Vm.Interp}'s concrete semantics (same
    folding, same masked shifts, same [compare]-based [fcmp], same trap
    preconditions) but over terms.  Calls, returns and throws are
    {e epoch barriers}: they snapshot the residual stack into the effect
    journal and reset stack and locals, exactly where
    [Tracegen.Trace_optimizer] forgets its own abstract state.

    Deliberate abstractions (each shared with the optimizer's license):
    intermediate local writes overwritten within the same epoch are not
    modeled; resource-exhaustion traps (instruction budget, call-stack
    overflow) are environmental and not modeled; type-confusion traps
    are excluded because {!Bytecode.Verify} rules them out. *)

type sym =
  | Sint of int
  | Sfloat of float
  | Snull
  | Slocal of int * int
      (** [(epoch, slot)]: the value local [slot] held at epoch start *)
  | Sstack of int * int
      (** [(epoch, k)]: the k-th value popped from below the epoch's
          initial stack top *)
  | Sunop of string * sym
  | Sbinop of string * sym * sym
  | Seffect of int * string  (** result of effect-journal entry [i] *)

type effect_ = {
  eff_op : string;
  eff_args : sym list;
  eff_stack : sym list;
      (** barriers only: normalized residual stack at the barrier *)
  eff_consumed : int;
}

type trap = { trap_kind : string; trap_args : sym list }
(** A condition under which the sequence traps instead of completing:
    ["div_zero"], ["null"], ["bounds"] or ["negsize"].  Recorded unless
    the argument term proves the trap impossible. *)

type guard = { guard_op : string; guard_args : sym list }
(** A conditional/switch with its popped operand terms. *)

module Smap : Map.S with type key = int * int

type state = {
  stack : sym list;  (** top first *)
  consumed : int;
  epoch : int;
  locals : sym Smap.t;
  writes : sym Smap.t;
  effects : effect_ list;  (** reverse program order *)
  n_effects : int;
  traps : trap list;  (** reverse program order *)
  guards : guard list;  (** reverse program order *)
}

val initial : state

val exec : state -> Bytecode.Instr.t -> state
(** One instruction; total — every opcode has a symbolic transfer. *)

val run : ?from:state -> Bytecode.Instr.t array -> state
(** Fold {!exec} over a sequence.  [from] resumes an earlier state, the
    shape the block-by-block pruner walk needs. *)

val pop : state -> sym * state
(** Pop (materializing a [Sstack] term below the epoch's entry stack when
    the symbolic stack is empty).  Exposed so a caller can name the exact
    operand terms an upcoming [exec] will consume. *)

val local : state -> int -> sym
val assume_local : state -> slot:int -> sym -> state
(** Record an externally-established local value (e.g. a constant-
    propagation fact) without counting it as a store. *)

val tracks_local : state -> slot:int -> bool

val normalized_stack : state -> sym list * int
(** The stack with the untouched identity suffix stripped from the
    bottom, paired with the net consumed-from-below count. *)

val final_writes : state -> sym Smap.t
(** Last write per (epoch, slot), identity writes removed. *)

val effects : state -> effect_ list
(** Program order. *)

val traps : state -> trap list
val guards : state -> guard list

val fold_unop : string -> sym -> sym
val fold_binop : string -> sym -> sym -> sym

val concretize : local:(int -> sym option) -> sym -> sym option
(** Substitute epoch-0 locals with concrete terms and refold; [None] when
    the term depends on unknown stack slots, later epochs or heap
    effects. *)

val sym_to_string : sym -> string
val effect_to_string : effect_ -> string
val trap_to_string : trap -> string
val guard_to_string : guard -> string
