(** Backward liveness of local-variable slots, per basic block.

    A slot is live at a point when some path from that point reads it
    before overwriting it.  The analysis runs on the {!Dataflow} solver
    with sets of slot indices as the lattice, following normal CFG edges
    plus the exceptional edges into handler entries, so a slot read only
    by a catch block is still live across the covered range.

    Blocks inside a handler-covered pc range use a no-kill transfer
    (stores do not end liveness there): a throw can occur between any two
    instructions of a covered block, so a store cannot be proven to hide
    the previous value from the handler.  For the same reason
    {!dead_stores} never reports inside covered blocks. *)

module Slot_set : Set.S with type elt = int

type t = {
  cfg : Cfg.Method_cfg.t;
  live_in : Slot_set.t array;  (** slots live on entry to each block *)
  live_out : Slot_set.t array;  (** slots live on exit from each block *)
  covered : bool array;
      (** whether the block's pc range intersects a handler-covered range *)
  reach : bool array;  (** {!Dataflow.reachable}, with handler edges *)
  iterations : int;  (** worklist pops until the fixpoint — for tests *)
}

val compute : Cfg.Method_cfg.t -> t

val uses : Bytecode.Instr.t -> int list
(** Local slots the instruction reads ([Iinc] both reads and writes). *)

val defs : Bytecode.Instr.t -> int list
(** Local slots the instruction writes. *)

type dead_store = {
  block : int;
  pc : int;
  slot : int;
  instr : Bytecode.Instr.t;
}

val dead_stores : t -> dead_store list
(** Stores to slots that no subsequent path reads before overwriting,
    in reachable, non-handler-covered blocks only; ordered by pc.  Argument
    slots count as stores by the caller, so a never-read argument is {e
    not} reported here (the linter flags those separately with lower
    severity). *)
