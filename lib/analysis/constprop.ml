module Method_cfg = Cfg.Method_cfg
module Block = Cfg.Block
module Mthd = Bytecode.Mthd
module Instr = Bytecode.Instr
module Program = Bytecode.Program
module Klass = Bytecode.Klass

type aval =
  | Top
  | Int of { lo : int; hi : int }
  | Float_const of float
  | Null
  | Nonnull

type state =
  | Unreached
  | Reached of {
      locals : aval array;
      stack : aval list;
    }

(* ---- interval helpers ------------------------------------------------ *)

let full = Int { lo = min_int; hi = max_int }

let single c = Int { lo = c; hi = c }

let singleton = function
  | Int { lo; hi } when lo = hi -> Some lo
  | _ -> None

(* Non-singleton bounds are rounded outward to this set at joins, bounding
   the interval lattice's height without a widening point. *)
let thresholds =
  [ min_int; -65536; -4096; -256; -16; -2; -1; 0; 1; 2; 16; 256; 4096; 65536;
    max_int ]

let round_down lo =
  List.fold_left (fun acc t -> if t <= lo && t > acc then t else acc) min_int
    thresholds

let round_up hi =
  List.fold_right
    (fun t acc -> if t >= hi && t < acc then t else acc)
    thresholds max_int

let sat_add a b =
  let c = a + b in
  if a > 0 && b > 0 && c < 0 then max_int
  else if a < 0 && b < 0 && c >= 0 then min_int
  else c

let sat_neg a = if a = min_int then max_int else -a

(* exact products stay in range when all bounds fit in 31 bits *)
let fits31 x = x > -0x4000_0000 && x < 0x4000_0000

let mul_interval x_lo x_hi y_lo y_hi =
  if fits31 x_lo && fits31 x_hi && fits31 y_lo && fits31 y_hi then begin
    let ps = [ x_lo * y_lo; x_lo * y_hi; x_hi * y_lo; x_hi * y_hi ] in
    let lo = List.fold_left min max_int ps
    and hi = List.fold_left max min_int ps in
    Int { lo; hi }
  end
  else full

let aval_join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Int x, Int y ->
      if x.lo = y.lo && x.hi = y.hi then a
      else
        let lo = min x.lo y.lo and hi = max x.hi y.hi in
        Int { lo = round_down lo; hi = round_up hi }
  | Float_const x, Float_const y ->
      if Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) then a
      else Top
  | Null, Null -> Null
  | Nonnull, Nonnull -> Nonnull
  | _ -> Top

(* ---- the frame lattice ----------------------------------------------- *)

let state_join a b =
  match (a, b) with
  | Unreached, s | s, Unreached -> s
  | Reached x, Reached y ->
      let locals = Array.map2 aval_join x.locals y.locals in
      (* merging stacks of unequal height only happens on unverifiable
         programs; align from the top and keep the common part *)
      let rec zip xs ys =
        let lx = List.length xs and ly = List.length ys in
        if lx > ly then zip (List.tl xs) ys
        else if ly > lx then zip xs (List.tl ys)
        else List.map2 aval_join xs ys
      in
      Reached { locals; stack = zip x.stack y.stack }

let aval_pp ppf = function
  | Top -> Format.pp_print_string ppf "T"
  | Int { lo; hi } ->
      if lo = hi then Format.fprintf ppf "%d" lo
      else
        Format.fprintf ppf "[%s,%s]"
          (if lo = min_int then "-inf" else string_of_int lo)
          (if hi = max_int then "+inf" else string_of_int hi)
  | Float_const f -> Format.fprintf ppf "%gf" f
  | Null -> Format.pp_print_string ppf "null"
  | Nonnull -> Format.pp_print_string ppf "nonnull"

let state_pp ppf = function
  | Unreached -> Format.pp_print_string ppf "unreached"
  | Reached { locals; stack } ->
      Format.fprintf ppf "locals=[";
      Array.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_string ppf " ";
          aval_pp ppf v)
        locals;
      Format.fprintf ppf "] stack=[";
      List.iteri
        (fun i v ->
          if i > 0 then Format.pp_print_string ppf " ";
          aval_pp ppf v)
        stack;
      Format.fprintf ppf "]"

module L = struct
  type t = state

  let bottom = Unreached

  (* polymorphic compare treats nan as equal to itself, unlike (=) *)
  let equal a b = Stdlib.compare a b = 0

  let join = state_join

  let pp = state_pp
end

module Solver = Dataflow.Make (L)

(* ---- instruction semantics ------------------------------------------- *)

(* Any class binding the selector gives the shared signature (the front
   end enforces that all bindings agree); mirrors Verify's resolution. *)
let find_selector_target (program : Program.t) slot =
  let n = Array.length program.Program.classes in
  let rec go i =
    if i >= n then None
    else
      match Klass.method_for_selector program.Program.classes.(i) ~slot with
      | Some mid -> Some (Program.method_by_id program mid)
      | None -> go (i + 1)
  in
  go 0

let return_aval = function
  | Mthd.Rvoid -> None
  | Mthd.Rint | Mthd.Rfloat | Mthd.Rref -> Some Top

type event =
  | Ev_div_by_zero
  | Ev_branch of bool

(* comparison verdicts over intervals *)
let eval_cond_interval c (a : aval) (b : aval) =
  match (a, b) with
  | Int x, Int y -> (
      let always_eq = x.lo = x.hi && y.lo = y.hi && x.lo = y.lo in
      let never_eq = x.hi < y.lo || y.hi < x.lo in
      match c with
      | Instr.Eq -> if always_eq then Some true else if never_eq then Some false else None
      | Instr.Ne -> if always_eq then Some false else if never_eq then Some true else None
      | Instr.Lt ->
          if x.hi < y.lo then Some true
          else if x.lo >= y.hi then Some false
          else None
      | Instr.Ge ->
          if x.lo >= y.hi then Some true
          else if x.hi < y.lo then Some false
          else None
      | Instr.Gt ->
          if x.lo > y.hi then Some true
          else if x.hi <= y.lo then Some false
          else None
      | Instr.Le ->
          if x.hi <= y.lo then Some true
          else if x.lo > y.hi then Some false
          else None)
  | _ -> None

(* Execute one block from an entry state; [emit] sees per-pc facts.  The
   interpreter's exact operations are used for singletons (native-int
   arithmetic, [land 63] shift masking, [int_of_float], polymorphic
   [compare] for Fcmp) so singleton claims match observed execution. *)
let exec_block (program : Program.t) (cfg : Method_cfg.t) ?(emit = fun ~pc:_ _ -> ())
    b st =
  match st with
  | Unreached -> Unreached
  | Reached { locals; stack } ->
      let code = cfg.Method_cfg.method_.Mthd.code in
      let blk = cfg.Method_cfg.blocks.(b) in
      let locals = Array.copy locals in
      let stack = ref stack in
      let push v = stack := v :: !stack in
      let pop () =
        match !stack with
        | v :: rest ->
            stack := rest;
            v
        | [] -> Top
      in
      let int_binop exact interval =
        let b = pop () and a = pop () in
        match (a, b) with
        | Int { lo = xl; hi = xh }, Int { lo = yl; hi = yh } ->
            if xl = xh && yl = yh then push (single (exact xl yl))
            else push (interval xl xh yl yh)
        | _ -> push Top
      in
      let float_binop exact =
        let b = pop () and a = pop () in
        match (a, b) with
        | Float_const x, Float_const y -> push (Float_const (exact x y))
        | _ -> push Top
      in
      for pc = blk.Block.start_pc to Block.last_pc blk do
        match code.(pc) with
        | Instr.Iconst c -> push (single c)
        | Instr.Fconst f -> push (Float_const f)
        | Instr.Aconst_null -> push Null
        | Instr.Iload n | Instr.Fload n | Instr.Aload n -> push locals.(n)
        | Instr.Istore n | Instr.Fstore n | Instr.Astore n ->
            locals.(n) <- pop ()
        | Instr.Iinc (n, d) ->
            locals.(n) <-
              (match locals.(n) with
              | Int { lo; hi } -> Int { lo = sat_add lo d; hi = sat_add hi d }
              | _ -> Top)
        | Instr.Dup ->
            let v = pop () in
            push v;
            push v
        | Instr.Pop -> ignore (pop ())
        | Instr.Swap ->
            let b = pop () and a = pop () in
            push b;
            push a
        | Instr.Iadd ->
            int_binop ( + ) (fun xl xh yl yh ->
                Int { lo = sat_add xl yl; hi = sat_add xh yh })
        | Instr.Isub ->
            int_binop ( - ) (fun xl xh yl yh ->
                Int
                  { lo = sat_add xl (sat_neg yh); hi = sat_add xh (sat_neg yl) })
        | Instr.Imul -> int_binop ( * ) mul_interval
        | Instr.Idiv | Instr.Irem ->
            let is_rem = code.(pc) = Instr.Irem in
            let b = pop () and a = pop () in
            (match singleton b with
            | Some 0 -> emit ~pc Ev_div_by_zero
            | _ -> ());
            (match (a, b) with
            | Int x, Int y when x.lo = x.hi && y.lo = y.hi && y.lo <> 0 ->
                push (single (if is_rem then x.lo mod y.lo else x.lo / y.lo))
            | Int x, Int y when is_rem && y.lo > 0 ->
                let m = y.hi - 1 in
                push (Int { lo = (if x.lo >= 0 then 0 else -m); hi = m })
            | _ -> push full)
        | Instr.Ineg -> (
            match pop () with
            | Int { lo; hi } -> push (Int { lo = sat_neg hi; hi = sat_neg lo })
            | _ -> push Top)
        | Instr.Iand ->
            int_binop ( land ) (fun xl xh yl yh ->
                if xl >= 0 && yl >= 0 then Int { lo = 0; hi = min xh yh }
                else full)
        | Instr.Ior -> int_binop ( lor ) (fun _ _ _ _ -> full)
        | Instr.Ixor -> int_binop ( lxor ) (fun _ _ _ _ -> full)
        | Instr.Ishl ->
            int_binop (fun a b -> a lsl (b land 63)) (fun _ _ _ _ -> full)
        | Instr.Ishr ->
            int_binop (fun a b -> a asr (b land 63)) (fun _ _ _ _ -> full)
        | Instr.Iushr ->
            int_binop (fun a b -> a lsr (b land 63)) (fun _ _ _ _ -> full)
        | Instr.Fadd -> float_binop ( +. )
        | Instr.Fsub -> float_binop ( -. )
        | Instr.Fmul -> float_binop ( *. )
        | Instr.Fdiv -> float_binop ( /. )
        | Instr.Fneg -> (
            match pop () with
            | Float_const f -> push (Float_const (-.f))
            | _ -> push Top)
        | Instr.F2i -> (
            match pop () with
            | Float_const f -> push (single (int_of_float f))
            | _ -> push Top)
        | Instr.I2f -> (
            match pop () with
            | Int { lo; hi } when lo = hi -> push (Float_const (float_of_int lo))
            | _ -> push Top)
        | Instr.Fcmp -> (
            let b = pop () and a = pop () in
            match (a, b) with
            | Float_const x, Float_const y -> push (single (compare x y))
            | _ -> push (Int { lo = -1; hi = 1 }))
        | Instr.If_icmp (c, _) ->
            let b = pop () and a = pop () in
            (match eval_cond_interval c a b with
            | Some taken -> emit ~pc (Ev_branch taken)
            | None -> ())
        | Instr.Ifz (c, _) ->
            let a = pop () in
            (match eval_cond_interval c a (single 0) with
            | Some taken -> emit ~pc (Ev_branch taken)
            | None -> ())
        | Instr.Goto _ -> ()
        | Instr.Tableswitch _ -> ignore (pop ())
        | Instr.Invokestatic mid ->
            let callee = Program.method_by_id program mid in
            for _ = 1 to callee.Mthd.n_args do
              ignore (pop ())
            done;
            Option.iter push (return_aval callee.Mthd.returns)
        | Instr.Invokevirtual slot -> (
            match find_selector_target program slot with
            | Some callee ->
                for _ = 1 to callee.Mthd.n_args do
                  ignore (pop ())
                done;
                Option.iter push (return_aval callee.Mthd.returns)
            | None -> ())
        | Instr.Return | Instr.Ireturn | Instr.Freturn | Instr.Areturn ->
            stack := []
        | Instr.New _ -> push Nonnull
        | Instr.Getfield _ ->
            ignore (pop ());
            push Top
        | Instr.Putfield _ ->
            ignore (pop ());
            ignore (pop ())
        | Instr.Instanceof _ ->
            ignore (pop ());
            push (Int { lo = 0; hi = 1 })
        | Instr.Newarray _ ->
            ignore (pop ());
            push Nonnull
        | Instr.Iaload | Instr.Faload | Instr.Aaload ->
            ignore (pop ());
            ignore (pop ());
            push Top
        | Instr.Iastore | Instr.Fastore | Instr.Aastore ->
            ignore (pop ());
            ignore (pop ());
            ignore (pop ())
        | Instr.Arraylength ->
            ignore (pop ());
            push (Int { lo = 0; hi = max_int })
        | Instr.Athrow -> ignore (pop ())
        | Instr.Nop -> ()
      done;
      Reached { locals; stack = !stack }

type t = {
  program : Program.t;
  cfg : Method_cfg.t;
  entry : state array;
  exit : state array;
  iterations : int;
}

let compute (program : Program.t) (cfg : Method_cfg.t) =
  let m = cfg.Method_cfg.method_ in
  let n_locals = m.Mthd.n_locals in
  let entry_state =
    (* arguments are unknown; non-argument locals start zeroed but the
       builder never reads them before writing, so Top is both sound and
       cheap *)
    Reached { locals = Array.make n_locals Top; stack = [] }
  in
  let handler_entries =
    Array.to_list m.Mthd.handlers
    |> List.map (fun h ->
           ( Method_cfg.block_index_at_pc cfg h.Mthd.h_target,
             Reached { locals = Array.make n_locals Top; stack = [ Nonnull ] }
           ))
  in
  let { Solver.input; output; iterations } =
    Solver.solve_cfg ~direction:Dataflow.Forward cfg
      ~entries:((0, entry_state) :: handler_entries)
      ~transfer:(fun b st -> exec_block program cfg b st)
  in
  { program; cfg; entry = input; exit = output; iterations }

type finding =
  | Branch_always of { block : int; pc : int; taken : bool }
  | Div_by_zero of { block : int; pc : int }

let findings t =
  let out = ref [] in
  Array.iteri
    (fun b st ->
      ignore
        (exec_block t.program t.cfg b st ~emit:(fun ~pc ev ->
             out :=
               (match ev with
               | Ev_div_by_zero -> Div_by_zero { block = b; pc }
               | Ev_branch taken -> Branch_always { block = b; pc; taken })
               :: !out)))
    t.entry;
  List.sort
    (fun a b ->
      let pc_of = function
        | Branch_always { pc; _ } | Div_by_zero { pc; _ } -> pc
      in
      Int.compare (pc_of a) (pc_of b))
    !out
