module Method_cfg = Cfg.Method_cfg
module Block = Cfg.Block
module Mthd = Bytecode.Mthd
module Instr = Bytecode.Instr
module Program = Bytecode.Program
module Verify = Bytecode.Verify

let mloc name ?block ?pc () = Diag.Method_loc { method_name = name; block; pc }

let lint_method ?context ~big_loop_blocks (program : Program.t) (m : Mthd.t) =
  let cfg = Method_cfg.build m in
  let name = m.Mthd.name in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let live = Liveness.compute cfg in
  let cp = Constprop.compute program cfg in
  let loops = Loops.compute cfg in

  (* TL002: blocks no execution can reach, even through a handler *)
  Array.iteri
    (fun b reached ->
      if not reached then
        let blk = cfg.Method_cfg.blocks.(b) in
        add
          (Diag.make ?context ~code:"TL002" ~severity:Diag.Warning
             ~loc:(mloc name ~block:b ~pc:blk.Block.start_pc ())
             (Printf.sprintf "unreachable block (pcs %d..%d)"
                blk.Block.start_pc (Block.last_pc blk))))
    live.Liveness.reach;

  (* TL003: retreating edges that are not back edges *)
  List.iter
    (fun (src, dst) ->
      add
        (Diag.make ?context ~code:"TL003" ~severity:Diag.Warning
           ~loc:(mloc name ~block:src ())
           (Printf.sprintf
              "irreducible control flow: edge B%d->B%d retreats but B%d does \
               not dominate B%d"
              src dst dst src)))
    loops.Loops.irreducible;

  (* TL004: loops too large to be covered by a single trace *)
  Array.iter
    (fun l ->
      let size = List.length l.Loops.blocks in
      if size > big_loop_blocks then
        add
          (Diag.make ?context ~code:"TL004" ~severity:Diag.Info
             ~loc:(mloc name ~block:l.Loops.header ())
             (Printf.sprintf
                "natural loop at B%d spans %d blocks (depth %d); larger than \
                 any single trace can cover"
                l.Loops.header size l.Loops.depth)))
    loops.Loops.loops;

  (* TL101: dead stores *)
  List.iter
    (fun { Liveness.block; pc; slot; instr } ->
      add
        (Diag.make ?context ~code:"TL101" ~severity:Diag.Error
           ~loc:(mloc name ~block ~pc ())
           (Printf.sprintf "dead store: %s writes local %d but no path reads \
                            it afterwards"
              (Instr.to_string instr) slot)))
    (Liveness.dead_stores live);

  (* TL102 / TL105 from constant propagation *)
  List.iter
    (fun f ->
      match f with
      | Constprop.Branch_always { block; pc; taken } ->
          add
            (Diag.make ?context ~code:"TL102" ~severity:Diag.Warning
               ~loc:(mloc name ~block ~pc ())
               (Printf.sprintf "conditional %s always %s"
                  (Instr.to_string m.Mthd.code.(pc))
                  (if taken then "branches" else "falls through")))
      | Constprop.Div_by_zero { block; pc } ->
          add
            (Diag.make ?context ~code:"TL105" ~severity:Diag.Warning
               ~loc:(mloc name ~block ~pc ())
               "division by a divisor that is provably zero"))
    (Constprop.findings cp);

  (* TL103: a value crosses a multi-predecessor merge on the stack *)
  Array.iteri
    (fun b st ->
      match st with
      | Constprop.Reached { stack; _ }
        when stack <> []
             && List.length (Method_cfg.predecessors cfg).(b) > 1 ->
          add
            (Diag.make ?context ~code:"TL103" ~severity:Diag.Info
               ~loc:(mloc name ~block:b ())
               (Printf.sprintf
                  "merge block entered with %d operand(s) on the stack"
                  (List.length stack)))
      | _ -> ())
    cp.Constprop.entry;

  (* TL104: non-argument slots never read anywhere in the method *)
  let read = Array.make m.Mthd.n_locals false in
  Array.iter
    (fun i -> List.iter (fun u -> read.(u) <- true) (Liveness.uses i))
    m.Mthd.code;
  let written = Array.make m.Mthd.n_locals false in
  Array.iter
    (fun i -> List.iter (fun d -> written.(d) <- true) (Liveness.defs i))
    m.Mthd.code;
  for slot = m.Mthd.n_args to m.Mthd.n_locals - 1 do
    if written.(slot) && not read.(slot) then
      add
        (Diag.make ?context ~code:"TL104" ~severity:Diag.Info
           ~loc:(mloc name ())
           (Printf.sprintf "local slot %d is written but never read" slot))
  done;
  List.rev !diags

let lint_program ?context ?(big_loop_blocks = 64) (program : Program.t) =
  match Verify.verify_program_all program with
  | _ :: _ as errors ->
      (* dataflow assumes verified code; report the violations and stop *)
      List.map
        (fun (e : Verify.error) ->
          Diag.make ?context ~code:"TL001" ~severity:Diag.Error
            ~loc:(mloc e.Verify.method_name ~pc:e.Verify.pc ())
            e.Verify.message)
        errors
  | [] ->
      Array.to_list program.Program.methods
      |> List.concat_map (lint_method ?context ~big_loop_blocks program)
