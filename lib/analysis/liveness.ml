module Method_cfg = Cfg.Method_cfg
module Block = Cfg.Block
module Mthd = Bytecode.Mthd
module Instr = Bytecode.Instr
module Slot_set = Set.Make (Int)

module L = struct
  type t = Slot_set.t

  let bottom = Slot_set.empty

  let equal = Slot_set.equal

  let join = Slot_set.union

  let pp ppf s =
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map string_of_int (Slot_set.elements s)))
end

module Solver = Dataflow.Make (L)

let uses = function
  | Instr.Iload n | Instr.Fload n | Instr.Aload n | Instr.Iinc (n, _) -> [ n ]
  | _ -> []

let defs = function
  | Instr.Istore n | Instr.Fstore n | Instr.Astore n | Instr.Iinc (n, _) ->
      [ n ]
  | _ -> []

type t = {
  cfg : Method_cfg.t;
  live_in : Slot_set.t array;
  live_out : Slot_set.t array;
  covered : bool array;
  reach : bool array;
  iterations : int;
}

let covered_blocks (cfg : Method_cfg.t) =
  let handlers = cfg.Method_cfg.method_.Mthd.handlers in
  Array.map
    (fun blk ->
      let b_from = blk.Block.start_pc and b_to = Block.end_pc blk in
      Array.exists
        (fun h -> h.Mthd.h_from < b_to && b_from < h.Mthd.h_to)
        handlers)
    cfg.Method_cfg.blocks

(* Backward in-block scan: live-before = (live-after \ defs) ∪ uses.  In a
   covered block stores never kill — a throw can hand the handler the value
   that was live before the store. *)
let transfer_block (cfg : Method_cfg.t) ~covered b live_out =
  let code = cfg.Method_cfg.method_.Mthd.code in
  let blk = cfg.Method_cfg.blocks.(b) in
  let live = ref live_out in
  for pc = Block.last_pc blk downto blk.Block.start_pc do
    let i = code.(pc) in
    if not covered then
      List.iter (fun d -> live := Slot_set.remove d !live) (defs i);
    List.iter (fun u -> live := Slot_set.add u !live) (uses i)
  done;
  !live

let compute (cfg : Method_cfg.t) =
  let covered = covered_blocks cfg in
  let { Solver.input; output; iterations } =
    Solver.solve_cfg ~direction:Dataflow.Backward ~exceptional:true cfg
      ~entries:[]
      ~transfer:(fun b out -> transfer_block cfg ~covered:covered.(b) b out)
  in
  {
    cfg;
    live_in = output;
    live_out = input;
    covered;
    reach = Dataflow.reachable ~exceptional:true cfg;
    iterations;
  }

type dead_store = {
  block : int;
  pc : int;
  slot : int;
  instr : Instr.t;
}

let dead_stores t =
  let cfg = t.cfg in
  let code = cfg.Method_cfg.method_.Mthd.code in
  let found = ref [] in
  Array.iteri
    (fun b blk ->
      if t.reach.(b) && not t.covered.(b) then begin
        let live = ref t.live_out.(b) in
        for pc = Block.last_pc blk downto blk.Block.start_pc do
          let i = code.(pc) in
          (match i with
          | Instr.Istore n | Instr.Fstore n | Instr.Astore n ->
              if not (Slot_set.mem n !live) then
                found := { block = b; pc; slot = n; instr = i } :: !found
          | _ -> ());
          List.iter (fun d -> live := Slot_set.remove d !live) (defs i);
          List.iter (fun u -> live := Slot_set.add u !live) (uses i)
        done
      end)
    cfg.Method_cfg.blocks;
  List.sort (fun a b -> Int.compare a.pc b.pc) !found
