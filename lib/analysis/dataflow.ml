module Method_cfg = Cfg.Method_cfg
module Block = Cfg.Block
module Mthd = Bytecode.Mthd

(* The generic monotone dataflow framework: a worklist solver over a
   join-semilattice, direction-agnostic by flipping the edge functions.
   The graph is abstract (successor/predecessor functions over dense block
   indices) so tests can run the solver on hand-built shapes; solve_cfg
   adapts a Method_cfg, optionally with exceptional (handler) edges. *)

type direction =
  | Forward
  | Backward

module type LATTICE = sig
  type t

  val bottom : t

  val equal : t -> t -> bool

  val join : t -> t -> t

  val pp : Format.formatter -> t -> unit
end

(* Exceptional edges: a throw anywhere in a covered block transfers to the
   handler's entry block.  The CFG proper omits these (the VM treats them
   as dynamic edges); analyses that must be sound across unwinding ask for
   them explicitly. *)
let exceptional_successors (cfg : Method_cfg.t) b =
  let blk = cfg.Method_cfg.blocks.(b) in
  let b_from = blk.Block.start_pc in
  let b_to = Block.end_pc blk in
  let targets =
    Array.fold_left
      (fun acc h ->
        if h.Mthd.h_from < b_to && b_from < h.Mthd.h_to then
          Method_cfg.block_index_at_pc cfg h.Mthd.h_target :: acc
        else acc)
      []
      cfg.Method_cfg.method_.Mthd.handlers
  in
  List.sort_uniq Int.compare targets

let reachable ?(exceptional = true) (cfg : Method_cfg.t) =
  let n = Method_cfg.n_blocks cfg in
  let seen = Array.make n false in
  let stack = ref [ 0 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
        stack := rest;
        if not seen.(b) then begin
          seen.(b) <- true;
          let succs = Method_cfg.successors cfg cfg.Method_cfg.blocks.(b) in
          let succs =
            if exceptional then succs @ exceptional_successors cfg b else succs
          in
          List.iter (fun s -> if not seen.(s) then stack := s :: !stack) succs
        end
  done;
  seen

module Make (L : LATTICE) = struct
  type result = {
    input : L.t array;
    output : L.t array;
    iterations : int;
  }

  let solve ~direction ~n_blocks ~succs ~preds ~entries ~transfer =
    (* flip the graph for backward problems; from here on "into" is the
       side facts are joined on and "out of" the side transfer produces *)
    let flow_preds, flow_succs =
      match direction with
      | Forward -> (preds, succs)
      | Backward -> (succs, preds)
    in
    let input = Array.make n_blocks L.bottom in
    let output = Array.make n_blocks L.bottom in
    let seed = Array.make n_blocks L.bottom in
    List.iter
      (fun (b, fact) ->
        if b < 0 || b >= n_blocks then
          invalid_arg (Printf.sprintf "Dataflow.solve: entry block %d" b);
        seed.(b) <- L.join seed.(b) fact)
      entries;
    let on_list = Array.make n_blocks false in
    let work = Queue.create () in
    let push b =
      if not on_list.(b) then begin
        on_list.(b) <- true;
        Queue.add b work
      end
    in
    (* seeded blocks first, then everything: every block is visited at
       least once so [output] is always [transfer] of [input], even for
       blocks no propagation reaches (strict transfers keep those at
       bottom) *)
    List.iter (fun (b, _) -> push b) entries;
    for b = 0 to n_blocks - 1 do
      push b
    done;
    let iterations = ref 0 in
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      on_list.(b) <- false;
      incr iterations;
      let in_fact =
        List.fold_left
          (fun acc p -> L.join acc output.(p))
          seed.(b) (flow_preds b)
      in
      input.(b) <- in_fact;
      let out_fact = transfer b in_fact in
      if not (L.equal out_fact output.(b)) then begin
        output.(b) <- out_fact;
        List.iter push (flow_succs b)
      end
    done;
    { input; output; iterations = !iterations }

  let solve_cfg ~direction ?(exceptional = false) (cfg : Method_cfg.t)
      ~entries ~transfer =
    let n_blocks = Method_cfg.n_blocks cfg in
    let succs =
      Array.init n_blocks (fun b ->
          let normal = Method_cfg.successors cfg cfg.Method_cfg.blocks.(b) in
          if exceptional then
            List.sort_uniq Int.compare (normal @ exceptional_successors cfg b)
          else normal)
    in
    let preds = Array.make n_blocks [] in
    Array.iteri
      (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
      succs;
    solve ~direction ~n_blocks
      ~succs:(fun b -> succs.(b))
      ~preds:(fun b -> preds.(b))
      ~entries ~transfer
end
