(** Translation validation: observational equivalence of an optimized
    trace body against its source block sequence, modulo guards.

    Both sides are evaluated with {!Symexec} and the canonical states
    compared.  Divergences come back as {!Diag.t} values on the trace,
    one stable code per broken promise:

    - [TL212] stack-shape divergence (residual operand stack or
      consumed-from-below count differs)
    - [TL213] store/effect divergence (a local write or heap/call effect
      dropped, added or changed)
    - [TL214] effect reorder (same effect multiset, different order)
    - [TL215] trap-condition weakening
    - [TL216] guard-set weakening
    - [TL218] incomparable epoch structure (warning; barrier counts
      differ so finer comparison is skipped)

    [TL217] — a pruned guard whose proof no longer re-derives — is
    reported by [Tracegen.Trace_prover], which owns the pruning facts. *)

val check :
  ?context:string ->
  ?dead_out:(int -> bool) ->
  trace_id:int ->
  original:Bytecode.Instr.t array ->
  optimized:Bytecode.Instr.t array ->
  unit ->
  Diag.t list
(** [check ~dead_out ~trace_id ~original ~optimized ()] returns every
    detected divergence ([] = proven equivalent).  [dead_out slot] is the
    liveness license: a final-epoch store to a dead-out slot may be
    dropped by the optimized side (default: no slot is licensed). *)
