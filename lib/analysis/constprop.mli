(** Forward constant/interval propagation over locals and the operand
    stack — a richer domain than the verifier's stack types.

    Integers are tracked as intervals whose non-singleton bounds are
    widened to a small threshold set at joins, so the lattice has finite
    height and the {!Dataflow} solver terminates without an explicit
    widening point.  Singleton arithmetic uses the exact operations the
    interpreter uses (OCaml native ints, [lsl (n land 63)], …), so a
    singleton claim can be cross-validated against observed execution.
    Floats are tracked as exact constants or nothing; references only as
    null / non-null.

    The analysis is path-insensitive (no branch refinement) and
    conservative across calls and heap reads ([Top]).  Handler entry
    blocks are seeded with all-[Top] locals and the exception object as
    the only stack operand, which keeps the result sound along unwind
    paths without modelling them edge-by-edge. *)

type aval =
  | Top  (** no information *)
  | Int of { lo : int; hi : int }  (** integer in [[lo, hi]], [lo <= hi] *)
  | Float_const of float
  | Null
  | Nonnull

type state =
  | Unreached
  | Reached of {
      locals : aval array;
      stack : aval list;  (** head is the top of the operand stack *)
    }

type t = {
  program : Bytecode.Program.t;
  cfg : Cfg.Method_cfg.t;
  entry : state array;  (** abstract frame on entry to each block *)
  exit : state array;
  iterations : int;
}

val compute : Bytecode.Program.t -> Cfg.Method_cfg.t -> t
(** The program supplies callee signatures (stack effects of calls). *)

type finding =
  | Branch_always of { block : int; pc : int; taken : bool }
      (** the conditional branch at [pc] always goes the same way *)
  | Div_by_zero of { block : int; pc : int }
      (** the divisor at [pc] is provably zero on every execution *)

val findings : t -> finding list
(** Per-instruction facts from re-simulating each reached block from its
    entry state; ordered by pc. *)

val singleton : aval -> int option
(** [Some c] when the abstract value is exactly the integer [c]. *)

val aval_join : aval -> aval -> aval

val aval_pp : Format.formatter -> aval -> unit

val state_pp : Format.formatter -> state -> unit
