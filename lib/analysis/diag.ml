(* Diagnostics: the common currency of every linter layer.  Each finding
   carries a stable check code (DESIGN.md §12 lists the catalogue), a
   severity, and a location; the CLI derives its exit status from the
   presence of error-severity findings. *)

type severity =
  | Error
  | Warning
  | Info

type location =
  | Method_loc of {
      method_name : string;
      block : int option;
      pc : int option;
    }
  | Trace_loc of { trace_id : int }
  | Node_loc of { x : int; y : int }
  | Program_loc

type t = {
  code : string;
  severity : severity;
  context : string option;
  loc : location;
  message : string;
}

let make ?context ~code ~severity ~loc message =
  { code; severity; context; loc; message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_to_string = function
  | Method_loc { method_name; block; pc } ->
      let b = match block with Some b -> Printf.sprintf ":B%d" b | None -> "" in
      let p = match pc with Some p -> Printf.sprintf "@%d" p | None -> "" in
      method_name ^ b ^ p
  | Trace_loc { trace_id } -> Printf.sprintf "trace#%d" trace_id
  | Node_loc { x; y } -> Printf.sprintf "N(%d->%d)" x y
  | Program_loc -> "program"

let to_string d =
  let ctx = match d.context with Some c -> c ^ ": " | None -> "" in
  Printf.sprintf "%s%s: %s %s: %s" ctx
    (location_to_string d.loc)
    (severity_to_string d.severity)
    d.code d.message

(* Errors first; within a severity keep a stable, readable order. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      String.compare (location_to_string a.loc) (location_to_string b.loc)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let count sev diags =
  List.fold_left (fun n d -> if d.severity = sev then n + 1 else n) 0 diags

let pp ppf d = Format.pp_print_string ppf (to_string d)
