module Method_cfg = Cfg.Method_cfg
module Dominators = Cfg.Dominators

type loop = {
  header : int;
  latches : int list;
  blocks : int list;
  depth : int;
  parent : int option;
}

type t = {
  cfg : Method_cfg.t;
  dom : Dominators.t;
  loops : loop array;
  depth : int array;
  back_edges : (int * int) list;
  irreducible : (int * int) list;
}

let compute (cfg : Method_cfg.t) =
  let n = Method_cfg.n_blocks cfg in
  let dom = Dominators.compute cfg in
  let back_edges = Dominators.back_edges cfg dom in
  (* position of each block in reverse postorder; -1 = unreachable *)
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_pos.(b) <- i) dom.Dominators.rpo;
  let irreducible =
    let back = List.sort_uniq compare back_edges in
    let retreating = ref [] in
    Array.iteri
      (fun b blk ->
        if rpo_pos.(b) >= 0 then
          List.iter
            (fun s ->
              if
                rpo_pos.(s) >= 0
                && rpo_pos.(s) <= rpo_pos.(b)
                && not (List.mem (b, s) back)
              then retreating := (b, s) :: !retreating)
            (Method_cfg.successors cfg blk))
      cfg.Method_cfg.blocks;
    List.sort compare !retreating
  in
  (* merge back edges by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let latches, blocks =
        match Hashtbl.find_opt by_header header with
        | Some (ls, bs) -> (ls, bs)
        | None -> ([], [])
      in
      let body = Dominators.natural_loop cfg ~back:(latch, header) in
      Hashtbl.replace by_header header
        (latch :: latches, List.sort_uniq Int.compare (body @ blocks)))
    back_edges;
  let headers =
    Hashtbl.fold (fun h _ acc -> h :: acc) by_header []
    |> List.sort Int.compare
  in
  let depth = Array.make n 0 in
  List.iter
    (fun h ->
      let _, blocks = Hashtbl.find by_header h in
      List.iter (fun b -> depth.(b) <- depth.(b) + 1) blocks)
    headers;
  let in_loop h b =
    let _, blocks = Hashtbl.find by_header h in
    List.mem b blocks
  in
  let loops =
    Array.of_list
      (List.map
         (fun h ->
           let latches, blocks = Hashtbl.find by_header h in
           (* the innermost enclosing loop is the smallest other loop whose
              body contains this header *)
           let parent =
             List.mapi (fun i h' -> (i, h')) headers
             |> List.filter (fun (_, h') -> h' <> h && in_loop h' h)
             |> List.map (fun (i, h') ->
                    (List.length (snd (Hashtbl.find by_header h')), i))
             |> List.sort compare
             |> function
             | (_, i) :: _ -> Some i
             | [] -> None
           in
           {
             header = h;
             latches = List.sort Int.compare latches;
             blocks;
             depth = depth.(h);
             parent;
           })
         headers)
  in
  { cfg; dom; loops; depth; back_edges; irreducible }

let loop_of_header t h = Array.find_opt (fun l -> l.header = h) t.loops
