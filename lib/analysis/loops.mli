(** Loop discovery and nesting classification on {!Cfg.Dominators}.

    A {e back edge} is an edge [(latch, header)] whose target dominates
    its source; its natural loop is the set of blocks that reach the
    latch without passing through the header.  Back edges with a shared
    header are merged into one loop with several latches.  Retreating
    edges (target not later in reverse postorder) that are {e not} back
    edges mark irreducible control flow — the profiler's trace walker
    can still handle it, but the linter reports it as a structural
    observation. *)

type loop = {
  header : int;
  latches : int list;  (** sources of the back edges into [header] *)
  blocks : int list;  (** the natural loop, sorted, header included *)
  depth : int;  (** nesting depth of the header, outermost = 1 *)
  parent : int option;  (** index of the innermost enclosing loop *)
}

type t = {
  cfg : Cfg.Method_cfg.t;
  dom : Cfg.Dominators.t;
  loops : loop array;  (** ordered by header block index *)
  depth : int array;  (** per-block nesting depth, 0 = outside any loop *)
  back_edges : (int * int) list;
  irreducible : (int * int) list;
      (** retreating edges whose target does not dominate their source *)
}

val compute : Cfg.Method_cfg.t -> t

val loop_of_header : t -> int -> loop option
