(** A static bytecode verifier in the style of the JVM's: abstract
    interpretation over stack shapes.

    For every reachable instruction the verifier computes the operand
    stack as a list of abstract types (int / float / reference) and checks
    that every instruction finds the operands it needs, that merge points
    agree on the stack shape, that branch targets, field slots and local
    slots are in range, and that execution cannot fall off the end of the
    code. *)

type vty =
  | Vint
  | Vfloat
  | Vref

type error = {
  method_name : string;
  pc : int;
  message : string;
}

exception Invalid of error

val vty_to_string : vty -> string

val verify_method : Program.t -> Mthd.t -> unit
(** @raise Invalid on the first violation found. *)

val verify_method_all : Program.t -> Mthd.t -> error list
(** Collect every violation in the method instead of stopping at the
    first.  The head of the list is the error {!verify_method} raises;
    later entries are best-effort (verification continues past a broken
    state).  [[]] means the method verifies. *)

val verify_program : Program.t -> unit
(** Verify every method.  @raise Invalid on the first violation. *)

val verify_program_all : Program.t -> error list
(** {!verify_method_all} over every method, in method order — the linter's
    entry point. *)

val error_to_string : error -> string
