(* A static bytecode verifier in the style of the JVM's: abstract
   interpretation over stack shapes.  For every reachable instruction we
   compute the operand stack as a list of abstract types and check that
   (a) every instruction finds the operands it needs, (b) merge points agree
   on the stack shape, (c) branch targets, field slots and local slots are
   in range, and (d) execution cannot fall off the end of the code.

   The abstract domain distinguishes ints, floats and references — enough to
   catch every operand error the interpreter could trip on. *)

type vty =
  | Vint
  | Vfloat
  | Vref

type error = {
  method_name : string;
  pc : int;
  message : string;
}

exception Invalid of error

let fail mname pc fmt =
  Format.kasprintf
    (fun message -> raise (Invalid { method_name = mname; pc; message }))
    fmt

let vty_to_string = function
  | Vint -> "int"
  | Vfloat -> "float"
  | Vref -> "ref"

let vty_of_return = function
  | Mthd.Rint -> Some Vint
  | Mthd.Rfloat -> Some Vfloat
  | Mthd.Rref -> Some Vref
  | Mthd.Rvoid -> None

let vty_of_field_kind = function
  | Klass.Kint -> Vint
  | Klass.Kfloat -> Vfloat
  | Klass.Kref -> Vref

(* Any class binding the selector gives the shared signature (the front end
   enforces that all bindings agree). *)
let find_selector_target (program : Program.t) slot =
  let n = Array.length program.Program.classes in
  let rec go i =
    if i >= n then None
    else
      match Klass.method_for_selector program.Program.classes.(i) ~slot with
      | Some mid -> Some (Program.method_by_id program mid)
      | None -> go (i + 1)
  in
  go 0

(* The verifier does not track local types flow-sensitively (the builder
   already guarantees consistent slot use); it tracks stack shapes, which is
   where interpreter crashes would come from.

   The collecting variant records every violation instead of stopping at
   the first: each worklist step runs under a guard that catches [Invalid]
   and keeps draining.  Errors found after the first are best-effort (a
   broken merge leaves the earlier stack shape in place), but the first
   recorded error is always the one the raising API reports, because
   execution up to that point is identical. *)
let verify_method_all (program : Program.t) (m : Mthd.t) =
  let errors = ref [] in
  let seen = Hashtbl.create 8 in
  let record (e : error) =
    let key = (e.pc, e.message) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      errors := e :: !errors
    end
  in
  let guard f = try f () with Invalid e -> record e in
  let code = m.Mthd.code in
  let n = Array.length code in
  let mname = m.Mthd.name in
  if n = 0 then [ { method_name = mname; pc = 0; message = "empty code array" } ]
  else begin
  let stack_at : vty list option array = Array.make n None in
  let worklist = Queue.create () in
  let schedule pc stack =
    if pc < 0 || pc >= n then fail mname pc "control flow out of bounds";
    match stack_at.(pc) with
    | None ->
        stack_at.(pc) <- Some stack;
        Queue.add pc worklist
    | Some existing ->
        if existing <> stack then
          fail mname pc "inconsistent stack shapes at merge point (%s vs %s)"
            (String.concat "," (List.map vty_to_string existing))
            (String.concat "," (List.map vty_to_string stack))
  in
  let pop1 pc want stack =
    match stack with
    | t :: rest ->
        if t <> want then
          fail mname pc "expected %s on stack, found %s" (vty_to_string want)
            (vty_to_string t);
        rest
    | [] -> fail mname pc "stack underflow"
  in
  let pop_any pc stack =
    match stack with
    | _ :: rest -> rest
    | [] -> fail mname pc "stack underflow"
  in
  let pop_ref pc stack =
    match stack with
    | Vref :: rest -> rest
    | t :: _ ->
        fail mname pc "expected ref on stack, found %s" (vty_to_string t)
    | [] -> fail mname pc "stack underflow"
  in
  let check_local pc slot =
    if slot < 0 || slot >= m.Mthd.n_locals then
      fail mname pc "local slot %d out of range (n_locals=%d)" slot
        m.Mthd.n_locals
  in
  let check_field pc cid slot =
    if cid < 0 || cid >= Array.length program.Program.classes then
      fail mname pc "field access with invalid class id %d" cid;
    let k = program.Program.classes.(cid) in
    if slot < 0 || slot >= Klass.n_fields k then
      fail mname pc "field slot %d out of range for class %s" slot
        k.Klass.name;
    vty_of_field_kind k.Klass.field_kinds.(slot)
  in
  let rec pop_args pc k stack =
    if k = 0 then stack else pop_args pc (k - 1) (pop_any pc stack)
  in
  let step pc stack =
    let continue stack = schedule (pc + 1) stack in
    match code.(pc) with
    | Instr.Iconst _ -> continue (Vint :: stack)
    | Fconst _ -> continue (Vfloat :: stack)
    | Aconst_null -> continue (Vref :: stack)
    | Iload slot ->
        check_local pc slot;
        continue (Vint :: stack)
    | Fload slot ->
        check_local pc slot;
        continue (Vfloat :: stack)
    | Aload slot ->
        check_local pc slot;
        continue (Vref :: stack)
    | Istore slot ->
        check_local pc slot;
        continue (pop1 pc Vint stack)
    | Fstore slot ->
        check_local pc slot;
        continue (pop1 pc Vfloat stack)
    | Astore slot ->
        check_local pc slot;
        continue (pop_ref pc stack)
    | Iinc (slot, _) ->
        check_local pc slot;
        continue stack
    | Dup -> (
        match stack with
        | t :: _ -> continue (t :: stack)
        | [] -> fail mname pc "dup on empty stack")
    | Pop -> continue (pop_any pc stack)
    | Swap -> (
        match stack with
        | a :: b :: rest -> continue (b :: a :: rest)
        | _ -> fail mname pc "swap needs two operands")
    | Iadd | Isub | Imul | Idiv | Irem | Iand | Ior | Ixor | Ishl | Ishr
    | Iushr ->
        continue (Vint :: pop1 pc Vint (pop1 pc Vint stack))
    | Ineg -> continue (Vint :: pop1 pc Vint stack)
    | Fadd | Fsub | Fmul | Fdiv ->
        continue (Vfloat :: pop1 pc Vfloat (pop1 pc Vfloat stack))
    | Fneg -> continue (Vfloat :: pop1 pc Vfloat stack)
    | F2i -> continue (Vint :: pop1 pc Vfloat stack)
    | I2f -> continue (Vfloat :: pop1 pc Vint stack)
    | Fcmp -> continue (Vint :: pop1 pc Vfloat (pop1 pc Vfloat stack))
    | If_icmp (_, target) ->
        let stack = pop1 pc Vint (pop1 pc Vint stack) in
        schedule target stack;
        continue stack
    | Ifz (_, target) ->
        let stack = pop1 pc Vint stack in
        schedule target stack;
        continue stack
    | Goto target -> schedule target stack
    | Tableswitch { targets; default; _ } ->
        let stack = pop1 pc Vint stack in
        Array.iter (fun t -> schedule t stack) targets;
        schedule default stack
    | Invokestatic mid ->
        if mid < 0 || mid >= Array.length program.Program.methods then
          fail mname pc "invokestatic with invalid method id %d" mid;
        let callee = Program.method_by_id program mid in
        if callee.Mthd.kind <> Mthd.Static then
          fail mname pc "invokestatic on virtual method %s" callee.Mthd.name;
        let stack = pop_args pc callee.Mthd.n_args stack in
        let stack =
          match vty_of_return callee.Mthd.returns with
          | None -> stack
          | Some t -> t :: stack
        in
        continue stack
    | Invokevirtual slot -> (
        if slot < 0 || slot >= Array.length program.Program.selectors then
          fail mname pc "invokevirtual with invalid selector slot %d" slot;
        match find_selector_target program slot with
        | None -> fail mname pc "selector slot %d bound by no class" slot
        | Some callee ->
            (* n_args includes the receiver *)
            let stack = pop_args pc callee.Mthd.n_args stack in
            let stack =
              match vty_of_return callee.Mthd.returns with
              | None -> stack
              | Some t -> t :: stack
            in
            continue stack)
    | Return ->
        if m.Mthd.returns <> Mthd.Rvoid then
          fail mname pc "void return in non-void method"
    | Ireturn ->
        if m.Mthd.returns <> Mthd.Rint then fail mname pc "ireturn mismatch";
        ignore (pop1 pc Vint stack)
    | Freturn ->
        if m.Mthd.returns <> Mthd.Rfloat then
          fail mname pc "freturn mismatch";
        ignore (pop1 pc Vfloat stack)
    | Areturn ->
        if m.Mthd.returns <> Mthd.Rref then fail mname pc "areturn mismatch";
        ignore (pop_ref pc stack)
    | New cid ->
        if cid < 0 || cid >= Array.length program.Program.classes then
          fail mname pc "new with invalid class id %d" cid;
        continue (Vref :: stack)
    | Getfield (cid, slot) ->
        let fty = check_field pc cid slot in
        continue (fty :: pop_ref pc stack)
    | Putfield (cid, slot) ->
        let fty = check_field pc cid slot in
        continue (pop_ref pc (pop1 pc fty stack))
    | Instanceof cid ->
        if cid < 0 || cid >= Array.length program.Program.classes then
          fail mname pc "instanceof with invalid class id %d" cid;
        continue (Vint :: pop_ref pc stack)
    (* stacks are written top-first: the index is above the array ref, and
       a stored value is above the index *)
    | Newarray _ -> continue (Vref :: pop1 pc Vint stack)
    | Iaload -> continue (Vint :: pop_ref pc (pop1 pc Vint stack))
    | Faload -> continue (Vfloat :: pop_ref pc (pop1 pc Vint stack))
    | Aaload -> continue (Vref :: pop_ref pc (pop1 pc Vint stack))
    | Iastore -> continue (pop_ref pc (pop1 pc Vint (pop1 pc Vint stack)))
    | Fastore -> continue (pop_ref pc (pop1 pc Vint (pop1 pc Vfloat stack)))
    | Aastore -> continue (pop_ref pc (pop1 pc Vint (pop_ref pc stack)))
    | Arraylength -> continue (Vint :: pop_ref pc stack)
    | Athrow ->
        (* flow terminates here; the covering handler (if any) is
           scheduled separately with the exception object on the stack *)
        ignore (pop_ref pc stack)
    | Nop -> continue stack
  in
  (* handler sanity + entry states: a handler target starts with exactly
     the exception object on the stack *)
  Array.iter
    (fun h ->
      guard (fun () ->
          if
            h.Mthd.h_from < 0 || h.Mthd.h_to > n
            || h.Mthd.h_from >= h.Mthd.h_to
            || h.Mthd.h_target < 0 || h.Mthd.h_target >= n
          then fail mname h.Mthd.h_target "malformed handler range";
          if
            h.Mthd.h_class < 0
            || h.Mthd.h_class >= Array.length program.Program.classes
          then fail mname h.Mthd.h_target "handler catches unknown class";
          schedule h.Mthd.h_target [ Vref ]))
    m.Mthd.handlers;
  guard (fun () -> schedule 0 []);
  while not (Queue.is_empty worklist) do
    let pc = Queue.pop worklist in
    match stack_at.(pc) with
    | Some stack -> guard (fun () -> step pc stack)
    | None -> assert false
  done;
  List.rev !errors
  end

let verify_method (program : Program.t) (m : Mthd.t) =
  match verify_method_all program m with
  | [] -> ()
  | e :: _ -> raise (Invalid e)

let verify_program_all (program : Program.t) =
  Array.fold_left
    (fun acc m -> acc @ verify_method_all program m)
    [] program.Program.methods

let verify_program (program : Program.t) =
  Array.iter (fun m -> verify_method program m) program.Program.methods

let error_to_string { method_name; pc; message } =
  Printf.sprintf "verify error in %s at pc %d: %s" method_name pc message
