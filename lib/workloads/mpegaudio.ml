(* Stand-in for SPECjvm98 mpegaudio: a DSP pipeline.  Samples are
   synthesized, pushed through a polymorphic chain of filter stages (biquad
   sections with internal state, gain, and a rarely-triggering soft
   clipper — a virtual call every few bytecodes, like real audio decoders),
   then windowed through a 32-tap subband accumulator and quantized.
   Branches are highly regular except for the clipper. *)

open Dsl
module S = Bytecode.Structured

let define (p : S.t) ~size =
  define_prelude p;
  S.def_class p ~name:"Stage" ~fields:[] ~methods:[] ();
  S.def_class p ~name:"Biquad" ~super:"Stage"
    ~fields:
      [ ("b0", S.F); ("b1", S.F); ("b2", S.F); ("a1", S.F); ("a2", S.F);
        ("z1", S.F); ("z2", S.F) ]
    ~methods:[ ("process", "biquad_process") ]
    ();
  S.def_class p ~name:"Gain" ~super:"Stage"
    ~fields:[ ("g", S.F) ]
    ~methods:[ ("process", "gain_process") ]
    ();
  S.def_class p ~name:"Clip" ~super:"Stage"
    ~fields:[ ("limit", S.F); ("clipped", S.I) ]
    ~methods:[ ("process", "clip_process") ]
    ();
  (* transposed direct form II biquad *)
  S.def_method p ~name:"biquad_process" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "y" ((getf "Biquad" "b0" (v "this") *! v "x")
                    +! getf "Biquad" "z1" (v "this"));
        setf "Biquad" "z1" (v "this")
          ((getf "Biquad" "b1" (v "this") *! v "x")
          -! (getf "Biquad" "a1" (v "this") *! v "y")
          +! getf "Biquad" "z2" (v "this"));
        setf "Biquad" "z2" (v "this")
          ((getf "Biquad" "b2" (v "this") *! v "x")
          -! (getf "Biquad" "a2" (v "this") *! v "y"));
        ret (v "y");
      ]
    ();
  S.def_method p ~name:"gain_process" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:[ ret (getf "Gain" "g" (v "this") *! v "x") ]
    ();
  S.def_method p ~name:"clip_process" ~kind:Bytecode.Mthd.Virtual
    ~args:[ ("x", S.F) ]
    ~ret:S.F
    ~body:
      [
        decl_f "lim" (getf "Clip" "limit" (v "this"));
        when_
          (v "x" >! v "lim")
          [
            setf "Clip" "clipped" (v "this")
              (getf "Clip" "clipped" (v "this") +! i 1);
            ret (v "lim" +! ((v "x" -! v "lim") *! f 0.1));
          ];
        when_
          (v "x" <! neg (v "lim"))
          [
            setf "Clip" "clipped" (v "this")
              (getf "Clip" "clipped" (v "this") +! i 1);
            ret (neg (v "lim") +! ((v "x" +! v "lim") *! f 0.1));
          ];
        ret (v "x");
      ]
    ();
  S.def_method p ~name:"mk_biquad"
    ~args:[ ("b0", S.F); ("b1", S.F); ("b2", S.F); ("a1", S.F); ("a2", S.F) ]
    ~ret:S.R
    ~body:
      [
        decl "s" S.R (new_obj "Biquad");
        setf "Biquad" "b0" (v "s") (v "b0");
        setf "Biquad" "b1" (v "s") (v "b1");
        setf "Biquad" "b2" (v "s") (v "b2");
        setf "Biquad" "a1" (v "s") (v "a1");
        setf "Biquad" "a2" (v "s") (v "a2");
        ret (v "s");
      ]
    ();
  S.def_method p ~name:"main" ~args:[] ~ret:S.I
    ~body:
      [
        (* filter chain: lowpass, peak, gain, highpass-ish, clip, gain *)
        decl "chain" (S.Arr S.R) (new_arr S.R (i 6));
        seti (v "chain") (i 0)
          (call "mk_biquad" [ f 0.2066; f 0.4131; f 0.2066; f (-0.3695); f 0.1958 ]);
        seti (v "chain") (i 1)
          (call "mk_biquad" [ f 1.0300; f (-1.9029); f 0.9029; f (-1.9029); f 0.9329 ]);
        decl "g1" S.R (new_obj "Gain");
        setf "Gain" "g" (v "g1") (f 0.8);
        seti (v "chain") (i 2) (v "g1");
        seti (v "chain") (i 3)
          (call "mk_biquad" [ f 0.9726; f (-1.9452); f 0.9726; f (-1.9445); f 0.9460 ]);
        decl "cl" S.R (new_obj "Clip");
        setf "Clip" "limit" (v "cl") (f 0.95);
        seti (v "chain") (i 4) (v "cl");
        decl "g2" S.R (new_obj "Gain");
        setf "Gain" "g" (v "g2") (f 1.18);
        seti (v "chain") (i 5) (v "g2");
        (* 32-tap analysis window *)
        decl "win" (S.Arr S.F) (new_arr S.F (i 32));
        for_ "k" (i 0) (i 32)
          [
            seti (v "win") (v "k")
              (call "fsin" [ i2f (v "k" +! i 1) *! f 0.0959931 ] *! f 0.0625);
          ];
        decl "ring" (S.Arr S.F) (new_arr S.F (i 32));
        decl_i "n" (i size);
        decl_i "chk" (i 0);
        for_ "t" (i 0) (v "n")
          [
            (* synthesize: two partials + a small rng dither *)
            decl "st" (S.Arr S.I) (new_arr S.I (i 1));
            seti (v "st") (i 0) (v "t");
            decl_f "x"
              (call "fsin" [ i2f (v "t") *! f 0.0501 ]
              +! (f 0.31 *! call "fsin" [ i2f (v "t") *! f 0.1733 ])
              +! (i2f (call "rng_range" [ v "st"; i 64 ]) *! f 0.001));
            (* run the polymorphic chain *)
            for_ "s" (i 0)
              (len (v "chain"))
              [ set "x" (vcall "process" (v "chain" @. v "s") [ v "x" ]) ];
            seti (v "ring") (v "t" &! i 31) (v "x");
            (* every 32 samples: windowed subband sum + quantize *)
            when_
              ((v "t" &! i 31) =! i 31)
              [
                decl_f "sub" (f 0.0);
                for_ "k" (i 0) (i 32)
                  [
                    set "sub"
                      (v "sub"
                      +! ((v "ring" @. v "k") *! (v "win" @. v "k")));
                  ];
                set "chk"
                  ((v "chk" +! call "iabs" [ f2i (v "sub" *! f 32767.0) ])
                  &! i 0x3FFFFFFF);
              ];
          ];
        (* fold in the rare-branch counter *)
        ret ((v "chk" *! i 4 +! getf "Clip" "clipped" (v "cl")) &! i 0x3FFFFFFF);
      ]
    ()

let workload : Workload.t =
  {
    Workload.name = "mpegaudio";
    description =
      "DSP pipeline: polymorphic biquad/gain/clipper filter chain plus a \
       32-tap subband window and quantizer";
    paper_counterpart = "SPECjvm98 mpegaudio";
    build =
      (fun ~size ->
        let p = S.create () in
        define p ~size;
        S.link p ~entry:"main");
    default_size = 1_200;
    bench_size = 16_000;
  }
