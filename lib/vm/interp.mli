(** The interpreter.

    Execution proceeds basic block by basic block, mirroring a
    direct-threaded-inlining interpreter: entering a block is a
    {e dispatch}, and the [on_block] observer is invoked with the block's
    global id at every dispatch — this is the hook the paper's profiler
    attaches to.  Calls and returns produce dispatches too (caller block,
    callee entry block, return-continuation block), so traces can cross
    method boundaries seamlessly.

    Runtime errors (null dereference, bad index, division by zero, …) are
    reported as {!Trapped} outcomes, never OCaml exceptions escaping
    {!run}. *)

type error_kind =
  | Null_pointer
  | Array_bounds
  | Division_by_zero
  | No_such_method
  | Type_confusion
  | Stack_overflow
  | Uncaught_exception
  | Instruction_budget

exception Runtime_error of error_kind * string

val error_kind_to_string : error_kind -> string

type outcome =
  | Finished of Value.t option  (** the entry method's return value *)
  | Trapped of error_kind * string

type result = {
  outcome : outcome;
  instructions : int;
      (** bytecodes executed — the per-instruction dispatch count of an
          ordinary interpreter (Figure 1) *)
  block_dispatches : int;
      (** block entries — the dispatch count of a
          direct-threaded-inlining interpreter (Figure 2) *)
}

val run :
  ?max_instructions:int ->
  ?on_block_state:(Cfg.Layout.gid -> Value.t array -> unit) ->
  Cfg.Layout.t ->
  on_block:(Cfg.Layout.gid -> unit) ->
  result
(** Execute the program from its entry method, invoking [on_block] at
    every basic-block dispatch.  [max_instructions] bounds runaway
    programs via an {!Instruction_budget} trap.

    [on_block_state], when given, is invoked after [on_block] at every
    dispatch with the current frame's local-variable array.  The array is
    the live frame state: observers may read it to cross-check static
    analyses against execution, and may even overwrite slots a liveness
    analysis claims dead (the tests do exactly that).  It costs one
    option branch per dispatch when absent. *)

val run_plain : ?max_instructions:int -> Cfg.Layout.t -> result
(** {!run} with no observer: the unmodified interpreter of Table VI. *)

(** {2 Resumable execution}

    The stepping API underneath {!run}: a handle holds a paused program
    between batches of basic blocks, so several programs can be
    interleaved by one driver (the multi-workload [Session] layer).
    Executing all blocks through a handle is bit-identical to a single
    {!run} — same observer calls, same counters, same outcome. *)

type handle

val start :
  ?max_instructions:int ->
  ?on_block_state:(Cfg.Layout.gid -> Value.t array -> unit) ->
  Cfg.Layout.t ->
  on_block:(Cfg.Layout.gid -> unit) ->
  handle
(** Set up the program at its entry method without executing anything.
    Parameters as in {!run}. *)

val running : handle -> bool
(** Whether there is more program to execute: [false] once the entry
    method has returned or a runtime error trapped the program. *)

val step_blocks : handle -> int -> int
(** [step_blocks h n] executes up to [n] basic blocks (each one dispatch)
    and returns the number actually dispatched — less than [n] only when
    the program finished or trapped.  A runtime error raised mid-block is
    absorbed into the handle's outcome, never re-raised; the trapping
    block counts as dispatched.  Returns [0] once {!running} is false. *)

val finish : handle -> result
(** Execute the remaining program (if any) and return the final result.
    Idempotent once the program has stopped. *)

val result_of : handle -> result
(** The result of a stopped handle without driving it further.
    @raise Invalid_argument if the program is still {!running}. *)

(** {2 State materialization (OSR)}

    A deoptimizing engine must show that abandoning a trace mid-flight
    leaves the interpreter exactly where pure block dispatch would be.
    {!materialize} captures the live continuation at a block boundary;
    because trace dispatch is a pure observational overlay, the
    materialized state of an engine-driven run is equal
    ({!materialized_equal}) to that of a plain run stepped the same
    number of blocks — the OSR machinery checks this at every deopt
    (invariant TL219). *)

type frame_snapshot = {
  fs_method : int;  (** method id *)
  fs_pc : int;
  fs_sp : int;
  fs_locals : Value.t array;  (** copied *)
  fs_stack : Value.t array;  (** live prefix only: [stack.(0 .. sp-1)] *)
}

type materialized = {
  m_frames : frame_snapshot list;  (** innermost first *)
  m_instructions : int;
  m_block : Cfg.Layout.gid option;
      (** the block the innermost frame's pc resolves to; [None] once
          the program has stopped *)
}

val materialize : handle -> materialized
(** Snapshot the interpreter continuation.  Meaningful at block
    boundaries — between {!step_blocks} batches, or from inside an
    [on_block] observer (the observer runs before the block executes, so
    [m_block] is the block just dispatched). *)

val materialized_equal : materialized -> materialized -> bool
(** Control-state equality plus shallow value equality: scalars compare
    structurally, object/array references by shape (class and field
    count / element kind and length) — two independent runs never share
    heap, so reference identity cannot be compared across them. *)

val result_value : result -> Value.t option
(** The returned value.
    @raise Invalid_argument if the program trapped. *)
