module Instr = Bytecode.Instr
module Mthd = Bytecode.Mthd
module Klass = Bytecode.Klass
module Program = Bytecode.Program
module Block = Cfg.Block
module Method_cfg = Cfg.Method_cfg
module Layout = Cfg.Layout

(* The interpreter.

   Execution proceeds basic block by basic block, mirroring a
   direct-threaded-inlining interpreter: entering a block is a *dispatch*,
   and the [on_block] observer is invoked with the block's global id at
   every dispatch — this is the hook the paper's profiler attaches to.
   Calls and returns produce dispatches too (caller block -> callee entry
   block -> return-continuation block), so traces can cross method
   boundaries seamlessly, as in the paper.

   Per-instruction "dispatch" counts for the plain-interpreter comparison
   (Figure 1 vs Figure 2) fall out of the instruction counter. *)

type error_kind =
  | Null_pointer
  | Array_bounds
  | Division_by_zero
  | No_such_method
  | Type_confusion
  | Stack_overflow
  | Uncaught_exception
  | Instruction_budget

exception Runtime_error of error_kind * string

let error_kind_to_string = function
  | Null_pointer -> "null pointer"
  | Array_bounds -> "array index out of bounds"
  | Division_by_zero -> "division by zero"
  | No_such_method -> "no such method"
  | Type_confusion -> "type confusion"
  | Stack_overflow -> "call stack overflow"
  | Uncaught_exception -> "uncaught exception"
  | Instruction_budget -> "instruction budget exhausted"

let die kind fmt =
  Format.kasprintf (fun s -> raise (Runtime_error (kind, s))) fmt

(* A call frame.  The operand stack is a preallocated array with a stack
   pointer; the verifier bounds stack growth statically so [max_stack] is a
   generous fixed cap checked only on push. *)
type frame = {
  meth : Mthd.t;
  locals : Value.t array;
  stack : Value.t array;
  mutable sp : int;
  mutable pc : int;
}

let max_stack = 1024

let max_frames = 4096

type outcome =
  | Finished of Value.t option
  | Trapped of error_kind * string

type result = {
  outcome : outcome;
  instructions : int; (* = per-instruction dispatches, Figure 1 model *)
  block_dispatches : int; (* = per-block dispatches, Figure 2 model *)
}

type state = {
  layout : Layout.t;
  program : Program.t;
  mutable frames : frame list;
  mutable returned : Value.t option;
  mutable instructions : int;
  mutable block_dispatches : int;
  max_instructions : int;
  on_block : Layout.gid -> unit;
  on_block_state : (Layout.gid -> Value.t array -> unit) option;
}

let push fr v =
  if fr.sp >= max_stack then die Stack_overflow "operand stack overflow";
  fr.stack.(fr.sp) <- v;
  fr.sp <- fr.sp + 1

let pop fr =
  if fr.sp = 0 then die Type_confusion "operand stack underflow";
  fr.sp <- fr.sp - 1;
  fr.stack.(fr.sp)

let pop_int fr =
  match pop fr with
  | Value.Vint n -> n
  | v -> die Type_confusion "expected int, got %s" (Value.to_string v)

let pop_float fr =
  match pop fr with
  | Value.Vfloat f -> f
  | v -> die Type_confusion "expected float, got %s" (Value.to_string v)

let pop_obj fr =
  match pop fr with
  | Value.Vobj o -> o
  | Value.Vnull -> die Null_pointer "field access on null"
  | v -> die Type_confusion "expected object, got %s" (Value.to_string v)

let pop_arr fr =
  match pop fr with
  | Value.Varr a -> a
  | Value.Vnull -> die Null_pointer "array access on null"
  | v -> die Type_confusion "expected array, got %s" (Value.to_string v)

let check_bounds (a : Value.arr) i =
  if i < 0 || i >= Array.length a.Value.cells then
    die Array_bounds "index %d, length %d" i (Array.length a.Value.cells)

let new_frame (m : Mthd.t) : frame =
  {
    meth = m;
    locals = Array.make (max 1 m.Mthd.n_locals) (Value.Vint 0);
    stack = Array.make max_stack (Value.Vint 0);
    sp = 0;
    pc = 0;
  }

(* Invoke: pop n_args values off the caller's stack into the callee's
   leading locals (receiver in local 0 for virtual methods). *)
let setup_call st (caller : frame) (callee_m : Mthd.t) =
  if List.length st.frames >= max_frames then
    die Stack_overflow "too many frames";
  let callee = new_frame callee_m in
  for i = callee_m.Mthd.n_args - 1 downto 0 do
    callee.locals.(i) <- pop caller
  done;
  st.frames <- callee :: st.frames;
  callee

let receiver_class st (caller : frame) n_args =
  (* receiver sits below the arguments *)
  let idx = caller.sp - n_args in
  if idx < 0 then die Type_confusion "missing receiver";
  match caller.stack.(idx) with
  | Value.Vobj o -> o.Value.cls
  | Value.Vnull -> die Null_pointer "virtual call on null"
  | v -> die Type_confusion "virtual call on %s" (Value.to_string v)
  [@@warning "-27"]

(* Resolve a virtual call: find any class binding the selector to size the
   argument count.  All bindings share a signature (front-end invariant), so
   we take the arity from the receiver's own binding after peeking at it. *)
let resolve_virtual st (caller : frame) slot : Mthd.t =
  (* We need the arity to find the receiver, and the receiver to find the
     method.  Scan classes once for any binding to learn the arity. *)
  let program = st.program in
  let any_binding =
    let classes = program.Program.classes in
    let n = Array.length classes in
    let rec go i =
      if i >= n then None
      else
        match Klass.method_for_selector classes.(i) ~slot with
        | Some mid -> Some (Program.method_by_id program mid)
        | None -> go (i + 1)
    in
    go 0
  in
  match any_binding with
  | None -> die No_such_method "selector slot %d bound by no class" slot
  | Some proto ->
      let n_args = proto.Mthd.n_args in
      let cls = receiver_class st caller n_args in
      let k = Program.class_by_id program cls in
      (match Klass.method_for_selector k ~slot with
      | Some mid -> Program.method_by_id program mid
      | None ->
          die No_such_method "class %s does not understand %s" k.Klass.name
            (Program.selector_name program slot))

let step_budget st n =
  st.instructions <- st.instructions + n;
  if st.instructions > st.max_instructions then
    die Instruction_budget "exceeded %d instructions" st.max_instructions

(* Execute exactly one basic block from the current frame/pc: one
   dispatch, the observer hooks, the block's instructions, and its
   terminator.  A no-op once the entry method has returned. *)
let exec_block st =
  match st.frames with
  | [] -> ()
  | fr :: outer_frames ->
        let mid = fr.meth.Mthd.id in
        let cfg = Layout.cfg_of_method st.layout ~method_id:mid in
        let b = Method_cfg.block_at_pc cfg fr.pc in
        (* block dispatch *)
        st.block_dispatches <- st.block_dispatches + 1;
        let gid = Layout.gid_at_pc st.layout ~method_id:mid ~pc:fr.pc in
        st.on_block gid;
        (match st.on_block_state with
        | Some f -> f gid fr.locals
        | None -> ());
        let end_pc = Block.end_pc b in
        step_budget st b.Block.len;
        (* straight-line portion *)
        let pc = ref fr.pc in
        let code = fr.meth.Mthd.code in
        while !pc < end_pc do
          let ins = code.(!pc) in
          (match ins with
          | Instr.Iconst n -> push fr (Value.Vint n)
          | Instr.Fconst f -> push fr (Value.Vfloat f)
          | Instr.Aconst_null -> push fr Value.Vnull
          | Instr.Iload n -> push fr fr.locals.(n)
          | Instr.Fload n -> push fr fr.locals.(n)
          | Instr.Aload n -> push fr fr.locals.(n)
          | Instr.Istore n | Instr.Fstore n | Instr.Astore n ->
              fr.locals.(n) <- pop fr
          | Instr.Iinc (n, d) -> (
              match fr.locals.(n) with
              | Value.Vint v -> fr.locals.(n) <- Value.Vint (v + d)
              | v -> die Type_confusion "iinc on %s" (Value.to_string v))
          | Instr.Dup ->
              let v = pop fr in
              push fr v;
              push fr v
          | Instr.Pop -> ignore (pop fr)
          | Instr.Swap ->
              let a = pop fr in
              let b = pop fr in
              push fr a;
              push fr b
          | Instr.Iadd ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr + b))
          | Instr.Isub ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr - b))
          | Instr.Imul ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr * b))
          | Instr.Idiv ->
              let b = pop_int fr in
              if b = 0 then die Division_by_zero "idiv";
              push fr (Value.Vint (pop_int fr / b))
          | Instr.Irem ->
              let b = pop_int fr in
              if b = 0 then die Division_by_zero "irem";
              push fr (Value.Vint (pop_int fr mod b))
          | Instr.Ineg -> push fr (Value.Vint (-pop_int fr))
          | Instr.Iand ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr land b))
          | Instr.Ior ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr lor b))
          | Instr.Ixor ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr lxor b))
          | Instr.Ishl ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr lsl (b land 63)))
          | Instr.Ishr ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr asr (b land 63)))
          | Instr.Iushr ->
              let b = pop_int fr in
              push fr (Value.Vint (pop_int fr lsr (b land 63)))
          | Instr.Fadd ->
              let b = pop_float fr in
              push fr (Value.Vfloat (pop_float fr +. b))
          | Instr.Fsub ->
              let b = pop_float fr in
              push fr (Value.Vfloat (pop_float fr -. b))
          | Instr.Fmul ->
              let b = pop_float fr in
              push fr (Value.Vfloat (pop_float fr *. b))
          | Instr.Fdiv ->
              let b = pop_float fr in
              push fr (Value.Vfloat (pop_float fr /. b))
          | Instr.Fneg -> push fr (Value.Vfloat (-.pop_float fr))
          | Instr.F2i -> push fr (Value.Vint (int_of_float (pop_float fr)))
          | Instr.I2f -> push fr (Value.Vfloat (float_of_int (pop_int fr)))
          | Instr.Fcmp ->
              let b = pop_float fr in
              let a = pop_float fr in
              push fr (Value.Vint (compare a b))
          | Instr.New cid ->
              let k = Program.class_by_id st.program cid in
              let fields =
                Array.map Value.default_of_field_kind k.Klass.field_kinds
              in
              push fr (Value.Vobj { Value.cls = cid; fields })
          | Instr.Getfield (_, slot) ->
              let o = pop_obj fr in
              if slot >= Array.length o.Value.fields then
                die Type_confusion "field slot %d out of range" slot;
              push fr o.Value.fields.(slot)
          | Instr.Putfield (_, slot) ->
              let v = pop fr in
              let o = pop_obj fr in
              if slot >= Array.length o.Value.fields then
                die Type_confusion "field slot %d out of range" slot;
              o.Value.fields.(slot) <- v
          | Instr.Instanceof cid -> (
              match pop fr with
              | Value.Vobj o ->
                  let yes =
                    Klass.is_subclass_of st.program.Program.classes
                      ~sub:o.Value.cls ~super:cid
                  in
                  push fr (Value.Vint (if yes then 1 else 0))
              | Value.Vnull -> push fr (Value.Vint 0)
              | v -> die Type_confusion "instanceof on %s" (Value.to_string v))
          | Instr.Newarray kind ->
              let n = pop_int fr in
              if n < 0 then die Array_bounds "negative array length %d" n;
              push fr
                (Value.Varr
                   {
                     Value.kind;
                     cells = Array.make n (Value.default_of_array_kind kind);
                   })
          | Instr.Iaload | Instr.Faload | Instr.Aaload ->
              let i = pop_int fr in
              let a = pop_arr fr in
              check_bounds a i;
              push fr a.Value.cells.(i)
          | Instr.Iastore ->
              let v = pop_int fr in
              let i = pop_int fr in
              let a = pop_arr fr in
              check_bounds a i;
              a.Value.cells.(i) <- Value.Vint v
          | Instr.Fastore ->
              let v = pop_float fr in
              let i = pop_int fr in
              let a = pop_arr fr in
              check_bounds a i;
              a.Value.cells.(i) <- Value.Vfloat v
          | Instr.Aastore ->
              let v = pop fr in
              let i = pop_int fr in
              let a = pop_arr fr in
              check_bounds a i;
              a.Value.cells.(i) <- v
          | Instr.Arraylength ->
              let a = pop_arr fr in
              push fr (Value.Vint (Array.length a.Value.cells))
          | Instr.Nop -> ()
          (* terminators are handled below; they are always last in a
             block, so reaching them here just ends the straight-line
             phase *)
          | Instr.If_icmp _ | Instr.Ifz _ | Instr.Goto _
          | Instr.Tableswitch _ | Instr.Invokestatic _
          | Instr.Invokevirtual _ | Instr.Return | Instr.Ireturn
          | Instr.Freturn | Instr.Areturn | Instr.Athrow ->
              ());
          (match ins with
          | Instr.If_icmp (c, target) ->
              let b2 = pop_int fr in
              let a = pop_int fr in
              fr.pc <- (if Instr.eval_cond c (compare a b2) then target else !pc + 1);
              pc := end_pc (* leave straight-line loop *)
          | Instr.Ifz (c, target) ->
              let a = pop_int fr in
              fr.pc <- (if Instr.eval_cond c a then target else !pc + 1);
              pc := end_pc
          | Instr.Goto target ->
              fr.pc <- target;
              pc := end_pc
          | Instr.Tableswitch { low; targets; default } ->
              let v = pop_int fr in
              let i = v - low in
              fr.pc <-
                (if i >= 0 && i < Array.length targets then targets.(i)
                 else default);
              pc := end_pc
          | Instr.Invokestatic mid2 ->
              fr.pc <- !pc + 1;
              let callee_m = Program.method_by_id st.program mid2 in
              ignore (setup_call st fr callee_m);
              pc := end_pc
          | Instr.Invokevirtual slot ->
              fr.pc <- !pc + 1;
              let callee_m = resolve_virtual st fr slot in
              ignore (setup_call st fr callee_m);
              pc := end_pc
          | Instr.Athrow ->
              (* unwind: find the innermost covering handler, searching the
                 current frame at the throw pc and callers at their call
                 sites *)
              let exc = pop fr in
              let cls =
                match exc with
                | Value.Vobj o -> o.Value.cls
                | Value.Vnull -> die Null_pointer "throw of null"
                | v -> die Type_confusion "throw of %s" (Value.to_string v)
              in
              let is_subclass ~sub ~super =
                Klass.is_subclass_of st.program.Program.classes ~sub ~super
              in
              let rec unwind frames throw_pc =
                match frames with
                | [] ->
                    die Uncaught_exception "class %s"
                      (Program.class_by_id st.program cls).Klass.name
                | f :: rest -> (
                    match
                      Mthd.handler_for f.meth ~pc:throw_pc ~cls ~is_subclass
                    with
                    | Some h ->
                        st.frames <- frames;
                        f.sp <- 0;
                        push f exc;
                        f.pc <- h.Mthd.h_target
                    | None -> (
                        (* a caller is searched at its call site: the
                           instruction before its stored continuation *)
                        match rest with
                        | caller :: _ -> unwind rest (max 0 (caller.pc - 1))
                        | [] ->
                            die Uncaught_exception "class %s"
                              (Program.class_by_id st.program cls).Klass.name))
              in
              unwind st.frames !pc;
              pc := end_pc
          | Instr.Return ->
              st.frames <- outer_frames;
              if outer_frames = [] then st.returned <- None;
              pc := end_pc
          | Instr.Ireturn | Instr.Freturn | Instr.Areturn ->
              let v = pop fr in
              st.frames <- outer_frames;
              (match outer_frames with
              | caller :: _ -> push caller v
              | [] -> st.returned <- Some v);
              pc := end_pc
          | _ ->
              (* ordinary instruction: advance; if this was the last
                 instruction of a fallthrough block, fr.pc must follow *)
              incr pc;
              if !pc = end_pc then fr.pc <- end_pc)
        done

(* Resumable execution.  A handle owns the interpreter state and absorbs
   a [Runtime_error] raised mid-step into a pending [Trapped] outcome, so
   interleaved drivers (the [Session] layer) never see the exception. *)
type handle = { h_st : state; mutable h_trap : (error_kind * string) option }

let start ?(max_instructions = max_int) ?on_block_state (layout : Layout.t)
    ~(on_block : Layout.gid -> unit) : handle =
  let program = layout.Layout.program in
  let st =
    {
      layout;
      program;
      frames = [ new_frame (Program.entry_method program) ];
      returned = None;
      instructions = 0;
      block_dispatches = 0;
      max_instructions;
      on_block;
      on_block_state;
    }
  in
  { h_st = st; h_trap = None }

let running h = h.h_trap = None && h.h_st.frames <> []

let step_blocks h n =
  let executed = ref 0 in
  (try
     while !executed < n && h.h_trap = None && h.h_st.frames <> [] do
       exec_block h.h_st;
       incr executed
     done
   with Runtime_error (kind, msg) ->
     (* the trapping block was dispatched before it died *)
     incr executed;
     h.h_trap <- Some (kind, msg));
  !executed

let result_of h =
  let outcome =
    match h.h_trap with
    | Some (kind, msg) -> Trapped (kind, msg)
    | None ->
        if h.h_st.frames = [] then Finished h.h_st.returned
        else invalid_arg "Interp.result_of: program still running"
  in
  {
    outcome;
    instructions = h.h_st.instructions;
    block_dispatches = h.h_st.block_dispatches;
  }

let finish h =
  while running h do
    ignore (step_blocks h max_int)
  done;
  result_of h

(* State materialization (OSR).  A deoptimizing engine must show that
   abandoning a trace mid-flight leaves the interpreter exactly where
   pure block dispatch would be.  [materialize] captures the live
   continuation — every frame's method, pc, locals and operand stack —
   at a block boundary; the dispatch overlay never mutates interpreter
   state, so a mismatch here is a hard invariant violation (TL219). *)

type frame_snapshot = {
  fs_method : int;
  fs_pc : int;
  fs_sp : int;
  fs_locals : Value.t array;
  fs_stack : Value.t array; (* live prefix only: stack.(0 .. sp-1) *)
}

type materialized = {
  m_frames : frame_snapshot list; (* innermost first *)
  m_instructions : int;
  m_block : Layout.gid option;
      (* the block the innermost frame's pc resolves to; None once the
         program has stopped (or pc is not a block boundary) *)
}

let snapshot_frame (fr : frame) : frame_snapshot =
  {
    fs_method = fr.meth.Mthd.id;
    fs_pc = fr.pc;
    fs_sp = fr.sp;
    fs_locals = Array.copy fr.locals;
    fs_stack = Array.sub fr.stack 0 fr.sp;
  }

let materialize (h : handle) : materialized =
  let st = h.h_st in
  let m_block =
    match st.frames with
    | [] -> None
    | fr :: _ -> (
        try
          Some
            (Layout.gid_at_pc st.layout ~method_id:fr.meth.Mthd.id ~pc:fr.pc)
        with _ -> None)
  in
  {
    m_frames = List.map snapshot_frame st.frames;
    m_instructions = st.instructions;
    m_block;
  }

(* Cross-run value equality: scalars structurally ([compare] so NaN
   equals itself), references by shape only — two independent runs never
   share heap objects, so identity cannot be compared and deep
   structural comparison could chase cycles. *)
let value_equal (a : Value.t) (b : Value.t) =
  match (a, b) with
  | Value.Vobj x, Value.Vobj y ->
      x.Value.cls = y.Value.cls
      && Array.length x.Value.fields = Array.length y.Value.fields
  | Value.Varr x, Value.Varr y ->
      x.Value.kind = y.Value.kind
      && Array.length x.Value.cells = Array.length y.Value.cells
  | (Value.Vobj _ | Value.Varr _), _ | _, (Value.Vobj _ | Value.Varr _) ->
      false
  | _ -> compare a b = 0

let frame_snapshot_equal (a : frame_snapshot) (b : frame_snapshot) =
  a.fs_method = b.fs_method && a.fs_pc = b.fs_pc && a.fs_sp = b.fs_sp
  && Array.length a.fs_locals = Array.length b.fs_locals
  && Array.for_all2 value_equal a.fs_locals b.fs_locals
  && Array.length a.fs_stack = Array.length b.fs_stack
  && Array.for_all2 value_equal a.fs_stack b.fs_stack

let materialized_equal (a : materialized) (b : materialized) =
  a.m_instructions = b.m_instructions
  && a.m_block = b.m_block
  && List.length a.m_frames = List.length b.m_frames
  && List.for_all2 frame_snapshot_equal a.m_frames b.m_frames

let run ?max_instructions ?on_block_state (layout : Layout.t)
    ~(on_block : Layout.gid -> unit) : result =
  finish (start ?max_instructions ?on_block_state layout ~on_block)

(* Convenience: run with no observer. *)
let run_plain ?max_instructions layout =
  run ?max_instructions layout ~on_block:(fun _ -> ())

let result_value r =
  match r.outcome with
  | Finished v -> v
  | Trapped (kind, msg) ->
      invalid_arg
        (Printf.sprintf "program trapped: %s (%s)"
           (error_kind_to_string kind)
           msg)
