(** Runtime invariant checks over the profiler's data structures — the
    trace/BCG half of the linter.

    Every check states a property the paper's design guarantees by
    construction; a finding therefore means a bug (or a deliberately
    corrupted structure in a test), never a tuning problem.  Codes
    (catalogue in DESIGN.md §12):

    - [TL201] {e error} — a cached trace's completion probability is
      outside [[threshold, 1]]
    - [TL202] {e error} — the entry transition a trace is bound under
      differs from the trace's own {!Trace.entry_key}
    - [TL203] {e error} — an adjacent transition repeats more than twice
      along a trace: the terminal loop was unrolled more than once
    - [TL204] {e error} — a BCG edge weight is outside [[1, counter_max]]
      (16-bit saturating counters; zero-weight edges are pruned at decay)
    - [TL205] {e error} — a node's [best] inline cache is not a live
      maximal-weight edge
    - [TL206] {e error} — decay bookkeeping out of range: [since_decay]
      not in [[0, decay_period)], [delay_left] negative or larger than the
      configured delay, or [delay_left > 0] not matching the
      [Newly_created] state
    - [TL207] {e error} — a correlation along a live trace is outside
      [[0, 1]], so the prefix completion probabilities are not monotone
      non-increasing
    - [TL208] {e error} — edge/pred adjacency is asymmetric (an edge's
      source is missing from its target's predecessor list, or vice
      versa)
    - [TL209] {e error} — a cached trace's block count is outside
      [[min_trace_blocks, max_trace_blocks]]
    - [TL210] {e error} — a trace's entry context or one of its block
      gids is outside the program layout's [[0, n_blocks)] range: the
      trace body is corrupted
    - [TL211] {e error} — a trace's recorded per-block instruction count
      disagrees with the layout's static count for that block

    The checks are read-only and allocation-light but walk every node /
    trace they are given; {!Config.t.debug_checks} runs them at
    trace-construction and decay boundaries, which is measurably slower
    than a production run (see the bench). *)

val check_node : ?context:string -> Bcg.t -> Bcg.node -> Analysis.Diag.t list
(** [TL204] [TL205] [TL206] [TL208] for one node. *)

val check_bcg : ?context:string -> Bcg.t -> Analysis.Diag.t list
(** {!check_node} over every node. *)

val check_trace :
  ?context:string ->
  ?bcg:Bcg.t ->
  ?layout:Cfg.Layout.t ->
  Config.t ->
  Trace.t ->
  Analysis.Diag.t list
(** [TL201] [TL203] [TL209], plus [TL207] when a BCG is supplied (the
    correlation walk skips transitions whose node or edge has decayed
    away) and [TL210] [TL211] when a layout is supplied — the two checks
    that catch a corrupted trace body. *)

val check_cache :
  ?context:string ->
  ?bcg:Bcg.t ->
  ?layout:Cfg.Layout.t ->
  Config.t ->
  Trace_cache.t ->
  Analysis.Diag.t list
(** [TL202] over every live entry binding plus {!check_trace} over every
    live trace. *)

val check_all :
  ?context:string ->
  ?layout:Cfg.Layout.t ->
  Config.t ->
  bcg:Bcg.t ->
  cache:Trace_cache.t ->
  Analysis.Diag.t list
(** {!check_bcg} followed by {!check_cache}: the full sweep the engine
    runs under {!Config.t.debug_checks}, and [repro_cli lint] runs after
    a workload's profiled execution. *)
