(** The complete system: VM + profiler + trace cache (paper §4).

    The VM's block-dispatch stream drives the profiler; profiler signals
    drive trace reconstruction; and the trace cache overlays trace
    dispatch onto the stream.

    The engine is a thin shell over the {!Backend} layer: it owns one
    [Backend.ctx] (the dispatch state every strategy shares) and selects
    a dispatch backend per observed block from the {!Health} ladder —
    [Full_tracing] maps to [Backend_trace] (or [Backend_profile] when
    {!Config.Profile.build_traces} is off), [Profiling_only] to
    [Backend_profile], [Interp_only] to [Backend_interp] — so walking
    the degradation ladder {e is} switching backends
    ({!backend_switches}).  A backend can also be pinned at {!create}.

    Dispatch accounting mirrors the modified SableVM:

    - a block dispatched outside any trace executes the profiler hook and
      counts as one {e block dispatch};
    - a dispatch whose transition enters a trace executes the hook once
      and counts as one {e trace dispatch}; the trace's interior blocks
      are inlined — no dispatch, no hook;
    - on a side exit or completion the profiler context is
      resynchronized to the last two executed blocks and normal
      dispatching resumes.

    Tracing is a pure overlay: results and instruction counts are
    identical with and without it.

    {2 Observing the engine}

    The engine type is abstract.  Its accounting is read through the
    accessor functions below or, end-of-run, through {!stats}; its
    lifecycle is observable in two richer ways:

    - {!events} — the typed {!Events} stream every component publishes
      on ([Signal_raised], [Trace_constructed], [Trace_entered],
      [Side_exit], [Trace_completed], [Trace_replaced], [Decay_pass],
      [Phase_snapshot]).  Subscribe before driving the engine; a run
      with no subscribers pays one predictable branch per emission
      point and allocates nothing.
    - {!metrics} — a {!Metrics} registry whose gauges poll the engine's
      counters, snapshotted every {!Config.t.snapshot_period} dispatches
      into a phase-analysis time series. *)

type t

type backend_kind = Interp | Profile | Trace | Microir
(** The dispatch strategies, in ladder order (bottom up).  [Microir] is
    [Trace] with the compiled micro-IR tier ({!Config.Tier}); the
    ladder's top rung selects it when the tier is enabled. *)

val backend_kind_name : backend_kind -> string
(** ["interp"] / ["profile"] / ["trace"] / ["microir"]. *)

val backend_kind_of_string : string -> backend_kind option

val implementation : backend_kind -> (module Backend.S)

val backends : backend_kind list
(** Every registered strategy: [[Interp; Profile; Trace; Microir]]. *)

val create :
  ?config:Config.t ->
  ?events:Events.t ->
  ?cache:Trace_cache.t ->
  ?backend:backend_kind ->
  Cfg.Layout.t ->
  t
(** [events] is the stream the engine and its components publish on; a
    fresh (disabled) stream is created when omitted.  Subscribe to the
    stream {e before} driving the engine to capture the full timeline.

    [cache] injects an existing trace cache instead of creating a
    private one — the [Session] layer uses this to share traces between
    engines running the same layout.  The injected cache keeps the
    capacity/healing parameters of its creator.
    @raise Invalid_argument if the cache was built over another layout.

    [backend] pins the dispatch strategy: the health ladder still runs
    its accounting but the strategy is never re-selected.  When omitted
    the backend follows the ladder. *)

val on_block : t -> Cfg.Layout.gid -> unit
(** The VM observer: feed one dispatched block.  Exposed so the engine
    can be driven by any block stream (the baselines and tests do). *)

val stats : t -> vm_result:Vm.Interp.result -> wall_seconds:float -> Stats.t

(** {2 Accessors} *)

val config : t -> Config.t

val layout : t -> Cfg.Layout.t

val profiler : t -> Profiler.t

val cache : t -> Trace_cache.t

val events : t -> Events.t

val metrics : t -> Metrics.t
(** The registry created by the engine; its snapshot series is the
    [Phase_snapshot] event payloads, also readable here after a run. *)

val active_trace : t -> Trace.t option
(** The trace currently being followed, if any (e.g. when the program
    trapped mid-trace). *)

val block_dispatches : t -> int

val trace_dispatches : t -> int

val total_dispatches : t -> int
(** [block_dispatches + trace_dispatches]. *)

val traces_entered : t -> int

val traces_completed : t -> int

val completed_blocks : t -> int

val partial_blocks : t -> int

val completed_instrs : t -> int

val partial_instrs : t -> int

val traces_constructed : t -> int

val builder_reuses : t -> int

val chained_entries : t -> int

val guards_checked : t -> int
(** In-trace guard positions actually compared against the executed
    block so far. *)

val guards_elided : t -> int
(** Guard positions skipped on a [Trace_prover] proof ([Trace.pruned]
    verdicts) while following traces. *)

val guards_pruned : t -> int
(** Static pruning verdicts derived at trace installation
    ({!Config.t.prune_guards}); [0] when pruning is off. *)

val invariant_violations : t -> int
(** Findings reported by the {!Config.t.debug_checks} sweeps so far;
    always [0] when the flag is off, and [0] on a healthy run regardless.
    Each finding is also published as an [Invariant_violation] event. *)

val health : t -> Health.t
(** The degradation ladder ({!Config.t.self_heal}); stays at
    [Full_tracing] when self-healing is off. *)

val health_level : t -> Health.level

val faults_injected : t -> int
(** Faults the {!Config.t.fault_spec} schedule actually applied so far. *)

val healed_nodes : t -> int
(** BCG nodes the self-healing sweeps repaired in place. *)

(** {2 Deep observability} *)

val spans : t -> Spans.t option
(** The causal span recorder; [None] unless [Config.Obs.spans] was on at
    creation.  Call [Spans.end_all] before exporting a finished run. *)

val flightrec : t -> Flightrec.t option
(** The flight recorder (black box); [None] only when
    [Config.Obs.flightrec_capacity] was 0 at creation.  Its intake taps
    the event stream out of band, so an armed recorder does not count
    as an event subscriber.  Install a dump sink with
    [Flightrec.set_on_dump] to capture postmortems. *)

val ledger : t -> Ledger.t option
(** The decision ledger; [None] when [Config.Obs.ledger] was off at
    creation. *)

val attr_self : t -> int array
(** Per-gid dispatches outside any trace; [[||]] unless
    [Config.Obs.attribution] was on.  Sums to [block_dispatches]. *)

val attr_inlined : t -> int array
(** Per-gid block executions inlined inside traces; [[||]] unless
    attribution was on.  Sums to
    [completed_blocks + partial_blocks + inflight_matched_blocks]. *)

val inflight_matched_blocks : t -> int
(** Blocks matched so far by the currently active trace (0 when no trace
    is active) — the attribution remainder of a run that ends
    mid-trace. *)

val trace_len_hist : t -> Metrics.histogram
(** Blocks per executed (completed) trace. *)

val exit_distance_hist : t -> Metrics.histogram
(** Blocks matched before a side exit (trace completion distance). *)

val build_len_hist : t -> Metrics.histogram
(** Transitions per maximum-likelihood builder walk. *)

val backoff_hist : t -> Metrics.histogram
(** Finite quarantine backoff durations, in dispatch ticks. *)

val deopt_residue_hist : t -> Metrics.histogram
(** Trace positions abandoned past each OSR deopt point. *)

(** {2 On-stack replacement}

    All zero / no-ops when {!Config.Osr} is off. *)

val deopts : t -> int
(** OSR deoptimizations taken so far (organic guard failures, FT008
    flips and mid-flight condemnation cut-overs). *)

val deopt_residue_blocks : t -> int
(** Trace positions abandoned past the deopt points, summed. *)

val osr_promotions : t -> int
(** Hot loops promoted into traces mid-iteration. *)

val osr_entries : t -> int
(** Promoted traces entered on their armed back-edge. *)

val osr_state_checks : t -> int
(** Deopts that could materialize interpreter state (the engine was
    driven through {!drive} or {!attach}ed to a handle). *)

val osr_state_mismatches : t -> int
(** TL219 findings: materialized interpreter state disagreed with the
    deopt resume block.  Always [0] on a healthy engine. *)

val pin_refusals : t -> int
(** Quarantine attempts refused because the target trace was executing
    (pinned) at that moment ({!Trace_cache.n_pin_refusals}). *)

(** {2 The compiled tier}

    All zero when {!Config.Tier} is off. *)

val traces_compiled : t -> int
(** Promotions to the compiled micro-IR tier (runtime and
    restore-time). *)

val tier_demotions : t -> int
(** Compiled slots lost under [compile_budget]. *)

val compiled_entries : t -> int
(** Trace entries that ran on the compiled tier. *)

val mi_positions : t -> int
(** Trace positions followed on the compiled tier. *)

val mi_ops : t -> int
(** Micro-ops those positions dispatched. *)

val mi_fused : t -> int
(** Superinstructions among the dispatched micro-ops. *)

val mi_src_instrs : t -> int
(** Source instructions the same positions dispatch under
    [Backend_trace] — the reduction baseline. *)

val demote_refusals : t -> int
(** Budget demotions refused because the compiled trace was executing
    ({!Trace_cache.n_demote_refusals}). *)

val arm_guard_flip : t -> pos:int -> unit
(** Arm one FT008 guard flip at trace position [pos] directly
    ({!Faults.arm_flip}), bypassing the probabilistic schedule — the
    deopt-at-every-position tests drive this.
    @raise Invalid_argument if [pos < 1]. *)

val debug_sweep : t -> unit
(** Run one invariant sweep ({!Backend.run_debug_checks}) on demand,
    outside the scheduled decay/construction boundaries — exposed so
    tests can condemn a corrupted trace {e while it is executing} and
    observe the mid-flight cut-over. *)

val attach : t -> Vm.Interp.handle -> unit
(** Point the OSR state-materialization hook at the live interpreter
    handle; {!drive} does this automatically, external drivers
    ([Session], tests stepping a handle themselves) call it once after
    [Vm.Interp.start].  No-op when OSR is off. *)

(** {2 Backend selection} *)

val backend_kind : t -> backend_kind
(** The strategy currently dispatching. *)

val backend : t -> (module Backend.S)

val backend_name : t -> string

val backend_pinned : t -> bool
(** Whether the backend was pinned at {!create}. *)

val backend_switches : t -> int
(** Strategy changes over the run so far — how often the health ladder
    actually moved the engine to a different backend.  Always [0] when
    pinned. *)

(** {2 Warm starts} *)

val snapshot : t -> string
(** The engine's profile state — the profiler's BCG plus the live trace
    cache — as one {!Persist}-encoded binary snapshot, stamped for this
    engine's layout.  Typically taken at end of run and fed to
    {!restore} in a later process. *)

type restore_info = {
  restored_traces : int;
  restored_blocks : int;  (** live cache blocks after the restore *)
  restored_bcg_nodes : int;
  restored_bcg_edges : int;
  recompiled_traces : int;
      (** traces re-lowered onto the compiled tier from the restored
          heat ([Tier.recompile_restored]); [0] with the tier off *)
}

val restore : t -> string -> (restore_info, Persist.error) result
(** Validate and install a {!snapshot} into a freshly created engine,
    before it is driven.  On success the BCG and trace cache resume
    where the snapshot left them and a [Cache_restored] event is
    emitted; on [Error] nothing was installed, {!snapshots_rejected} is
    bumped and a [Snapshot_rejected] event is emitted.  Because tracing
    is a pure overlay, a warm-started run produces results bit-identical
    to a cold one.
    @raise Invalid_argument if this engine was already driven (its BCG
    is non-empty). *)

val snapshots_rejected : t -> int
(** Warm-start loads this engine refused (also a metrics gauge). *)

(** {2 Running} *)

type run_result = {
  engine : t;
  vm_result : Vm.Interp.result;
  run_stats : Stats.t;
}

val drive : ?max_instructions:int -> t -> run_result
(** Execute the engine's program through {!on_block} and collect
    statistics — {!create} (optionally {!restore}) then [drive] is the
    warm-start flow. *)

val run :
  ?config:Config.t ->
  ?events:Events.t ->
  ?max_instructions:int ->
  ?backend:backend_kind ->
  Cfg.Layout.t ->
  run_result
(** {!create} + {!drive}: execute the program under the full system and
    collect statistics.  [backend] pins the dispatch strategy as in
    {!create}. *)
