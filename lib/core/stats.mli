(** The dependent values of the paper's evaluation (§5.2), and the raw
    counts they derive from. *)

type t = {
  instructions : int;
      (** bytecodes executed — the Figure-1 per-instruction dispatch
          count *)
  block_dispatches : int;  (** dispatches outside traces (profiled) *)
  trace_dispatches : int;  (** trace entries (one profiler hook each) *)
  traces_entered : int;
  traces_completed : int;
  completed_blocks : int;
      (** sum over completion events of the trace's block count *)
  partial_blocks : int;  (** blocks executed by partially executed traces *)
  completed_instrs : int;
      (** instructions executed by completed traces *)
  partial_instrs : int;
      (** instructions executed by partially executed traces *)
  signals : int;
  traces_constructed : int;
  traces_replaced : int;
  traces_live : int;
  static_traces : int;
      (** distinct traces that completed at least once *)
  static_blocks : int;  (** their total length in blocks *)
  bcg_nodes : int;
  bcg_edges : int;
  ic_predictions : int;  (** profiler inline-cache hits *)
  chained_entries : int;
      (** trace entries directly following another trace's completion *)
  guards_checked : int;
      (** trace-position guards actually compared against the executed
          block during dispatch *)
  guards_elided : int;
      (** guard positions skipped because [Trace_prover] proved them
          implied ([Trace.pruned] verdicts) *)
  guards_pruned : int;
      (** static pruning verdicts derived at install time, summed over
          constructed traces *)
  invariant_violations : int;
      (** findings of the {!Config.t.debug_checks} sweeps *)
  faults_injected : int;  (** faults the injector actually applied *)
  traces_quarantined : int;
      (** condemnations recorded (an entry condemned twice counts twice) *)
  traces_evicted : int;  (** capacity / allocation-pressure evictions *)
  traces_blacklisted : int;  (** entries quarantined permanently *)
  failed_installs : int;  (** injected installation failures consumed *)
  healed_nodes : int;  (** BCG nodes repaired in place *)
  health_demotions : int;
  health_promotions : int;
  final_health : int;
      (** {!Health.level_rank} at end of run: [0] = full tracing *)
  deopts : int;
      (** OSR mid-trace deoptimizations taken ({!Config.Osr}); [0] with
          OSR off *)
  deopt_residue_blocks : int;
      (** trace positions abandoned past the deopt points, summed *)
  osr_promotions : int;  (** hot loops promoted mid-iteration *)
  osr_entries : int;
      (** promoted traces entered on their armed back-edge *)
  traces_compiled : int;
      (** promotions to the compiled micro-IR tier ({!Config.Tier});
          [0] with the tier off *)
  tier_demotions : int;
      (** compiled slots lost under [compile_budget] *)
  compiled_entries : int;
      (** trace entries that ran on the compiled tier *)
  mi_positions : int;
      (** trace positions followed on the compiled tier *)
  mi_ops : int;  (** micro-ops those positions dispatched *)
  mi_fused : int;  (** superinstructions among them *)
  mi_src_instrs : int;
      (** source bytecode instructions the same positions would have
          dispatched under [Backend_trace] — the baseline of the
          dispatch-cost reduction *)
  wall_seconds : float;
}

val zero : t

type derived = {
  total_dispatches : int;
      (** dispatches under the trace-dispatch model: blocks outside
          traces plus one per trace entry *)
  trace_events : int;  (** signals plus traces constructed *)
  avg_trace_length : float;  (** Table I *)
  dynamic_trace_length : float;
  coverage_completed : float;  (** Table II *)
  coverage_total : float;
  completion_rate : float;  (** Table III *)
  dispatches_per_signal : float;  (** Table IV *)
  trace_event_interval : float;  (** Table V *)
  linking_rate : float;
  dispatch_reduction : float;
  quarantine_rate : float;
      (** condemnations per constructed trace — how much of the built
          population chaos claimed *)
  eviction_rate : float;  (** capacity evictions per constructed trace *)
  guard_elision_rate : float;
      (** fraction of in-trace guard positions elided by proof:
          elided / (checked + elided) *)
  guards_per_kinstr : float;
      (** guards actually checked per 1000 executed instructions — the
          dynamic cost pruning attacks *)
  deopt_rate : float;
      (** OSR deoptimizations per trace entry — how often a followed
          trace was abandoned mid-flight *)
  deopt_residue : float;
      (** average trace positions abandoned past the deopt point *)
  mi_ops_per_position : float;
      (** micro-ops dispatched per followed trace position on the
          compiled tier *)
  mi_src_per_position : float;
      (** source instructions per position — the [Backend_trace]
          baseline for the same positions *)
  mi_dispatch_reduction : float;
      (** [1 - mi_ops/mi_src_instrs]: the fraction of per-position
          dispatch work the lowered body removes *)
  mi_fused_share : float;
      (** fraction of dispatched micro-ops that are superinstructions *)
}
(** Every dependent value of the evaluation, computed together.  The
    field names shadow the projection functions below: tables, {!pp} and
    the exporters all read from one {!derived} computation, so they
    cannot drift apart. *)

val derived : t -> derived

val total_dispatches : t -> int
(** Dispatches under the trace-dispatch model: blocks outside traces plus
    one per trace entry. *)

val avg_trace_length : t -> float
(** Average executed trace length in basic blocks, one term per distinct
    trace that ever completed (Table I). *)

val dynamic_trace_length : t -> float
(** Completion-event-weighted average length: what the dispatch stream
    actually executes; dominated by the hottest traces. *)

val coverage_completed : t -> float
(** Fraction of the instruction stream executed by traces that ran to
    completion (Table II). *)

val coverage_total : t -> float
(** Coverage counting partially executed traces too — the paper's 90.7%
    vs. 87.1% distinction. *)

val completion_rate : t -> float
(** Dynamic trace completion rate: completed / entered (Table III). *)

val dispatches_per_signal : t -> float
(** Dispatches per state-change signal (Table IV reports thousands). *)

val trace_events : t -> int
(** Signals plus traces constructed. *)

val trace_event_interval : t -> float
(** Dispatches per trace event (Table V reports thousands). *)

val linking_rate : t -> float
(** Fraction of trace entries chaining directly from a completion — the
    dispatch-level analogue of Dynamo's trace linking. *)

val dispatch_reduction : t -> float
(** How many block-model dispatches each trace-model dispatch replaces. *)

val quarantine_rate : t -> float
(** Condemnations per constructed trace. *)

val eviction_rate : t -> float
(** Capacity evictions per constructed trace. *)

val guard_elision_rate : t -> float
(** Fraction of in-trace guard positions elided by proof. *)

val guards_per_kinstr : t -> float
(** Guards actually checked per 1000 executed instructions. *)

val deopt_rate : t -> float
(** OSR deoptimizations per trace entry. *)

val deopt_residue : t -> float
(** Average trace positions abandoned past the deopt point. *)

val mi_ops_per_position : t -> float
(** Micro-ops dispatched per followed position on the compiled tier. *)

val mi_src_per_position : t -> float
(** Source instructions per position for the same positions. *)

val mi_dispatch_reduction : t -> float
(** Fraction of per-position dispatch work the lowered body removes. *)

val mi_fused_share : t -> float
(** Fraction of dispatched micro-ops that are superinstructions. *)

val pp : Format.formatter -> t -> unit
(** The resilience counters are rendered only when at least one of them
    is non-zero, so a healthy run's output is unchanged. *)
