(* The versioned, checksummed binary snapshot format for warm starts.

   A snapshot carries the flattened BCG ([Bcg.node_snap]) and the live
   trace cache ([Trace_cache.entry_snap]) behind a fixed header:

     offset  size  field
          0     8  magic "TCSNAP01"
          8     4  format version (u32 LE)
         12    16  layout stamp (MD5 of the program layout)
         28     8  payload length (u64 LE)
         36    16  payload checksum (MD5)
         52     n  payload

   The header is validated outermost-first — magic, version, layout
   stamp, length, checksum — and the payload is only parsed once every
   header check has passed, so a snapshot from a different build of the
   format, a different program, or a corrupted file is rejected with a
   typed [error] before any value is constructed: decoding never
   half-loads.  Payload integers are signed 64-bit little-endian; floats
   travel as their IEEE-754 bit pattern.  Both halves of the payload are
   written in the canonical order their [snapshot] functions produce
   (nodes by (x, y), edges by z, cache entries by entry key), so
   encode → decode → encode is bit-identical. *)

let snapshot_version = 1

let magic = "TCSNAP01"

let header_len = 8 + 4 + 16 + 8 + 16

type error =
  | Truncated of { expected : int; got : int }
  | Bad_magic
  | Version_mismatch of { got : int; expected : int }
  | Layout_mismatch of { got : string; expected : string }
  | Checksum_mismatch
  | Malformed of string

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated snapshot: expected %d bytes, got %d" expected
        got
  | Bad_magic -> "bad magic: not a trace-cache snapshot"
  | Version_mismatch { got; expected } ->
      Printf.sprintf "snapshot format version %d, this build reads %d" got
        expected
  | Layout_mismatch { got; expected } ->
      Printf.sprintf "snapshot is for a different program layout (%s, want %s)"
        got expected
  | Checksum_mismatch -> "payload checksum mismatch: snapshot is corrupted"
  | Malformed what -> Printf.sprintf "malformed payload: %s" what

(* The layout stamp ties a snapshot to the exact program it was profiled
   over: gids are meaningless under any other layout.  The fingerprint
   covers the full disassembly plus the block numbering. *)
let layout_stamp (layout : Cfg.Layout.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Bytecode.Disasm.program_to_string layout.program);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int layout.n_blocks);
  Array.iter
    (fun len ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int len))
    layout.instr_len;
  Digest.string (Buffer.contents buf)

type snapshot = {
  bcg_nodes : Bcg.node_snap list;
  cache_entries : Trace_cache.entry_snap list;
}

(* Encoding *)

let put_int buf n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Buffer.add_bytes buf b

let put_float buf f =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.bits_of_float f);
  Buffer.add_bytes buf b

let state_tag = function
  | State.Unique -> 0
  | State.Strongly_correlated -> 1
  | State.Weakly_correlated -> 2
  | State.Newly_created -> 3

let state_of_tag = function
  | 0 -> Some State.Unique
  | 1 -> Some State.Strongly_correlated
  | 2 -> Some State.Weakly_correlated
  | 3 -> Some State.Newly_created
  | _ -> None

let encode_payload (s : snapshot) =
  let buf = Buffer.create 65536 in
  put_int buf (List.length s.bcg_nodes);
  List.iter
    (fun (n : Bcg.node_snap) ->
      put_int buf n.Bcg.ns_x;
      put_int buf n.Bcg.ns_y;
      put_int buf n.Bcg.ns_exec_total;
      put_int buf n.Bcg.ns_delay_left;
      put_int buf n.Bcg.ns_since_decay;
      put_int buf (state_tag n.Bcg.ns_state);
      put_int buf n.Bcg.ns_best_at_recheck;
      put_int buf (List.length n.Bcg.ns_edges);
      List.iter
        (fun (z, w) ->
          put_int buf z;
          put_int buf w)
        n.Bcg.ns_edges)
    s.bcg_nodes;
  put_int buf (List.length s.cache_entries);
  List.iter
    (fun (e : Trace_cache.entry_snap) ->
      put_int buf e.Trace_cache.snap_first;
      put_int buf (Array.length e.Trace_cache.snap_blocks);
      Array.iter (put_int buf) e.Trace_cache.snap_blocks;
      put_float buf e.Trace_cache.snap_prob;
      put_int buf e.Trace_cache.snap_heat)
    s.cache_entries;
  Buffer.contents buf

let encode ~(layout : Cfg.Layout.t) (s : snapshot) =
  let payload = encode_payload s in
  let buf = Buffer.create (header_len + String.length payload) in
  Buffer.add_string buf magic;
  let b4 = Bytes.create 4 in
  Bytes.set_int32_le b4 0 (Int32.of_int snapshot_version);
  Buffer.add_bytes buf b4;
  Buffer.add_string buf (layout_stamp layout);
  put_int buf (String.length payload);
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Decoding.  A cursor over the checksummed payload; running off its end
   or failing a range check raises [Fail], mapped to the typed error. *)

exception Fail of error

let fail e = raise (Fail e)

type cursor = { data : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.data then
    fail (Malformed "payload ends mid-record")

let get_int c =
  need c 8;
  let v = Int64.to_int (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_float c =
  need c 8;
  let v = Int64.float_of_bits (String.get_int64_le c.data c.pos) in
  c.pos <- c.pos + 8;
  v

let get_count c ~what ~max =
  let n = get_int c in
  if n < 0 || n > max then fail (Malformed (Printf.sprintf "bad %s count" what));
  n

let get_gid c ~n_blocks ~what =
  let g = get_int c in
  if g < 0 || g >= n_blocks then
    fail (Malformed (Printf.sprintf "%s out of range" what));
  g

let decode_payload ~(layout : Cfg.Layout.t) data : snapshot =
  let c = { data; pos = 0 } in
  let n_blocks = layout.n_blocks in
  (* a node or entry is at least 8 bytes of payload each, so the byte
     length bounds every count — a hostile count cannot force a huge
     allocation *)
  let max_items = String.length data / 8 in
  let n_nodes = get_count c ~what:"node" ~max:max_items in
  let nodes =
    List.init n_nodes (fun _ ->
        let ns_x = get_gid c ~n_blocks ~what:"node x" in
        let ns_y = get_gid c ~n_blocks ~what:"node y" in
        let ns_exec_total = get_int c in
        if ns_exec_total < 0 then fail (Malformed "negative exec_total");
        let ns_delay_left = get_int c in
        if ns_delay_left < 0 then fail (Malformed "negative delay_left");
        let ns_since_decay = get_int c in
        if ns_since_decay < 0 then fail (Malformed "negative since_decay");
        let ns_state =
          match state_of_tag (get_int c) with
          | Some s -> s
          | None -> fail (Malformed "unknown state tag")
        in
        let best = get_int c in
        if best < -1 || best >= n_blocks then
          fail (Malformed "best_at_recheck out of range");
        let n_edges = get_count c ~what:"edge" ~max:max_items in
        let ns_edges =
          List.init n_edges (fun _ ->
              let z = get_gid c ~n_blocks ~what:"edge successor" in
              let w = get_int c in
              if w < 1 then fail (Malformed "edge weight < 1");
              (z, w))
        in
        {
          Bcg.ns_x;
          ns_y;
          ns_exec_total;
          ns_delay_left;
          ns_since_decay;
          ns_state;
          ns_best_at_recheck = best;
          ns_edges;
        })
  in
  (* every edge must target a node carried by the same snapshot, or
     [Bcg.restore] would have dangling successors *)
  let node_keys = Hashtbl.create (List.length nodes) in
  List.iter
    (fun (n : Bcg.node_snap) ->
      Hashtbl.replace node_keys ((n.Bcg.ns_x * n_blocks) + n.Bcg.ns_y) ())
    nodes;
  List.iter
    (fun (n : Bcg.node_snap) ->
      List.iter
        (fun (z, _) ->
          if not (Hashtbl.mem node_keys ((n.Bcg.ns_y * n_blocks) + z)) then
            fail (Malformed "edge targets a node absent from the snapshot"))
        n.Bcg.ns_edges)
    nodes;
  let n_entries = get_count c ~what:"cache entry" ~max:max_items in
  let entries =
    List.init n_entries (fun _ ->
        let snap_first = get_gid c ~n_blocks ~what:"entry first" in
        let len = get_count c ~what:"entry block" ~max:max_items in
        if len < 1 then fail (Malformed "empty trace block sequence");
        let snap_blocks =
          Array.init len (fun _ -> get_gid c ~n_blocks ~what:"trace block")
        in
        let snap_prob = get_float c in
        if not (snap_prob >= 0.0 && snap_prob <= 1.0) then
          fail (Malformed "completion probability out of [0, 1]");
        let snap_heat = get_int c in
        if snap_heat < 0 then fail (Malformed "negative heat");
        { Trace_cache.snap_first; snap_blocks; snap_prob; snap_heat })
  in
  if c.pos <> String.length data then
    fail (Malformed "trailing bytes after the last record");
  { bcg_nodes = nodes; cache_entries = entries }

let decode ~(layout : Cfg.Layout.t) data : (snapshot, error) result =
  try
    let len = String.length data in
    if len < header_len then fail (Truncated { expected = header_len; got = len });
    if String.sub data 0 8 <> magic then fail Bad_magic;
    let version = Int32.to_int (String.get_int32_le data 8) in
    if version <> snapshot_version then
      fail (Version_mismatch { got = version; expected = snapshot_version });
    let stamp = String.sub data 12 16 in
    let expected_stamp = layout_stamp layout in
    if stamp <> expected_stamp then
      fail
        (Layout_mismatch
           {
             got = Digest.to_hex stamp;
             expected = Digest.to_hex expected_stamp;
           });
    let payload_len = Int64.to_int (String.get_int64_le data 28) in
    if payload_len < 0 then fail (Malformed "negative payload length");
    if len < header_len + payload_len then
      fail (Truncated { expected = header_len + payload_len; got = len });
    if len > header_len + payload_len then
      fail (Malformed "trailing bytes after the payload");
    let checksum = String.sub data 36 16 in
    let payload = String.sub data header_len payload_len in
    if Digest.string payload <> checksum then fail Checksum_mismatch;
    Ok (decode_payload ~layout payload)
  with Fail e -> Error e
