(** Flat register-based micro-IR for hot traces.

    The stack bytecode of a trace's blocks is converted to straight-line
    register code: every operand-stack push allocates a virtual register
    identified by its (epoch, stack depth) at push time, where the epoch
    increments at each call/return/throw barrier.  Guards — the
    per-position block checks trace dispatch performs — are first-class
    IR ops, which lets a fusion pass combine a block-ending compare with
    the guard it feeds (one superinstruction) and adjacent local-load +
    integer-arithmetic pairs (another).

    Lowering constant-folds with trace-local constants plus an optional
    oracle of {!Analysis.Constprop} block-entry facts, forwards locals
    through stores, and eliminates dead registers and dead stores (the
    trailing-store license mirrors {!Trace_optimizer}: the caller proves
    a slot dead at the trace seam via {!Analysis.Liveness}).

    A lowered body is derived state: never persisted, never executed —
    {!Vm.Interp} always runs the real bytecode and backends only
    observe.  The body is what the compiled tier accounts dispatch
    against and what {!Trace_prover} re-derives to cross-check (TL220). *)

type reg = int

type cval =
  | Cint of int
  | Cfloat of float
  | Cnull

type iop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ushr

type fop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type call_target =
  | Static of int  (** method id *)
  | Virtual of int  (** selector slot *)

type ret_kind =
  | Rvoid
  | Rint
  | Rfloat
  | Rref

type op =
  | Const of { dst : reg; v : cval }
  | Move of { dst : reg; src : reg }
  | Iarith of { op : iop; dst : reg; a : reg; b : reg }
  | Farith of { op : fop; dst : reg; a : reg; b : reg }
  | Ineg of { dst : reg; src : reg }
  | Fneg of { dst : reg; src : reg }
  | F2i of { dst : reg; src : reg }
  | I2f of { dst : reg; src : reg }
  | Fcmp of { dst : reg; a : reg; b : reg }
  | Load of { dst : reg; slot : int }
  | Store of { slot : int; src : reg }
  | Inc of { slot : int; delta : int }
  | Getfield of { dst : reg; obj : reg; cid : int; slot : int }
  | Putfield of { obj : reg; src : reg; cid : int; slot : int }
  | New_obj of { dst : reg; cid : int }
  | Instance_of of { dst : reg; src : reg; cid : int }
  | New_array of { dst : reg; kind : Bytecode.Instr.array_kind; len : reg }
  | Array_load of {
      dst : reg;
      arr : reg;
      idx : reg;
      kind : Bytecode.Instr.array_kind;
    }
  | Array_store of {
      arr : reg;
      idx : reg;
      src : reg;
      kind : Bytecode.Instr.array_kind;
    }
  | Array_len of { dst : reg; src : reg }
  | Branch of { cond : Bytecode.Instr.cond; a : reg; b : reg }
  | Branchz of { cond : Bytecode.Instr.cond; src : reg }
  | Switch of { src : reg }
  | Call of { target : call_target }
  | Ret of ret_kind
  | Throw of { src : reg }
  | Guard of { pos : int; expect : Cfg.Layout.gid }
  | Cmp_guard of {
      cond : Bytecode.Instr.cond;
      a : reg;
      b : reg;
      pos : int;
      expect : Cfg.Layout.gid;
    }  (** fused compare + transition guard *)
  | Cmpz_guard of {
      cond : Bytecode.Instr.cond;
      src : reg;
      pos : int;
      expect : Cfg.Layout.gid;
    }  (** fused compare-with-zero + transition guard *)
  | Load_arith of {
      op : iop;
      dst : reg;
      slot : int;
      other : reg;
      load_left : bool;
    }  (** fused local load + integer arithmetic *)

type body = {
  ops : op array;
  block_start : int array;
      (** ops index where each trace position's segment begins *)
  pos_ops : int array;  (** micro-ops per position, after DCE and fusion *)
  pos_fused : int array;  (** superinstructions per position *)
  pos_src : int array;  (** source bytecode instructions per position *)
  reg_origin : (int * int) array;
      (** (epoch, stack depth) of each register; depth -1 marks an opaque
          incoming value from below the trace entry's stack *)
  n_regs : int;
  src_instrs : int;
  folded : int;  (** ops never emitted: constants, renames, dispatch glue *)
  dead : int;  (** ops removed by dead-register/dead-store elimination *)
  fused : int;  (** superinstructions formed *)
}

val n_ops : body -> int

val n_positions : body -> int

val is_fused : op -> bool

val def_of : op -> reg option
(** The register the op writes, if any. *)

val uses_of : op -> reg list
(** The registers the op reads. *)

val lower :
  ?local_const:(pos:int -> slot:int -> cval option) ->
  ?store_dead:(pos:int -> slot:int -> bool) ->
  (Cfg.Layout.gid * Bytecode.Instr.t array) array ->
  body
(** [lower blocks] converts a trace — its positions as (block gid,
    instructions) pairs, entry first — into a lowered body.
    [local_const ~pos ~slot] supplies a constant known to hold for the
    local [slot] on entry to the block at trace position [pos]
    (typically a {!Analysis.Constprop} singleton); it is consulted only
    while sound (not after the slot was written in the position, not
    after a call barrier).  [store_dead ~pos ~slot] licenses dropping a
    trailing store (never re-read inside the trace) at position [pos]:
    the caller must prove the slot dead at the trace seam and not
    observable on an exceptional edge.  Raises [Invalid_argument] on an
    empty trace. *)

val equal_body : body -> body -> bool
(** Structural equality of the op streams (the TL220 comparison). *)

val check : ?expect:Cfg.Layout.gid array -> body -> string list
(** Structural invariant violations, empty when sound: monotone segment
    starts, registers in range, exactly one guard per position 1..n-1
    (fused or not), and — when [expect] gives the trace's block gids —
    every guard expecting the right block. *)

val cval_to_string : cval -> string

val op_to_string : op -> string

val pp : Format.formatter -> body -> unit
