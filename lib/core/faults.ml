(* Deterministic fault injection for the self-healing engine.

   A fault schedule is a comma/whitespace-separated list of arms:

     kind@prob    fire with probability [prob] at every dispatch
     kind!tick    fire once, at the first dispatch >= [tick]
     budget=K     cap the total number of injected faults

   Kinds (the FT0xx catalogue) target the structures the TL2xx invariant
   checks guard, so every injected fault is detectable by the existing
   linter: corrupt-trace trips TL210, corrupt-instrs TL211, zero-counter
   and saturate-counter TL204, drop-best TL205.  fail-install and
   alloc-pressure exercise the cache's failure paths directly.

   All randomness comes from a seeded xorshift64 PRNG, so a schedule is a
   pure function of (spec, seed, dispatch stream) — chaos runs replay
   bit-identically. *)

type kind =
  | Corrupt_trace (* FT001: negate one block gid of an installed trace *)
  | Corrupt_instrs (* FT002: skew one per-block instruction count *)
  | Zero_counter (* FT003: zero one BCG edge weight *)
  | Saturate_counter (* FT004: push one edge weight past saturation *)
  | Drop_best (* FT005: clear a node's cached most-likely successor *)
  | Fail_install (* FT006: fail the next trace installation *)
  | Alloc_pressure (* FT007: evict half of the live trace cache *)
  | Guard_flip
    (* FT008: force a guard failure at a chosen position of the next
       followed trace, exercising the side-exit/deoptimization path *)

let all_kinds =
  [
    Corrupt_trace;
    Corrupt_instrs;
    Zero_counter;
    Saturate_counter;
    Drop_best;
    Fail_install;
    Alloc_pressure;
    Guard_flip;
  ]

let kind_name = function
  | Corrupt_trace -> "corrupt-trace"
  | Corrupt_instrs -> "corrupt-instrs"
  | Zero_counter -> "zero-counter"
  | Saturate_counter -> "saturate-counter"
  | Drop_best -> "drop-best"
  | Fail_install -> "fail-install"
  | Alloc_pressure -> "alloc-pressure"
  | Guard_flip -> "guard-flip"

let code = function
  | Corrupt_trace -> "FT001"
  | Corrupt_instrs -> "FT002"
  | Zero_counter -> "FT003"
  | Saturate_counter -> "FT004"
  | Drop_best -> "FT005"
  | Fail_install -> "FT006"
  | Alloc_pressure -> "FT007"
  | Guard_flip -> "FT008"

(* Specs written with underscores (guard_flip@0.05) are accepted too. *)
let kind_of_name s =
  let s = String.map (fun c -> if c = '_' then '-' else c) s in
  List.find_opt (fun k -> kind_name k = s) all_kinds

(* The FT catalogue mirrors Analysis.Diag's TL code table: FT0xx are
   injectable faults (with the TL check that detects them), FT9xx are the
   chaos gate's own verdicts. *)
let catalogue =
  [
    ( "FT001",
      "corrupt-trace: negate one block gid of an installed trace (detected \
       by TL210)" );
    ( "FT002",
      "corrupt-instrs: skew one per-block instruction count of an installed \
       trace (detected by TL211)" );
    ("FT003", "zero-counter: zero one BCG edge weight (detected by TL204)");
    ( "FT004",
      "saturate-counter: push one BCG edge weight past the saturation bound \
       (detected by TL204)" );
    ( "FT005",
      "drop-best: clear the cached most-likely successor of a node that has \
       edges (detected by TL205)" );
    ( "FT006",
      "fail-install: make the next trace installation fail (surfaces as a \
       builder outcome, not a corruption)" );
    ( "FT007",
      "alloc-pressure: evict half of the live trace cache (surfaces as \
       capacity evictions)" );
    ( "FT008",
      "guard-flip: force a guard failure at a chosen position of the next \
       followed trace (exercises the side-exit / OSR deoptimization path; \
       transparent by construction, so the chaos gate must stay \
       bit-identical)" );
    ("FT901", "chaos gate: VM result diverged from the no-tracing baseline");
    ( "FT902",
      "chaos gate: the engine did not recover to full tracing by the end of \
       the run" );
  ]

type trigger = Prob of float | At of int

type arm = { a_kind : kind; a_trigger : trigger; mutable a_fired : bool }

type t = {
  arms : arm list;
  mutable budget : int; (* remaining injections; max_int = unbounded *)
  mutable injected : int;
  mutable state : int64; (* xorshift64 *)
  mutable pending_flip : int option;
      (* armed FT008: requested guard position of the next followed
         trace (clamped to its length at consumption) *)
}

(* DSL parsing *)

let parse_arm item =
  let split c =
    match String.index_opt item c with
    | Some i ->
        Some
          ( String.sub item 0 i,
            String.sub item (i + 1) (String.length item - i - 1) )
    | None -> None
  in
  match split '=' with
  | Some ("budget", v) -> (
      match int_of_string_opt v with
      | Some k when k >= 0 -> `Budget k
      | _ -> invalid_arg ("Faults.parse: bad budget: " ^ item))
  | Some _ -> invalid_arg ("Faults.parse: unknown setting: " ^ item)
  | None -> (
      let kind name =
        match kind_of_name name with
        | Some k -> k
        | None -> invalid_arg ("Faults.parse: unknown fault kind: " ^ item)
      in
      match split '@' with
      | Some (name, p) -> (
          match float_of_string_opt p with
          | Some p when p >= 0.0 && p <= 1.0 ->
              `Arm { a_kind = kind name; a_trigger = Prob p; a_fired = false }
          | _ -> invalid_arg ("Faults.parse: bad probability: " ^ item))
      | None -> (
          match split '!' with
          | Some (name, n) -> (
              match int_of_string_opt n with
              | Some n when n >= 0 ->
                  `Arm { a_kind = kind name; a_trigger = At n; a_fired = false }
              | _ -> invalid_arg ("Faults.parse: bad tick: " ^ item))
          | None -> invalid_arg ("Faults.parse: bad item: " ^ item)))

let parse spec =
  let items =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let budget = ref max_int in
  let arms = ref [] in
  List.iter
    (fun item ->
      match parse_arm item with
      | `Budget k -> budget := k
      | `Arm a -> arms := a :: !arms)
    items;
  (List.rev !arms, !budget)

let create ~seed spec =
  let arms, budget = parse spec in
  let state =
    let s = Int64.of_int seed in
    if Int64.equal s 0L then 0x2545F4914F6CDD1DL else s
  in
  { arms; budget; injected = 0; state; pending_flip = None }

let is_active t = t.arms <> [] && t.budget > 0

let budget_left t = t.budget

let injected t = t.injected

(* xorshift64: fast, full-period, and trivially reseedable *)
let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  x

let float01 t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let pick t bound =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                       (Int64.of_int bound))

(* Victim selection.  A currently dispatching trace is never a victim:
   corrupting it mid-flight would make the fault indistinguishable from an
   interpreter bug.  Both this engine's [active] trace and any trace the
   shared cache has pinned (another session member may be executing it)
   are excluded. *)

let live_victims cache ~active =
  let acc = ref [] in
  Trace_cache.iter cache (fun tr ->
      let executing =
        (match active with Some a -> a == tr | None -> false)
        || Trace_cache.is_pinned cache tr
      in
      if not executing then acc := tr :: !acc);
  !acc

let node_victims bcg ~need_best =
  let acc = ref [] in
  Bcg.iter_nodes bcg (fun n ->
      if n.Bcg.edges <> [] && ((not need_best) || n.Bcg.best <> None) then
        acc := n :: !acc);
  !acc

let nth l i = List.nth l i

(* Apply one fault; [None] = no eligible victim, nothing was injected. *)
let apply t kind ~(bcg : Bcg.t) ~(cache : Trace_cache.t)
    ~(active : Trace.t option) : string option =
  match kind with
  | Corrupt_trace -> (
      match live_victims cache ~active with
      | [] -> None
      | victims ->
          let tr = nth victims (pick t (List.length victims)) in
          let i = pick t (Array.length tr.Trace.blocks) in
          tr.Trace.blocks.(i) <- -1 - tr.Trace.blocks.(i);
          Some
            (Printf.sprintf "trace %d: block %d negated to %d" tr.Trace.id i
               tr.Trace.blocks.(i)))
  | Corrupt_instrs -> (
      match live_victims cache ~active with
      | [] -> None
      | victims ->
          let tr = nth victims (pick t (List.length victims)) in
          let i = pick t (Array.length tr.Trace.instr_len) in
          tr.Trace.instr_len.(i) <- tr.Trace.instr_len.(i) + 13;
          Some
            (Printf.sprintf "trace %d: instr_len.(%d) skewed to %d" tr.Trace.id
               i tr.Trace.instr_len.(i)))
  | Zero_counter -> (
      match node_victims bcg ~need_best:false with
      | [] -> None
      | nodes ->
          let n = nth nodes (pick t (List.length nodes)) in
          let edges = n.Bcg.edges in
          let e = nth edges (pick t (List.length edges)) in
          e.Bcg.weight <- 0;
          Some
            (Printf.sprintf "node (%d->%d): edge to %d zeroed" n.Bcg.n_x
               n.Bcg.n_y e.Bcg.e_z))
  | Saturate_counter -> (
      match node_victims bcg ~need_best:false with
      | [] -> None
      | nodes ->
          let n = nth nodes (pick t (List.length nodes)) in
          let edges = n.Bcg.edges in
          let e = nth edges (pick t (List.length edges)) in
          let w = (2 * Config.counter_max bcg.Bcg.config) + 1 in
          e.Bcg.weight <- w;
          Some
            (Printf.sprintf "node (%d->%d): edge to %d saturated to %d"
               n.Bcg.n_x n.Bcg.n_y e.Bcg.e_z w))
  | Drop_best -> (
      match node_victims bcg ~need_best:true with
      | [] -> None
      | nodes ->
          let n = nth nodes (pick t (List.length nodes)) in
          n.Bcg.best <- None;
          Some
            (Printf.sprintf "node (%d->%d): best successor dropped" n.Bcg.n_x
               n.Bcg.n_y))
  | Fail_install ->
      Trace_cache.inject_install_failure cache;
      Some "next trace installation will fail"
  | Alloc_pressure ->
      let live = Trace_cache.n_live cache in
      if live < 2 then None
      else begin
        let evicted = Trace_cache.pressure_evict cache ~down_to:(live / 2) in
        if evicted = 0 then None
        else Some (Printf.sprintf "pressure-evicted %d of %d traces" evicted
                     live)
      end
  | Guard_flip ->
      (* Arm at most one flip at a time: re-arming before consumption
         would silently waste budget without changing behaviour. *)
      if t.pending_flip <> None then None
      else begin
        let pos = 1 + pick t 8 in
        t.pending_flip <- Some pos;
        Some
          (Printf.sprintf
             "next followed trace: guard at position %d (clamped) will flip"
             pos)
      end

(* FT008 consumption.  [tick] runs in the dispatch prologue, outside any
   trace, so the flip cannot fire there; it is armed as [pending_flip]
   and consumed by the dispatch loop's guard comparison ([flip_now]) at
   the first followed trace reaching the armed position. *)

let arm_flip t ~pos =
  if pos < 1 then invalid_arg "Faults.arm_flip: pos < 1";
  t.pending_flip <- Some pos

let flip_armed t = t.pending_flip <> None

let flip_now t ~pos ~n_blocks =
  match t.pending_flip with
  | None -> false
  | Some p ->
      let target = max 1 (min p (n_blocks - 1)) in
      if pos = target then begin
        t.pending_flip <- None;
        true
      end
      else false

let tick t ~now ~bcg ~cache ~active : (string * string) list =
  if t.budget <= 0 || t.arms = [] then []
  else begin
    let applied = ref [] in
    List.iter
      (fun arm ->
        if t.budget > 0 then begin
          let fire =
            match arm.a_trigger with
            | Prob p -> float01 t < p
            | At n ->
                if (not arm.a_fired) && now >= n then begin
                  arm.a_fired <- true;
                  true
                end
                else false
          in
          if fire then
            match apply t arm.a_kind ~bcg ~cache ~active with
            | Some detail ->
                t.budget <- t.budget - 1;
                t.injected <- t.injected + 1;
                applied := (code arm.a_kind, detail) :: !applied
            | None -> ()
        end)
      t.arms;
    List.rev !applied
  end
